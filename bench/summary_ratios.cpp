// Reproduces the paper's Section 5 headline text results:
//   * "OTEC generally outperforms COTEC by approximately 20-25%"
//   * "LOTEC outperforms OTEC by another 5-10%"
//     (both on consistency bytes; "in some cases the difference is more
//     dramatic")
//   * "LOTEC also sends many more messages (albeit small ones)"
// across all four scenarios (Figures 2-5 workloads).
#include <iostream>

#include "json_out.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"

using namespace lotec;

namespace {

struct Row {
  std::string name;
  WorkloadSpec spec;
};

}  // namespace

int main() {
  const std::vector<Row> rows = {
      {"medium/high (Fig 2)", scenarios::medium_high_contention()},
      {"large/high (Fig 3)", scenarios::large_high_contention()},
      {"medium/moderate (Fig 4)", scenarios::medium_moderate_contention()},
      {"large/moderate (Fig 5)", scenarios::large_moderate_contention()},
  };

  print_section("Section 5 summary: aggregate consistency traffic ratios");
  Table bytes_table({"Scenario", "COTEC B", "OTEC B", "LOTEC B",
                     "OTEC saves", "LOTEC saves more"});
  Table msg_table({"Scenario", "COTEC msgs", "OTEC msgs", "LOTEC msgs",
                   "LOTEC/OTEC msgs", "LOTEC avg msg B", "OTEC avg msg B"});

  bench::BenchJson json("summary_ratios");
  double worst_otec = 1.0, best_otec = 0.0;
  double worst_lotec = 1.0, best_lotec = 0.0;
  for (const Row& row : rows) {
    const Workload workload(row.spec);
    const auto results = run_protocol_suite(
        workload,
        {ProtocolKind::kCotec, ProtocolKind::kOtec, ProtocolKind::kLotec});
    const auto& c = results[0].total;
    const auto& o = results[1].total;
    const auto& l = results[2].total;
    const double otec_saving =
        1.0 - static_cast<double>(o.bytes) / static_cast<double>(c.bytes);
    const double lotec_saving =
        1.0 - static_cast<double>(l.bytes) / static_cast<double>(o.bytes);
    worst_otec = std::min(worst_otec, otec_saving);
    best_otec = std::max(best_otec, otec_saving);
    worst_lotec = std::min(worst_lotec, lotec_saving);
    best_lotec = std::max(best_lotec, lotec_saving);

    json.row(row.name)
        .field("cotec_bytes", c.bytes)
        .field("otec_bytes", o.bytes)
        .field("lotec_bytes", l.bytes)
        .field("cotec_messages", c.messages)
        .field("otec_messages", o.messages)
        .field("lotec_messages", l.messages);

    bytes_table.row({row.name, fmt_u64(c.bytes), fmt_u64(o.bytes),
                     fmt_u64(l.bytes), fmt_percent(otec_saving),
                     fmt_percent(lotec_saving)});
    msg_table.row(
        {row.name, fmt_u64(c.messages), fmt_u64(o.messages),
         fmt_u64(l.messages),
         fmt_percent(static_cast<double>(l.messages) /
                     static_cast<double>(o.messages)),
         fmt_u64(l.messages ? l.bytes / l.messages : 0),
         fmt_u64(o.messages ? o.bytes / o.messages : 0)});
  }
  bytes_table.print();
  std::cout << "\nPaper: OTEC saves ~20-25% over COTEC; LOTEC another ~5-10% "
               "over OTEC (more in some cases).\n"
            << "Measured: OTEC saves " << fmt_percent(worst_otec) << " - "
            << fmt_percent(best_otec) << "; LOTEC saves another "
            << fmt_percent(worst_lotec) << " - " << fmt_percent(best_lotec)
            << ".\n";

  print_section("\"LOTEC sends many more messages (albeit small ones)\"");
  msg_table.print();
  json.write();
  return 0;
}
