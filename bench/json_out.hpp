// Machine-readable bench output: every figure/ablation bench writes a
// BENCH_<name>.json next to its stdout tables, so CI can diff runs against
// committed baselines (tools/bench_check) instead of eyeballing tables.
//
// Format, kept deliberately flat for the hand-rolled parser in bench_check:
//   {
//     "bench": "<name>",
//     "rows": [
//       {"label": "<row label>", "<field>": <number>, ...},
//       ...
//     ]
//   }
// Field order is the insertion order; values are written as integers when
// integral so reruns of a deterministic bench produce byte-identical files.
#pragma once

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace lotec::bench {

class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  /// Start a new row; subsequent field() calls attach to it.
  BenchJson& row(std::string label) {
    rows_.push_back({std::move(label), {}});
    return *this;
  }

  BenchJson& field(std::string key, double value) {
    rows_.back().fields.emplace_back(std::move(key), value);
    return *this;
  }

  BenchJson& field(std::string key, std::uint64_t value) {
    return field(std::move(key), static_cast<double>(value));
  }

  /// Append a whole MetricsRegistry counter snapshot
  /// (ScenarioResult::counters) to the current row — one field per named
  /// counter.  This is how every figure bench gains the per-phase registry
  /// breakdowns without per-bench plumbing; bench_check gates whichever of
  /// them the committed baseline lists.
  BenchJson& counters(const std::map<std::string, std::uint64_t>& snapshot) {
    for (const auto& [name, value] : snapshot) field(name, value);
    return *this;
  }

  /// Write BENCH_<name>.json into the current directory (or `dir`).
  /// Returns the path written, empty on I/O failure (benches keep going:
  /// the stdout tables are still the primary human output).
  std::string write(const std::string& dir = ".") const {
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream os(path);
    if (!os) {
      std::cerr << "warning: cannot write " << path << '\n';
      return {};
    }
    os << "{\n  \"bench\": \"" << name_ << "\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      os << "    {\"label\": \"" << r.label << '"';
      for (const auto& [key, value] : r.fields)
        os << ", \"" << key << "\": " << render(value);
      os << '}' << (i + 1 < rows_.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
    std::cout << "wrote " << path << '\n';
    return path;
  }

 private:
  static std::string render(double v) {
    if (std::nearbyint(v) == v && std::abs(v) < 1e15) {
      std::ostringstream oss;
      oss << static_cast<long long>(v);
      return oss.str();
    }
    std::ostringstream oss;
    oss.precision(6);
    oss << v;
    return oss.str();
  }

  struct Row {
    std::string label;
    std::vector<std::pair<std::string, double>> fields;
  };

  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace lotec::bench
