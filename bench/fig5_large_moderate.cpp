// Reproduces Figure 5: bytes transferred per shared object, large objects
// under moderate contention.
#include "bytes_figure.hpp"

int main() {
  lotec::bench::BytesFigureOptions options;
  options.sample_step = 7;
  options.json_name = "fig5_large_moderate";
  lotec::bench::run_bytes_figure(
      "Figure 5: Large Sized Objects with Moderate Contention",
      lotec::scenarios::large_moderate_contention(), options);
  return 0;
}
