// Cache-pressure ablation (extension): the paper's model assumes each site
// can cache everything it touches.  This sweep bounds the per-node cache
// and shows the cost of re-fetching evicted pages — and that LOTEC's lazy,
// predicted transfers degrade more gracefully than COTEC's whole-object
// moves when cache space is scarce.
#include <iostream>

#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "workload/generator.hpp"

using namespace lotec;

namespace {

std::pair<std::uint64_t, std::uint64_t> run(const Workload& workload,
                                            ProtocolKind protocol,
                                            std::size_t capacity) {
  ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.page_size = 4096;
  cfg.protocol = protocol;
  cfg.seed = 7;
  cfg.cache_capacity_pages = capacity;
  Cluster cluster(cfg);
  const auto results = cluster.execute(workload.instantiate(cluster));
  for (const auto& r : results)
    if (!r.committed) throw Error("ablation workload aborted");
  return {cluster.observe().stats().total().bytes,
          cluster.observe().evicted_pages()};
}

}  // namespace

int main() {
  WorkloadSpec spec;
  spec.num_objects = 16;
  spec.min_pages = 4;
  spec.max_pages = 10;
  spec.num_transactions = 250;
  spec.contention_theta = 0.7;
  spec.touched_attr_fraction = 0.35;
  spec.write_fraction = 0.7;
  spec.seed = 0xCACE;
  const Workload workload(spec);

  std::size_t total_pages = 0;
  for (std::size_t i = 0; i < workload.num_objects(); ++i)
    total_pages += workload.object_pages(i);

  print_section("Cache-capacity ablation (per-node budget, pages)");
  std::cout << "workload: " << workload.num_objects() << " objects, "
            << total_pages << " total pages, " << spec.num_transactions
            << " root txns, 8 nodes\n\n";

  Table table({"Capacity", "COTEC bytes", "LOTEC bytes", "LOTEC/COTEC",
               "COTEC evictions", "LOTEC evictions"});
  const std::vector<std::size_t> capacities = {0, total_pages,
                                               total_pages / 2,
                                               total_pages / 4,
                                               total_pages / 8};
  for (const std::size_t cap : capacities) {
    const auto [cb, ce] = run(workload, ProtocolKind::kCotec, cap);
    const auto [lb, le] = run(workload, ProtocolKind::kLotec, cap);
    table.row({cap == 0 ? "unbounded" : fmt_u64(cap), fmt_u64(cb),
               fmt_u64(lb),
               fmt_percent(static_cast<double>(lb) / static_cast<double>(cb)),
               fmt_u64(ce), fmt_u64(le)});
  }
  table.print();
  std::cout << "\nExpectation: traffic grows as the budget shrinks (evicted "
               "pages are re-fetched);\nLOTEC keeps its relative advantage "
               "because it never re-fetches pages the next\nmethod is not "
               "predicted to need.\n";
  return 0;
}
