// Reproduces Figure 7: total message time at 100 Mbps.
#include "time_figure.hpp"

int main() {
  lotec::bench::run_time_figure("Figure 7: Example Transfer Time at 100Mbps",
                                lotec::NetworkCostModel::kEthernet100Mbps,
                                "fig7_time_100mbps");
  return 0;
}
