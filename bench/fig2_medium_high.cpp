// Reproduces Figure 2: bytes transferred per shared object, medium-sized
// objects (1-5 pages) under high contention, COTEC vs OTEC vs LOTEC.
#include "bytes_figure.hpp"

int main() {
  lotec::bench::BytesFigureOptions options;
  options.json_name = "fig2_medium_high";
  lotec::bench::run_bytes_figure(
      "Figure 2: Medium Sized Objects with High Contention",
      lotec::scenarios::medium_high_contention(), options);
  return 0;
}
