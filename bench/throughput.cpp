// Open-loop throughput harness: drives a configurable Zipfian transaction
// mix at a configurable offered arrival rate and reports sustained txn/s
// plus sojourn latency (p50/p99/p999, measured from each root's *scheduled*
// arrival — not its dispatch — so a saturated system shows queueing delay
// instead of hiding it, the classic coordinated-omission correction).
//
// Every mode runs twice, batching off and on, and the bench is the gate for
// the batching contract:
//   - the logical ledgers (per-kind messages/bytes, commits) must be
//     bit-identical across the knob — batching is physical-only;
//   - with the knob on, physical frame count must drop by at least
//     --min-savings (default 15%) on this mix.
// Either failure exits non-zero, so CI catches both a semantic leak and a
// batching path that silently stopped coalescing.
//
// Determinism: the logical schedule does not depend on wall time (pacing
// only sleeps between blocking execute() waves), so committed counts,
// traffic ledgers, and the span-histogram percentiles (logical ticks) are
// byte-identical across reruns — those are the fields the committed
// baseline in bench/baselines/ gates.  Wall-clock txn/s and microsecond
// latencies are reported but deliberately absent from the baseline.
//
//   throughput [--objects N] [--txns N] [--theta Z] [--arrival-rate R]
//              [--nodes N] [--seed S] [--distributed]
//              [--timeseries [--window MSGS] [--timeseries-jsonl PATH]]
//
// --timeseries installs the PROTOCOL.md §16 telemetry plane on the
// in-process rows: per-window txn / p50/p99/p999 rows land in the BenchJson,
// the window stream lands in --timeseries-jsonl (tail it with
// `lotec_top --jsonl`), and a population tail-attribution table decomposes
// every root attempt's sojourn into exclusive phase buckets (the bench
// fails if any attempt's buckets do not sum to its sojourn).
//
// --objects scales the object population (millions are fine: object state
// is materialised lazily per page, the directory is a flat map), --theta
// the Zipf skew, --arrival-rate the offered load in roots/sec (0 = unpaced,
// dispatch waves back to back).  --distributed adds wire-transport rows
// (real worker processes over Unix-domain sockets) when the lotec_worker
// binary is resolvable.
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "json_out.hpp"
#include "obs/metrics.hpp"
#include "obs/tail_attribution.hpp"
#include "obs/timeseries.hpp"
#include "runtime/cluster.hpp"
#include "wire/launcher.hpp"
#include "workload/generator.hpp"

using namespace lotec;

namespace {

struct Options {
  std::size_t objects = 2048;
  std::size_t txns = 300;
  double theta = 0.9;
  double arrival_rate = 0.0;  // roots/sec offered; 0 = unpaced
  std::size_t nodes = 8;
  std::uint64_t seed = 10;
  bool distributed = false;
  /// When positive, add a paired read-heavy row set: the same mix with this
  /// share of families submitted read-only, run with mv_read off and on
  /// (in-process, unbatched).  The base rows are unaffected — they always
  /// run at fraction 0 — so the committed baseline stays comparable.
  double read_fraction = 0.0;
  /// Acceptance floor for the batching rows: physical sends must come in
  /// at least this fraction below logical sends.  The default holds on the
  /// canonical Zipfian mix; exploratory runs (e.g. cold multi-million
  /// object populations dominated by unbatchable page fetches) can relax
  /// it with --min-savings.
  double min_savings = 0.15;
  /// Telemetry plane (PROTOCOL.md §16): install a TimeseriesCollector on
  /// the in-process runs, stream the inproc batch=off run's windows to
  /// --timeseries-jsonl, emit per-window BenchJson rows, and print a
  /// population tail-attribution table.  Off by default; the base rows are
  /// bit-identical either way (the collector never sends).
  bool timeseries = false;
  /// Logical window length in transport messages.
  std::uint64_t window = 2048;
  std::string timeseries_jsonl = "BENCH_throughput_timeseries.jsonl";
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--objects") opt.objects = std::stoull(value());
    else if (arg == "--txns") opt.txns = std::stoull(value());
    else if (arg == "--theta") opt.theta = std::stod(value());
    else if (arg == "--arrival-rate") opt.arrival_rate = std::stod(value());
    else if (arg == "--nodes") opt.nodes = std::stoull(value());
    else if (arg == "--seed") opt.seed = std::stoull(value());
    else if (arg == "--distributed") opt.distributed = true;
    else if (arg == "--read-fraction") opt.read_fraction = std::stod(value());
    else if (arg == "--min-savings") opt.min_savings = std::stod(value());
    else if (arg == "--timeseries") opt.timeseries = true;
    else if (arg == "--window") opt.window = std::stoull(value());
    else if (arg == "--timeseries-jsonl") opt.timeseries_jsonl = value();
    else {
      std::cerr << "unknown option " << arg << '\n';
      std::exit(2);
    }
  }
  return opt;
}

WorkloadSpec make_spec(const Options& opt) {
  WorkloadSpec spec;
  spec.num_objects = opt.objects;
  spec.num_transactions = opt.txns;
  spec.contention_theta = opt.theta;
  spec.min_pages = 1;
  spec.max_pages = 3;
  spec.max_depth = 3;
  spec.child_probability = 0.7;
  spec.max_children = 3;
  spec.seed = 404;
  return spec;
}

struct ModeOutcome {
  std::size_t committed = 0;
  TrafficCounter total;
  TrafficCounter physical;
  std::uint64_t joins = 0;
  std::uint64_t lock_messages = 0;
  std::uint64_t snapshot_reads = 0;
  double elapsed_seconds = 0;
  std::vector<double> sojourn_us;  // scheduled arrival -> completion
  // Logical-tick percentiles of the family.attempt span histogram:
  // deterministic, so these carry the latency shape into the baseline.
  double span_p50 = 0, span_p99 = 0, span_p999 = 0;
  // --timeseries extras (empty otherwise): closed windows plus the name
  // tables their vectors are parallel to, and the population tail
  // decomposition over every root attempt's spans.
  std::vector<TimeseriesWindow> windows;
  std::vector<std::string> window_counter_names;
  std::vector<std::string> window_histogram_names;
  TailAttribution tail;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  return v[lo] + (v[hi] - v[lo]) * (idx - static_cast<double>(lo));
}

ModeOutcome run_mode(const Workload& workload, const Options& opt,
                     bool batching, bool wire, const std::string& worker_path,
                     double read_fraction = 0.0, bool mv_read = false,
                     bool telemetry = false,
                     const std::string& telemetry_jsonl = {}) {
  ClusterConfig cfg;
  cfg.nodes = opt.nodes;
  cfg.seed = opt.seed;
  cfg.gdo.replicate = true;  // the paper's GDO is replicated; gives the
                             // release rounds replica-sync fan-out to batch
  cfg.net.batch_messages = batching;
  cfg.obs.trace_spans = true;
  cfg.wire.enabled = wire;
  cfg.wire.worker_path = worker_path;
  cfg.mv_read = mv_read;
  if (telemetry) {
    cfg.obs.timeseries = true;
    cfg.obs.timeseries_interval = opt.window;
    cfg.obs.timeseries_jsonl = telemetry_jsonl;
  }

  Cluster cluster(cfg);
  std::vector<RootRequest> requests =
      workload.instantiate(cluster, read_fraction);

  // Open-loop dispatch: roots arrive at t_i = i / rate; they are admitted
  // in waves of max_active_families so the scheduler keeps its usual
  // concurrency, and each wave is dispatched no earlier than its first
  // root's arrival time.  The wave partition is time-independent, so the
  // logical schedule (and all gated counters) never depends on the pacing.
  const std::size_t wave = std::max<std::size_t>(1, cfg.max_active_families);
  ModeOutcome out;
  out.sojourn_us.reserve(requests.size());

  const auto bench_start = std::chrono::steady_clock::now();
  for (std::size_t begin = 0; begin < requests.size(); begin += wave) {
    const std::size_t end = std::min(begin + wave, requests.size());
    if (opt.arrival_rate > 0) {
      const double due_s = static_cast<double>(begin) / opt.arrival_rate;
      const auto due = bench_start + std::chrono::duration_cast<
                                         std::chrono::steady_clock::duration>(
                                         std::chrono::duration<double>(due_s));
      std::this_thread::sleep_until(due);
    }
    std::vector<RootRequest> batch(requests.begin() + begin,
                                   requests.begin() + end);
    const std::vector<TxnResult> results = cluster.execute(std::move(batch));
    const auto done = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < results.size(); ++i) {
      out.committed += results[i].committed ? 1 : 0;
      const double arrival_s =
          opt.arrival_rate > 0
              ? static_cast<double>(begin + i) / opt.arrival_rate
              : 0.0;
      const double sojourn =
          std::chrono::duration<double, std::micro>(done - bench_start)
              .count() -
          arrival_s * 1e6;
      out.sojourn_us.push_back(sojourn);
    }
  }
  out.elapsed_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - bench_start)
                            .count();

  out.total = cluster.stats().total();
  out.physical = cluster.stats().physical();
  out.joins = cluster.stats().batched_joins();
  for (const MessageKind k :
       {MessageKind::kLockAcquireRequest, MessageKind::kLockAcquireGrant,
        MessageKind::kLockReleaseRequest, MessageKind::kLockCallback,
        MessageKind::kCallbackReply})
    out.lock_messages += cluster.stats().by_kind(k).messages;
  out.snapshot_reads = cluster.observe().metrics().value("snapshot.reads");
  const HistogramSnapshot hist =
      cluster.observe().metrics().histogram("span.family.attempt").snapshot();
  out.span_p50 = hist.percentile(50);
  out.span_p99 = hist.percentile(99);
  out.span_p999 = hist.percentile(99.9);
  if (telemetry) {
    if (TimeseriesCollector* ts = cluster.observe().timeseries()) {
      ts->close_window();  // flush the trailing partial window
      out.windows = ts->windows();
      out.window_counter_names = ts->counter_names();
      out.window_histogram_names = ts->histogram_names();
    }
    out.tail = analyze_tail_attribution(cluster.observe().spans());
  }
  return out;
}

void emit_row(bench::BenchJson& json, const std::string& label,
              const ModeOutcome& m) {
  json.row(label)
      .field("committed", static_cast<std::uint64_t>(m.committed))
      .field("messages", m.total.messages)
      .field("bytes", m.total.bytes)
      .field("physical_messages", m.physical.messages)
      .field("physical_bytes", m.physical.bytes)
      .field("batched_joins", m.joins)
      .field("span_attempt_p50_ticks", m.span_p50)
      .field("span_attempt_p99_ticks", m.span_p99)
      .field("span_attempt_p999_ticks", m.span_p999)
      .field("txn_per_sec", m.elapsed_seconds > 0
                                ? static_cast<double>(m.committed) /
                                      m.elapsed_seconds
                                : 0.0)
      .field("sojourn_p50_us", percentile(m.sojourn_us, 50))
      .field("sojourn_p99_us", percentile(m.sojourn_us, 99))
      .field("sojourn_p999_us", percentile(m.sojourn_us, 99.9));
}

/// Per-window BenchJson rows ("window_<k>"): per-window txn count is the
/// txn.commits delta, the latency shape the family.attempt window
/// percentiles.  These are the rows bench_check diffs with per-file
/// tolerance when a baseline lists them.
void emit_window_rows(bench::BenchJson& json, const ModeOutcome& m) {
  auto index_of = [](const std::vector<std::string>& names,
                     const std::string& want) -> std::ptrdiff_t {
    const auto it = std::find(names.begin(), names.end(), want);
    return it == names.end() ? -1 : it - names.begin();
  };
  const std::ptrdiff_t commits =
      index_of(m.window_counter_names, "txn.commits");
  const std::ptrdiff_t sends =
      index_of(m.window_counter_names, "net.logical_sends");
  const std::ptrdiff_t attempt =
      index_of(m.window_histogram_names, "span.family.attempt");
  for (const TimeseriesWindow& w : m.windows) {
    json.row("window_" + std::to_string(w.index))
        .field("open_tick", w.open_tick)
        .field("close_tick", w.close_tick);
    if (commits >= 0)
      json.field("txn", w.counter_deltas[static_cast<std::size_t>(commits)]);
    if (sends >= 0)
      json.field("logical_sends",
                 w.counter_deltas[static_cast<std::size_t>(sends)]);
    if (attempt >= 0) {
      const WindowHistogram& h =
          w.hist_deltas[static_cast<std::size_t>(attempt)];
      json.field("attempts", h.count)
          .field("p50_ticks", h.percentile(50))
          .field("p99_ticks", h.percentile(99))
          .field("p999_ticks", h.percentile(99.9));
    }
  }
}

/// Tail-attribution table + BenchJson rows, and the §16 identity check:
/// every attempt's phase buckets must sum to its sojourn ticks exactly.
int emit_tail(bench::BenchJson& json, const ModeOutcome& m) {
  int failures = 0;
  for (const AttemptAttribution& a : m.tail.attempts) {
    std::uint64_t sum = 0;
    for (const std::uint64_t b : a.buckets) sum += b;
    if (sum != a.sojourn) {
      std::cerr << "FAIL [tail]: attempt " << a.root << " buckets sum to "
                << sum << " but sojourn is " << a.sojourn << " ticks\n";
      ++failures;
      break;
    }
  }
  write_tail_attribution(m.tail, std::cout);
  for (const TailBand& band : m.tail.bands) {
    json.row("tail_" + std::string(band.label))
        .field("attempts", band.attempts)
        .field("sojourn_ticks", band.sojourn);
    for (std::size_t k = 0; k < kNumTailBuckets; ++k)
      json.field(std::string(to_string(static_cast<TailBucket>(k))) + "_ticks",
                 band.buckets[k]);
  }
  return failures;
}

void report(const std::string& label, const ModeOutcome& m) {
  std::cout << label << ": " << m.committed << " committed in "
            << m.elapsed_seconds << " s ("
            << (m.elapsed_seconds > 0 ? m.committed / m.elapsed_seconds : 0)
            << " txn/s), " << m.total.messages << " logical msgs, "
            << m.physical.messages << " physical frames, " << m.joins
            << " joins, sojourn p50/p99/p999 = "
            << percentile(m.sojourn_us, 50) << "/"
            << percentile(m.sojourn_us, 99) << "/"
            << percentile(m.sojourn_us, 99.9) << " us\n";
}

/// The batching contract, checked per transport.  Returns the number of
/// violations (0 = clean).
int check_pair(const std::string& transport, const ModeOutcome& off,
               const ModeOutcome& on, double min_savings) {
  int failures = 0;
  if (on.committed != off.committed || on.total.messages != off.total.messages ||
      on.total.bytes != off.total.bytes) {
    std::cerr << "FAIL [" << transport << "]: logical ledger changed with "
              << "batching on: " << off.committed << "/" << off.total.messages
              << "/" << off.total.bytes << " vs " << on.committed << "/"
              << on.total.messages << "/" << on.total.bytes << '\n';
    ++failures;
  }
  if (off.joins != 0 || off.physical.messages != off.total.messages) {
    std::cerr << "FAIL [" << transport << "]: knob off but physical ledger "
              << "diverged from logical\n";
    ++failures;
  }
  const double savings =
      on.total.messages > 0
          ? 1.0 - static_cast<double>(on.physical.messages) /
                      static_cast<double>(on.total.messages)
          : 0.0;
  if (savings < min_savings) {
    std::cerr << "FAIL [" << transport << "]: batching saved only "
              << savings * 100.0 << "% of sends (< "
              << min_savings * 100.0 << "% floor): "
              << on.physical.messages << " frames for " << on.total.messages
              << " logical messages\n";
    ++failures;
  } else {
    std::cout << transport << ": batching saved " << savings * 100.0
              << "% of physical sends (" << on.total.messages << " -> "
              << on.physical.messages << " frames)\n";
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const Workload workload(make_spec(opt));

  const ModeOutcome off =
      run_mode(workload, opt, false, false, "", 0.0, false, opt.timeseries,
               opt.timeseries ? opt.timeseries_jsonl : std::string());
  report("inproc batch=off", off);
  const ModeOutcome on = run_mode(workload, opt, true, false, "", 0.0, false,
                                  opt.timeseries);
  report("inproc batch=on ", on);

  int failures = check_pair("inproc", off, on, opt.min_savings);

  bench::BenchJson json("throughput");
  emit_row(json, "inproc_batch_off", off);
  emit_row(json, "inproc_batch_on", on);

  if (opt.timeseries) {
    std::cout << "timeseries: " << off.windows.size() << " windows of "
              << opt.window << " msgs -> " << opt.timeseries_jsonl << '\n';
    emit_window_rows(json, off);
    failures += emit_tail(json, off);
  }

  bool wire_ran = false;
  if (opt.distributed) {
    std::string worker_path;
    try {
      worker_path = wire::find_worker_binary(WireConfig{});
    } catch (const Error& e) {
      std::cout << "wire rows skipped: " << e.what() << '\n';
    }
    if (!worker_path.empty()) {
      const ModeOutcome woff = run_mode(workload, opt, false, true,
                                        worker_path);
      report("wire   batch=off", woff);
      const ModeOutcome won = run_mode(workload, opt, true, true,
                                       worker_path);
      report("wire   batch=on ", won);
      failures += check_pair("wire", woff, won, opt.min_savings);
      // The wire transport must account the same logical traffic as the
      // in-process one — the walltime bench's cross-transport gate, upheld
      // here too.
      if (woff.total.messages != off.total.messages ||
          woff.total.bytes != off.total.bytes) {
        std::cerr << "FAIL: accounted traffic diverged between transports\n";
        ++failures;
      }
      emit_row(json, "wire_batch_off", woff);
      emit_row(json, "wire_batch_on", won);
      wire_ran = true;
    }
  }
  if (opt.read_fraction > 0.0) {
    // Read-heavy pair: the same mix with a read-only population, lock path
    // vs snapshot path.  Gated on the snapshot contract, not on batching:
    // same outcomes, strictly less lock traffic, snapshot reads happening.
    const ModeOutcome roff = run_mode(workload, opt, false, false, "",
                                      opt.read_fraction, /*mv_read=*/false);
    report("readfrac mv=off ", roff);
    const ModeOutcome ron = run_mode(workload, opt, false, false, "",
                                     opt.read_fraction, /*mv_read=*/true);
    report("readfrac mv=on  ", ron);
    if (ron.committed != roff.committed) {
      std::cerr << "FAIL [readfrac]: mv_read changed outcomes ("
                << ron.committed << " vs " << roff.committed << ")\n";
      ++failures;
    }
    if (ron.snapshot_reads == 0 || ron.lock_messages >= roff.lock_messages) {
      std::cerr << "FAIL [readfrac]: snapshot path inactive or lock traffic "
                << "not reduced (" << ron.snapshot_reads << " snapshot reads, "
                << ron.lock_messages << " vs " << roff.lock_messages
                << " lock messages)\n";
      ++failures;
    }
    emit_row(json, "readfrac_mv_off", roff);
    emit_row(json, "readfrac_mv_on", ron);
    json.row("readfrac_meta")
        .field("read_fraction", opt.read_fraction)
        .field("lock_messages_off", roff.lock_messages)
        .field("lock_messages_on", ron.lock_messages)
        .field("snapshot_reads", ron.snapshot_reads);
  }

  json.row("meta")
      .field("objects", static_cast<std::uint64_t>(opt.objects))
      .field("txns", static_cast<std::uint64_t>(opt.txns))
      .field("theta", opt.theta)
      .field("arrival_rate", opt.arrival_rate)
      .field("wire_ran", static_cast<std::uint64_t>(wire_ran ? 1 : 0));
  json.write();
  return failures == 0 ? 0 : 1;
}
