// Multi-version snapshot-read ablation (PROTOCOL.md §14): sweep the share
// of declared read-only families and compare LOTEC with mv_read on vs off
// on a read-heavy hot-site mix (site_locality 0.9, the regime the
// ROADMAP's read-dominated north star cares about).  With the knob off a
// read-only family takes the ordinary O2PL lock path — a GDO round per
// object per family; with it on, readers resolve against commit-tick
// snapshots: the first reader after a writer commit pays one map refresh
// plus the changed-page fetches, and every further reader at that site
// until the next commit resolves from the cached map and version ring with
// zero messages.
//
// This bench doubles as a regression gate (nonzero exit on failure):
//   * outcomes (committed/aborted) must match at every fraction — snapshot
//     readers never block or abort writers, and never abort themselves on
//     these sweeps;
//   * at read fraction >= 0.9 total messages must drop by at least 50%;
//   * at read fraction 1.0 the run must send ZERO lock messages — the
//     snapshot path takes no global locks at all;
//   * the declared kind alone must be inert on the wire: with mv_read off,
//     a run with kReadOnly submissions is bit-identical to the same run
//     with every kind stripped back to kReadWrite.
#include <iostream>

#include "json_out.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"

using namespace lotec;

namespace {

WorkloadSpec ablation_spec() {
  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 80;
  return spec;
}

ExperimentOptions base_options(double read_fraction) {
  ExperimentOptions options;
  options.nodes = 8;
  // Families run strictly one after another at a mostly-fixed hot site:
  // what remains is pure protocol traffic, and repeat reads at the site
  // are the axis snapshot resolution trades on (exactly as the lock-cache
  // ablation sweeps the same locality for sticky locks).
  options.max_active_families = 1;
  options.site_locality = 0.9;
  options.read_only_fraction = read_fraction;
  return options;
}

}  // namespace

int main() {
  const Workload workload(ablation_spec());

  print_section(
      "Snapshot-read ablation: LOTEC traffic vs read-only fraction "
      "(multi-version commit-tick snapshots, hot-site mix)");

  bool failed = false;
  bench::BenchJson json("ablation_mvread");
  Table table({"Read frac", "Msgs off", "Msgs on", "Saved", "Lock off",
               "Lock on", "Snap reads", "Fetches", "Retries"});
  for (const double fraction : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    ExperimentOptions options = base_options(fraction);
    const ScenarioResult off =
        run_scenario(workload, ProtocolKind::kLotec, options);
    options.mv_read = true;
    const ScenarioResult on =
        run_scenario(workload, ProtocolKind::kLotec, options);

    const double saved = 1.0 - static_cast<double>(on.total.messages) /
                                   static_cast<double>(off.total.messages);
    table.row({fmt_double(fraction, 2), fmt_u64(off.total.messages),
               fmt_u64(on.total.messages), fmt_percent(saved),
               fmt_u64(off.counter("net.lock_messages")),
               fmt_u64(on.counter("net.lock_messages")),
               fmt_u64(on.counter("snapshot.reads")),
               fmt_u64(on.counter("snapshot.fetches")),
               fmt_u64(on.counter("snapshot.retries"))});
    json.row("readfrac_" + fmt_double(fraction, 2))
        .field("total_messages_off", off.total.messages)
        .field("total_messages_on", on.total.messages)
        .field("lock_messages_off", off.counter("net.lock_messages"))
        .field("lock_messages_on", on.counter("net.lock_messages"))
        .field("bytes_off", off.total.bytes)
        .field("bytes_on", on.total.bytes)
        .field("snapshot_reads", on.counter("snapshot.reads"))
        .field("snapshot_map_refreshes", on.counter("snapshot.map_refreshes"))
        .field("snapshot_fetches", on.counter("snapshot.fetches"))
        .field("snapshot_local_hits", on.counter("snapshot.local_hits"))
        .field("snapshot_retries", on.counter("snapshot.retries"))
        .field("committed", on.committed);

    if (on.committed != off.committed || on.aborted != off.aborted) {
      std::cerr << "FAIL: mv_read changed outcomes at read fraction "
                << fraction << " (committed " << on.committed << " vs "
                << off.committed << ", aborted " << on.aborted << " vs "
                << off.aborted << ")\n";
      failed = true;
    }
    if (fraction >= 0.9 && saved < 0.50) {
      std::cerr << "FAIL: at read fraction " << fraction
                << " snapshot reads saved only " << fmt_percent(saved)
                << " of total messages (need >= 50%)\n";
      failed = true;
    }
    if (fraction >= 1.0 && on.counter("net.lock_messages") != 0) {
      std::cerr << "FAIL: an all-read-only sweep still sent "
                << on.counter("net.lock_messages")
                << " lock messages with mv_read on (must be 0)\n";
      failed = true;
    }
  }
  table.print();

  // Kind-inertness gate: with mv_read off, the declared FamilyKind must not
  // perturb a single message — compare a kReadOnly-submitting run against
  // the same run with every kind demoted after instantiation.
  {
    ExperimentOptions submitted = base_options(0.5);
    submitted.record_trace = true;
    ExperimentOptions stripped = submitted;
    stripped.strip_family_kinds = true;
    const ScenarioResult a =
        run_scenario(workload, ProtocolKind::kLotec, submitted);
    const ScenarioResult b =
        run_scenario(workload, ProtocolKind::kLotec, stripped);
    if (a.trace != b.trace || a.total.messages != b.total.messages ||
        a.total.bytes != b.total.bytes) {
      std::cerr << "FAIL: the declared family kind is not inert on the wire ("
                << a.total.messages << "/" << a.total.bytes << " msgs/B vs "
                << b.total.messages << "/" << b.total.bytes << ")\n";
      failed = true;
    } else {
      std::cout << "\nkind-inertness check: " << a.total.messages
                << " messages, " << a.total.bytes
                << " bytes — bit-identical with kinds stripped\n";
    }
  }

  json.write();
  if (failed) return 1;
  std::cout << "\nExpectation: savings grow with the read share — the first "
               "reader after a commit\npays one map refresh plus the changed "
               "pages, every further reader at the site\nresolves locally; "
               "at fraction 1.0 the sweep sends zero lock messages.\n";
  return 0;
}
