// Mini-OO7: the classic object-database benchmark shapes (Carey, DeWitt &
// Naughton, SIGMOD'93) on the LOTEC runtime — the kind of CAD-design
// workload the paper's system was built for.
//
// A design library of CompositeParts (document header + a blob of atomic
// parts) hangs off an assembly hierarchy.  Child references are stored IN
// OBJECT STATE (8-byte attributes holding object ids), so traversals do
// genuine pointer-chasing through the DSM: each hop reads a reference
// attribute, then invokes a method on the referenced object as a nested
// sub-transaction.
//
// Operations (per OO7):
//   T1 — read-only traversal of the whole hierarchy, touching every
//        composite's atomic blob;
//   T2 — traversal that updates one atomic part per composite;
//   Q1 — random composite lookups (read the document header only).
//
// Reported per protocol: bytes and messages per operation class.
#include <iostream>
#include <vector>

#include "runtime/cluster.hpp"
#include "sim/report.hpp"

using namespace lotec;

namespace {

constexpr int kFanout = 3;
constexpr int kLevels = 3;              // 3^3 = 27 base assemblies
constexpr std::uint32_t kAtomicBytes = 12288;  // blob spans 3 extra pages
constexpr int kT1Runs = 8;
constexpr int kT2Runs = 8;
constexpr int kQ1Lookups = 60;

struct Oo7Results {
  TrafficCounter t1, t2, q1;
  std::uint64_t invocations = 0;
};

Oo7Results run_oo7(ProtocolKind protocol) {
  ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.protocol = protocol;
  cfg.page_size = 4096;
  cfg.seed = 0x007;
  Cluster cluster(cfg);

  // CompositePart: header + build date + atomic-part blob.
  const ClassId composite = cluster.define_class(
      ClassBuilder("CompositePart", cfg.page_size)
          .attribute("title", 64)
          .attribute("build_date", 8)
          .attribute("atomics", kAtomicBytes)
          .method("read_all", {"title", "build_date", "atomics"}, {},
                  [](MethodContext& ctx) {
                    (void)ctx.get<std::int64_t>("build_date");
                    std::vector<std::byte> blob(kAtomicBytes);
                    ctx.read_raw(ctx.cls().layout().find("atomics"), blob);
                  })
          .method("update_one", {"build_date", "atomics"},
                  {"build_date", "atomics"},
                  [](MethodContext& ctx) {
                    // Touch one 16-byte atomic part plus the build date.
                    const std::int64_t d =
                        ctx.get<std::int64_t>("build_date") + 1;
                    ctx.set<std::int64_t>("build_date", d);
                    std::vector<std::byte> part(
                        16, static_cast<std::byte>(d & 0xFF));
                    // Deterministic slot from the date.
                    const std::uint64_t slot =
                        static_cast<std::uint64_t>(d) %
                        (kAtomicBytes / 16);
                    std::vector<std::byte> blob(kAtomicBytes);
                    ctx.read_raw(ctx.cls().layout().find("atomics"), blob);
                    std::copy(part.begin(), part.end(),
                              blob.begin() +
                                  static_cast<std::ptrdiff_t>(slot * 16));
                    ctx.write_raw(ctx.cls().layout().find("atomics"), blob);
                  })
          .method("lookup", {"title"}, {}, [](MethodContext& ctx) {
            (void)ctx.get_string("title");
          }));

  // Assembly: up to kFanout child references (assemblies or composites) in
  // object state, plus a leaf flag.
  ClassBuilder asm_builder("Assembly", cfg.page_size);
  asm_builder.attribute("is_leaf", 8);
  std::vector<std::string> ref_attrs;
  for (int i = 0; i < kFanout; ++i) {
    ref_attrs.push_back("child" + std::to_string(i));
    asm_builder.attribute(ref_attrs.back(), 8);
  }
  std::vector<std::string> all_attrs = ref_attrs;
  all_attrs.push_back("is_leaf");
  // Simpler: two traversal methods, one per composite op; recursion picks
  // the same method name on child assemblies.
  const auto make_traversal = [](std::string self_method,
                                 std::string composite_method) {
    return [self_method = std::move(self_method),
            composite_method = std::move(composite_method)](
               MethodContext& ctx) {
      const bool leaf = ctx.get<std::int64_t>("is_leaf") != 0;
      for (int i = 0; i < kFanout; ++i) {
        const auto ref = static_cast<std::uint64_t>(
            ctx.get<std::int64_t>("child" + std::to_string(i)));
        if (ref == 0) continue;
        const ObjectId child(ref - 1);
        if (!ctx.invoke(child, leaf ? composite_method : self_method))
          ctx.abort();
      }
    };
  };
  asm_builder.method("t1", all_attrs, {}, make_traversal("t1", "read_all"));
  asm_builder.method("t2", all_attrs, {}, make_traversal("t2", "update_one"));
  asm_builder.method("init", {}, all_attrs, [](MethodContext& ctx) {
    // Children installed via set_refs payload.
    const auto* refs =
        static_cast<const std::vector<std::uint64_t>*>(ctx.user_data());
    ctx.set<std::int64_t>("is_leaf",
                          static_cast<std::int64_t>((*refs)[0]));
    for (int i = 0; i < kFanout; ++i)
      ctx.set<std::int64_t>("child" + std::to_string(i),
                            static_cast<std::int64_t>((*refs)[1 + i]));
  });
  const ClassId assembly = cluster.define_class(asm_builder);

  // --- build the design: assemblies of depth kLevels over composites -----
  std::vector<ObjectId> composites;
  const std::size_t num_base = [] {
    std::size_t n = 1;
    for (int i = 0; i < kLevels; ++i) n *= kFanout;
    return n;
  }();
  for (std::size_t i = 0; i < num_base * kFanout; ++i)
    composites.push_back(cluster.create_object(composite));

  // Level 0: base assemblies referencing composites; upper levels reference
  // assemblies.  Build bottom-up.
  std::vector<ObjectId> level;
  std::size_t next_composite = 0;
  for (std::size_t i = 0; i < num_base; ++i) {
    const ObjectId a = cluster.create_object(assembly);
    auto refs = std::make_shared<std::vector<std::uint64_t>>();
    refs->push_back(1);  // leaf
    for (int c = 0; c < kFanout; ++c)
      refs->push_back(composites[next_composite++].value() + 1);
    RootRequest req;
    req.object = a;
    req.method = cluster.method_id(a, "init");
    req.user_data = refs;
    if (!cluster.execute({std::move(req)})[0].committed)
      throw Error("oo7: init failed");
    level.push_back(a);
  }
  while (level.size() > 1) {
    std::vector<ObjectId> upper;
    for (std::size_t i = 0; i < level.size(); i += kFanout) {
      const ObjectId a = cluster.create_object(assembly);
      auto refs = std::make_shared<std::vector<std::uint64_t>>();
      refs->push_back(0);  // interior
      for (int c = 0; c < kFanout; ++c)
        refs->push_back(i + static_cast<std::size_t>(c) < level.size()
                            ? level[i + static_cast<std::size_t>(c)].value() +
                                  1
                            : 0);
      RootRequest req;
      req.object = a;
      req.method = cluster.method_id(a, "init");
      req.user_data = refs;
      if (!cluster.execute({std::move(req)})[0].committed)
        throw Error("oo7: init failed");
      upper.push_back(a);
    }
    level = std::move(upper);
  }
  const ObjectId root = level.front();

  // --- run the operation mix ----------------------------------------------
  Oo7Results out;
  const auto measure = [&](auto&& body) {
    const TrafficCounter before = cluster.observe().stats().total();
    body();
    const TrafficCounter after = cluster.observe().stats().total();
    return TrafficCounter{after.messages - before.messages,
                          after.bytes - before.bytes};
  };

  out.t1 = measure([&] {
    for (int i = 0; i < kT1Runs; ++i) {
      const TxnResult r =
          cluster.run_root(root, "t1", NodeId(static_cast<std::uint32_t>(i) %
                                              cfg.nodes));
      if (!r.committed) throw Error("oo7: T1 failed");
      out.invocations += r.txns_in_tree;
    }
  });
  out.t2 = measure([&] {
    for (int i = 0; i < kT2Runs; ++i) {
      const TxnResult r =
          cluster.run_root(root, "t2", NodeId(static_cast<std::uint32_t>(i) %
                                              cfg.nodes));
      if (!r.committed) throw Error("oo7: T2 failed");
    }
  });
  out.q1 = measure([&] {
    Rng rng(12);
    for (int i = 0; i < kQ1Lookups; ++i) {
      const ObjectId target = composites[rng.below(composites.size())];
      if (!cluster
               .run_root(target, "lookup",
                         NodeId(static_cast<std::uint32_t>(
                             rng.below(cfg.nodes))))
               .committed)
        throw Error("oo7: Q1 failed");
    }
  });
  return out;
}

}  // namespace

int main() {
  print_section("Mini-OO7 on LOTEC (assembly depth 3, fanout 3, " +
                std::string("composites with 12KB atomic blobs)"));
  Table table({"Protocol", "T1 bytes/run", "T2 bytes/run", "Q1 bytes/lookup",
               "T1 msgs/run", "T2 msgs/run"});
  for (const auto protocol :
       {ProtocolKind::kCotec, ProtocolKind::kOtec, ProtocolKind::kLotec,
        ProtocolKind::kLotecDsd}) {
    const Oo7Results r = run_oo7(protocol);
    table.row({std::string(to_string(protocol)),
               fmt_u64(r.t1.bytes / kT1Runs), fmt_u64(r.t2.bytes / kT2Runs),
               fmt_u64(r.q1.bytes / kQ1Lookups),
               fmt_u64(r.t1.messages / kT1Runs),
               fmt_u64(r.t2.messages / kT2Runs)});
  }
  table.print();
  std::cout << "\nT1 is read-only (read locks shared; pages mostly cached "
               "after the first run);\nT2's narrow atomic-part updates are "
               "LOTEC-DSD's best case; Q1 touches only\nthe document-header "
               "page, which LOTEC's prediction exploits.\n";
  return 0;
}
