// Section 5.1 extension: "optimistic pre-acquisition of locks in the GDO as
// well as pre-fetching of needed objects ... performing these operations in
// parallel with other operations effectively hides the latency of remote
// lock acquisition."
//
// With prefetch hints, a family pre-acquires its script's whole lock set
// (and the predicted pages) as one pipelined batch at start; without hints,
// every remote acquisition is a blocking round trip on the family's
// critical path.  Bytes barely change; the blocking-round-trip count — the
// latency proxy — collapses.
#include <iostream>

#include "net/cost_model.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"

using namespace lotec;

int main() {
  const Workload workload(scenarios::large_high_contention());

  ExperimentOptions base;
  ExperimentOptions prefetch;
  prefetch.prefetch_hints = true;

  const ScenarioResult without =
      run_scenario(workload, ProtocolKind::kLotec, base);
  const ScenarioResult with =
      run_scenario(workload, ProtocolKind::kLotec, prefetch);

  print_section("Section 5.1 ablation: optimistic lock pre-acquisition + "
                "prefetch (LOTEC)");
  Table table({"Variant", "Blocking round trips", "Per txn", "p50", "p95",
               "Messages", "Bytes", "Committed"});
  const auto row = [&](const std::string& name, const ScenarioResult& r) {
    table.row({name, fmt_u64(r.counter("net.round_trips")),
               fmt_double(static_cast<double>(r.counter("net.round_trips")) /
                              static_cast<double>(r.committed),
                          2),
               fmt_double(r.round_trips_p50, 1),
               fmt_double(r.round_trips_p95, 1), fmt_u64(r.total.messages),
               fmt_u64(r.total.bytes), fmt_u64(r.committed)});
  };
  row("no prefetch", without);
  row("prefetch", with);
  table.print();

  std::cout << "\nModeled critical-path latency per committed transaction "
               "(round trips x round-trip cost):\n";
  Table lat({"Round-trip cost", "no prefetch", "prefetch", "speedup"});
  for (const double rtt_us : {200.0, 50.0, 10.0, 2.0}) {
    const double lat_without = rtt_us *
                               static_cast<double>(without.counter("net.round_trips")) /
                               static_cast<double>(without.committed);
    const double lat_with = rtt_us *
                            static_cast<double>(with.counter("net.round_trips")) /
                            static_cast<double>(with.committed);
    lat.row({fmt_double(rtt_us, 0) + "us", fmt_double(lat_without, 1) + "us",
             fmt_double(lat_with, 1) + "us",
             fmt_double(lat_without / lat_with, 2) + "x"});
  }
  lat.print();
  return 0;
}
