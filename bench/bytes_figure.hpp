// Shared harness for the Figure 2-5 byte-count experiments: run a workload
// scenario under COTEC, OTEC and LOTEC and print the per-object
// bytes-transferred series the paper plots, plus aggregate ratios.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "json_out.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"

namespace lotec::bench {

struct BytesFigureOptions {
  /// Print every `sample_step`-th object (the paper's Fig 4/5 label a
  /// sample of the 100 objects).
  std::size_t sample_step = 1;
  /// When non-empty, also write BENCH_<json_name>.json with the aggregate
  /// per-protocol traffic (the numbers CI regression-checks).
  std::string json_name;
  ExperimentOptions experiment;
};

inline void run_bytes_figure(const std::string& title,
                             const WorkloadSpec& spec,
                             const BytesFigureOptions& options = {}) {
  const Workload workload(spec);
  ExperimentOptions experiment = options.experiment;
  // LOTEC_SPANS=<path> turns on span tracing and writes a Perfetto-loadable
  // Chrome trace per protocol (path_<PROTOCOL>.json); used by the CI traced
  // bench artifact and for ad-hoc figure profiling.
  if (const char* spans = std::getenv("LOTEC_SPANS");
      spans != nullptr && *spans != '\0') {
    experiment.trace_spans = true;
    experiment.chrome_trace = spans;
  }
  const auto results = run_protocol_suite(
      workload,
      {ProtocolKind::kCotec, ProtocolKind::kOtec, ProtocolKind::kLotec},
      experiment);
  const ScenarioResult& cotec = results[0];
  const ScenarioResult& otec = results[1];
  const ScenarioResult& lotec = results[2];

  print_section(title);
  std::cout << "objects=" << workload.num_objects() << " pages=["
            << spec.min_pages << "," << spec.max_pages << "]"
            << " txns=" << spec.num_transactions
            << " theta=" << spec.contention_theta
            << " nodes=" << options.experiment.nodes
            << " page_size=" << options.experiment.page_size << "\n"
            << "committed: COTEC=" << cotec.committed
            << " OTEC=" << otec.committed << " LOTEC=" << lotec.committed
            << "  (of " << spec.num_transactions << ")\n\n";

  Table table({"Object", "COTEC bytes", "OTEC bytes", "LOTEC bytes",
               "OTEC/COTEC", "LOTEC/OTEC"});
  for (std::size_t i = 0; i < workload.num_objects();
       i += options.sample_step) {
    const ObjectId id(i);
    const std::uint64_t c = cotec.object_traffic(id).bytes;
    const std::uint64_t o = otec.object_traffic(id).bytes;
    const std::uint64_t l = lotec.object_traffic(id).bytes;
    table.row({"O" + std::to_string(i), fmt_u64(c), fmt_u64(o), fmt_u64(l),
               c ? fmt_percent(static_cast<double>(o) / c) : "-",
               o ? fmt_percent(static_cast<double>(l) / o) : "-"});
  }
  table.print();

  std::cout << "\nAggregate consistency traffic:\n";
  Table agg({"Protocol", "Messages", "Bytes", "vs COTEC bytes",
             "vs OTEC bytes", "Demand fetches"});
  const double cb = static_cast<double>(cotec.total.bytes);
  const double ob = static_cast<double>(otec.total.bytes);
  agg.row({"COTEC", fmt_u64(cotec.total.messages), fmt_u64(cotec.total.bytes),
           "100.0%", "-", fmt_u64(cotec.counter("page.demand_fetches"))});
  agg.row({"OTEC", fmt_u64(otec.total.messages), fmt_u64(otec.total.bytes),
           fmt_percent(otec.total.bytes / cb), "100.0%",
           fmt_u64(otec.counter("page.demand_fetches"))});
  agg.row({"LOTEC", fmt_u64(lotec.total.messages), fmt_u64(lotec.total.bytes),
           fmt_percent(lotec.total.bytes / cb),
           fmt_percent(lotec.total.bytes / ob),
           fmt_u64(lotec.counter("page.demand_fetches"))});
  agg.print();

  if (!options.json_name.empty()) {
    BenchJson json(options.json_name);
    for (const ScenarioResult* r : {&cotec, &otec, &lotec})
      json.row(std::string(to_string(r->protocol)))
          .field("messages", r->total.messages)
          .field("bytes", r->total.bytes)
          .field("lock_messages", r->counter("net.lock_messages"))
          .field("page_messages", r->counter("net.page_messages"))
          .field("demand_fetches", r->counter("page.demand_fetches"))
          .field("committed", r->committed)
          .counters(r->counters);
    json.write();
  }

  std::cout << "\nCSV (per-object bytes):\n";
  Table csv({"object", "cotec", "otec", "lotec"});
  for (std::size_t i = 0; i < workload.num_objects(); ++i) {
    const ObjectId id(i);
    csv.row({"O" + std::to_string(i),
             fmt_u64(cotec.object_traffic(id).bytes),
             fmt_u64(otec.object_traffic(id).bytes),
             fmt_u64(lotec.object_traffic(id).bytes)});
  }
  csv.print_csv();
}

}  // namespace lotec::bench
