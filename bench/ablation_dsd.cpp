// Section 4.2 / Section 6 extension: LOTEC as a Distributed Shared *Data*
// system — "only updates to the objects (not the entire pages they are
// stored on) really need to be transmitted between nodes".
//
// LOTEC-DSD ships only the byte ranges the previous commit changed when the
// acquirer's page is one version behind (full pages otherwise).  The win
// depends on update sparsity: the narrower the writes relative to the page
// size, the more DSD saves.  This ablation sweeps write breadth on the
// Figure-3-like geometry.
#include <iostream>

#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"

using namespace lotec;

int main() {
  print_section("LOTEC vs LOTEC-DSD: sub-page delta transfers");
  Table table({"Attrs/page", "LOTEC bytes", "DSD bytes", "DSD/LOTEC",
               "Delta pages", "Full pages"});

  // More attributes per page = narrower attributes = sparser updates.
  for (const std::size_t attrs_per_page : {1, 4, 16, 64}) {
    WorkloadSpec spec = scenarios::large_high_contention();
    spec.attrs_per_page = attrs_per_page;
    spec.num_transactions = 200;
    const Workload workload(spec);

    ExperimentOptions options;
    const auto results = run_protocol_suite(
        workload, {ProtocolKind::kLotec, ProtocolKind::kLotecDsd}, options);
    const auto& lotec = results[0];
    const auto& dsd = results[1];
    table.row({fmt_u64(attrs_per_page), fmt_u64(lotec.total.bytes),
               fmt_u64(dsd.total.bytes),
               fmt_percent(static_cast<double>(dsd.total.bytes) /
                           static_cast<double>(lotec.total.bytes)),
               fmt_u64(dsd.counter("page.delta")),
               fmt_u64(dsd.counter("page.fetched") - dsd.counter("page.delta"))});
  }
  table.print();
  std::cout << "\nExpectation: with one attribute per page a delta IS the "
               "whole page (no saving).\nNarrower attributes mean sparser "
               "updates and real savings; at very fine\ngranularity the "
               "8-byte per-range descriptors eat some of the gain back —\n"
               "the paper's point that a distributed shared DATA system "
               "moves updates,\nnot pages, with bookkeeping overhead as the "
               "new price.\n";
  return 0;
}
