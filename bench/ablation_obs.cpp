// Observability zero-overhead ablation: the fig2 scenario run with span
// tracing ON must produce byte-identical message traffic to the same run
// with tracing OFF — the tracer reads the logical clock and buffers span
// records but never sends a message or perturbs the schedule.  Exits
// non-zero on any divergence, so CI can gate on it.
#include <iostream>
#include <map>

#include "json_out.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/critical_path.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"

using namespace lotec;

namespace {

/// Spans nest properly per (node, family) lane: every parent id closes at
/// or after its children and interval spans have end >= begin.
bool spans_well_formed(const std::vector<SpanRecord>& spans) {
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : spans) {
    if (s.end < s.begin) {
      std::cerr << "FAIL: span " << s.id << " ends before it begins\n";
      return false;
    }
    by_id[s.id] = &s;
  }
  for (const SpanRecord& s : spans) {
    if (s.parent == 0) continue;
    const auto it = by_id.find(s.parent);
    if (it == by_id.end()) {
      std::cerr << "FAIL: span " << s.id << " has unknown parent "
                << s.parent << "\n";
      return false;
    }
    const SpanRecord& p = *it->second;
    if (s.begin < p.begin || s.end > p.end) {
      std::cerr << "FAIL: span " << s.id << " [" << s.begin << "," << s.end
                << "] escapes parent " << p.id << " [" << p.begin << ","
                << p.end << "]\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const Workload workload(scenarios::medium_high_contention());

  ExperimentOptions off;
  off.record_trace = true;
  ExperimentOptions on = off;
  on.trace_spans = true;

  print_section(
      "Observability ablation: traced vs untraced fig2 run (LOTEC)");
  const ScenarioResult plain =
      run_scenario(workload, ProtocolKind::kLotec, off);
  const ScenarioResult traced =
      run_scenario(workload, ProtocolKind::kLotec, on);

  Table table({"Variant", "Messages", "Bytes", "Committed", "Spans"});
  table.row({"tracing off", fmt_u64(plain.total.messages),
             fmt_u64(plain.total.bytes), fmt_u64(plain.committed),
             fmt_u64(plain.spans.size())});
  table.row({"tracing on", fmt_u64(traced.total.messages),
             fmt_u64(traced.total.bytes), fmt_u64(traced.committed),
             fmt_u64(traced.spans.size())});
  table.print();

  bool ok = true;
  if (plain.trace != traced.trace) {
    std::cerr << "FAIL: span tracing changed the message trace ("
              << plain.trace.size() << " vs " << traced.trace.size()
              << " events)\n";
    ok = false;
  }
  // The causal-propagation sub-gate: the TraceContext header rides in the
  // fixed frame's padding, so the traced run must cost exactly zero extra
  // messages and zero extra accounted bytes — and the untraced run carries
  // no header at all (its trace above is the seed-identical baseline).
  const std::uint64_t extra_messages =
      traced.total.messages - plain.total.messages;
  const std::uint64_t extra_bytes = traced.total.bytes - plain.total.bytes;
  if (extra_messages != 0 || extra_bytes != 0) {
    std::cerr << "FAIL: causal header cost " << extra_messages
              << " extra messages / " << extra_bytes << " extra bytes\n";
    ok = false;
  }
  if (traced.spans.empty()) {
    std::cerr << "FAIL: traced run recorded no spans\n";
    ok = false;
  } else if (!spans_well_formed(traced.spans)) {
    ok = false;
  }

  // Critical-path analysis over the traced run's causal DAG: the per-phase
  // self times must account for (nearly) all of the slowest root family's
  // wall time.
  const CriticalPath cp =
      analyze_critical_path(traced.spans, traced.messages);
  if (!cp.valid()) {
    std::cerr << "FAIL: no family.attempt span to analyze\n";
    ok = false;
  } else {
    std::cout << "\ncritical path: family " << cp.family << " on node "
              << cp.node << ", wall " << cp.wall_ticks << " ticks, self-time "
              << cp.phase_self_total() << " ticks, chain depth "
              << cp.chain.size() << "\n";
    if (cp.phase_self_total() > cp.wall_ticks) {
      std::cerr << "FAIL: critical-path self time ("
                << cp.phase_self_total() << ") exceeds wall time ("
                << cp.wall_ticks << ")\n";
      ok = false;
    }
  }

  bench::BenchJson json("ablation_obs");
  json.row("LOTEC")
      .field("messages", plain.total.messages)
      .field("bytes", plain.total.bytes)
      .field("spans", traced.spans.size())
      .field("trace_identical",
             std::uint64_t(plain.trace == traced.trace ? 1 : 0))
      .field("causal_header_extra_messages", extra_messages)
      .field("causal_header_extra_bytes", extra_bytes)
      .field("critical_path_wall_ticks", cp.wall_ticks)
      .field("critical_path_self_ticks", cp.phase_self_total())
      .field("critical_path_chain_depth",
             static_cast<std::uint64_t>(cp.chain.size()))
      .counters(traced.counters);
  json.write();

  std::cout << "\nbit-identity: "
            << (plain.trace == traced.trace ? "byte-identical traffic"
                                            : "MISMATCH")
            << "; causal header +" << extra_messages << " msgs / +"
            << extra_bytes << " bytes; " << traced.spans.size()
            << " spans recorded\n";
  return ok ? 0 : 1;
}
