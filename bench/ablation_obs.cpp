// Observability zero-overhead ablation: the fig2 scenario run with span
// tracing ON must produce byte-identical message traffic to the same run
// with tracing OFF — the tracer reads the logical clock and buffers span
// records but never sends a message or perturbs the schedule.  Exits
// non-zero on any divergence, so CI can gate on it.
//
// PR 10 adds the telemetry-plane gate (PROTOCOL.md §16): a run with the
// timeseries collector installed must ALSO be bit-identical (trace,
// accounted messages/bytes, full counter snapshot) and must cost < 2%
// wall clock over the untelemetered baseline.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>

#include "json_out.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/critical_path.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"

using namespace lotec;

namespace {

/// Spans nest properly per (node, family) lane: every parent id closes at
/// or after its children and interval spans have end >= begin.
bool spans_well_formed(const std::vector<SpanRecord>& spans) {
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const SpanRecord& s : spans) {
    if (s.end < s.begin) {
      std::cerr << "FAIL: span " << s.id << " ends before it begins\n";
      return false;
    }
    by_id[s.id] = &s;
  }
  for (const SpanRecord& s : spans) {
    if (s.parent == 0) continue;
    const auto it = by_id.find(s.parent);
    if (it == by_id.end()) {
      std::cerr << "FAIL: span " << s.id << " has unknown parent "
                << s.parent << "\n";
      return false;
    }
    const SpanRecord& p = *it->second;
    if (s.begin < p.begin || s.end > p.end) {
      std::cerr << "FAIL: span " << s.id << " [" << s.begin << "," << s.end
                << "] escapes parent " << p.id << " [" << p.begin << ","
                << p.end << "]\n";
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const Workload workload(scenarios::medium_high_contention());

  ExperimentOptions off;
  off.record_trace = true;
  ExperimentOptions on = off;
  on.trace_spans = true;

  print_section(
      "Observability ablation: traced vs untraced fig2 run (LOTEC)");
  const ScenarioResult plain =
      run_scenario(workload, ProtocolKind::kLotec, off);
  const ScenarioResult traced =
      run_scenario(workload, ProtocolKind::kLotec, on);

  Table table({"Variant", "Messages", "Bytes", "Committed", "Spans"});
  table.row({"tracing off", fmt_u64(plain.total.messages),
             fmt_u64(plain.total.bytes), fmt_u64(plain.committed),
             fmt_u64(plain.spans.size())});
  table.row({"tracing on", fmt_u64(traced.total.messages),
             fmt_u64(traced.total.bytes), fmt_u64(traced.committed),
             fmt_u64(traced.spans.size())});
  table.print();

  bool ok = true;
  if (plain.trace != traced.trace) {
    std::cerr << "FAIL: span tracing changed the message trace ("
              << plain.trace.size() << " vs " << traced.trace.size()
              << " events)\n";
    ok = false;
  }
  // The causal-propagation sub-gate: the TraceContext header rides in the
  // fixed frame's padding, so the traced run must cost exactly zero extra
  // messages and zero extra accounted bytes — and the untraced run carries
  // no header at all (its trace above is the seed-identical baseline).
  const std::uint64_t extra_messages =
      traced.total.messages - plain.total.messages;
  const std::uint64_t extra_bytes = traced.total.bytes - plain.total.bytes;
  if (extra_messages != 0 || extra_bytes != 0) {
    std::cerr << "FAIL: causal header cost " << extra_messages
              << " extra messages / " << extra_bytes << " extra bytes\n";
    ok = false;
  }
  if (traced.spans.empty()) {
    std::cerr << "FAIL: traced run recorded no spans\n";
    ok = false;
  } else if (!spans_well_formed(traced.spans)) {
    ok = false;
  }

  // Critical-path analysis over the traced run's causal DAG: the per-phase
  // self times must account for (nearly) all of the slowest root family's
  // wall time.
  const CriticalPath cp =
      analyze_critical_path(traced.spans, traced.messages);
  if (!cp.valid()) {
    std::cerr << "FAIL: no family.attempt span to analyze\n";
    ok = false;
  } else {
    std::cout << "\ncritical path: family " << cp.family << " on node "
              << cp.node << ", wall " << cp.wall_ticks << " ticks, self-time "
              << cp.phase_self_total() << " ticks, chain depth "
              << cp.chain.size() << "\n";
    if (cp.phase_self_total() > cp.wall_ticks) {
      std::cerr << "FAIL: critical-path self time ("
                << cp.phase_self_total() << ") exceeds wall time ("
                << cp.wall_ticks << ")\n";
      ok = false;
    }
  }

  // Telemetry-plane gate (§16): the timeseries collector counts transport
  // messages and snapshots the registry at window boundaries, but it never
  // sends a message, never registers a metric of its own, and never
  // perturbs the schedule — so a collector-on run must reproduce the
  // baseline bit for bit: same message trace, same accounted totals, same
  // end-of-run counter snapshot.
  print_section("Telemetry plane: timeseries collector on vs off");
  ExperimentOptions tson = off;
  tson.timeseries = true;
  tson.timeseries_interval = 128;
  const ScenarioResult tsrun =
      run_scenario(workload, ProtocolKind::kLotec, tson);
  if (plain.trace != tsrun.trace) {
    std::cerr << "FAIL: the timeseries collector changed the message trace ("
              << plain.trace.size() << " vs " << tsrun.trace.size()
              << " events)\n";
    ok = false;
  }
  const std::uint64_t ts_extra_messages =
      tsrun.total.messages - plain.total.messages;
  const std::uint64_t ts_extra_bytes = tsrun.total.bytes - plain.total.bytes;
  if (ts_extra_messages != 0 || ts_extra_bytes != 0) {
    std::cerr << "FAIL: timeseries cost " << ts_extra_messages
              << " extra messages / " << ts_extra_bytes << " extra bytes\n";
    ok = false;
  }
  if (plain.counters != tsrun.counters) {
    std::cerr << "FAIL: the timeseries collector perturbed the counter "
                 "snapshot\n";
    ok = false;
  }

  // Wall-clock overhead: alternate paired runs and compare the best (the
  // minimum is the noise-robust estimator — every slowdown source is
  // additive).  The gate is < 2% relative with a 10 ms absolute floor:
  // run-to-run jitter on the ~100 ms fig2 scenario reaches several ms even
  // on minimums, while a genuine per-message hook regression scales with
  // all ~11k messages and clears the floor easily.  A noise burst (CPU
  // frequency shift, a background daemon) can outlast one whole measurement
  // pass, so a tripped gate is remeasured from scratch — only an overhead
  // that persists across every attempt fails.
  const auto wall_seconds = [&](const ExperimentOptions& o) {
    const auto t0 = std::chrono::steady_clock::now();
    (void)run_scenario(workload, ProtocolKind::kLotec, o);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  const auto measure = [&] {
    double off_best = wall_seconds(off), on_best = wall_seconds(tson);
    for (int rep = 0; rep < 6; ++rep) {
      off_best = std::min(off_best, wall_seconds(off));
      on_best = std::min(on_best, wall_seconds(tson));
    }
    return std::pair(off_best, on_best);
  };
  const auto tripped = [](double off_s, double on_s) {
    return on_s > off_s * 1.02 && on_s - off_s > 0.010;
  };
  auto [off_best, on_best] = measure();
  for (int retry = 0; retry < 2 && tripped(off_best, on_best); ++retry)
    std::tie(off_best, on_best) = measure();
  const double overhead = on_best / off_best - 1.0;
  std::cout << "timeseries wall clock: off " << off_best * 1e3 << " ms, on "
            << on_best * 1e3 << " ms (" << overhead * 100.0
            << "% overhead, gate < 2%)\n";
  if (tripped(off_best, on_best)) {
    std::cerr << "FAIL: timeseries overhead " << overhead * 100.0
              << "% exceeds the 2% budget\n";
    ok = false;
  }

  bench::BenchJson json("ablation_obs");
  json.row("LOTEC")
      .field("messages", plain.total.messages)
      .field("bytes", plain.total.bytes)
      .field("spans", traced.spans.size())
      .field("trace_identical",
             std::uint64_t(plain.trace == traced.trace ? 1 : 0))
      .field("causal_header_extra_messages", extra_messages)
      .field("causal_header_extra_bytes", extra_bytes)
      .field("critical_path_wall_ticks", cp.wall_ticks)
      .field("critical_path_self_ticks", cp.phase_self_total())
      .field("critical_path_chain_depth",
             static_cast<std::uint64_t>(cp.chain.size()))
      .field("timeseries_trace_identical",
             std::uint64_t(plain.trace == tsrun.trace ? 1 : 0))
      .field("timeseries_extra_messages", ts_extra_messages)
      .field("timeseries_extra_bytes", ts_extra_bytes)
      .counters(traced.counters);
  json.write();

  std::cout << "\nbit-identity: "
            << (plain.trace == traced.trace ? "byte-identical traffic"
                                            : "MISMATCH")
            << "; causal header +" << extra_messages << " msgs / +"
            << extra_bytes << " bytes; " << traced.spans.size()
            << " spans recorded\n";
  return ok ? 0 : 1;
}
