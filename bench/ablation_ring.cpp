// Elastic-directory ablation (PROTOCOL.md §15): what does the consistent-
// hash ring cost when it is idle, and what does membership churn cost when
// it is not?
//
// Three regimes over the fig2 medium/high-contention mix:
//   * static        — the ring knob off: hash-mod placement, no mirrors
//                     (the production default every golden figure pins);
//   * ring, idle    — ring on with quorum mirror groups of 1 and 2 but no
//                     membership change: placement moves to ring order and
//                     every directory mutation pays its quorum sync, but no
//                     entry ever migrates;
//   * ring, churn   — leave/join cycles fire mid-batch (1, 2, 4 cycles):
//                     shards migrate under load and stale views bounce, all
//                     charged as real messages.
//
// The bench doubles as a regression gate (nonzero exit on failure):
//   * knob-off inertness: a run with the ring struct populated but DISABLED
//     must be message-for-message identical to a default run — the elastic
//     machinery may not perturb a single golden byte while off;
//   * idle ring: zero migrations and zero redirects — nothing moves unless
//     membership does;
//   * churn: every commit survives (membership change never kills a
//     family), migrations actually happen, and each shard handoff is
//     charged exactly one request/reply pair on the wire.
#include <iostream>

#include "json_out.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"

using namespace lotec;

namespace {

WorkloadSpec ablation_spec() {
  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 80;
  return spec;
}

ExperimentOptions base_options() {
  ExperimentOptions options;
  options.nodes = 8;
  return options;
}

}  // namespace

int main() {
  const Workload workload(ablation_spec());

  print_section(
      "Elastic-directory ablation: static map vs consistent-hash ring "
      "(idle and under membership churn)");

  bool failed = false;
  bench::BenchJson json("ablation_ring");
  Table table({"Config", "Msgs", "Bytes", "Events", "Migrations",
               "Redirects", "Quorum syncs", "Committed"});

  const auto emit = [&](const std::string& label, const ScenarioResult& r) {
    table.row({label, fmt_u64(r.total.messages), fmt_u64(r.total.bytes),
               fmt_u64(r.counter("ring.changes")),
               fmt_u64(r.counter("ring.migrations")),
               fmt_u64(r.counter("ring.redirects")),
               fmt_u64(r.counter("ring.quorum_commits")),
               fmt_u64(static_cast<std::uint64_t>(r.committed))});
    json.row(label)
        .field("total_messages", r.total.messages)
        .field("membership_events", r.counter("ring.changes"))
        .field("total_bytes", r.total.bytes)
        .field("migrations", r.counter("ring.migrations"))
        .field("redirects", r.counter("ring.redirects"))
        .field("quorum_commits", r.counter("ring.quorum_commits"))
        .field("migrate_requests",
               r.counter("net.kind.ShardMigrateRequest.messages"))
        .field("committed", r.committed);
  };

  const ScenarioResult baseline =
      run_scenario(workload, ProtocolKind::kLotec, base_options());
  emit("static", baseline);

  // Idle ring: elasticity priced in, not exercised.
  for (const std::size_t group : {std::size_t{1}, std::size_t{2}}) {
    ExperimentOptions options = base_options();
    options.ring.enabled = true;
    options.ring.mirror_group = group;
    const ScenarioResult r =
        run_scenario(workload, ProtocolKind::kLotec, options);
    emit("ring_idle_g" + std::to_string(group), r);
    if (r.counter("ring.migrations") != 0 ||
        r.counter("ring.redirects") != 0) {
      std::cerr << "FAIL: idle ring (group " << group << ") moved "
                << r.counter("ring.migrations") << " shards and bounced "
                << r.counter("ring.redirects")
                << " requests with membership fixed (both must be 0)\n";
      failed = true;
    }
    if (r.committed != baseline.committed || r.aborted != baseline.aborted) {
      std::cerr << "FAIL: idle ring (group " << group
                << ") changed outcomes: " << r.committed << "/" << r.aborted
                << " vs static " << baseline.committed << "/"
                << baseline.aborted << "\n";
      failed = true;
    }
  }

  // Churn: leave/join cycles over two members while the batch runs.
  for (const std::size_t cycles : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    ExperimentOptions options = base_options();
    options.ring.enabled = true;
    options.ring.mirror_group = 2;
    // Wide windows: the migration pump advances once per family attempt,
    // so the departed member must stay out long enough for its shards to
    // actually move before the join folds them back.
    options.fault = fault_presets::rebalance({NodeId(1), NodeId(2)}, cycles,
                                             /*first_tick=*/30,
                                             /*window=*/250);
    const ScenarioResult r =
        run_scenario(workload, ProtocolKind::kLotec, options);
    emit("churn_" + std::to_string(cycles), r);
    if (r.committed != baseline.committed) {
      std::cerr << "FAIL: churn (" << cycles << " cycles) lost commits: "
                << r.committed << " vs " << baseline.committed
                << " — membership change must never kill a family\n";
      failed = true;
    }
    if (r.counter("ring.migrations") == 0) {
      std::cerr << "FAIL: churn (" << cycles
                << " cycles) migrated nothing — the chaos never bit\n";
      failed = true;
    }
    const std::uint64_t reqs =
        r.counter("net.kind.ShardMigrateRequest.messages");
    const std::uint64_t replies =
        r.counter("net.kind.ShardMigrateReply.messages");
    if (reqs != replies || reqs < r.counter("ring.migrations")) {
      std::cerr << "FAIL: churn (" << cycles << " cycles) charged " << reqs
                << " migrate requests / " << replies << " replies for "
                << r.counter("ring.migrations")
                << " migrations — a handoff must cost one pair each\n";
      failed = true;
    }
  }
  table.print();

  // Knob-off inertness gate: a disabled ring struct (with every sub-knob
  // away from its default) may not perturb one message of the golden
  // static run.
  {
    ExperimentOptions plain = base_options();
    plain.record_trace = true;
    ExperimentOptions armed = plain;
    armed.ring.virtual_nodes = 64;
    armed.ring.mirror_group = 3;
    armed.ring.seed = 0xDEAD;
    armed.ring.migration_batch = 7;  // enabled stays false
    const ScenarioResult a = run_scenario(workload, ProtocolKind::kLotec,
                                          plain);
    const ScenarioResult b = run_scenario(workload, ProtocolKind::kLotec,
                                          armed);
    if (a.trace != b.trace || a.total.messages != b.total.messages ||
        a.total.bytes != b.total.bytes) {
      std::cerr << "FAIL: a disabled ring is not inert on the wire ("
                << a.total.messages << "/" << a.total.bytes << " msgs/B vs "
                << b.total.messages << "/" << b.total.bytes << ")\n";
      failed = true;
    } else {
      std::cout << "\nknob-off inertness: " << a.total.messages
                << " messages, " << a.total.bytes
                << " bytes — bit-identical with the ring struct armed but "
                   "disabled\n";
    }
  }

  json.write();
  if (failed) return 1;
  std::cout << "\nExpectation: the idle ring pays quorum syncs per directory "
               "mutation and nothing\nelse; churn adds one charged "
               "request/reply pair per migrated shard plus a\nredirect per "
               "stale-view request, and never costs a commit.\n";
  return 0;
}
