// Reproduces Figure 3: bytes transferred per shared object, large objects
// (10-20 pages) under high contention, COTEC vs OTEC vs LOTEC.
#include "bytes_figure.hpp"

int main() {
  lotec::bench::BytesFigureOptions options;
  options.json_name = "fig3_large_high";
  lotec::bench::run_bytes_figure(
      "Figure 3: Large Sized Objects with High Contention",
      lotec::scenarios::large_high_contention(), options);
  return 0;
}
