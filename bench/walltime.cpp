// Wall-clock bench for the wire transport: the same fig2 scenario executed
// on the in-process transport and as real OS processes over Unix-domain
// sockets (`--distributed`), reporting sustained throughput (txn/s over
// one full batch) and closed-loop latency (p50/p99 over single-request
// batches).  Writes BENCH_walltime.json — the artifact the distributed
// CI smoke job uploads.
//
// The two modes must account byte-identical traffic (same seed, same
// scenario, same decision code path); this bench exits non-zero if the
// message/byte totals diverge, doubling as a coarse golden-counter gate.
//
// The wire rows need the lotec_worker binary: resolved via $LOTEC_WORKER
// or next to this executable's sibling tools/ directory; when neither
// exists the wire mode is skipped (reported in the JSON) so the bench
// still runs from unusual layouts.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "json_out.hpp"
#include "runtime/cluster.hpp"
#include "sim/scenarios.hpp"
#include "wire/launcher.hpp"
#include "workload/generator.hpp"

using namespace lotec;

namespace {

constexpr std::size_t kNodes = 8;
constexpr std::size_t kLatencyProbes = 100;

struct ModeOutcome {
  double batch_seconds = 0;
  std::size_t committed = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::vector<double> latencies_us;
};

ClusterConfig make_config(bool wire, const std::string& worker_path) {
  ClusterConfig cfg;
  cfg.nodes = kNodes;
  cfg.wire.enabled = wire;
  cfg.wire.worker_path = worker_path;
  return cfg;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

ModeOutcome run_mode(const Workload& workload, bool wire,
                     const std::string& worker_path) {
  ModeOutcome out;
  {
    // Sustained throughput: one full batch, all roots in flight.
    Cluster cluster(make_config(wire, worker_path));
    std::vector<RootRequest> requests = workload.instantiate(cluster);
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<TxnResult> results =
        cluster.execute(std::move(requests));
    const auto t1 = std::chrono::steady_clock::now();
    out.batch_seconds = std::chrono::duration<double>(t1 - t0).count();
    for (const TxnResult& r : results) out.committed += r.committed ? 1 : 0;
    out.messages = cluster.stats().total().messages;
    out.bytes = cluster.stats().total().bytes;
  }
  {
    // Closed-loop latency: one root per batch on a fresh cluster (the
    // worker fleet persists across batches in wire mode, so probes measure
    // steady-state round trips, not process spawning).
    Cluster cluster(make_config(wire, worker_path));
    std::vector<RootRequest> requests = workload.instantiate(cluster);
    const std::size_t probes = std::min(kLatencyProbes, requests.size());
    out.latencies_us.reserve(probes);
    for (std::size_t i = 0; i < probes; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      (void)cluster.execute({requests[i]});
      const auto t1 = std::chrono::steady_clock::now();
      out.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
  }
  return out;
}

void emit_row(bench::BenchJson& json, const std::string& label,
              const ModeOutcome& m) {
  json.row(label)
      .field("batch_seconds", m.batch_seconds)
      .field("txn_per_sec",
             m.batch_seconds > 0
                 ? static_cast<double>(m.committed) / m.batch_seconds
                 : 0.0)
      .field("committed", static_cast<std::uint64_t>(m.committed))
      .field("messages", m.messages)
      .field("bytes", m.bytes)
      .field("latency_p50_us", percentile(m.latencies_us, 50))
      .field("latency_p99_us", percentile(m.latencies_us, 99));
}

}  // namespace

int main() {
  const Workload workload(scenarios::medium_high_contention());

  std::string worker_path;
  bool wire_available = true;
  try {
    worker_path = wire::find_worker_binary(WireConfig{});
  } catch (const Error& e) {
    wire_available = false;
    std::cout << "wire mode skipped: " << e.what() << "\n";
  }

  const ModeOutcome inproc = run_mode(workload, false, "");
  std::cout << "inproc: " << inproc.committed << " committed in "
            << inproc.batch_seconds << " s ("
            << (inproc.committed / inproc.batch_seconds) << " txn/s), p50="
            << percentile(inproc.latencies_us, 50) << " us, p99="
            << percentile(inproc.latencies_us, 99) << " us\n";

  bench::BenchJson json("walltime");
  emit_row(json, "inproc", inproc);

  int exit_code = 0;
  if (wire_available) {
    const ModeOutcome wired = run_mode(workload, true, worker_path);
    std::cout << "wire:   " << wired.committed << " committed in "
              << wired.batch_seconds << " s ("
              << (wired.committed / wired.batch_seconds) << " txn/s), p50="
              << percentile(wired.latencies_us, 50) << " us, p99="
              << percentile(wired.latencies_us, 99) << " us\n";
    emit_row(json, "wire", wired);
    if (wired.messages != inproc.messages || wired.bytes != inproc.bytes) {
      std::cerr << "FAIL: accounted traffic diverged between transports: "
                << "inproc " << inproc.messages << " msgs / " << inproc.bytes
                << " bytes, wire " << wired.messages << " msgs / "
                << wired.bytes << " bytes\n";
      exit_code = 1;
    } else {
      std::cout << "traffic identical across transports: " << inproc.messages
                << " msgs, " << inproc.bytes << " bytes\n";
    }
  }
  json.row("meta").field("wire_available",
                         static_cast<std::uint64_t>(wire_available ? 1 : 0));
  json.write();
  return exit_code;
}
