// Section 4.1 ablation: "the UNDO operations ... may be done using either
// local UNDO logs or shadow pages.  In either case, no network
// communication is required."
//
// Both strategies are implemented; this ablation runs an abort-heavy
// workload under each and reports wall time, confirming zero network
// difference and characterizing the local trade-off (byte-range logs are
// compact for narrow writes; shadow pages amortize many writes to the same
// page and roll back faster).
#include <chrono>
#include <iostream>

#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "workload/generator.hpp"

using namespace lotec;

int main() {
  WorkloadSpec spec;
  spec.num_objects = 16;
  spec.min_pages = 2;
  spec.max_pages = 8;
  spec.num_transactions = 400;
  spec.contention_theta = 0.6;
  spec.touched_attr_fraction = 0.5;
  spec.write_fraction = 0.8;
  spec.abort_probability = 0.3;  // lots of rollback work
  spec.seed = 0x0D0;
  const Workload workload(spec);

  print_section("Undo-strategy ablation (abort-heavy workload, LOTEC)");
  Table table({"Strategy", "Wall ms", "Messages", "Bytes", "Committed"});
  for (const auto undo :
       {UndoStrategy::kByteRange, UndoStrategy::kShadowPage}) {
    ExperimentOptions options;
    options.undo = undo;
    const auto start = std::chrono::steady_clock::now();
    const ScenarioResult r =
        run_scenario(workload, ProtocolKind::kLotec, options);
    const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    table.row({to_string(undo),
               fmt_double(static_cast<double>(wall) / 1000.0, 1),
               fmt_u64(r.total.messages), fmt_u64(r.total.bytes),
               fmt_u64(r.committed)});
  }
  table.print();
  std::cout << "\nThe paper's claim holds: messages and bytes are identical "
               "across strategies\n(UNDO is purely local); only local CPU "
               "and memory differ.\n";
  return 0;
}
