// Inter-family lock-cache ablation (extension): sweep site locality — the
// probability that a family runs at the designated hot site instead of a
// uniformly random one — and compare LOTEC with the sticky-lock cache on
// vs off.  The cache converts repeat acquires from the same site into
// zero-message local re-grants, so its win grows with locality; at low
// locality every conflicting acquire costs an extra callback round and the
// ablation shows the break-even.
//
// This bench doubles as a regression gate (nonzero exit on failure):
//   * at high locality (>= 0.9) the cache must cut consistency-maintenance
//     (lock) messages by at least 30%;
//   * with the knob off, message and byte counts must be bit-identical to a
//     default-config run — the extension is inert on the wire when disabled.
#include <iostream>

#include "json_out.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"

using namespace lotec;

namespace {

WorkloadSpec ablation_spec() {
  WorkloadSpec spec = scenarios::medium_high_contention();
  spec.num_transactions = 80;
  return spec;
}

ExperimentOptions base_options(double locality) {
  ExperimentOptions options;
  options.nodes = 8;
  options.max_active_families = 1;
  options.site_locality = locality;
  return options;
}

}  // namespace

int main() {
  const Workload workload(ablation_spec());

  print_section(
      "Lock-cache ablation: LOTEC lock traffic vs site locality (sticky "
      "global locks with callback revocation)");

  bool failed = false;
  bench::BenchJson json("ablation_lockcache");
  Table table({"Locality", "Lock msgs off", "Lock msgs on", "Saved",
               "Regrants", "Callbacks", "Flushes", "Total msgs on/off"});
  for (const double locality : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    ExperimentOptions options = base_options(locality);
    const ScenarioResult off =
        run_scenario(workload, ProtocolKind::kLotec, options);
    options.lock_cache = true;
    const ScenarioResult on =
        run_scenario(workload, ProtocolKind::kLotec, options);

    const double saved =
        1.0 - static_cast<double>(on.counter("net.lock_messages")) /
                  static_cast<double>(off.counter("net.lock_messages"));
    table.row({fmt_double(locality, 2), fmt_u64(off.counter("net.lock_messages")),
               fmt_u64(on.counter("net.lock_messages")), fmt_percent(saved),
               fmt_u64(on.counter("cache.regrants")), fmt_u64(on.counter("cache.callbacks")),
               fmt_u64(on.counter("cache.flushes")),
               fmt_percent(static_cast<double>(on.total.messages) /
                           static_cast<double>(off.total.messages))});
    json.row("locality_" + fmt_double(locality, 2))
        .field("lock_messages_off", off.counter("net.lock_messages"))
        .field("lock_messages_on", on.counter("net.lock_messages"))
        .field("total_messages_off", off.total.messages)
        .field("total_messages_on", on.total.messages)
        .field("bytes_off", off.total.bytes)
        .field("bytes_on", on.total.bytes)
        .field("cache_regrants", on.counter("cache.regrants"))
        .field("cache_callbacks", on.counter("cache.callbacks"))
        .field("cache_flushes", on.counter("cache.flushes"));

    if (on.committed != off.committed || on.aborted != off.aborted) {
      std::cerr << "FAIL: cache changed outcomes at locality " << locality
                << " (committed " << on.committed << " vs " << off.committed
                << ")\n";
      failed = true;
    }
    if (locality >= 0.9 && saved < 0.30) {
      std::cerr << "FAIL: at locality " << locality
                << " the cache saved only " << fmt_percent(saved)
                << " of lock messages (need >= 30%)\n";
      failed = true;
    }
  }
  table.print();

  // Inertness gate: a run with the knob explicitly off must match a
  // default-config run message for message.
  {
    ExperimentOptions defaults = base_options(0.5);
    defaults.record_trace = true;
    ExperimentOptions knob_off = defaults;
    knob_off.lock_cache = false;
    knob_off.lock_cache_capacity = 0;
    const ScenarioResult a =
        run_scenario(workload, ProtocolKind::kLotec, defaults);
    const ScenarioResult b =
        run_scenario(workload, ProtocolKind::kLotec, knob_off);
    if (a.trace != b.trace || a.total.messages != b.total.messages ||
        a.total.bytes != b.total.bytes) {
      std::cerr << "FAIL: disabled lock_cache is not inert on the wire ("
                << a.total.messages << "/" << a.total.bytes << " msgs/B vs "
                << b.total.messages << "/" << b.total.bytes << ")\n";
      failed = true;
    } else {
      std::cout << "\ndisabled-knob check: " << a.total.messages
                << " messages, " << a.total.bytes
                << " bytes — bit-identical to the default config\n";
    }
  }

  json.write();
  if (failed) return 1;
  std::cout << "\nExpectation: savings grow with locality — repeat acquires "
               "at the caching site\nare free, while foreign acquires pay "
               "one extra callback round per handoff.\n";
  return 0;
}
