// Fault-engine ablation.
//
// Part 1 — zero overhead when disabled: the Transport consults the fault
// hooks on every message, so the ablation runs the same workload (a) with
// no engine and (b) with the engine installed but every fault off
// (install_hooks = true), and asserts the traffic is byte-identical —
// message for message, via the recorded trace.  The disabled engine must be
// invisible on the wire.
//
// Part 2 — seeded chaos: the acceptance scenario (crash + restart of two
// sites mid-workload with background message drop) under every protocol,
// reporting what the recovery machinery did: retries, reclaimed leases,
// rebuilt directory entries, restored pages — and that two same-seed runs
// produce identical traffic.
#include <iostream>

#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"

using namespace lotec;

namespace {

constexpr std::uint64_t kChaosSeed = 11;

bool check_zero_overhead(const Workload& workload) {
  print_section("Disabled-engine overhead (must be zero)");
  Table table({"Protocol", "Messages (off)", "Messages (hooked)",
               "Bytes (off)", "Bytes (hooked)", "Trace"});
  bool ok = true;
  for (const ProtocolKind p :
       {ProtocolKind::kCotec, ProtocolKind::kOtec, ProtocolKind::kLotec,
        ProtocolKind::kRc}) {
    ExperimentOptions off;
    off.record_trace = true;
    ExperimentOptions hooked = off;
    hooked.fault.install_hooks = true;  // full pipeline, every fault off

    const ScenarioResult a = run_scenario(workload, p, off);
    const ScenarioResult b = run_scenario(workload, p, hooked);
    const bool identical = a.trace == b.trace &&
                           a.total.messages == b.total.messages &&
                           a.total.bytes == b.total.bytes;
    ok = ok && identical;
    table.row({std::string(to_string(p)), fmt_u64(a.total.messages),
               fmt_u64(b.total.messages), fmt_u64(a.total.bytes),
               fmt_u64(b.total.bytes),
               identical ? "identical" : "MISMATCH"});
  }
  table.print();
  return ok;
}

ScenarioResult run_chaos(const Workload& workload, ProtocolKind p) {
  ExperimentOptions opts;
  opts.record_trace = true;
  opts.fault = fault_presets::chaos(NodeId(0), NodeId(1), kChaosSeed);
  return run_scenario(workload, p, opts);
}

bool run_chaos_suite(const Workload& workload) {
  print_section("Seeded chaos (crash+restart x2, 1% message drop)");
  Table table({"Protocol", "Committed", "Aborted", "Fault retries",
               "Crashes", "Leases reclaimed", "GDO rebuilt",
               "Pages restored", "Dropped"});
  bool deterministic = true;
  for (const ProtocolKind p :
       {ProtocolKind::kCotec, ProtocolKind::kOtec, ProtocolKind::kLotec,
        ProtocolKind::kRc}) {
    const ScenarioResult r = run_chaos(workload, p);
    const ScenarioResult again = run_chaos(workload, p);
    deterministic = deterministic && r.trace == again.trace &&
                    r.committed == again.committed;
    const FaultStats& fs = r.fault_stats;
    table.row({std::string(to_string(p)), fmt_u64(r.committed),
               fmt_u64(r.aborted), fmt_u64(r.counter("txn.fault_retries")),
               fmt_u64(fs.crashes), fmt_u64(fs.locks_reclaimed),
               fmt_u64(fs.gdo_entries_rebuilt), fmt_u64(fs.pages_restored),
               fmt_u64(fs.dropped)});
  }
  table.print();
  std::cout << "Same-seed reproducibility: "
            << (deterministic ? "byte-identical" : "MISMATCH") << "\n";
  return deterministic;
}

}  // namespace

int main() {
  const Workload workload(scenarios::medium_high_contention());

  const bool zero_overhead = check_zero_overhead(workload);
  const bool deterministic = run_chaos_suite(workload);

  std::cout << "\nExpectation: with the engine installed but idle the wire "
               "traffic is byte-identical\nto a run without it (the hooks "
               "cost one pointer comparison per message), and two\nchaos "
               "runs with the same seed replay the same fault and message "
               "trace bit for bit.\n";
  if (!zero_overhead || !deterministic) {
    std::cerr << "ablation_faults: FAILED ("
              << (!zero_overhead ? "overhead " : "")
              << (!deterministic ? "nondeterminism" : "") << ")\n";
    return 1;
  }
  return 0;
}
