// Micro-benchmarks (google-benchmark) of the runtime's hot operations:
// local vs global lock acquisition, the full acquire/release protocol
// cycle, page transfer, undo capture under both strategies (Section 4.1:
// "local UNDO logs or shadow pages"), GDO lookup and PageSet algebra, and
// the hot-path containers (FlatMap vs std::unordered_map, Arena vs heap).
#include <benchmark/benchmark.h>

#include <unordered_map>

#include "common/arena.hpp"
#include "common/flat_map.hpp"
#include "gdo/gdo_service.hpp"
#include "page/undo_log.hpp"
#include "ring/hash_ring.hpp"
#include "runtime/cluster.hpp"

namespace lotec {
namespace {

ClusterConfig bench_config(ProtocolKind protocol,
                           UndoStrategy undo = UndoStrategy::kByteRange) {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.protocol = protocol;
  cfg.page_size = 4096;
  cfg.undo = undo;
  cfg.seed = 99;
  return cfg;
}

ClassBuilder bench_class(std::uint32_t page_size) {
  ClassBuilder b("Bench", page_size);
  for (int a = 0; a < 16; ++a)
    b.attribute("a" + std::to_string(a), page_size / 4);
  b.method("touch", {"a0"}, {"a0"}, [](MethodContext& ctx) {
    ctx.set<std::int64_t>("a0", ctx.get<std::int64_t>("a0") + 1);
  });
  b.method("wide", {"a0", "a4", "a8", "a12"}, {"a0", "a4", "a8", "a12"},
           [](MethodContext& ctx) {
             for (const char* a : {"a0", "a4", "a8", "a12"})
               ctx.set<std::int64_t>(a, ctx.get<std::int64_t>(a) + 1);
           });
  return b;
}

/// Full root transaction cycle: lock acquire (remote GDO), page transfer,
/// method execution, release.  The alternating node forces the transfer.
void BM_RootTxnCycle(benchmark::State& state) {
  const auto protocol = static_cast<ProtocolKind>(state.range(0));
  Cluster cluster(bench_config(protocol));
  const ClassId cls = cluster.define_class(bench_class(4096));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  int i = 0;
  for (auto _ : state) {
    const TxnResult r =
        cluster.run_root(obj, "touch", NodeId(1 + (i++ % 3)));
    if (!r.committed) state.SkipWithError("txn aborted");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RootTxnCycle)
    ->Arg(static_cast<int>(ProtocolKind::kCotec))
    ->Arg(static_cast<int>(ProtocolKind::kOtec))
    ->Arg(static_cast<int>(ProtocolKind::kLotec))
    ->Arg(static_cast<int>(ProtocolKind::kRc));

/// Same-node repeat: after the first acquisition everything is local.
void BM_RootTxnCycleLocal(benchmark::State& state) {
  Cluster cluster(bench_config(ProtocolKind::kLotec));
  const ClassId cls = cluster.define_class(bench_class(4096));
  const ObjectId obj = cluster.create_object(cls, NodeId(0));
  for (auto _ : state) {
    const TxnResult r = cluster.run_root(obj, "touch", NodeId(0));
    if (!r.committed) state.SkipWithError("txn aborted");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RootTxnCycleLocal);

/// Raw GDO acquire/release round trip (no pages, no method execution).
void BM_GdoAcquireRelease(benchmark::State& state) {
  Transport transport(4);
  GdoService gdo(transport);
  gdo.register_object(ObjectId(1), 8, NodeId(0));
  std::uint64_t fam = 1;
  for (auto _ : state) {
    const TxnId txn{FamilyId(fam++), 0};
    benchmark::DoNotOptimize(
        gdo.acquire(ObjectId(1), txn, NodeId(1), LockMode::kWrite));
    ReleaseInfo info;
    info.dirty = PageSet(8);
    info.dirty.insert(PageIndex(0));
    benchmark::DoNotOptimize(
        gdo.release_family(ObjectId(1), txn.family, NodeId(1), &info));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GdoAcquireRelease);

/// GDO page-map lookup.
void BM_GdoLookup(benchmark::State& state) {
  Transport transport(4);
  GdoService gdo(transport);
  gdo.register_object(ObjectId(1), static_cast<std::size_t>(state.range(0)),
                      NodeId(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(gdo.lookup_page_map(ObjectId(1), NodeId(2)));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GdoLookup)->Arg(4)->Arg(32)->Arg(256);

/// Undo capture cost: byte-range log vs shadow pages, narrow vs wide writes.
void BM_UndoCapture(benchmark::State& state) {
  const auto strategy = static_cast<UndoStrategy>(state.range(0));
  const std::size_t write_bytes = static_cast<std::size_t>(state.range(1));
  ObjectImage image(ObjectId(1), 8, 4096);
  image.materialize_all();
  std::vector<std::byte> data(write_bytes);
  for (auto _ : state) {
    UndoLog log(strategy);
    log.before_write(image, 0, write_bytes);
    image.write_bytes(0, data);
    benchmark::DoNotOptimize(log.memory_bytes());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(to_string(strategy)) + "/" +
                 std::to_string(write_bytes) + "B");
}
BENCHMARK(BM_UndoCapture)
    ->Args({static_cast<int>(UndoStrategy::kByteRange), 64})
    ->Args({static_cast<int>(UndoStrategy::kShadowPage), 64})
    ->Args({static_cast<int>(UndoStrategy::kByteRange), 8192})
    ->Args({static_cast<int>(UndoStrategy::kShadowPage), 8192});

/// Undo rollback (abort) cost.
void BM_UndoRollback(benchmark::State& state) {
  const auto strategy = static_cast<UndoStrategy>(state.range(0));
  ObjectImage image(ObjectId(1), 8, 4096);
  image.materialize_all();
  std::vector<std::byte> data(256);
  for (auto _ : state) {
    UndoLog log(strategy);
    for (int i = 0; i < 16; ++i) {
      log.before_write(image, static_cast<std::uint64_t>(i) * 512, 256);
      image.write_bytes(static_cast<std::uint64_t>(i) * 512, data);
    }
    log.undo([&](ObjectId) -> ObjectImage& { return image; });
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(to_string(strategy));
}
BENCHMARK(BM_UndoRollback)
    ->Arg(static_cast<int>(UndoStrategy::kByteRange))
    ->Arg(static_cast<int>(UndoStrategy::kShadowPage));

/// PageSet algebra on various universe sizes.
void BM_PageSetOps(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  PageSet a(n), b(n);
  for (std::size_t i = 0; i < n; i += 2) a.insert(PageIndex(static_cast<std::uint32_t>(i)));
  for (std::size_t i = 0; i < n; i += 3) b.insert(PageIndex(static_cast<std::uint32_t>(i)));
  for (auto _ : state) {
    PageSet c = (a & b) | (a - b);
    benchmark::DoNotOptimize(c.count());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageSetOps)->Arg(8)->Arg(64)->Arg(1024);

/// Hot-table lookup: FlatMap (open addressing, the runtime's per-node
/// object/pin tables) vs std::unordered_map on the same ObjectId keys.
/// The access pattern mirrors meta_of(): uniform hits over a table of
/// state.range(0) live objects.
template <typename Map>
void table_lookup(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Map map;
  for (std::size_t i = 0; i < n; ++i)
    map[ObjectId(static_cast<std::uint32_t>(i * 7 + 3))] = i;
  std::uint32_t probe = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(ObjectId(probe)));
    probe += 7;
    if (probe >= 7 * n + 3) probe = 3;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FlatMapLookup(benchmark::State& state) {
  table_lookup<FlatMap<ObjectId, std::uint64_t>>(state);
}
BENCHMARK(BM_FlatMapLookup)->Arg(16)->Arg(256)->Arg(4096);

void BM_UnorderedMapLookup(benchmark::State& state) {
  table_lookup<std::unordered_map<ObjectId, std::uint64_t>>(state);
}
BENCHMARK(BM_UnorderedMapLookup)->Arg(16)->Arg(256)->Arg(4096);

/// Directory placement: consistent-hash ring owner lookup (binary search
/// over member tokens, PROTOCOL.md §15) vs the static map's hash-mod
/// placement (what home_of computes).  Arg = cluster size; the ring runs
/// the production 16-tokens-per-member geometry, so the search covers
/// 16*Arg tokens.  The delta is the per-request price of elasticity when
/// the ring knob is on.
void BM_RingLookup(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  HashRing ring(/*seed=*/99, /*virtual_nodes=*/16);
  for (std::size_t i = 0; i < n; ++i)
    ring.add_node(NodeId(static_cast<std::uint32_t>(i)));
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.owner_of(ObjectId(id)));
    id += 7;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingLookup)->Arg(4)->Arg(16)->Arg(64);

void BM_StaticHashLookup(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  // home_of's placement: one 64-bit mix, one modulo.
  const auto mix64 = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  std::uint64_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(NodeId(static_cast<std::uint32_t>(
        mix64(id) % n)));
    id += 7;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StaticHashLookup)->Arg(4)->Arg(16)->Arg(64);

/// Attempt-scoped scratch allocation: the undo log's byte-record pattern —
/// a burst of small variable-size buffers that all die together.  Arena
/// reuses its blocks across iterations (reset keeps capacity); the heap
/// variant pays a malloc/free pair per record.
void BM_ArenaAlloc(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  Arena arena;
  for (auto _ : state) {
    for (int i = 0; i < records; ++i) {
      std::byte* p =
          arena.allocate_array<std::byte>(16 + (i % 32) * 16);
      benchmark::DoNotOptimize(p);
    }
    arena.reset();
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_ArenaAlloc)->Arg(16)->Arg(256);

void BM_HeapAlloc(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  std::vector<std::unique_ptr<std::byte[]>> live;
  live.reserve(static_cast<std::size_t>(records));
  for (auto _ : state) {
    for (int i = 0; i < records; ++i) {
      live.push_back(std::make_unique<std::byte[]>(
          static_cast<std::size_t>(16 + (i % 32) * 16)));
      benchmark::DoNotOptimize(live.back().get());
    }
    live.clear();
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_HeapAlloc)->Arg(16)->Arg(256);

}  // namespace
}  // namespace lotec

BENCHMARK_MAIN();
