// Section 5.1 (Locking Overhead): "The LOTEC protocol, as described, has a
// natural preference for coarse-grained concurrency since the larger
// objects are, the fewer lock operations are necessary."
//
// Design: a shared 240-page "document" is partitioned into objects of
// varying granularity (12x20 pages ... 240x1 page).  Every transaction
// edits a randomly placed 20-page contiguous span — the same data footprint
// at every granularity — by invoking an edit method on each object the span
// overlaps.  Spans are walked in ascending object order, so cross-family
// lock orders are consistent and the comparison is not polluted by deadlock
// retries.  As objects shrink, the same edit needs more lock operations and
// more GDO messages: the aggregation argument of Section 5.1.
#include <iostream>
#include <memory>

#include "json_out.hpp"
#include "runtime/cluster.hpp"
#include "sim/report.hpp"

using namespace lotec;

namespace {

constexpr std::size_t kDocumentPages = 240;
constexpr std::size_t kSpanPages = 20;
constexpr int kTransactions = 300;

struct EditPlan {
  std::vector<ObjectId> span_objects;
};

struct Measured {
  std::uint64_t gdo_lock_msgs = 0;
  std::uint64_t local_grants = 0;
  std::uint64_t control_bytes = 0;
  std::uint64_t page_bytes = 0;
  std::uint64_t total_bytes = 0;
};

Measured run(std::size_t pages_per_object) {
  ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.page_size = 4096;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.seed = 0x51AC;
  Cluster cluster(cfg);

  // One class: `edit` touches the whole object (the span covers it fully).
  ClassBuilder chunk("Chunk" + std::to_string(pages_per_object),
                     cfg.page_size);
  std::vector<std::string> attrs;
  for (std::size_t p = 0; p < pages_per_object; ++p) {
    attrs.push_back("p" + std::to_string(p));
    chunk.attribute(attrs.back(), cfg.page_size);
  }
  chunk.method("edit", attrs, attrs, [attrs](MethodContext& ctx) {
    for (const std::string& a : attrs)
      ctx.set<std::int64_t>(a, ctx.get<std::int64_t>(a) + 1);
  });
  const ClassId chunk_cls = cluster.define_class(chunk);

  std::vector<ObjectId> chunks;
  for (std::size_t i = 0; i < kDocumentPages / pages_per_object; ++i)
    chunks.push_back(cluster.create_object(chunk_cls));

  // Per-node editor objects drive the nested edits.
  const ClassId editor_cls = cluster.define_class(
      ClassBuilder("Editor", cfg.page_size)
          .attribute("edits", 8)
          .method("edit_span", {"edits"}, {"edits"},
                  [](MethodContext& ctx) {
                    const auto* plan =
                        static_cast<const EditPlan*>(ctx.user_data());
                    for (const ObjectId obj : plan->span_objects)
                      if (!ctx.invoke(obj, "edit")) ctx.abort();
                    ctx.set<std::int64_t>(
                        "edits", ctx.get<std::int64_t>("edits") + 1);
                  }));
  std::vector<ObjectId> editors;
  for (std::size_t n = 0; n < cfg.nodes; ++n)
    editors.push_back(cluster.create_object(
        editor_cls, NodeId(static_cast<std::uint32_t>(n))));

  Rng rng(99);
  std::vector<RootRequest> requests;
  for (int t = 0; t < kTransactions; ++t) {
    const std::size_t start = rng.below(kDocumentPages - kSpanPages + 1);
    auto plan = std::make_shared<EditPlan>();
    const std::size_t first = start / pages_per_object;
    const std::size_t last = (start + kSpanPages - 1) / pages_per_object;
    for (std::size_t i = first; i <= last; ++i)
      plan->span_objects.push_back(chunks[i]);  // ascending: no deadlocks

    RootRequest req;
    req.object = editors[static_cast<std::size_t>(t) % editors.size()];
    req.method = cluster.method_id(req.object, "edit_span");
    req.node = NodeId(static_cast<std::uint32_t>(t) % cfg.nodes);
    req.user_data = std::move(plan);
    requests.push_back(std::move(req));
  }
  const auto results = cluster.execute(std::move(requests));
  for (const auto& r : results)
    if (!r.committed) throw Error("locking_overhead: transaction failed");

  Measured m;
  const NetworkStats& stats = cluster.observe().stats();
  for (const auto kind :
       {MessageKind::kLockAcquireRequest, MessageKind::kLockAcquireGrant,
        MessageKind::kLockAcquireQueued, MessageKind::kLockGrantWakeup,
        MessageKind::kLockReleaseRequest})
    m.gdo_lock_msgs += stats.by_kind(kind).messages;
  m.local_grants = stats.local_lock_ops();
  m.total_bytes = stats.total().bytes;
  for (const auto kind :
       {MessageKind::kPageFetchReply, MessageKind::kDemandFetchReply,
        MessageKind::kUpdatePush})
    m.page_bytes += stats.by_kind(kind).bytes;
  m.control_bytes = m.total_bytes - m.page_bytes;
  return m;
}

}  // namespace

int main() {
  print_section(
      "Section 5.1: locking overhead vs object granularity (fixed 20-page "
      "edits over a 240-page document, LOTEC)");
  Table table({"Granularity", "GDO lock msgs", "Lock msgs/txn",
               "Local grants", "Control bytes", "Page bytes",
               "Control share"});
  bench::BenchJson json("locking_overhead");
  for (const std::size_t pages : {20, 10, 5, 2, 1}) {
    const Measured m = run(pages);
    json.row(fmt_u64(240 / pages) + "x" + fmt_u64(pages) + "p")
        .field("gdo_lock_msgs", m.gdo_lock_msgs)
        .field("local_grants", m.local_grants)
        .field("control_bytes", m.control_bytes)
        .field("page_bytes", m.page_bytes)
        .field("total_bytes", m.total_bytes);
    table.row({fmt_u64(240 / pages) + " objects x " + fmt_u64(pages) + "p",
               fmt_u64(m.gdo_lock_msgs),
               fmt_double(static_cast<double>(m.gdo_lock_msgs) /
                              kTransactions,
                          1),
               fmt_u64(m.local_grants), fmt_u64(m.control_bytes),
               fmt_u64(m.page_bytes),
               fmt_percent(static_cast<double>(m.control_bytes) /
                           static_cast<double>(m.total_bytes))});
  }
  table.print();
  json.write();
  std::cout
      << "\nPaper's point: the same edit footprint costs more lock\n"
         "operations as objects get finer — the reason heavily object-based\n"
         "environments aggregate related small objects, and the motivation\n"
         "for Section 5.1's asynchronous locking and pre-acquisition.\n";
  return 0;
}
