// Schedule-checker zero-overhead ablation: the Transport/GDO check-sink
// seam must be free when the checker is not running.  A passive CheckSink
// (every hook a no-op, exactly what a disabled checker costs the hot path
// plus one virtual call) is installed on the fig2 scenario and the run must
// produce byte-identical message traffic to the same run with the sink
// slot empty — the probe observes, it never sends or perturbs.  Wall-clock
// is gated too: min-of-N with the passive sink must stay within 2% of
// min-of-N without it.  Exits non-zero on any divergence, so CI can gate
// on it (bit-identity twin of ablation_obs, for the src/check seam).
#include <chrono>
#include <iostream>
#include <vector>

#include "check/events.hpp"
#include "json_out.hpp"
#include "runtime/cluster.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"
#include "workload/generator.hpp"

using namespace lotec;

namespace {

/// What one run of the scenario produced (check_sink is the only knob that
/// varies between the paired runs).
struct RunOutcome {
  std::vector<TraceEvent> trace;
  TrafficCounter total;
  std::size_t committed = 0;
  double seconds = 0;
};

RunOutcome run_once(const Workload& workload, CheckSink* sink) {
  ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.check_sink = sink;
  Cluster cluster(cfg);
  cluster.stats().enable_trace(std::size_t{1} << 22);
  std::vector<RootRequest> requests = workload.instantiate(cluster);

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<TxnResult> results = cluster.execute(std::move(requests));
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.trace = cluster.stats().trace();
  out.total = cluster.stats().total();
  for (const TxnResult& r : results) out.committed += r.committed ? 1 : 0;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

}  // namespace

int main() {
  const Workload workload(scenarios::medium_high_contention());
  // All hooks inherit the CheckSink no-op defaults: the dispatch cost of a
  // checker that is attached but recording nothing.
  CheckSink passive;

  print_section(
      "Checker-seam ablation: passive sink vs empty slot (fig2, LOTEC)");

  // Alternate the variants and keep the fastest of each: min-of-N is the
  // standard answer to scheduler noise on a shared CI box.
  constexpr int kRuns = 7;
  RunOutcome off, on;
  double best_off = 0, best_on = 0;
  for (int i = 0; i < kRuns; ++i) {
    RunOutcome a = run_once(workload, nullptr);
    RunOutcome b = run_once(workload, &passive);
    if (i == 0 || a.seconds < best_off) best_off = a.seconds;
    if (i == 0 || b.seconds < best_on) best_on = b.seconds;
    if (i == 0) {
      off = std::move(a);
      on = std::move(b);
    }
  }
  const double overhead =
      best_off > 0 ? (best_on - best_off) / best_off : 0.0;

  Table table({"Variant", "Messages", "Bytes", "Committed", "Best ms"});
  table.row({"sink empty", fmt_u64(off.total.messages),
             fmt_u64(off.total.bytes), fmt_u64(off.committed),
             fmt_double(best_off * 1e3, 2)});
  table.row({"passive sink", fmt_u64(on.total.messages),
             fmt_u64(on.total.bytes), fmt_u64(on.committed),
             fmt_double(best_on * 1e3, 2)});
  table.print();

  bool ok = true;
  if (off.trace != on.trace) {
    std::cerr << "FAIL: passive check sink changed the message trace ("
              << off.trace.size() << " vs " << on.trace.size()
              << " events)\n";
    ok = false;
  }
  if (off.total.messages != on.total.messages ||
      off.total.bytes != on.total.bytes) {
    std::cerr << "FAIL: passive check sink changed traffic totals\n";
    ok = false;
  }
  if (overhead > 0.02) {
    std::cerr << "FAIL: passive sink costs " << overhead * 100.0
              << "% wall-clock (budget 2%)\n";
    ok = false;
  }

  bench::BenchJson json("check_overhead");
  json.row("LOTEC")
      .field("messages", off.total.messages)
      .field("bytes", off.total.bytes)
      .field("committed", std::uint64_t(off.committed))
      .field("trace_identical", std::uint64_t(off.trace == on.trace ? 1 : 0))
      .field("message_delta",
             std::uint64_t(on.total.messages - off.total.messages));
  json.write();

  std::cout << "\nbit-identity: "
            << (off.trace == on.trace ? "byte-identical traffic"
                                      : "MISMATCH")
            << "; wall-clock overhead " << overhead * 100.0 << "% (budget 2%)"
            << '\n';
  return ok ? 0 : 1;
}
