// Shared harness for the Figure 6-8 experiments: total message time to
// maintain the consistency of an arbitrary shared object, for a given
// network bit rate across the paper's per-message software-cost sweep
// (100us, 20us, 5us, 1us, 500ns).
//
// The traffic trace comes from the Figure 3 scenario (large objects, high
// contention — where the protocols differ most); the "arbitrary shared
// object" is the object with the largest COTEC traffic (the paper plots a
// single representative object).  Time for a protocol is
//     messages * software_cost + bytes * 8 / bit_rate
// summed over every consistency/locking message attributed to the object.
#pragma once

#include <iostream>
#include <string>

#include "json_out.hpp"
#include "net/cost_model.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"

namespace lotec::bench {

inline void run_time_figure(const std::string& title, double bits_per_second,
                            const std::string& json_name = {}) {
  const Workload workload(scenarios::large_high_contention());
  const auto results = run_protocol_suite(
      workload,
      {ProtocolKind::kCotec, ProtocolKind::kOtec, ProtocolKind::kLotec});
  const ScenarioResult& cotec = results[0];
  const ScenarioResult& otec = results[1];
  const ScenarioResult& lotec = results[2];

  // Representative object: largest COTEC traffic.
  ObjectId subject = cotec.object_ids.front();
  for (const ObjectId id : cotec.object_ids)
    if (cotec.object_traffic(id).bytes > cotec.object_traffic(subject).bytes)
      subject = id;

  print_section(title);
  std::cout << "subject object O" << subject.value() << " traffic:  "
            << "COTEC " << cotec.object_traffic(subject).messages << " msgs/"
            << cotec.object_traffic(subject).bytes << " B,  OTEC "
            << otec.object_traffic(subject).messages << " msgs/"
            << otec.object_traffic(subject).bytes << " B,  LOTEC "
            << lotec.object_traffic(subject).messages << " msgs/"
            << lotec.object_traffic(subject).bytes << " B\n\n";

  Table table({"Software cost", "COTEC us", "OTEC us", "LOTEC us",
               "LOTEC wins?"});
  for (const double sw_us : NetworkCostModel::software_cost_sweep_us()) {
    const NetworkCostModel model(bits_per_second, sw_us);
    const auto time_of = [&](const ScenarioResult& r) {
      const TrafficCounter c = r.object_traffic(subject);
      return model.total_time_us(c.messages, c.bytes);
    };
    const double tc = time_of(cotec);
    const double to = time_of(otec);
    const double tl = time_of(lotec);
    const std::string label =
        sw_us >= 1.0 ? fmt_double(sw_us, 0) + "us"
                     : fmt_double(sw_us * 1000.0, 0) + "ns";
    table.row({label, fmt_double(tc, 0), fmt_double(to, 0),
               fmt_double(tl, 0),
               (tl <= to && tl <= tc) ? "yes" : "no"});
  }
  table.print();

  std::cout << "\nCSV:\nsoftware_cost_us,cotec_us,otec_us,lotec_us\n";
  for (const double sw_us : NetworkCostModel::software_cost_sweep_us()) {
    const NetworkCostModel model(bits_per_second, sw_us);
    const auto time_of = [&](const ScenarioResult& r) {
      const TrafficCounter c = r.object_traffic(subject);
      return model.total_time_us(c.messages, c.bytes);
    };
    std::cout << sw_us << ',' << fmt_double(time_of(cotec), 1) << ','
              << fmt_double(time_of(otec), 1) << ','
              << fmt_double(time_of(lotec), 1) << '\n';
  }

  if (!json_name.empty()) {
    BenchJson json(json_name);
    for (const double sw_us : NetworkCostModel::software_cost_sweep_us()) {
      const NetworkCostModel model(bits_per_second, sw_us);
      const auto time_of = [&](const ScenarioResult& r) {
        const TrafficCounter c = r.object_traffic(subject);
        return model.total_time_us(c.messages, c.bytes);
      };
      json.row("sw_" + fmt_double(sw_us, 1) + "us")
          .field("cotec_us", time_of(cotec))
          .field("otec_us", time_of(otec))
          .field("lotec_us", time_of(lotec));
    }
    json.write();
  }
}

}  // namespace lotec::bench
