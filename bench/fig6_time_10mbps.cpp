// Reproduces Figure 6: total message time to maintain consistency of a
// shared object on a 10 Mbps network, across software startup costs.
#include "time_figure.hpp"

int main() {
  lotec::bench::run_time_figure("Figure 6: Example Transfer Time at 10Mbps",
                                lotec::NetworkCostModel::kEthernet10Mbps,
                                "fig6_time_10mbps");
  return 0;
}
