// Reproduces Figure 4: bytes transferred per shared object, medium objects
// under moderate contention (100 objects; a sample is printed, as in the
// paper's x-axis).
#include "bytes_figure.hpp"

int main() {
  lotec::bench::BytesFigureOptions options;
  options.sample_step = 7;
  options.json_name = "fig4_medium_moderate";
  lotec::bench::run_bytes_figure(
      "Figure 4: Medium Sized Objects with Moderate Contention",
      lotec::scenarios::medium_moderate_contention(), options);
  return 0;
}
