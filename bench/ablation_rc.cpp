// Section 6 extension: "the implementation of a simulated version of
// Release Consistency for nested objects ... will allow us to compare the
// results of using that protocol to the results offered by COTEC, OTEC and
// LOTEC."
//
// RC eagerly pushes committed updates to every caching site at root
// release; entry-consistency protocols move data lazily to the one site
// known to need it.  We run the high-contention scenarios under all four
// protocols, with and without a multicast-capable network (a second
// Section 6 extension: multicast collapses RC's N unicast pushes into one).
#include <iostream>

#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "sim/scenarios.hpp"

using namespace lotec;

namespace {

void run(const std::string& name, const WorkloadSpec& spec) {
  const Workload workload(spec);
  const std::vector<ProtocolKind> protocols = {
      ProtocolKind::kCotec, ProtocolKind::kOtec, ProtocolKind::kLotec,
      ProtocolKind::kRc};

  print_section(name + ": RC vs entry-consistency protocols");
  Table table({"Protocol", "Multicast", "Messages", "Bytes", "vs LOTEC bytes"});
  ExperimentOptions unicast;
  ExperimentOptions multicast;
  multicast.multicast = true;

  const auto uni = run_protocol_suite(workload, protocols, unicast);
  const double lotec_bytes = static_cast<double>(uni[2].total.bytes);
  for (const auto& r : uni)
    table.row({std::string(to_string(r.protocol)), "no",
               fmt_u64(r.total.messages), fmt_u64(r.total.bytes),
               fmt_percent(static_cast<double>(r.total.bytes) / lotec_bytes)});
  // Multicast only changes push traffic, i.e. RC.
  const ScenarioResult rc_mc =
      run_scenario(workload, ProtocolKind::kRc, multicast);
  table.row({"RC", "yes", fmt_u64(rc_mc.total.messages),
             fmt_u64(rc_mc.total.bytes),
             fmt_percent(static_cast<double>(rc_mc.total.bytes) /
                         lotec_bytes)});
  table.print();
}

}  // namespace

int main() {
  run("Medium objects, high contention", scenarios::medium_high_contention());
  run("Large objects, high contention", scenarios::large_high_contention());
  std::cout << "\nExpectation (paper, Section 4.1): eager RC pushes updates "
               "to all caching sites at\nrelease time, so it moves more data "
               "than entry consistency, which transfers\nonly to the "
               "acquiring site; multicast recovers some of RC's message "
               "count.\n";
  return 0;
}
