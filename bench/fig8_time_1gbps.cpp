// Reproduces Figure 8: total message time at 1 Gbps.
#include "time_figure.hpp"

int main() {
  lotec::bench::run_time_figure("Figure 8: Example Transfer Time at 1Gbps",
                                lotec::NetworkCostModel::kEthernet1Gbps,
                                "fig8_time_1gbps");
  return 0;
}
