// GdoService: the partitioned, replicated Global Directory of Objects.
//
// Implements the *global* halves of the paper's lock protocol:
//   Algorithm 4.2 (GlobalLockAcquisition)  -> acquire()
//   Algorithm 4.4 (GlobalLockRelease)      -> release_family() / wakeups
//
// Entries are hash-partitioned over the nodes ("to ensure efficiency and
// reliability, the GDO design is partitioned and replicated", Section 4.1);
// with replication enabled every mutation is synchronously copied to a
// mirror node and requests fail over to the mirror when the home is down.
//
// The GDO operates at *family* granularity: a family holds an object's lock
// from the first grant to one of its member transactions until its root
// releases it.  Intra-family lock disposition (holding vs retention,
// inheritance at pre-commit) is local to the family's execution site and
// lives in the txn library.
//
// All cross-node traffic generated here is charged through the Transport.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "gdo/gdo_entry.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/stats_macros.hpp"
#include "ring/hash_ring.hpp"

namespace lotec {

class CheckSink;

/// Elastic-directory knobs (PROTOCOL.md §15).  Off by default: the static
/// partition map and single synchronous mirror are used and the wire
/// traffic stays bit-identical to a build without the subsystem.
struct RingConfig {
  /// Place directory entries with a consistent-hash ring instead of the
  /// static `mix(id) % nodes` map, and migrate shards online when the
  /// membership changes.
  bool enabled = false;
  /// Virtual nodes (tokens) minted per member; more tokens = tighter
  /// balance, linearly larger lookup table.
  std::size_t virtual_nodes = 16;
  /// Mirror-group size k: entry mutations replicate to the k ring
  /// successors and commit on ceil((k+1)/2) acks.  1 reproduces the
  /// classic single-mirror behaviour (quorum of 1).
  std::size_t mirror_group = 1;
  /// Token placement seed (independent of the cluster seed so placement
  /// can be varied without perturbing workloads).
  std::uint64_t seed = 0x10 + 0xEC;
  /// Entries migrated per background pump step (each family attempt pumps
  /// once); on-demand pulls are not budgeted.
  std::size_t migration_batch = 2;
};

struct GdoConfig {
  /// Mirror every entry on a second node and fail over to it.
  bool replicate = false;
  /// Grant a maximal batch of read waiters when the lock frees (classic
  /// lock-manager behaviour; the paper's algorithm pops one family list).
  bool grant_read_batches = true;
  /// If true, a read request is queued behind waiting writers even when the
  /// lock is currently read-held (writer fairness).  The paper's Algorithm
  /// 4.2 grants such reads immediately; that is the default.
  bool fair_readers = false;
  /// Acknowledge global release messages (adds one small message per
  /// release; off by default — the paper piggybacks dirty info on a one-way
  /// release message).
  bool release_acks = false;
  /// Elastic directory: consistent-hash placement, online shard migration,
  /// quorum mirror groups.
  RingConfig ring;
};

enum class AcquireStatus : std::uint8_t { kGranted, kQueued };

/// Result of a (possibly deferred) grant, delivered either as the reply to
/// acquire() or as a wakeup after a release.
struct Grant {
  FamilyId family{};
  NodeId node{};
  TxnId txn{};
  LockMode mode = LockMode::kRead;
  bool upgrade = false;
  /// Copy of the object's page map sent to the acquiring site ("a site map
  /// containing the locations of the most up-to-date object pages may be
  /// sent during global lock acquisition").
  PageMap page_map;
  ObjectId object{};
  /// Causal context of the directory-side work that produced the grant
  /// (stamped by grant_waiters while tracing; zero otherwise).  Trailing
  /// member: the seven fields above stay positionally brace-initializable.
  TraceContext trace{};
};

struct AcquireResult {
  AcquireStatus status = AcquireStatus::kQueued;
  /// Valid when granted.
  PageMap page_map;
  bool upgrade = false;
};

/// What a releasing site reports about one object (piggybacked on the
/// global release message).
struct ReleaseInfo {
  /// Pages the family updated; the GDO stamps them with a fresh version and
  /// points the page map at the releasing site (Algorithm 4.4).
  PageSet dirty;
  /// Additional pages current at the releasing site with their (unchanged)
  /// versions.  COTEC/OTEC report these so the directory records the site
  /// as a source of the whole object (their transfer discipline keeps a
  /// holder's copy complete); LOTEC reports only dirty pages, which is what
  /// lets up-to-date pages scatter across sites.
  std::vector<std::pair<PageIndex, Lsn>> current;
  /// Lock-cache flush path only (empty otherwise): explicit per-page
  /// <page, version> records stamped at the site while releases were being
  /// deferred.  The site assigns versions itself during deferral
  /// (max(directory counter, pending max) + 1 per commit), so the directory
  /// must apply the *site's* versions instead of minting a fresh one.
  std::vector<std::pair<PageIndex, Lsn>> stamped;
  /// Highest version the site assigned while deferring (0 = not a deferred
  /// flush); the entry's version counter advances to at least this.
  Lsn advance_to = 0;
  /// Global commit tick the releasing family's stamps were published under
  /// (mv_read extension; allocated once per committing family).  Piggybacks
  /// on the release message like the dirty records — no extra wire bytes.
  std::uint64_t commit_tick = 0;

  [[nodiscard]] std::uint64_t record_count() const noexcept {
    return dirty.count() + current.size() + stamped.size();
  }
};

struct ReleaseResult {
  /// Families whose queued requests were granted by this release; the
  /// runtime delivers these to the respective sites (the GDO has already
  /// sent and charged the wakeup messages).
  std::vector<Grant> wakeups;
  /// Version stamped on the released dirty pages (0 when none).
  Lsn stamped_version = 0;
};

/// One object being released in a batch.
struct ReleaseItem {
  ObjectId object{};
  /// Present on commit (dirty/current report); absent on abort ("no dirty
  /// page info", Algorithm 4.3).
  std::optional<ReleaseInfo> info;
};

/// Result of a batched root release: per-object stamped versions plus all
/// wakeups triggered.
struct BatchReleaseResult {
  std::vector<Grant> wakeups;
  std::unordered_map<ObjectId, Lsn> stamped_versions;
};

/// What a caching site surrenders when its cached lock is called back:
/// the per-page versions it stamped while deferring releases, and the
/// highest version it assigned (the directory's counter catches up to it).
/// Both empty/zero for a clean (read-mode) cache entry.
struct CachedFlush {
  std::vector<std::pair<PageIndex, Lsn>> records;
  Lsn advance_to = 0;
};

// clang-format off
#define LOTEC_GDO_STATS(COUNTER)              \
  COUNTER(reclaimed, "lease.reclaimed")       \
  COUNTER(purged, "lease.purged")             \
  COUNTER(cache_regrants, "cache.regrants")   \
  COUNTER(cache_callbacks, "cache.callbacks") \
  COUNTER(cache_flushes, "cache.flushes")
// clang-format on
LOTEC_DEFINE_STATS_STRUCT(GdoStats, LOTEC_GDO_STATS);

// clang-format off
#define LOTEC_RING_STATS(COUNTER)                      \
  COUNTER(changes, "ring.changes")                     \
  COUNTER(migrations, "ring.migrations")               \
  COUNTER(pulls, "ring.pulls")                         \
  COUNTER(redirects, "ring.redirects")                 \
  COUNTER(quorum_commits, "ring.quorum_commits")       \
  COUNTER(quorum_degrades, "ring.quorum_degrades")
// clang-format on
LOTEC_DEFINE_STATS_STRUCT(RingStats, LOTEC_RING_STATS);

class GdoService {
 public:
  /// `metrics` is the cluster-wide registry the directory's tallies
  /// (cache.*, lease.*) live in; when null (standalone directory tests) the
  /// service owns a private registry so the accessors still work.
  GdoService(Transport& transport, GdoConfig config = {},
             MetricsRegistry* metrics = nullptr);

  /// Install (or clear) the span tracer; callback revocation rounds are
  /// recorded on the directory lane (family 0).  Owned by the caller.
  void set_tracer(SpanTracer* tracer) noexcept { tracer_ = tracer; }

  /// Install (or clear) the schedule checker's event sink.  The directory
  /// reports every page-version *publication* (release stamping, deferred
  /// cache flushes) so the coherence oracle can compare what acquirers read
  /// against what was actually published — independently of what the
  /// releasing runner believes it stamped.  Owned by the caller.
  void set_check_sink(CheckSink* sink) noexcept { check_ = sink; }

  /// Install a delivery hook invoked — under the entry's partition lock —
  /// for every Grant produced by a release or cancellation.  Delivering
  /// inside the lock serializes grant delivery against cancel_waiter, so a
  /// deadlock victim cannot miss a grant that raced with its cancellation.
  /// When set, callers must NOT also act on the Grants returned from
  /// release/cancel calls.
  void set_grant_delivery(std::function<void(const Grant&)> hook) {
    grant_delivery_ = std::move(hook);
  }

  [[nodiscard]] NodeId home_of(ObjectId id) const noexcept;
  [[nodiscard]] NodeId mirror_of(ObjectId id) const noexcept;

  // --- elastic directory (consistent-hash ring; PROTOCOL.md §15) ----------

  [[nodiscard]] bool ring_enabled() const noexcept { return ring_ != nullptr; }

  /// Where `id`'s entry is actually served right now: the migrating shard's
  /// current residency under the ring, or the static home.  Requests route
  /// here; migration moves residency toward the ring owner.
  [[nodiscard]] NodeId resident_of(ObjectId id) const;

  /// Current placement epoch (0 until the first membership change).
  [[nodiscard]] std::uint64_t ring_epoch() const;

  /// Current ring members (ascending node id).  Empty when the ring is off.
  [[nodiscard]] std::vector<NodeId> ring_members() const;

  /// Entries whose residency still trails the ring owner (migration queue).
  [[nodiscard]] std::size_t pending_migrations() const;

  /// Apply a membership change: `joined` admits `node` to the ring, else it
  /// leaves (the node stays up; its shards migrate to the survivors).
  /// Bumps the placement epoch and enqueues the minimal set of entries the
  /// change re-owns.  Returns false (and changes nothing) when the change
  /// is a no-op or would empty the ring.
  bool ring_set_member(NodeId node, bool joined);

  /// Migrate up to `budget` queued entries to their ring owners (charged as
  /// kShardMigrateRequest/Reply pairs; entries whose source or target is
  /// currently unreachable stay queued).  Returns the number moved.
  std::size_t pump_migrations(std::size_t budget);

  /// Drain the migration queue completely (end-of-batch quiescence; every
  /// node is reachable again).  Stops early if no entry can make progress.
  void drain_migrations();

  /// Create the directory entry for a new object whose pages all reside at
  /// `creator` (version 0).
  void register_object(ObjectId id, std::size_t num_pages, NodeId creator);

  /// Global lock acquisition on behalf of transaction `txn` (of family
  /// txn.family) executing at `requester`.  Returns a grant with the page
  /// map, or kQueued (the caller must block until the wakeup).
  /// A request for kWrite by a family currently holding kRead is an
  /// *upgrade*; upgraders queue ahead of ordinary waiters.
  AcquireResult acquire(ObjectId id, const TxnId& txn, NodeId requester,
                        LockMode mode);

  /// Global lock release for one object (Algorithm 4.4).  `info` carries
  /// the piggybacked page report; nullptr on abort.  Grants to waiting
  /// families are performed and returned.
  ReleaseResult release_family(ObjectId id, FamilyId family, NodeId node,
                               const ReleaseInfo* info);

  /// Root-commit/abort release of the family's whole lock set ("lock
  /// release processing ... potentially deals with multiple objects").
  /// Charged as one message per object so per-object byte attribution stays
  /// exact.
  BatchReleaseResult release_batch(FamilyId family, NodeId node,
                                   const std::vector<ReleaseItem>& items);

  /// Remove a family's queued request (deadlock victim / cancelled txn).
  /// May unblock other waiters, which are granted and returned.
  std::vector<Grant> cancel_waiter(ObjectId id, FamilyId family);

  // --- inter-family lock caching (callback-locking extension) -------------

  /// Install the revocation seam: when a conflicting acquire must call back
  /// a site's cached lock, the directory invokes this handler — under the
  /// entry's partition lock, between the (charged) kLockCallback and
  /// kCallbackReply messages — and the site returns its pending flush
  /// records while erasing/downgrading its cache entry for `object`.
  void set_callback_handler(
      std::function<CachedFlush(ObjectId, NodeId, LockMode)> handler) {
    callback_handler_ = std::move(handler);
  }

  /// Try to retain `family`'s released lock at its site instead of
  /// releasing it: the holder converts to a cached-holder marker with a
  /// renewed lease, at zero message cost (the site simply never sends the
  /// release).  Refused (returns false; caller must release normally) when
  /// any family is queued — retention must never starve a waiter — or when
  /// the family does not hold the lock.
  bool retain_release(ObjectId id, FamilyId family, NodeId node);

  /// Zero-message re-activation of a cached lock: convert `node`'s
  /// cached-holder marker back into a live holder for `txn`'s family at the
  /// marker's (covering) mode.  Returns the granted mode, or nullopt when
  /// no usable marker exists (revoked, crashed incarnation, or mode not
  /// covering `wanted`) — the caller falls back to a full acquire().
  std::optional<LockMode> local_regrant(ObjectId id, const TxnId& txn,
                                        NodeId node, LockMode wanted);

  /// Unilateral zero-message discard of `node`'s cached marker (clean
  /// read-mode entries only — dropping an unflushed write cache would lose
  /// committed updates).  Tolerates a missing marker.
  void forget_cached(ObjectId id, NodeId node);

  /// Site-initiated flush of a cached lock (capacity eviction, end-of-batch
  /// drain, or pre-acquire cleanup): charged like a release message, applies
  /// the deferred flush records and drops the marker.  Tolerates a missing
  /// marker (it may have been revoked or reclaimed meanwhile).
  void flush_cached(ObjectId id, NodeId node,
                    const std::vector<std::pair<PageIndex, Lsn>>& records,
                    Lsn advance_to);

  [[nodiscard]] std::uint64_t cache_regrants() const noexcept {
    return stats_.cache_regrants->value();
  }
  [[nodiscard]] std::uint64_t cache_callbacks() const noexcept {
    return stats_.cache_callbacks->value();
  }
  [[nodiscard]] std::uint64_t cache_flushes() const noexcept {
    return stats_.cache_flushes->value();
  }

  /// Read-only page-map lookup (charged as a lookup round trip when remote).
  [[nodiscard]] PageMap lookup_page_map(ObjectId id, NodeId requester);

  // --- commit ticks & snapshot reads (mv_read extension) ------------------

  /// Allocate the global commit tick a committing family publishes its
  /// version stamps under.  Monotone across the cluster; under the
  /// deterministic scheduler the allocating family's release path runs
  /// without preemption, so allocation and publication are atomic with
  /// respect to every other family.
  [[nodiscard]] std::uint64_t allocate_commit_tick() noexcept {
    return commit_tick_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Newest published commit tick — the stamp a starting read-only family
  /// adopts.  Disseminated by piggybacking on existing frames (like the
  /// PR 5 causal header), so reading it costs no messages.
  [[nodiscard]] std::uint64_t current_commit_tick() const noexcept {
    return commit_tick_.load(std::memory_order_acquire);
  }

  /// A snapshot map: the object's page map plus the commit tick it is
  /// current as of — every publication with tick <= `tick` is reflected.
  struct SnapshotMap {
    PageMap map;
    std::uint64_t tick = 0;
  };

  /// Lock-free directory read for a snapshot reader: copy the page map
  /// without touching lock state or queueing behind writers.  Charged as a
  /// kSnapshotMapRequest/Reply round trip when the requester is not the
  /// serving node (free when local, like every src==dst send).
  [[nodiscard]] SnapshotMap snapshot_lookup(ObjectId id, NodeId requester);

  /// Sites caching any part of the object (RC extension push targets).
  [[nodiscard]] std::vector<NodeId> caching_sites(ObjectId id) const;

  /// Note that `node` now holds cached pages of `id` (updated internally on
  /// grants; exposed for the RC push path after an eager update install).
  void note_caching_site(ObjectId id, NodeId node);

  // --- crash recovery (fault engine integration) --------------------------

  /// A node died: drop its partition's cached directory state (entries and
  /// mirror copies) and forget it as a caching site everywhere.  Requests
  /// for objects homed there fail over along the replica chain; the locks
  /// its families held are reclaimed lazily by lease timeout.
  void on_node_crash(NodeId node);

  /// A crashed node rejoined: pull its partition's entries back from the
  /// surviving mirror copies (charged as rebuild request/reply pairs) and
  /// refresh its own mirror copies from live homes.  Returns the number of
  /// home entries rebuilt.
  std::size_t rebuild_node(NodeId node);

  /// Sweep the whole directory for locks and queued requests left behind by
  /// crashed family incarnations.  With `ignore_leases` the sweep reclaims
  /// immediately (end-of-batch cleanup); otherwise expired leases only.
  /// No-op without fault hooks installed.
  void reclaim_crashed(bool ignore_leases);

  [[nodiscard]] std::uint64_t locks_reclaimed() const noexcept {
    return stats_.reclaimed->value();
  }
  [[nodiscard]] std::uint64_t waiters_purged() const noexcept {
    return stats_.purged->value();
  }

  // --- deadlock support ---------------------------------------------------

  struct WaitEdge {
    FamilyId waiter{};
    FamilyId holder{};
    ObjectId object{};
  };
  /// All waiter->holder edges across the directory.
  [[nodiscard]] std::vector<WaitEdge> wait_edges() const;

  // --- introspection (tests / metrics) ------------------------------------

  [[nodiscard]] GdoEntry snapshot(ObjectId id) const;
  [[nodiscard]] std::size_t num_objects() const;
  /// Objects homed at `node` (partitioning test support).
  [[nodiscard]] std::vector<ObjectId> objects_homed_at(NodeId node) const;

 private:
  struct Partition {
    /// Protects `entries` (objects homed here).
    mutable std::mutex mu;
    /// Protects `mirrors` (replicas of entries homed elsewhere).  Lock
    /// ordering: an entry `mu` may be held while taking a `mirror_mu`
    /// (replication), never the reverse.
    mutable std::mutex mirror_mu;
    // FlatMap: the entry lookup is on every acquire/release/lookup path —
    // the single hottest table in the system.  All iteration over these
    // maps is order-insensitive (wait_edges feeds a sorting detector,
    // rebuild/reclaim collect into ordered sets first).
    FlatMap<ObjectId, GdoEntry> entries;
    FlatMap<ObjectId, GdoEntry> mirrors;
  };

  /// Elastic-directory state, allocated only when config_.ring.enabled —
  /// the knob-off path never touches it (bit-identity contract).
  struct RingState {
    /// Guards everything below.  Ring mode requires the deterministic
    /// scheduler, so contention is nil; the lock keeps the introspection
    /// accessors safe from arbitrary threads.
    mutable std::mutex mu;
    /// Ring per placement epoch: history[e] is the membership a node whose
    /// view is e believes in (redirect modeling); history.back() == ring.
    std::vector<HashRing> history;
    std::uint64_t epoch = 0;
    /// Last placement epoch each node has observed; a request from a
    /// stale-view node is charged a misroute + redirect before it reaches
    /// the current owner.
    std::vector<std::uint64_t> view;
    /// Where each registered entry currently lives.
    FlatMap<ObjectId, std::uint32_t> resident;
    /// Entries whose residency trails the ring owner, ascending id (the
    /// deterministic migration order).
    std::vector<ObjectId> pending;
  };

  [[nodiscard]] const HashRing& current_ring() const {
    return ring_->history.back();
  }

  /// The *target* owner under the current placement (ring owner, or static
  /// home when the ring is off).  Registration inserts here.
  [[nodiscard]] NodeId placement_of(ObjectId id) const;

  /// Failover candidates for `id` in preference order (excluding the
  /// serving owner): ring successors, or home+1.. for the static map.
  [[nodiscard]] std::vector<NodeId> failover_chain(ObjectId id) const;

  /// Mirror-group targets for a mutation served at `serving`.
  [[nodiscard]] std::vector<NodeId> mirror_targets(ObjectId id,
                                                   NodeId serving) const;

  /// Catch-up hook run before an operation on `id` routes: migrates the
  /// entry on demand when its shard is queued (priority pull).
  void ring_catch_up(ObjectId id);

  /// ring_catch_up plus stale-view accounting: when `requester` last saw an
  /// older placement epoch and would have misrouted this request, charge
  /// the misrouted `kind` plus a kShardRedirect before the real serve.
  void ring_prep_request(ObjectId id, NodeId requester, MessageKind kind);

  /// Move `id`'s entry to its ring owner now.  Returns false (leaving it
  /// queued) when the target is unreachable or no copy of the entry is
  /// currently recoverable.
  bool migrate_entry(ObjectId id);

  /// rebuild_node(), ring placement: residency replaces the static home and
  /// per-object ring chains replace the home+k scan.
  std::size_t rebuild_node_ring(NodeId node);

  /// Which partition serves `id` right now (home, or mirror on failover) —
  /// and whether we are in failover.
  struct Route {
    std::size_t partition;
    bool failover;
  };
  [[nodiscard]] Route route(ObjectId id) const;

  /// Report an unfenced serve to the check sink (ring mode only).
  void note_serve(ObjectId id, Route r);

  GdoEntry& entry_at(Route r, ObjectId id);
  [[nodiscard]] const GdoEntry& entry_at(Route r, ObjectId id) const;

  /// Apply the lock/page-map effects of one object's release (no message
  /// accounting; callers charge the release message, batched or not).
  /// Returns the version stamped on dirty pages (0 if none).
  Lsn apply_release(ObjectId id, GdoEntry& entry, FamilyId family,
                    NodeId serving, const ReleaseInfo* info,
                    std::vector<Grant>& wakeups);

  /// Grant as many waiters as the state allows; appends to `out` and sends
  /// + charges the wakeup messages.  Caller holds the partition lock.
  void grant_waiters(ObjectId id, GdoEntry& entry, NodeId serving_node,
                     std::vector<Grant>& out);

  /// Apply one grant to the entry's holder bookkeeping (stamps the lease
  /// when fault hooks are installed).
  void install_holder(GdoEntry& entry, const WaiterFamily& w);

  /// Stamp a fresh waiter/request with its node's current crash epoch.
  void stamp_epoch(WaiterFamily& w) const;

  /// Purge waiters from dead incarnations and reclaim orphaned holders and
  /// cached-holder markers whose lease has expired (or all orphans with
  /// `ignore_leases`); grants freed waiters.  Caller holds the serving
  /// partition lock.  No-op without fault hooks.
  void reap_dead_locked(ObjectId id, GdoEntry& entry, NodeId serving,
                        bool ignore_leases, std::vector<Grant>& wakeups);

  /// Revoke every cached-holder marker that conflicts with `mode` before a
  /// request from `requester` is served: the requester's own marker is
  /// dropped silently (its site flushed before re-acquiring), live markers
  /// get a callback round (flush + erase, or downgrade to read when the
  /// request is a read), dead markers wait out their lease.  Caller holds
  /// the serving partition lock.
  void revoke_conflicting_cached(ObjectId id, GdoEntry& entry, NodeId serving,
                                 NodeId requester, LockMode mode);

  /// Does any cached-holder marker conflict with a request for `mode`?
  /// (Only lease-protected markers of crashed sites can conflict after
  /// revoke_conflicting_cached ran; grants wait for their lease to expire.)
  [[nodiscard]] static bool marker_conflicts(const GdoEntry& entry,
                                             LockMode mode) noexcept;

  /// Apply a deferred flush (records stamped at the site) to the entry.
  void apply_flush(ObjectId id, GdoEntry& entry, NodeId site,
                          const std::vector<std::pair<PageIndex, Lsn>>& recs,
                          Lsn advance_to);

  /// Serving-side entry lookup.  During failover a missing copy is a
  /// *transient* condition (the surviving chain has not seen this object's
  /// entry yet) and surfaces as NodeUnreachable so callers retry; at the
  /// home it is a usage error.
  [[nodiscard]] GdoEntry& find_serving(FlatMap<ObjectId, GdoEntry>& map,
                                       ObjectId id, Route r, const char* op);

  /// Synchronously copy the (mutated) entry to the mirror and charge the
  /// replication traffic.  Caller holds the home partition lock only.
  /// Degrades (skips) if the mirror is down or crashes mid-sync.
  void replicate(ObjectId id, const GdoEntry& entry);

  /// Failover counterpart of replicate(): while the home is down, the
  /// serving mirror copies mutations one hop further down the replica
  /// chain, so a second failure still finds a complete entry.  Fault-hooks
  /// mode only (legacy failover keeps its exact message counts).
  void replicate_failover(ObjectId id, const GdoEntry& entry, NodeId serving);

  [[nodiscard]] std::uint64_t grant_payload_bytes(const GdoEntry& entry,
                                                  std::size_t txn_list_len)
      const noexcept {
    return wire::kLockRecordBytes +
           txn_list_len * wire::kTxnNodePairBytes + entry.page_map.wire_bytes();
  }

  Transport& transport_;
  GdoConfig config_;
  std::function<void(const Grant&)> grant_delivery_;
  std::function<CachedFlush(ObjectId, NodeId, LockMode)> callback_handler_;
  std::vector<Partition> partitions_;
  SpanTracer* tracer_ = nullptr;
  CheckSink* check_ = nullptr;
  /// Fallback registry for standalone use (null when the cluster owns one).
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  /// Registry handles; tallies are token-serialized when their feature
  /// (fault hooks / lock cache) is on, relaxed-atomic regardless.
  GdoStats stats_;
  RingStats ring_stats_;
  /// Elastic-directory state; null unless config_.ring.enabled.
  std::unique_ptr<RingState> ring_;
  /// Global monotone commit tick (mv_read): one per committing family,
  /// allocated at release-stamp time.
  std::atomic<std::uint64_t> commit_tick_{0};
};

}  // namespace lotec
