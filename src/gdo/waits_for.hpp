// Waits-for-graph deadlock detection.
//
// Cross-family 2PL deadlock is possible in any system with FIFO-queued
// object locks (family A holds O1 and waits for O2 while family B holds O2
// and waits for O1).  The paper does not prescribe a policy; we use the
// textbook approach: build the waits-for graph from the GDO's queues, find a
// cycle, abort the *youngest* family on it (deterministic: largest
// FamilyId), and let the runtime retry the victim.  Detection runs out of
// band (triggered by the scheduler when no family can make progress), so no
// network traffic is charged for it.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gdo/gdo_service.hpp"

namespace lotec {

struct DeadlockCycle {
  /// Families on the cycle, in edge order.
  std::vector<FamilyId> families;
  /// Chosen victim: the youngest (largest id) family on the cycle.
  FamilyId victim{};
};

class DeadlockDetector {
 public:
  /// Find one cycle in `edges`, if any.
  [[nodiscard]] static std::optional<DeadlockCycle> find_cycle(
      const std::vector<GdoService::WaitEdge>& edges);

  /// Convenience: build edges from the directory and detect.
  [[nodiscard]] static std::optional<DeadlockCycle> detect(
      const GdoService& gdo) {
    return find_cycle(gdo.wait_edges());
  }
};

}  // namespace lotec
