// PageMap: which site stores the most up-to-date version of each page.
//
// This is the consistency-maintenance half of the Fig. 1 GDO entry.  Under
// LOTEC the newest pages of one object may be scattered over several sites;
// the map is updated from dirty-page information piggybacked on global lock
// release messages and a copy is sent to the acquiring site during global
// lock acquisition.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/page_set.hpp"
#include "net/message.hpp"

namespace lotec {

struct PageLocation {
  NodeId node{};   ///< site holding the newest copy
  Lsn version = 0; ///< version stamped at the root commit that produced it
  /// Global commit tick published with the version (mv_read extension).
  /// Rides in the existing 16-byte map entry the way the PR 5 TraceContext
  /// rides in frame padding — wire_bytes() is unchanged, so traffic is
  /// bit-identical whether or not snapshot reads consume the tick.
  std::uint64_t tick = 0;

  friend bool operator==(const PageLocation&, const PageLocation&) = default;
};

class PageMap {
 public:
  PageMap() = default;
  /// All pages initially live at the creating site with version 0.
  PageMap(std::size_t num_pages, NodeId creator)
      : locations_(num_pages, PageLocation{creator, 0}) {}

  [[nodiscard]] std::size_t num_pages() const noexcept {
    return locations_.size();
  }

  [[nodiscard]] const PageLocation& at(PageIndex p) const {
    return locations_.at(p.value());
  }

  /// Apply a release's dirty-page report: `node` now owns `dirty` at
  /// `version` (Algorithm 4.4, "record the NodeIdentifier of the updating
  /// site ... for each updated page").
  void record_update(const PageSet& dirty, NodeId node, Lsn version,
                     std::uint64_t tick = 0) {
    for (const PageIndex p : dirty.to_vector())
      locations_.at(p.value()) = PageLocation{node, version, tick};
  }

  /// Record that `node` holds a current copy of page `p` at `version`
  /// without any new update (COTEC/OTEC residency reports).  Ignored if the
  /// directory already knows a newer version.  A same-version residency
  /// report keeps the tick the version was committed under; a newer one
  /// carries the tick of the commit that produced it.
  void record_current(PageIndex p, NodeId node, Lsn version,
                      std::uint64_t tick = 0) {
    PageLocation& loc = locations_.at(p.value());
    if (version > loc.version) loc = PageLocation{node, version, tick};
    else if (version == loc.version) loc.node = node;
  }

  /// Pages whose newest version is strictly newer than `cached_versions`
  /// claims the inquiring site has (the OTEC/LOTEC staleness test).
  [[nodiscard]] PageSet stale_pages(const std::vector<Lsn>& cached_versions)
      const {
    PageSet s(locations_.size());
    for (std::size_t i = 0; i < locations_.size(); ++i) {
      const Lsn have = i < cached_versions.size() ? cached_versions[i] : 0;
      if (locations_[i].version > have)
        s.insert(PageIndex(static_cast<std::uint32_t>(i)));
    }
    return s;
  }

  /// Wire size of a full page-map copy in a grant message.
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept {
    return static_cast<std::uint64_t>(locations_.size()) *
           wire::kPageMapEntryBytes;
  }

  friend bool operator==(const PageMap&, const PageMap&) = default;

 private:
  std::vector<PageLocation> locations_;
};

}  // namespace lotec
