#include "gdo/waits_for.hpp"

#include <algorithm>

namespace lotec {

namespace {

enum class Color : std::uint8_t { kWhite, kGray, kBlack };

struct Dfs {
  const std::unordered_map<FamilyId, std::vector<FamilyId>>& adj;
  std::unordered_map<FamilyId, Color> color;
  std::vector<FamilyId> stack;
  std::optional<std::vector<FamilyId>> cycle;

  void visit(FamilyId u) {
    if (cycle) return;
    color[u] = Color::kGray;
    stack.push_back(u);
    const auto it = adj.find(u);
    if (it != adj.end()) {
      for (const FamilyId v : it->second) {
        if (cycle) break;
        const auto c = color.find(v);
        if (c == color.end() || c->second == Color::kWhite) {
          visit(v);
        } else if (c->second == Color::kGray) {
          // Found a back edge: the cycle is the stack suffix from v.
          const auto pos = std::find(stack.begin(), stack.end(), v);
          cycle = std::vector<FamilyId>(pos, stack.end());
        }
      }
    }
    stack.pop_back();
    color[u] = Color::kBlack;
  }
};

}  // namespace

std::optional<DeadlockCycle> DeadlockDetector::find_cycle(
    const std::vector<GdoService::WaitEdge>& edges) {
  std::unordered_map<FamilyId, std::vector<FamilyId>> adj;
  for (const auto& e : edges) adj[e.waiter].push_back(e.holder);

  // Deterministic traversal order: visit roots in ascending family id.
  std::vector<FamilyId> roots;
  roots.reserve(adj.size());
  for (const auto& [u, vs] : adj) roots.push_back(u);
  std::sort(roots.begin(), roots.end());
  for (auto& [u, vs] : adj) std::sort(vs.begin(), vs.end());

  Dfs dfs{adj, {}, {}, std::nullopt};
  for (const FamilyId u : roots) {
    const auto c = dfs.color.find(u);
    if (c == dfs.color.end() || c->second == Color::kWhite) dfs.visit(u);
    if (dfs.cycle) break;
  }
  if (!dfs.cycle) return std::nullopt;

  DeadlockCycle out;
  out.families = std::move(*dfs.cycle);
  out.victim = *std::max_element(out.families.begin(), out.families.end());
  return out;
}

}  // namespace lotec
