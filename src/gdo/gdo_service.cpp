#include "gdo/gdo_service.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace lotec {

namespace {

/// SplitMix64 finalizer: spreads consecutive object ids over partitions.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

GdoService::GdoService(Transport& transport, GdoConfig config)
    : transport_(transport), config_(config),
      partitions_(transport.num_nodes()) {
  if (partitions_.empty()) throw UsageError("GdoService: no nodes");
}

NodeId GdoService::home_of(ObjectId id) const noexcept {
  return NodeId(static_cast<std::uint32_t>(mix(id.value()) %
                                           partitions_.size()));
}

NodeId GdoService::mirror_of(ObjectId id) const noexcept {
  return NodeId(static_cast<std::uint32_t>((home_of(id).value() + 1) %
                                           partitions_.size()));
}

GdoService::Route GdoService::route(ObjectId id) const {
  const NodeId home = home_of(id);
  if (transport_.reachable(home)) return {home.value(), false};
  if (config_.replicate) {
    const NodeId mirror = mirror_of(id);
    if (mirror != home && transport_.reachable(mirror))
      return {mirror.value(), true};
  }
  throw NodeUnreachable(home);
}

void GdoService::register_object(ObjectId id, std::size_t num_pages,
                                 NodeId creator) {
  if (num_pages == 0) throw UsageError("GdoService: object with zero pages");
  const NodeId home = home_of(id);
  Partition& part = partitions_[home.value()];
  {
    std::lock_guard<std::mutex> lock(part.mu);
    auto [it, inserted] = part.entries.try_emplace(id);
    if (!inserted)
      throw UsageError("GdoService: object " + std::to_string(id.value()) +
                       " already registered");
    GdoEntry& e = it->second;
    e.num_pages = num_pages;
    e.page_map = PageMap(num_pages, creator);
    e.caching_sites.insert(creator);
    replicate(id, e);
  }
}

AcquireResult GdoService::acquire(ObjectId id, const TxnId& txn,
                                  NodeId requester, LockMode mode) {
  const Route r = route(id);
  const NodeId serving(static_cast<std::uint32_t>(r.partition));
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  const auto it = map.find(id);
  if (it == map.end())
    throw UsageError("GdoService::acquire: unknown object " +
                     std::to_string(id.value()));
  GdoEntry& e = it->second;
  const FamilyId fam = txn.family;

  transport_.send({MessageKind::kLockAcquireRequest, requester, serving, id,
                   wire::kLockRecordBytes});

  // --- upgrade path: family holds read, wants write ----------------------
  if (e.held_by(fam)) {
    HolderFamily& h = e.holders.at(fam);
    if (!(mode == LockMode::kWrite && h.mode == LockMode::kRead))
      throw UsageError(
          "GdoService::acquire: family already holds a covering lock "
          "(intra-family requests belong to the local algorithm)");
    if (e.holders.size() == 1) {
      // Sole reader: upgrade in place.
      h.mode = LockMode::kWrite;
      if (std::find(h.txns.begin(), h.txns.end(), txn) == h.txns.end())
        h.txns.push_back(txn);
      e.state = GdoLockState::kWrite;
      e.read_count = 0;
      // Upgrade grants need no page map: the family held the lock
      // throughout, so no other family can have produced newer pages.
      transport_.send({MessageKind::kLockAcquireGrant, serving, requester, id,
                       wire::kLockRecordBytes +
                           h.txns.size() * wire::kTxnNodePairBytes});
      if (!r.failover) replicate(id, e);
      AcquireResult res;
      res.status = AcquireStatus::kGranted;
      res.upgrade = true;
      return res;
    }
    // Other readers present: queue the upgrade ahead of ordinary waiters
    // (behind any earlier upgraders).
    WaiterFamily w{fam, requester, LockMode::kWrite, /*upgrade=*/true, {txn}};
    std::size_t pos = 0;
    while (pos < e.waiters.size() && e.waiters[pos].upgrade) ++pos;
    e.waiters.insert(e.waiters.begin() + static_cast<std::ptrdiff_t>(pos),
                     std::move(w));
    transport_.send({MessageKind::kLockAcquireQueued, serving, requester, id,
                     wire::kLockRecordBytes});
    if (!r.failover) replicate(id, e);
    return AcquireResult{};  // queued
  }

  // --- fresh acquisition --------------------------------------------------
  // A queued *upgrade* always blocks new readers: an upgrader needs the
  // holder set to drain to itself, so admitting fresh readers would starve
  // it (and livelock deadlock-victim retries).  Ordinary queued writers
  // block new readers only under fair_readers; the paper's Algorithm 4.2
  // grants reads whenever the lock is read-held.
  const bool upgrade_pending =
      std::any_of(e.waiters.begin(), e.waiters.end(),
                  [](const auto& w) { return w.upgrade; });
  const bool read_shared =
      e.state == GdoLockState::kRead && mode == LockMode::kRead &&
      !upgrade_pending &&
      (!config_.fair_readers ||
       std::none_of(e.waiters.begin(), e.waiters.end(), [](const auto& w) {
         return w.mode == LockMode::kWrite;
       }));

  if (!e.held() || read_shared) {
    install_holder(e, WaiterFamily{fam, requester, mode, false, {txn}});
    e.caching_sites.insert(requester);
    transport_.send({MessageKind::kLockAcquireGrant, serving, requester, id,
                     grant_payload_bytes(e, 1)});
    if (!r.failover) replicate(id, e);
    AcquireResult res;
    res.status = AcquireStatus::kGranted;
    res.page_map = e.page_map;
    return res;
  }

  // --- conflict: enqueue on the NonHolders list ---------------------------
  const std::size_t idx = e.waiter_index(fam);
  if (idx != static_cast<std::size_t>(-1)) {
    // "IF there is a list ... for the requesting transaction's family THEN
    //  link the requesting transaction into its family's list."
    e.waiters[idx].txns.push_back(txn);
  } else {
    e.waiters.push_back(WaiterFamily{fam, requester, mode, false, {txn}});
  }
  transport_.send({MessageKind::kLockAcquireQueued, serving, requester, id,
                   wire::kLockRecordBytes});
  if (!r.failover) replicate(id, e);
  return AcquireResult{};  // queued
}

void GdoService::install_holder(GdoEntry& e, const WaiterFamily& w) {
  HolderFamily h{w.family, w.node, w.mode, w.txns};
  e.holders.emplace(w.family, std::move(h));
  if (w.mode == LockMode::kRead) {
    ++e.read_count;
    e.state = GdoLockState::kRead;
  } else {
    e.state = GdoLockState::kWrite;
  }
}

Lsn GdoService::apply_release(ObjectId id, GdoEntry& e, FamilyId family,
                              NodeId serving, const ReleaseInfo* info,
                              std::vector<Grant>& wakeups) {
  Lsn stamped = 0;
  const auto hit = e.holders.find(family);
  if (hit == e.holders.end())
    throw UsageError("GdoService::release: family " +
                     std::to_string(family.value()) +
                     " does not hold object " + std::to_string(id.value()));
  const NodeId releasing_node = hit->second.node;

  if (info != nullptr) {
    if (!info->dirty.empty()) {
      stamped = ++e.version_counter;
      e.page_map.record_update(info->dirty, releasing_node, stamped);
    }
    for (const auto& [p, v] : info->current)
      e.page_map.record_current(p, releasing_node, v);
  }

  if (hit->second.mode == LockMode::kRead) --e.read_count;
  e.holders.erase(hit);
  if (e.holders.empty()) e.state = GdoLockState::kFree;

  // Defensive: a releasing (aborting) family must not linger in the queue.
  std::erase_if(e.waiters,
                [&](const WaiterFamily& w) { return w.family == family; });

  grant_waiters(id, e, serving, wakeups);
  return stamped;
}

ReleaseResult GdoService::release_family(ObjectId id, FamilyId family,
                                         NodeId node,
                                         const ReleaseInfo* info) {
  const Route r = route(id);
  const NodeId serving(static_cast<std::uint32_t>(r.partition));
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  const auto it = map.find(id);
  if (it == map.end())
    throw UsageError("GdoService::release_family: unknown object");
  GdoEntry& e = it->second;

  const std::uint64_t records = info ? info->record_count() : 0;
  transport_.send({MessageKind::kLockReleaseRequest, node, serving, id,
                   wire::kLockRecordBytes +
                       records * wire::kDirtyPageRecordBytes});
  if (config_.release_acks)
    transport_.send({MessageKind::kLockReleaseAck, serving, node, id, 0});

  ReleaseResult res;
  res.stamped_version = apply_release(id, e, family, serving, info,
                                      res.wakeups);
  if (!r.failover) replicate(id, e);
  return res;
}

BatchReleaseResult GdoService::release_batch(
    FamilyId family, NodeId node, const std::vector<ReleaseItem>& items) {
  // Releases are charged per object: attributing a combined message to a
  // single object would skew the per-object byte accounting the Figure 2-5
  // experiments report, and the locking traffic is identical across the
  // compared protocols anyway.
  BatchReleaseResult res;
  for (const auto& item : items) {
    ReleaseResult one = release_family(item.object, family, node,
                                       item.info ? &*item.info : nullptr);
    res.stamped_versions[item.object] = one.stamped_version;
    for (auto& g : one.wakeups) res.wakeups.push_back(std::move(g));
  }
  return res;
}

void GdoService::grant_waiters(ObjectId id, GdoEntry& e, NodeId serving,
                               std::vector<Grant>& out) {
  const auto emit = [&](Grant g) {
    if (grant_delivery_) grant_delivery_(g);
    out.push_back(std::move(g));
  };
  while (!e.waiters.empty()) {
    WaiterFamily& w = e.waiters.front();
    if (w.upgrade) {
      const bool sole_reader =
          e.holders.size() == 1 && e.holders.count(w.family) == 1;
      if (!sole_reader) break;
      HolderFamily& h = e.holders.at(w.family);
      h.mode = LockMode::kWrite;
      for (const TxnId& t : w.txns)
        if (std::find(h.txns.begin(), h.txns.end(), t) == h.txns.end())
          h.txns.push_back(t);
      e.state = GdoLockState::kWrite;
      e.read_count = 0;
      Grant g{w.family, w.node, w.txns.front(), LockMode::kWrite,
              /*upgrade=*/true, PageMap{}, id};
      transport_.send({MessageKind::kLockGrantWakeup, serving, w.node, id,
                       wire::kLockRecordBytes +
                           w.txns.size() * wire::kTxnNodePairBytes});
      emit(std::move(g));
      e.waiters.pop_front();
      break;  // write lock granted; nothing further is grantable
    }
    if (w.mode == LockMode::kWrite) {
      if (!e.holders.empty()) break;
      Grant g{w.family, w.node, w.txns.front(), LockMode::kWrite,
              /*upgrade=*/false, e.page_map, id};
      transport_.send({MessageKind::kLockGrantWakeup, serving, w.node, id,
                       grant_payload_bytes(e, w.txns.size())});
      install_holder(e, w);
      e.caching_sites.insert(w.node);
      emit(std::move(g));
      e.waiters.pop_front();
      break;
    }
    // Read waiter.
    if (!(e.holders.empty() || e.state == GdoLockState::kRead)) break;
    Grant g{w.family, w.node, w.txns.front(), LockMode::kRead,
            /*upgrade=*/false, e.page_map, id};
    transport_.send({MessageKind::kLockGrantWakeup, serving, w.node, id,
                     grant_payload_bytes(e, w.txns.size())});
    install_holder(e, w);
    e.caching_sites.insert(w.node);
    emit(std::move(g));
    e.waiters.pop_front();
    if (!config_.grant_read_batches) break;
  }
}

std::vector<Grant> GdoService::cancel_waiter(ObjectId id, FamilyId family) {
  const Route r = route(id);
  const NodeId serving(static_cast<std::uint32_t>(r.partition));
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  const auto it = map.find(id);
  if (it == map.end())
    throw UsageError("GdoService::cancel_waiter: unknown object");
  GdoEntry& e = it->second;
  std::erase_if(e.waiters,
                [&](const WaiterFamily& w) { return w.family == family; });
  std::vector<Grant> wakeups;
  grant_waiters(id, e, serving, wakeups);
  if (!r.failover) replicate(id, e);
  return wakeups;
}

PageMap GdoService::lookup_page_map(ObjectId id, NodeId requester) {
  const Route r = route(id);
  const NodeId serving(static_cast<std::uint32_t>(r.partition));
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  const auto it = map.find(id);
  if (it == map.end())
    throw UsageError("GdoService::lookup_page_map: unknown object");
  transport_.send({MessageKind::kGdoLookupRequest, requester, serving, id,
                   wire::kLockRecordBytes});
  transport_.send({MessageKind::kGdoLookupReply, serving, requester, id,
                   it->second.page_map.wire_bytes()});
  return it->second.page_map;
}

std::vector<NodeId> GdoService::caching_sites(ObjectId id) const {
  const Route r = route(id);
  const Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  const auto& map = r.failover ? part.mirrors : part.entries;
  const auto it = map.find(id);
  if (it == map.end())
    throw UsageError("GdoService::caching_sites: unknown object");
  return {it->second.caching_sites.begin(), it->second.caching_sites.end()};
}

void GdoService::note_caching_site(ObjectId id, NodeId node) {
  const Route r = route(id);
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  const auto it = map.find(id);
  if (it == map.end())
    throw UsageError("GdoService::note_caching_site: unknown object");
  it->second.caching_sites.insert(node);
}

std::vector<GdoService::WaitEdge> GdoService::wait_edges() const {
  std::vector<WaitEdge> edges;
  for (const auto& part : partitions_) {
    std::lock_guard<std::mutex> lock(part.mu);
    for (const auto& [id, e] : part.entries) {
      for (std::size_t wi = 0; wi < e.waiters.size(); ++wi) {
        const WaiterFamily& w = e.waiters[wi];
        // Wait on conflicting holders (an upgrader waits on every *other*
        // holder regardless of mode — they must all drain first).
        for (const auto& [fam, h] : e.holders) {
          if (fam == w.family) continue;
          if (w.upgrade || conflicts(h.mode, w.mode))
            edges.push_back({w.family, fam, id});
        }
        // Wait on conflicting earlier-queued waiters (FIFO grant order).
        for (std::size_t wj = 0; wj < wi; ++wj) {
          const WaiterFamily& earlier = e.waiters[wj];
          if (earlier.family == w.family) continue;
          if (conflicts(earlier.mode, w.mode))
            edges.push_back({w.family, earlier.family, id});
        }
      }
    }
  }
  return edges;
}

GdoEntry GdoService::snapshot(ObjectId id) const {
  const Route r = route(id);
  const Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  const auto& map = r.failover ? part.mirrors : part.entries;
  const auto it = map.find(id);
  if (it == map.end())
    throw UsageError("GdoService::snapshot: unknown object");
  return it->second;
}

std::size_t GdoService::num_objects() const {
  std::size_t n = 0;
  for (const auto& part : partitions_) {
    std::lock_guard<std::mutex> lock(part.mu);
    n += part.entries.size();
  }
  return n;
}

std::vector<ObjectId> GdoService::objects_homed_at(NodeId node) const {
  if (!node.valid() || node.value() >= partitions_.size())
    throw UsageError("GdoService: node id out of range");
  const Partition& part = partitions_[node.value()];
  std::lock_guard<std::mutex> lock(part.mu);
  std::vector<ObjectId> out;
  out.reserve(part.entries.size());
  for (const auto& [id, e] : part.entries) out.push_back(id);
  return out;
}

void GdoService::replicate(ObjectId id, const GdoEntry& entry) {
  if (!config_.replicate) return;
  const NodeId home = home_of(id);
  const NodeId mirror = mirror_of(id);
  if (mirror == home) return;
  if (!transport_.reachable(mirror)) return;  // mirror down: degrade
  transport_.send({MessageKind::kGdoReplicaSync, home, mirror, id,
                   wire::kLockRecordBytes + entry.page_map.wire_bytes()});
  transport_.send({MessageKind::kGdoReplicaAck, mirror, home, id, 0});
  Partition& mpart = partitions_[mirror.value()];
  std::lock_guard<std::mutex> lock(mpart.mirror_mu);
  mpart.mirrors[id] = entry;
}

}  // namespace lotec
