#include "gdo/gdo_service.hpp"

#include <algorithm>
#include <map>

#include "check/events.hpp"
#include "common/logging.hpp"

namespace lotec {

namespace {

/// SplitMix64 finalizer: spreads consecutive object ids over partitions.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

GdoService::GdoService(Transport& transport, GdoConfig config,
                       MetricsRegistry* metrics)
    : transport_(transport), config_(config),
      partitions_(transport.num_nodes()) {
  if (partitions_.empty()) throw UsageError("GdoService: no nodes");
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  stats_.resolve(*metrics);
  ring_stats_.resolve(*metrics);
  if (config_.ring.enabled) {
    if (config_.ring.mirror_group == 0 ||
        config_.ring.mirror_group >= partitions_.size())
      throw UsageError(
          "GdoService: ring.mirror_group must lie in [1, nodes-1]; got " +
          std::to_string(config_.ring.mirror_group) + " with " +
          std::to_string(partitions_.size()) + " nodes");
    ring_ = std::make_unique<RingState>();
    HashRing initial(config_.ring.seed, config_.ring.virtual_nodes);
    for (std::size_t n = 0; n < partitions_.size(); ++n)
      initial.add_node(NodeId(static_cast<std::uint32_t>(n)));
    ring_->history.push_back(std::move(initial));
    ring_->view.assign(partitions_.size(), 0);
  }
}

NodeId GdoService::placement_of(ObjectId id) const {
  if (ring_ == nullptr) return home_of(id);
  std::lock_guard<std::mutex> lock(ring_->mu);
  return current_ring().owner_of(id);
}

NodeId GdoService::resident_of(ObjectId id) const {
  if (ring_ == nullptr) return home_of(id);
  std::lock_guard<std::mutex> lock(ring_->mu);
  const auto it = ring_->resident.find(id);
  if (it == ring_->resident.end()) return current_ring().owner_of(id);
  return NodeId(it->second);
}

std::uint64_t GdoService::ring_epoch() const {
  if (ring_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(ring_->mu);
  return ring_->epoch;
}

std::vector<NodeId> GdoService::ring_members() const {
  if (ring_ == nullptr) return {};
  std::lock_guard<std::mutex> lock(ring_->mu);
  return current_ring().members();
}

std::size_t GdoService::pending_migrations() const {
  if (ring_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(ring_->mu);
  return ring_->pending.size();
}

std::vector<NodeId> GdoService::failover_chain(ObjectId id) const {
  std::vector<NodeId> chain;
  const std::size_t n = partitions_.size();
  if (ring_ != nullptr) {
    const NodeId resident = resident_of(id);
    std::lock_guard<std::mutex> lock(ring_->mu);
    for (const NodeId cand :
         current_ring().successors(id, current_ring().num_members()))
      if (cand != resident) chain.push_back(cand);
    return chain;
  }
  const NodeId home = home_of(id);
  chain.reserve(n - 1);
  for (std::size_t k = 1; k < n; ++k)
    chain.push_back(NodeId(static_cast<std::uint32_t>(
        (home.value() + k) % n)));
  return chain;
}

std::vector<NodeId> GdoService::mirror_targets(ObjectId id,
                                               NodeId serving) const {
  std::vector<NodeId> targets;
  if (ring_ == nullptr) {
    const NodeId mirror = mirror_of(id);
    if (mirror != serving) targets.push_back(mirror);
    return targets;
  }
  std::lock_guard<std::mutex> lock(ring_->mu);
  // k distinct successors of the object's ring position, skipping the node
  // that serves the entry itself (during migration the resident can sit in
  // the owner's successor list).
  for (const NodeId cand :
       current_ring().successors(id, config_.ring.mirror_group + 1)) {
    if (cand == serving) continue;
    targets.push_back(cand);
    if (targets.size() == config_.ring.mirror_group) break;
  }
  return targets;
}

bool GdoService::ring_set_member(NodeId node, bool joined) {
  if (ring_ == nullptr)
    throw UsageError("GdoService: ring membership change without gdo.ring "
                     "enabled");
  if (!node.valid() || node.value() >= partitions_.size())
    throw UsageError("GdoService: ring member out of range");
  std::lock_guard<std::mutex> lock(ring_->mu);
  HashRing next = current_ring();
  if (joined) {
    if (!next.add_node(node)) return false;
  } else {
    if (next.num_members() <= 1 || !next.remove_node(node)) return false;
  }
  ring_->history.push_back(std::move(next));
  ++ring_->epoch;
  ring_stats_.changes->add();
  // Re-derive the migration queue: exactly the entries whose residency no
  // longer matches the new placement (the minimal set, by ring
  // monotonicity), ascending id for a deterministic pump order.
  ring_->pending.clear();
  for (const auto& [id, res] : ring_->resident)
    if (current_ring().owner_of(id).value() != res)
      ring_->pending.push_back(id);
  std::sort(ring_->pending.begin(), ring_->pending.end(),
            [](ObjectId a, ObjectId b) { return a.value() < b.value(); });
  if (check_ != nullptr) check_->on_ring_change(ring_->epoch, node, joined);
  return true;
}

NodeId GdoService::home_of(ObjectId id) const noexcept {
  return NodeId(static_cast<std::uint32_t>(mix(id.value()) %
                                           partitions_.size()));
}

NodeId GdoService::mirror_of(ObjectId id) const noexcept {
  return NodeId(static_cast<std::uint32_t>((home_of(id).value() + 1) %
                                           partitions_.size()));
}

namespace {

/// Wire payload of a whole entry handoff: lock record + page map + the
/// holder/waiter transaction lists (same unit costs as a grant).
std::uint64_t entry_wire_bytes(const GdoEntry& e) noexcept {
  std::uint64_t txns = 0;
  for (const auto& [fam, h] : e.holders) txns += h.txns.size();
  for (const WaiterFamily& w : e.waiters) txns += w.txns.size();
  return wire::kLockRecordBytes + e.page_map.wire_bytes() +
         txns * wire::kTxnNodePairBytes;
}

}  // namespace

bool GdoService::migrate_entry(ObjectId id) {
  NodeId from, to;
  {
    std::lock_guard<std::mutex> lock(ring_->mu);
    const auto it = ring_->resident.find(id);
    if (it == ring_->resident.end()) return true;  // never registered
    from = NodeId(it->second);
    to = current_ring().owner_of(id);
  }
  if (from == to) return true;  // a later change re-owned it back
  if (!transport_.reachable(to)) return false;  // target down: stay queued

  // Directory-lane span: migration is environment work, not a family's.
  ScopedSpan span(tracer_, SpanPhase::kShardMigrate, 0, to.value(),
                  id.value());
  GdoEntry moved;
  bool have_copy = false;
  if (transport_.reachable(from)) {
    Partition& src = partitions_[from.value()];
    std::lock_guard<std::mutex> lock(src.mu);
    const auto it = src.entries.find(id);
    if (it != src.entries.end()) {
      moved = it->second;
      have_copy = true;
    }
  }
  NodeId source = from;
  if (!have_copy) {
    // Source down (or wiped by a crash): recover the newest surviving
    // mirror copy from any quorum survivor, preferring the chain head on a
    // version tie (lock-state changes do not bump the version counter).
    for (const NodeId cand : failover_chain(id)) {
      if (cand == to || !transport_.reachable(cand)) continue;
      const Partition& part = partitions_[cand.value()];
      std::lock_guard<std::mutex> lock(part.mirror_mu);
      const auto it = part.mirrors.find(id);
      if (it == part.mirrors.end()) continue;
      if (!have_copy ||
          it->second.version_counter > moved.version_counter) {
        moved = it->second;
        source = cand;
        have_copy = true;
      }
    }
    // The target's own mirror map may hold the newest copy (free to adopt).
    {
      const Partition& part = partitions_[to.value()];
      std::lock_guard<std::mutex> lock(part.mirror_mu);
      const auto it = part.mirrors.find(id);
      if (it != part.mirrors.end() &&
          (!have_copy || it->second.version_counter > moved.version_counter)) {
        moved = it->second;
        source = to;
        have_copy = true;
      }
    }
    if (!have_copy) return false;  // nothing recoverable yet: stay queued
  }

  try {
    transport_.send({MessageKind::kShardMigrateRequest, to, source, id,
                     wire::kLockRecordBytes});
    transport_.send({MessageKind::kShardMigrateReply, source, to, id,
                     entry_wire_bytes(moved)});
  } catch (const Error&) {
    return false;  // an endpoint died at this tick: the entry stays put
  }

  // Handoff applied as one unit against crash events, like every directory
  // mutation: erase at the source, install at the target, re-mirror.
  FaultAtomicSection atomic(transport_.fault_hooks());
  std::uint64_t epoch = 0;
  if (source == from && transport_.reachable(from)) {
    Partition& src = partitions_[from.value()];
    std::lock_guard<std::mutex> lock(src.mu);
    src.entries.erase(id);
  }
  {
    Partition& dst = partitions_[to.value()];
    std::lock_guard<std::mutex> lock(dst.mu);
    dst.entries[id] = moved;
  }
  {
    std::lock_guard<std::mutex> lock(ring_->mu);
    ring_->resident[id] = to.value();
    epoch = ring_->epoch;
  }
  ring_stats_.migrations->add();
  if (check_ != nullptr) check_->on_shard_move(id, from, to, epoch);
  // Refresh the new owner's mirror group and retire every other copy: the
  // fenced ex-owner's mirrors freeze the moment the shard moves, and a
  // later rebuild must not resurrect one.
  replicate(id, moved);
  std::vector<NodeId> keep = mirror_targets(id, to);
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    const NodeId cand(static_cast<std::uint32_t>(p));
    if (cand == to) continue;
    if (std::find(keep.begin(), keep.end(), cand) != keep.end()) continue;
    Partition& part = partitions_[p];
    std::lock_guard<std::mutex> lock(part.mirror_mu);
    part.mirrors.erase(id);
  }
  return true;
}

std::size_t GdoService::pump_migrations(std::size_t budget) {
  if (ring_ == nullptr || budget == 0) return 0;
  std::size_t moved = 0;
  // Entries that refused to move this pump (unreachable endpoint); skipped
  // for the rest of the pump and retried on the next one.
  std::vector<std::uint64_t> blocked;
  for (std::size_t round = 0; round < budget; ++round) {
    ObjectId next;
    {
      std::lock_guard<std::mutex> lock(ring_->mu);
      // Pick the first movable entry (ascending id = deterministic order;
      // migrate_entry re-takes the ring lock, so no cursor survives it).
      bool found = false;
      for (const ObjectId id : ring_->pending) {
        if (std::find(blocked.begin(), blocked.end(), id.value()) !=
            blocked.end())
          continue;
        next = id;
        found = true;
        break;
      }
      if (!found) break;
    }
    if (migrate_entry(next)) {
      ++moved;
      std::lock_guard<std::mutex> lock(ring_->mu);
      std::erase(ring_->pending, next);
    } else {
      blocked.push_back(next.value());
    }
  }
  return moved;
}

void GdoService::drain_migrations() {
  if (ring_ == nullptr) return;
  for (;;) {
    std::size_t pending;
    {
      std::lock_guard<std::mutex> lock(ring_->mu);
      pending = ring_->pending.size();
    }
    if (pending == 0) return;
    if (pump_migrations(pending) == 0) return;  // stuck: nothing reachable
  }
}

void GdoService::ring_catch_up(ObjectId id) {
  if (ring_ == nullptr) return;
  bool queued;
  {
    std::lock_guard<std::mutex> lock(ring_->mu);
    queued = std::binary_search(
        ring_->pending.begin(), ring_->pending.end(), id,
        [](ObjectId a, ObjectId b) { return a.value() < b.value(); });
  }
  if (!queued) return;
  // Priority pull: the operation needs this shard at its true owner now.
  if (migrate_entry(id)) {
    ring_stats_.pulls->add();
    std::lock_guard<std::mutex> lock(ring_->mu);
    std::erase(ring_->pending, id);
  }
}

void GdoService::ring_prep_request(ObjectId id, NodeId requester,
                                   MessageKind kind) {
  if (ring_ == nullptr) return;
  ring_catch_up(id);
  NodeId believed;
  bool stale = false;
  {
    std::lock_guard<std::mutex> lock(ring_->mu);
    std::uint64_t& view = ring_->view[requester.value()];
    if (view != ring_->epoch) {
      believed = ring_->history[view].owner_of(id);
      view = ring_->epoch;
      stale = true;
    }
  }
  if (!stale) return;
  const NodeId actual = resident_of(id);
  // The stale view only costs messages when it would have misrouted this
  // request to a live fenced ex-owner; a down node or a correct guess is
  // caught by the ordinary routing.
  if (believed == actual || believed == requester) return;
  if (!transport_.reachable(believed)) return;
  transport_.send({kind, requester, believed, id, wire::kLockRecordBytes});
  transport_.send({MessageKind::kShardRedirect, believed, requester, id,
                   wire::kLockRecordBytes});
  if (tracer_ != nullptr)
    tracer_->instant(SpanPhase::kShardRedirect, 0, believed.value(),
                     id.value());
  ring_stats_.redirects->add();
  if (check_ != nullptr) check_->on_shard_redirect(id, believed, requester);
}

void GdoService::note_serve(ObjectId id, Route r) {
  if (ring_ == nullptr || check_ == nullptr || r.failover) return;
  std::uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(ring_->mu);
    epoch = ring_->epoch;
  }
  check_->on_shard_serve(id, NodeId(static_cast<std::uint32_t>(r.partition)),
                         epoch);
}

GdoService::Route GdoService::route(ObjectId id) const {
  if (ring_ != nullptr) {
    const NodeId resident = resident_of(id);
    if (transport_.reachable(resident)) return {resident.value(), false};
    if (config_.replicate)
      for (const NodeId cand : failover_chain(id))
        if (transport_.reachable(cand)) return {cand.value(), true};
    throw NodeUnreachable(resident);
  }
  const NodeId home = home_of(id);
  if (transport_.reachable(home)) return {home.value(), false};
  if (config_.replicate) {
    if (transport_.fault_hooks() != nullptr) {
      // Fault-engine mode: walk the replica chain (home+1, home+2, ...) so
      // service survives the mirror dying too — replicate_failover keeps a
      // copy one hop ahead of every failure.
      const std::size_t n = partitions_.size();
      for (std::size_t k = 1; k < n; ++k) {
        const NodeId cand(
            static_cast<std::uint32_t>((home.value() + k) % n));
        if (transport_.reachable(cand)) return {cand.value(), true};
      }
    } else {
      const NodeId mirror = mirror_of(id);
      if (mirror != home && transport_.reachable(mirror))
        return {mirror.value(), true};
    }
  }
  throw NodeUnreachable(home);
}

GdoEntry& GdoService::find_serving(FlatMap<ObjectId, GdoEntry>& map,
                                   ObjectId id, Route r, const char* op) {
  const auto it = map.find(id);
  if (it == map.end()) {
    if (r.failover && transport_.fault_hooks() != nullptr) {
      // The surviving chain node has no copy of this entry (yet): the
      // object's directory data is temporarily unavailable, not misused.
      // Callers treat this like the home being down and retry.
      const NodeId down = ring_ != nullptr ? resident_of(id) : home_of(id);
      throw NodeUnreachable(down, down);
    }
    throw UsageError(std::string("GdoService::") + op + ": unknown object " +
                     std::to_string(id.value()));
  }
  return it->second;
}

void GdoService::stamp_epoch(WaiterFamily& w) const {
  if (const FaultHooks* hooks = transport_.fault_hooks())
    w.epoch = hooks->crash_count(w.node);
}

void GdoService::reap_dead_locked(ObjectId id, GdoEntry& e, NodeId serving,
                                  bool ignore_leases,
                                  std::vector<Grant>& wakeups) {
  const FaultHooks* hooks = transport_.fault_hooks();
  if (hooks == nullptr) return;
  const std::uint64_t tick = hooks->now();
  // Waiters of dead incarnations can never consume a grant: purge.
  const std::size_t before = e.waiters.size();
  std::erase_if(e.waiters, [&](const WaiterFamily& w) {
    return hooks->crash_count(w.node) > w.epoch;
  });
  stats_.purged->add(before - e.waiters.size());
  // Holders of dead incarnations are reclaimed once their lease runs out.
  // Like an abort release, reclamation carries no dirty-page info: the page
  // map is left untouched (the restart path restores exactly what the map
  // attributes to the node).
  bool freed = false;
  for (auto it = e.holders.begin(); it != e.holders.end();) {
    const HolderFamily& h = it->second;
    if (hooks->crash_count(h.node) > h.epoch &&
        (ignore_leases || tick >= h.lease_expiry)) {
      if (h.mode == LockMode::kRead) --e.read_count;
      it = e.holders.erase(it);
      stats_.reclaimed->add();
      freed = true;
    } else {
      ++it;
    }
  }
  if (e.holders.empty()) {
    e.state = GdoLockState::kFree;
    e.read_count = 0;
  }
  // Cached-holder markers of dead incarnations follow the same lease
  // discipline as live holders: the site's unflushed (cached-committed)
  // updates died with it, so reclamation applies no page report — the map
  // keeps pointing at the last *published* versions, which is what the
  // restart path restores from the durable journal.
  if (!e.cached.empty()) {
    const std::size_t removed =
        std::erase_if(e.cached, [&](const CachedHolder& c) {
          return hooks->crash_count(c.node) > c.epoch &&
                 (ignore_leases || tick >= c.lease_expiry);
        });
    stats_.reclaimed->add(removed);
    if (removed > 0) freed = true;
  }
  if (freed) grant_waiters(id, e, serving, wakeups);
}

bool GdoService::marker_conflicts(const GdoEntry& e, LockMode mode) noexcept {
  for (const CachedHolder& c : e.cached)
    if (conflicts(c.mode, mode)) return true;
  return false;
}

void GdoService::apply_flush(ObjectId id, GdoEntry& e, NodeId site,
                             const std::vector<std::pair<PageIndex, Lsn>>& recs,
                             Lsn advance_to) {
  e.version_counter = std::max(e.version_counter, advance_to);
  // record_current's version guard makes replayed/stale records harmless.
  // Deferred-flush publications carry tick 0: the lock cache defers the
  // stamping itself, which is why validate() rejects lock_cache + mv_read.
  for (const auto& [p, v] : recs) {
    e.page_map.record_current(p, site, v);
    if (check_ != nullptr) check_->on_directory_stamp(id, p, v, site, 0);
  }
}

void GdoService::revoke_conflicting_cached(ObjectId id, GdoEntry& e,
                                           NodeId serving, NodeId requester,
                                           LockMode mode) {
  if (e.cached.empty()) return;
  const FaultHooks* hooks = transport_.fault_hooks();
  // The requester's own marker never needs a callback: the site consults
  // its cache before going remote, so reaching acquire() proves it already
  // flushed (or could not use) the entry.  Drop the marker silently.
  std::erase_if(e.cached,
                [&](const CachedHolder& c) { return c.node == requester; });
  // Deterministic revocation order (markers are appended in request order,
  // which can differ between runs of different configs): by node id.
  std::vector<NodeId> targets;
  for (const CachedHolder& c : e.cached)
    if (conflicts(c.mode, mode)) targets.push_back(c.node);
  std::sort(targets.begin(), targets.end(),
            [](NodeId a, NodeId b) { return a.value() < b.value(); });
  // The revocation round lives on the directory lane (family 0): it is
  // directory-side work triggered by, but not attributable to, the
  // requesting family.
  ScopedSpan round(targets.empty() ? nullptr : tracer_,
                   SpanPhase::kCallbackRound, 0, serving.value(), id.value());
  // One revocation round = one batch window: repeated callbacks from the
  // serving node (and the replica syncs apply_flush triggers) coalesce per
  // destination when batching is on.
  BatchWindow window(transport_);
  for (const NodeId site : targets) {
    const std::size_t i = e.cached_index(site);
    if (i == static_cast<std::size_t>(-1)) continue;
    CachedHolder& c = e.cached[i];
    if (hooks != nullptr && hooks->crash_count(c.node) > c.epoch) {
      // Dead incarnation: its cached updates are already lost, but the
      // lease is the only proof of death a real directory would have —
      // leave the marker to block the request until reap_dead_locked
      // collects it (immediately if the lease already ran out).
      if (hooks->now() >= c.lease_expiry) {
        e.cached.erase(e.cached.begin() + static_cast<std::ptrdiff_t>(i));
        stats_.reclaimed->add();
      }
      continue;
    }
    CachedFlush flush;
    try {
      transport_.send({MessageKind::kLockCallback, serving, site, id,
                       wire::kLockRecordBytes});
      if (callback_handler_) flush = callback_handler_(id, site, mode);
      transport_.send(
          {MessageKind::kCallbackReply, site, serving, id,
           wire::kLockRecordBytes +
               flush.records.size() * wire::kDirtyPageRecordBytes});
    } catch (const Error&) {
      if (hooks != nullptr && hooks->crash_count(site) > c.epoch) {
        // The site died at this very tick: its flush is lost with it, and
        // the crash we just witnessed *is* the proof of death the lease
        // would otherwise have to provide — reclaim the marker now.
        e.cached.erase(e.cached.begin() + static_cast<std::ptrdiff_t>(i));
        stats_.reclaimed->add();
        continue;
      }
      if (hooks == nullptr) {
        // Legacy failover (no fault engine, no leases): an unreachable
        // caching site is simply dead; discard its marker.
        e.cached.erase(e.cached.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      throw;  // transient (partition/drop): the requester retries
    }
    stats_.cache_callbacks->add();
    apply_flush(id, e, site, flush.records, flush.advance_to);
    if (mode == LockMode::kRead) {
      // A read request only needs writers out of the way: the site keeps
      // its (now flushed, clean) cache entry in read mode.
      c.mode = LockMode::kRead;
    } else {
      e.cached.erase(e.cached.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
}

void GdoService::register_object(ObjectId id, std::size_t num_pages,
                                 NodeId creator) {
  if (num_pages == 0) throw UsageError("GdoService: object with zero pages");
  const NodeId home = placement_of(id);
  // Ring mode: the new entry starts resident at its placement owner (under
  // failover registration the residency still names the down owner — the
  // mirror chain serves until it returns, exactly like the static home).
  const auto note_resident = [&] {
    if (ring_ == nullptr) return;
    std::lock_guard<std::mutex> lock(ring_->mu);
    ring_->resident[id] = home.value();
  };
  FaultAtomicSection atomic(transport_.fault_hooks());
  if (!transport_.reachable(home) && config_.replicate &&
      transport_.fault_hooks() != nullptr) {
    // Home down at creation time: register at the failover serving node —
    // its mirror map is the authoritative copy until the home restarts and
    // rebuilds from it.  Inserting into the home's map instead would hand
    // the only record to the pending wipe.
    const Route r = route(id);
    const NodeId serving(static_cast<std::uint32_t>(r.partition));
    Partition& part = partitions_[r.partition];
    std::lock_guard<std::mutex> lock(part.mirror_mu);
    auto [it, inserted] = part.mirrors.try_emplace(id);
    if (!inserted)
      throw UsageError("GdoService: object " + std::to_string(id.value()) +
                       " already registered");
    GdoEntry& e = it->second;
    e.num_pages = num_pages;
    e.page_map = PageMap(num_pages, creator);
    e.caching_sites.insert(creator);
    note_resident();
    replicate_failover(id, e, serving);
    return;
  }
  Partition& part = partitions_[home.value()];
  {
    std::lock_guard<std::mutex> lock(part.mu);
    auto [it, inserted] = part.entries.try_emplace(id);
    if (!inserted)
      throw UsageError("GdoService: object " + std::to_string(id.value()) +
                       " already registered");
    GdoEntry& e = it->second;
    e.num_pages = num_pages;
    e.page_map = PageMap(num_pages, creator);
    e.caching_sites.insert(creator);
    note_resident();
    replicate(id, e);
  }
}

AcquireResult GdoService::acquire(ObjectId id, const TxnId& txn,
                                  NodeId requester, LockMode mode) {
  ring_prep_request(id, requester, MessageKind::kLockAcquireRequest);
  const Route r = route(id);
  const NodeId serving(static_cast<std::uint32_t>(r.partition));
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  GdoEntry& e = find_serving(map, id, r, "acquire");
  note_serve(id, r);
  const FamilyId fam = txn.family;

  transport_.send({MessageKind::kLockAcquireRequest, requester, serving, id,
                   wire::kLockRecordBytes});
  // Directory-side serve span: the emulation's call is synchronous, so the
  // requester's context is still on this thread — the span lands on the
  // serving node's directory lane, causally linked to the requester's
  // gdo.round.  Everything the serve does (callback rounds, grant sends)
  // nests inside it.
  ScopedServeSpan serve(tracer_, SpanPhase::kGdoServe, serving.value(),
                        id.value());

  // The request could fail (drop, partition, crash); from here on the
  // mutation and its replica sync are one atomic unit against crash events.
  FaultAtomicSection atomic(transport_.fault_hooks());

  // Fault recovery: before serving, purge dead waiters / expired orphan
  // leases, and reclaim this family's own stale holder immediately — a new
  // request under the same FamilyId proves the incarnation that held the
  // lock is gone (the runner re-acquires from scratch after a crash).
  if (const FaultHooks* hooks = transport_.fault_hooks()) {
    std::vector<Grant> scratch;  // grants reach their sites via the hook
    reap_dead_locked(id, e, serving, /*ignore_leases=*/false, scratch);
    if (const auto self = e.holders.find(fam);
        self != e.holders.end() &&
        hooks->crash_count(self->second.node) > self->second.epoch) {
      if (self->second.mode == LockMode::kRead) --e.read_count;
      e.holders.erase(self);
      stats_.reclaimed->add();
      if (e.holders.empty()) {
        e.state = GdoLockState::kFree;
        e.read_count = 0;
      }
      grant_waiters(id, e, serving, scratch);
    }
  }

  // Lock caching: call back every cached holder whose marker conflicts with
  // this request (no-op — and no cost — while the cache is disabled and the
  // marker list stays empty).  Only lease-protected markers of crashed
  // sites can survive this; the request then queues until the lease runs
  // out.
  revoke_conflicting_cached(id, e, serving, requester, mode);
  const bool marker_blocked = marker_conflicts(e, mode);

  // --- upgrade path: family holds read, wants write ----------------------
  if (e.held_by(fam)) {
    HolderFamily& h = e.holders.at(fam);
    if (!(mode == LockMode::kWrite && h.mode == LockMode::kRead)) {
      if (transport_.fault_hooks() == nullptr)
        throw UsageError(
            "GdoService::acquire: family already holds a covering lock "
            "(intra-family requests belong to the local algorithm)");
      // Idempotent re-grant under fault injection: the holder is this same
      // live incarnation (a crashed one was reclaimed above), so the family
      // restarted an attempt without managing to release — its abort's
      // release message died with a crashed or partitioned serving node.
      // Hand the lock back and renew the lease; the covering mode stands.
      const bool new_txn =
          std::find(h.txns.begin(), h.txns.end(), txn) == h.txns.end();
      transport_.send(
          {MessageKind::kLockAcquireGrant, serving, requester, id,
           grant_payload_bytes(e, h.txns.size() + (new_txn ? 1 : 0))});
      if (new_txn) h.txns.push_back(txn);
      h.node = requester;
      if (const FaultHooks* hooks = transport_.fault_hooks())
        h.lease_expiry = hooks->now() + hooks->lease_term();
      if (!r.failover) replicate(id, e);
      else replicate_failover(id, e, serving);
      AcquireResult res;
      res.status = AcquireStatus::kGranted;
      res.page_map = e.page_map;
      return res;
    }
    if (e.holders.size() == 1 && !marker_blocked) {
      // Sole reader: upgrade in place.  The grant message goes out before
      // the entry mutates so a fault thrown mid-send leaves a clean state.
      const bool new_txn =
          std::find(h.txns.begin(), h.txns.end(), txn) == h.txns.end();
      // Upgrade grants need no page map: the family held the lock
      // throughout, so no other family can have produced newer pages.
      transport_.send({MessageKind::kLockAcquireGrant, serving, requester, id,
                       wire::kLockRecordBytes +
                           (h.txns.size() + (new_txn ? 1 : 0)) *
                               wire::kTxnNodePairBytes});
      h.mode = LockMode::kWrite;
      if (new_txn) h.txns.push_back(txn);
      if (const FaultHooks* hooks = transport_.fault_hooks())
        h.lease_expiry = hooks->now() + hooks->lease_term();  // renewal
      e.state = GdoLockState::kWrite;
      e.read_count = 0;
      if (!r.failover) replicate(id, e);
      else replicate_failover(id, e, serving);
      AcquireResult res;
      res.status = AcquireStatus::kGranted;
      res.upgrade = true;
      return res;
    }
    // Other readers present: queue the upgrade ahead of ordinary waiters
    // (behind any earlier upgraders).
    transport_.send({MessageKind::kLockAcquireQueued, serving, requester, id,
                     wire::kLockRecordBytes});
    WaiterFamily w{fam, requester, LockMode::kWrite, /*upgrade=*/true, {txn}};
    stamp_epoch(w);
    std::size_t pos = 0;
    while (pos < e.waiters.size() && e.waiters[pos].upgrade) ++pos;
    e.waiters.insert(e.waiters.begin() + static_cast<std::ptrdiff_t>(pos),
                     std::move(w));
    if (!r.failover) replicate(id, e);
    else replicate_failover(id, e, serving);
    return AcquireResult{};  // queued
  }

  // --- fresh acquisition --------------------------------------------------
  // A queued *upgrade* always blocks new readers: an upgrader needs the
  // holder set to drain to itself, so admitting fresh readers would starve
  // it (and livelock deadlock-victim retries).  Ordinary queued writers
  // block new readers only under fair_readers; the paper's Algorithm 4.2
  // grants reads whenever the lock is read-held.
  const bool upgrade_pending =
      std::any_of(e.waiters.begin(), e.waiters.end(),
                  [](const auto& w) { return w.upgrade; });
  const bool read_shared =
      e.state == GdoLockState::kRead && mode == LockMode::kRead &&
      !upgrade_pending &&
      (!config_.fair_readers ||
       std::none_of(e.waiters.begin(), e.waiters.end(), [](const auto& w) {
         return w.mode == LockMode::kWrite;
       }));

  if ((!e.held() || read_shared) && !marker_blocked) {
    // Send before mutating: a fault thrown from the grant send (requester
    // crashed at this very tick) must not leave an orphaned holder.
    transport_.send({MessageKind::kLockAcquireGrant, serving, requester, id,
                     grant_payload_bytes(e, 1)});
    WaiterFamily w{fam, requester, mode, false, {txn}};
    stamp_epoch(w);
    install_holder(e, w);
    e.caching_sites.insert(requester);
    if (!r.failover) replicate(id, e);
    else replicate_failover(id, e, serving);
    AcquireResult res;
    res.status = AcquireStatus::kGranted;
    res.page_map = e.page_map;
    return res;
  }

  // --- conflict: enqueue on the NonHolders list ---------------------------
  transport_.send({MessageKind::kLockAcquireQueued, serving, requester, id,
                   wire::kLockRecordBytes});
  const std::size_t idx = e.waiter_index(fam);
  if (idx != static_cast<std::size_t>(-1)) {
    // "IF there is a list ... for the requesting transaction's family THEN
    //  link the requesting transaction into its family's list."
    e.waiters[idx].txns.push_back(txn);
  } else {
    WaiterFamily w{fam, requester, mode, false, {txn}};
    stamp_epoch(w);
    e.waiters.push_back(std::move(w));
  }
  if (!r.failover) replicate(id, e);
  else replicate_failover(id, e, serving);
  return AcquireResult{};  // queued
}

void GdoService::install_holder(GdoEntry& e, const WaiterFamily& w) {
  HolderFamily h{w.family, w.node, w.mode, w.txns};
  if (const FaultHooks* hooks = transport_.fault_hooks()) {
    h.epoch = hooks->crash_count(w.node);
    h.lease_expiry = hooks->now() + hooks->lease_term();
  }
  e.holders.emplace(w.family, std::move(h));
  if (w.mode == LockMode::kRead) {
    ++e.read_count;
    e.state = GdoLockState::kRead;
  } else {
    e.state = GdoLockState::kWrite;
  }
}

Lsn GdoService::apply_release(ObjectId id, GdoEntry& e, FamilyId family,
                              NodeId serving, const ReleaseInfo* info,
                              std::vector<Grant>& wakeups) {
  Lsn stamped = 0;
  const auto hit = e.holders.find(family);
  if (hit == e.holders.end())
    throw UsageError("GdoService::release: family " +
                     std::to_string(family.value()) +
                     " does not hold object " + std::to_string(id.value()));
  const NodeId releasing_node = hit->second.node;

  if (info != nullptr) {
    if (info->advance_to > 0) {
      // Deferred-flush release (lock cache): the site stamped versions
      // itself while releases were cached; apply its explicit records and
      // catch the counter up instead of minting a fresh version.
      apply_flush(id, e, releasing_node, info->stamped, info->advance_to);
      stamped = info->advance_to;
    }
    if (!info->dirty.empty()) {
      stamped = ++e.version_counter;
      e.page_map.record_update(info->dirty, releasing_node, stamped,
                               info->commit_tick);
      if (check_ != nullptr)
        for (const PageIndex p : info->dirty.to_vector())
          check_->on_directory_stamp(id, p, stamped, releasing_node,
                                     info->commit_tick);
    }
    for (const auto& [p, v] : info->current)
      e.page_map.record_current(p, releasing_node, v);
  }

  if (hit->second.mode == LockMode::kRead) --e.read_count;
  e.holders.erase(hit);
  if (e.holders.empty()) e.state = GdoLockState::kFree;

  // Defensive: a releasing (aborting) family must not linger in the queue.
  std::erase_if(e.waiters,
                [&](const WaiterFamily& w) { return w.family == family; });

  grant_waiters(id, e, serving, wakeups);
  return stamped;
}

ReleaseResult GdoService::release_family(ObjectId id, FamilyId family,
                                         NodeId node,
                                         const ReleaseInfo* info) {
  ring_prep_request(id, node, MessageKind::kLockReleaseRequest);
  const Route r = route(id);
  const NodeId serving(static_cast<std::uint32_t>(r.partition));
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  GdoEntry& e = find_serving(map, id, r, "release_family");
  note_serve(id, r);

  const std::uint64_t records = info ? info->record_count() : 0;
  transport_.send({MessageKind::kLockReleaseRequest, node, serving, id,
                   wire::kLockRecordBytes +
                       records * wire::kDirtyPageRecordBytes});
  ScopedServeSpan serve(tracer_, SpanPhase::kGdoServe, serving.value(),
                        id.value());
  if (config_.release_acks)
    transport_.send({MessageKind::kLockReleaseAck, serving, node, id, 0});

  // Release applied + waiters granted + replica synced: atomic against
  // crash events (the request/ack above stay interruptible).
  FaultAtomicSection atomic(transport_.fault_hooks());

  ReleaseResult res;
  res.stamped_version = apply_release(id, e, family, serving, info,
                                      res.wakeups);
  if (!r.failover) replicate(id, e);
  else replicate_failover(id, e, serving);
  return res;
}

BatchReleaseResult GdoService::release_batch(
    FamilyId family, NodeId node, const std::vector<ReleaseItem>& items) {
  // Releases are charged per object: attributing a combined message to a
  // single object would skew the per-object byte accounting the Figure 2-5
  // experiments report, and the locking traffic is identical across the
  // compared protocols anyway.  The batch window below changes none of
  // that — it only lets the per-object release/replica-sync messages bound
  // for the same destination share one physical frame when
  // net.batch_messages is on.
  BatchWindow window(transport_);
  BatchReleaseResult res;
  for (const auto& item : items) {
    ReleaseResult one = release_family(item.object, family, node,
                                       item.info ? &*item.info : nullptr);
    res.stamped_versions[item.object] = one.stamped_version;
    for (auto& g : one.wakeups) res.wakeups.push_back(std::move(g));
  }
  return res;
}

void GdoService::grant_waiters(ObjectId id, GdoEntry& e, NodeId serving,
                               std::vector<Grant>& out) {
  const FaultHooks* hooks = transport_.fault_hooks();
  if (hooks != nullptr) {
    // Never grant to a dead incarnation: its site cannot consume the wakeup.
    const std::size_t before = e.waiters.size();
    std::erase_if(e.waiters, [&](const WaiterFamily& w) {
      return hooks->crash_count(w.node) > w.epoch;
    });
    stats_.purged->add(before - e.waiters.size());
  }
  const auto emit = [&](Grant g) {
    // Stamp the directory-side causal context (the enclosing gdo.serve) so
    // the woken family's lock.grant instant links back across lanes.
    if (tracer_ != nullptr && tracer_->enabled())
      g.trace = tracer_->current_context();
    if (grant_delivery_) grant_delivery_(g);
    out.push_back(std::move(g));
  };
  // Each branch sends the wakeup *before* mutating the entry: a fault event
  // can crash the waiter's node at the send's very tick, and the grant must
  // then not have happened — the waiter is purged and the loop continues.
  const auto send_wakeup = [&](const WaiterFamily& w,
                               std::uint64_t payload) -> bool {
    try {
      transport_.send(
          {MessageKind::kLockGrantWakeup, serving, w.node, id, payload});
      return true;
    } catch (const Error&) {
      if (hooks == nullptr) throw;
      return false;
    }
  };
  while (!e.waiters.empty()) {
    WaiterFamily& w = e.waiters.front();
    // A lingering cached-holder marker (only possible for a crashed site
    // still inside its lease — live conflicts are revoked before a request
    // may queue) blocks grants the same way a live holder would.
    if (marker_conflicts(e, w.upgrade ? LockMode::kWrite : w.mode)) break;
    if (w.upgrade) {
      const bool sole_reader =
          e.holders.size() == 1 && e.holders.count(w.family) == 1;
      if (!sole_reader) break;
      if (!send_wakeup(w, wire::kLockRecordBytes +
                              w.txns.size() * wire::kTxnNodePairBytes)) {
        e.waiters.pop_front();
        stats_.purged->add();
        continue;
      }
      HolderFamily& h = e.holders.at(w.family);
      h.mode = LockMode::kWrite;
      for (const TxnId& t : w.txns)
        if (std::find(h.txns.begin(), h.txns.end(), t) == h.txns.end())
          h.txns.push_back(t);
      if (hooks != nullptr)
        h.lease_expiry = hooks->now() + hooks->lease_term();
      e.state = GdoLockState::kWrite;
      e.read_count = 0;
      emit(Grant{w.family, w.node, w.txns.front(), LockMode::kWrite,
                 /*upgrade=*/true, PageMap{}, id});
      e.waiters.pop_front();
      break;  // write lock granted; nothing further is grantable
    }
    if (w.mode == LockMode::kWrite) {
      if (!e.holders.empty()) break;
      if (!send_wakeup(w, grant_payload_bytes(e, w.txns.size()))) {
        e.waiters.pop_front();
        stats_.purged->add();
        continue;
      }
      Grant g{w.family, w.node, w.txns.front(), LockMode::kWrite,
              /*upgrade=*/false, e.page_map, id};
      install_holder(e, w);
      e.caching_sites.insert(w.node);
      emit(std::move(g));
      e.waiters.pop_front();
      break;
    }
    // Read waiter.
    if (!(e.holders.empty() || e.state == GdoLockState::kRead)) break;
    if (!send_wakeup(w, grant_payload_bytes(e, w.txns.size()))) {
      e.waiters.pop_front();
      stats_.purged->add();
      continue;
    }
    Grant g{w.family, w.node, w.txns.front(), LockMode::kRead,
            /*upgrade=*/false, e.page_map, id};
    install_holder(e, w);
    e.caching_sites.insert(w.node);
    emit(std::move(g));
    e.waiters.pop_front();
    if (!config_.grant_read_batches) break;
  }
}

std::vector<Grant> GdoService::cancel_waiter(ObjectId id, FamilyId family) {
  ring_catch_up(id);
  const Route r = route(id);
  const NodeId serving(static_cast<std::uint32_t>(r.partition));
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  FaultAtomicSection atomic(transport_.fault_hooks());
  GdoEntry& e = find_serving(map, id, r, "cancel_waiter");
  note_serve(id, r);
  std::erase_if(e.waiters,
                [&](const WaiterFamily& w) { return w.family == family; });
  std::vector<Grant> wakeups;
  grant_waiters(id, e, serving, wakeups);
  if (!r.failover) replicate(id, e);
  else replicate_failover(id, e, serving);
  return wakeups;
}

bool GdoService::retain_release(ObjectId id, FamilyId family, NodeId node) {
  ring_catch_up(id);
  const Route r = route(id);
  const NodeId serving(static_cast<std::uint32_t>(r.partition));
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  GdoEntry& e = find_serving(map, id, r, "retain_release");
  note_serve(id, r);
  const auto hit = e.holders.find(family);
  if (hit == e.holders.end()) return false;
  // Retention must never starve a queued family: with anyone waiting the
  // site releases normally (and the waiters are granted).
  if (!e.waiters.empty()) return false;
  FaultAtomicSection atomic(transport_.fault_hooks());
  const LockMode mode = hit->second.mode;
  if (mode == LockMode::kRead) --e.read_count;
  e.holders.erase(hit);
  if (e.holders.empty()) {
    e.state = GdoLockState::kFree;
    e.read_count = 0;
  }
  CachedHolder c{node, mode, 0, 0};
  if (const FaultHooks* hooks = transport_.fault_hooks()) {
    c.epoch = hooks->crash_count(node);
    c.lease_expiry = hooks->now() + hooks->lease_term();
  }
  const std::size_t i = e.cached_index(node);
  if (i == static_cast<std::size_t>(-1)) {
    e.cached.push_back(c);
  } else {
    // The site already has a marker (another of its families retained
    // earlier): keep the strongest mode and renew the lease.
    CachedHolder& old = e.cached[i];
    if (c.mode == LockMode::kWrite) old.mode = LockMode::kWrite;
    old.epoch = c.epoch;
    old.lease_expiry = c.lease_expiry;
  }
  if (!r.failover) replicate(id, e);
  else replicate_failover(id, e, serving);
  return true;
}

std::optional<LockMode> GdoService::local_regrant(ObjectId id,
                                                  const TxnId& txn,
                                                  NodeId node,
                                                  LockMode wanted) {
  ring_catch_up(id);
  const Route r = route(id);
  const NodeId serving(static_cast<std::uint32_t>(r.partition));
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  GdoEntry& e = find_serving(map, id, r, "local_regrant");
  note_serve(id, r);
  const std::size_t i = e.cached_index(node);
  if (i == static_cast<std::size_t>(-1)) return std::nullopt;
  const CachedHolder c = e.cached[i];
  FaultHooks* const hooks = transport_.fault_hooks();
  // A marker left by a dead incarnation of this same site is unusable (the
  // crash wiped the cached pages); fall back to a full acquire, which
  // reclaims it.
  if (hooks != nullptr && hooks->crash_count(node) != c.epoch)
    return std::nullopt;
  // The cached mode must cover the request — regranting at the *cached*
  // mode (not the wanted one) keeps later intra-family upgrades on the
  // standard path.
  if (wanted == LockMode::kWrite && c.mode == LockMode::kRead)
    return std::nullopt;
  FaultAtomicSection atomic(hooks);
  e.cached.erase(e.cached.begin() + static_cast<std::ptrdiff_t>(i));
  WaiterFamily w{txn.family, node, c.mode, /*upgrade=*/false, {txn}};
  stamp_epoch(w);
  install_holder(e, w);
  e.caching_sites.insert(node);
  stats_.cache_regrants->add();
  if (!r.failover) replicate(id, e);
  else replicate_failover(id, e, serving);
  return c.mode;
}

void GdoService::forget_cached(ObjectId id, NodeId node) {
  ring_catch_up(id);
  const Route r = route(id);
  const NodeId serving(static_cast<std::uint32_t>(r.partition));
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  GdoEntry& e = find_serving(map, id, r, "forget_cached");
  note_serve(id, r);
  const std::size_t i = e.cached_index(node);
  if (i == static_cast<std::size_t>(-1)) return;
  FaultAtomicSection atomic(transport_.fault_hooks());
  e.cached.erase(e.cached.begin() + static_cast<std::ptrdiff_t>(i));
  if (!r.failover) replicate(id, e);
  else replicate_failover(id, e, serving);
}

void GdoService::flush_cached(
    ObjectId id, NodeId node,
    const std::vector<std::pair<PageIndex, Lsn>>& records, Lsn advance_to) {
  ring_prep_request(id, node, MessageKind::kLockReleaseRequest);
  const Route r = route(id);
  const NodeId serving(static_cast<std::uint32_t>(r.partition));
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  GdoEntry& e = find_serving(map, id, r, "flush_cached");
  note_serve(id, r);
  // The deferred release finally goes on the wire, at the same cost it
  // would have had at root-commit time.
  transport_.send(
      {MessageKind::kLockReleaseRequest, node, serving, id,
       wire::kLockRecordBytes +
           records.size() * wire::kDirtyPageRecordBytes});
  ScopedServeSpan serve(tracer_, SpanPhase::kGdoServe, serving.value(),
                        id.value());
  if (config_.release_acks)
    transport_.send({MessageKind::kLockReleaseAck, serving, node, id, 0});
  FaultAtomicSection atomic(transport_.fault_hooks());
  apply_flush(id, e, node, records, advance_to);
  const std::size_t i = e.cached_index(node);
  if (i != static_cast<std::size_t>(-1))
    e.cached.erase(e.cached.begin() + static_cast<std::ptrdiff_t>(i));
  stats_.cache_flushes->add();
  if (!r.failover) replicate(id, e);
  else replicate_failover(id, e, serving);
}

PageMap GdoService::lookup_page_map(ObjectId id, NodeId requester) {
  ring_prep_request(id, requester, MessageKind::kGdoLookupRequest);
  const Route r = route(id);
  const NodeId serving(static_cast<std::uint32_t>(r.partition));
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  const GdoEntry& e = find_serving(map, id, r, "lookup_page_map");
  note_serve(id, r);
  transport_.send({MessageKind::kGdoLookupRequest, requester, serving, id,
                   wire::kLockRecordBytes});
  ScopedServeSpan serve(tracer_, SpanPhase::kGdoServe, serving.value(),
                        id.value());
  transport_.send({MessageKind::kGdoLookupReply, serving, requester, id,
                   e.page_map.wire_bytes()});
  return e.page_map;
}

GdoService::SnapshotMap GdoService::snapshot_lookup(ObjectId id,
                                                    NodeId requester) {
  const Route r = route(id);
  const NodeId serving(static_cast<std::uint32_t>(r.partition));
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  const GdoEntry& e = find_serving(map, id, r, "snapshot_lookup");
  // Pure directory read: no lock state consulted or mutated, no queueing
  // behind writers — the whole point of the snapshot path.  The reply
  // carries the map (same entry format as a grant payload) plus the commit
  // tick it is current as of, riding in the reply header.
  transport_.send({MessageKind::kSnapshotMapRequest, requester, serving, id,
                   wire::kLockRecordBytes});
  ScopedServeSpan serve(tracer_, SpanPhase::kGdoServe, serving.value(),
                        id.value());
  transport_.send({MessageKind::kSnapshotMapReply, serving, requester, id,
                   e.page_map.wire_bytes()});
  return SnapshotMap{e.page_map, current_commit_tick()};
}

std::vector<NodeId> GdoService::caching_sites(ObjectId id) const {
  const Route r = route(id);
  const Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  const auto& map = r.failover ? part.mirrors : part.entries;
  const GdoEntry& e = const_cast<GdoService*>(this)->find_serving(
      const_cast<FlatMap<ObjectId, GdoEntry>&>(map), id, r, "caching_sites");
  return {e.caching_sites.begin(), e.caching_sites.end()};
}

void GdoService::note_caching_site(ObjectId id, NodeId node) {
  ring_catch_up(id);
  const Route r = route(id);
  Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  auto& map = r.failover ? part.mirrors : part.entries;
  find_serving(map, id, r, "note_caching_site").caching_sites.insert(node);
}

std::vector<GdoService::WaitEdge> GdoService::wait_edges() const {
  std::vector<WaitEdge> edges;
  for (const auto& part : partitions_) {
    std::lock_guard<std::mutex> lock(part.mu);
    for (const auto& [id, e] : part.entries) {
      for (std::size_t wi = 0; wi < e.waiters.size(); ++wi) {
        const WaiterFamily& w = e.waiters[wi];
        // Wait on conflicting holders (an upgrader waits on every *other*
        // holder regardless of mode — they must all drain first).
        for (const auto& [fam, h] : e.holders) {
          if (fam == w.family) continue;
          if (w.upgrade || conflicts(h.mode, w.mode))
            edges.push_back({w.family, fam, id});
        }
        // Wait on conflicting earlier-queued waiters (FIFO grant order).
        for (std::size_t wj = 0; wj < wi; ++wj) {
          const WaiterFamily& earlier = e.waiters[wj];
          if (earlier.family == w.family) continue;
          if (conflicts(earlier.mode, w.mode))
            edges.push_back({w.family, earlier.family, id});
        }
      }
    }
  }
  return edges;
}

GdoEntry GdoService::snapshot(ObjectId id) const {
  const Route r = route(id);
  const Partition& part = partitions_[r.partition];
  std::unique_lock<std::mutex> lock(r.failover ? part.mirror_mu : part.mu);
  const auto& map = r.failover ? part.mirrors : part.entries;
  return const_cast<GdoService*>(this)->find_serving(
      const_cast<FlatMap<ObjectId, GdoEntry>&>(map), id, r, "snapshot");
}

std::size_t GdoService::num_objects() const {
  std::size_t n = 0;
  for (const auto& part : partitions_) {
    std::lock_guard<std::mutex> lock(part.mu);
    n += part.entries.size();
  }
  return n;
}

std::vector<ObjectId> GdoService::objects_homed_at(NodeId node) const {
  if (!node.valid() || node.value() >= partitions_.size())
    throw UsageError("GdoService: node id out of range");
  const Partition& part = partitions_[node.value()];
  std::lock_guard<std::mutex> lock(part.mu);
  std::vector<ObjectId> out;
  out.reserve(part.entries.size());
  for (const auto& [id, e] : part.entries) out.push_back(id);
  return out;
}

void GdoService::replicate(ObjectId id, const GdoEntry& entry) {
  if (!config_.replicate) return;
  if (ring_ != nullptr) {
    // Quorum mirror group: sync the mutation to the k ring successors and
    // count acks.  k+1 copies exist (owner + group); the mutation is
    // quorum-committed on ceil((k+1)/2) acks — the owner's own copy always
    // counts, so k=1 reproduces the classic best-effort single mirror.
    const NodeId serving = resident_of(id);
    const std::size_t required = (config_.ring.mirror_group + 2) / 2;
    std::size_t acks = 1;  // the serving owner's copy
    for (const NodeId t : mirror_targets(id, serving)) {
      if (!transport_.reachable(t)) continue;
      try {
        transport_.send({MessageKind::kGdoReplicaSync, serving, t, id,
                         wire::kLockRecordBytes + entry.page_map.wire_bytes()});
        transport_.send({MessageKind::kGdoReplicaAck, t, serving, id, 0});
      } catch (const Error&) {
        continue;  // endpoint crashed mid-sync: one ack short
      }
      Partition& tp = partitions_[t.value()];
      std::lock_guard<std::mutex> lock(tp.mirror_mu);
      tp.mirrors[id] = entry;
      ++acks;
    }
    if (acks >= required) ring_stats_.quorum_commits->add();
    else ring_stats_.quorum_degrades->add();
    return;
  }
  const NodeId home = home_of(id);
  const NodeId mirror = mirror_of(id);
  if (mirror == home) return;
  if (!transport_.reachable(mirror)) return;  // mirror down: degrade
  try {
    transport_.send({MessageKind::kGdoReplicaSync, home, mirror, id,
                     wire::kLockRecordBytes + entry.page_map.wire_bytes()});
    transport_.send({MessageKind::kGdoReplicaAck, mirror, home, id, 0});
  } catch (const Error&) {
    // A fault event crashed an endpoint at this very tick: degrade exactly
    // as if the mirror had been down before the sync (best-effort copy).
    // Replication runs after the mutation, so the exception must not
    // propagate and unwind an already-applied release/grant.
    return;
  }
  Partition& mpart = partitions_[mirror.value()];
  std::lock_guard<std::mutex> lock(mpart.mirror_mu);
  mpart.mirrors[id] = entry;
}

void GdoService::replicate_failover(ObjectId id, const GdoEntry& entry,
                                    NodeId serving) {
  if (!config_.replicate || transport_.fault_hooks() == nullptr) return;
  if (ring_ != nullptr) {
    // Copy the mutation one hop further down the object's ring chain (the
    // chain already excludes the dead resident), so a second failure still
    // finds a complete entry.
    for (const NodeId cand : failover_chain(id)) {
      if (cand == serving || !transport_.reachable(cand)) continue;
      try {
        transport_.send({MessageKind::kGdoReplicaSync, serving, cand, id,
                         wire::kLockRecordBytes + entry.page_map.wire_bytes()});
        transport_.send({MessageKind::kGdoReplicaAck, cand, serving, id, 0});
      } catch (const Error&) {
        continue;  // candidate crashed mid-sync: try the next survivor
      }
      Partition& cpart = partitions_[cand.value()];
      std::lock_guard<std::mutex> lock(cpart.mirror_mu);
      cpart.mirrors[id] = entry;
      return;
    }
    return;
  }
  const std::size_t n = partitions_.size();
  for (std::size_t k = 1; k < n; ++k) {
    const NodeId cand(
        static_cast<std::uint32_t>((serving.value() + k) % n));
    if (cand == home_of(id)) continue;  // the dead home is no backup
    if (!transport_.reachable(cand)) continue;
    try {
      transport_.send({MessageKind::kGdoReplicaSync, serving, cand, id,
                       wire::kLockRecordBytes + entry.page_map.wire_bytes()});
      transport_.send({MessageKind::kGdoReplicaAck, cand, serving, id, 0});
    } catch (const Error&) {
      continue;  // candidate crashed mid-sync: try the next survivor
    }
    // Both mirror maps may be touched only under their own mirror_mu; under
    // the token scheduler (required with fault hooks) this nesting is safe.
    Partition& cpart = partitions_[cand.value()];
    std::lock_guard<std::mutex> lock(cpart.mirror_mu);
    cpart.mirrors[id] = entry;
    return;
  }
}

void GdoService::on_node_crash(NodeId node) {
  if (!node.valid() || node.value() >= partitions_.size())
    throw UsageError("GdoService: node id out of range");
  Partition& part = partitions_[node.value()];
  {
    std::lock_guard<std::mutex> lock(part.mu);
    part.entries.clear();
  }
  {
    std::lock_guard<std::mutex> lock(part.mirror_mu);
    part.mirrors.clear();
  }
  // The dead site caches nothing and cannot receive eager pushes.
  for (Partition& p : partitions_) {
    {
      std::lock_guard<std::mutex> lock(p.mu);
      for (auto& [id, e] : p.entries) e.caching_sites.erase(node);
    }
    {
      std::lock_guard<std::mutex> lock(p.mirror_mu);
      for (auto& [id, e] : p.mirrors) e.caching_sites.erase(node);
    }
  }
}

std::size_t GdoService::rebuild_node(NodeId node) {
  if (!node.valid() || node.value() >= partitions_.size())
    throw UsageError("GdoService: node id out of range");
  if (!config_.replicate) return 0;
  Partition& mine = partitions_[node.value()];
  if (ring_ != nullptr) return rebuild_node_ring(node);

  // 1. Recover the entries homed here from surviving mirror copies anywhere
  //    in the chain (re-mirroring may have moved them past home+1).  Newest
  //    copy wins, measured by the entry's commit version counter; the scan
  //    walks the chain outward from the home so that on a version tie the
  //    copy nearest the home — the canonical mirror, which every normal
  //    mutation refreshes — beats a stale failover copy further out (lock
  //    state changes do not bump the version counter, so ties are common).
  std::map<ObjectId, std::pair<GdoEntry, NodeId>> best;
  for (std::size_t k = 1; k < partitions_.size(); ++k) {
    const NodeId holder(static_cast<std::uint32_t>(
        (node.value() + k) % partitions_.size()));
    if (!transport_.reachable(holder)) continue;
    const Partition& part = partitions_[holder.value()];
    std::lock_guard<std::mutex> lock(part.mirror_mu);
    for (const auto& [id, e] : part.mirrors) {
      if (home_of(id) != node) continue;
      const auto it = best.find(id);
      if (it == best.end() ||
          e.version_counter > it->second.first.version_counter)
        best[id] = {e, holder};
    }
  }
  std::size_t rebuilt = 0;
  for (auto& [id, copy] : best) {
    try {
      transport_.send({MessageKind::kGdoRebuildRequest, node, copy.second, id,
                       wire::kLockRecordBytes});
      transport_.send(
          {MessageKind::kGdoRebuildReply, copy.second, node, id,
           wire::kLockRecordBytes + copy.first.page_map.wire_bytes()});
    } catch (const Error&) {
      continue;  // source died mid-rebuild; the entry stays missing for now
    }
    {
      std::lock_guard<std::mutex> lock(mine.mu);
      mine.entries[id] = copy.first;
    }
    // Freshen the canonical mirror from the adopted copy and drop every
    // other chain copy: they freeze the moment the home serves again, and
    // a later rebuild must not be able to resurrect one.
    replicate(id, copy.first);
    const NodeId canon = mirror_of(id);
    for (std::size_t p = 0; p < partitions_.size(); ++p) {
      if (p == node.value() || p == canon.value()) continue;
      Partition& part = partitions_[p];
      std::lock_guard<std::mutex> lock(part.mirror_mu);
      part.mirrors.erase(id);
    }
    ++rebuilt;
  }

  // 2. Refresh this node's own mirror copies from the live homes, so it can
  //    serve as a failover target again.
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    const NodeId home(static_cast<std::uint32_t>(p));
    if (home == node || !transport_.reachable(home)) continue;
    std::map<ObjectId, GdoEntry> to_mirror;
    {
      const Partition& part = partitions_[p];
      std::lock_guard<std::mutex> lock(part.mu);
      for (const auto& [id, e] : part.entries)
        if (mirror_of(id) == node) to_mirror.emplace(id, e);
    }
    for (auto& [id, e] : to_mirror) {
      try {
        transport_.send({MessageKind::kGdoRebuildRequest, node, home, id,
                         wire::kLockRecordBytes});
        transport_.send({MessageKind::kGdoRebuildReply, home, node, id,
                         wire::kLockRecordBytes + e.page_map.wire_bytes()});
      } catch (const Error&) {
        continue;
      }
      std::lock_guard<std::mutex> lock(mine.mirror_mu);
      mine.mirrors[id] = std::move(e);
    }
  }

  // 3. Step 2 could not consult homes that are currently down — yet this
  //    node mirrors some of their objects, and the next failover (or the
  //    next double failover after another crash) will route requests here.
  //    Without a copy it would serve them blind: find_serving turns every
  //    request into a transient NodeUnreachable until the home returns.
  //    Adopt the newest surviving chain copy for each such object (same
  //    version/tie discipline as step 1: chain-outward from the home).
  if (transport_.fault_hooks() != nullptr) {
    struct Candidate {
      GdoEntry entry;
      NodeId holder;
      std::size_t chain_pos = 0;  ///< holder's distance from the home
    };
    std::map<ObjectId, Candidate> orphaned;
    const std::size_t n = partitions_.size();
    for (std::size_t k = 1; k < n; ++k) {
      const NodeId holder(
          static_cast<std::uint32_t>((node.value() + k) % n));
      if (!transport_.reachable(holder)) continue;
      const Partition& part = partitions_[holder.value()];
      std::lock_guard<std::mutex> lock(part.mirror_mu);
      for (const auto& [id, e] : part.mirrors) {
        if (mirror_of(id) != node) continue;
        const NodeId home = home_of(id);
        if (transport_.reachable(home)) continue;  // step 2 covered it
        const std::size_t pos = (holder.value() + n - home.value()) % n;
        const auto it = orphaned.find(id);
        if (it == orphaned.end() ||
            e.version_counter > it->second.entry.version_counter ||
            (e.version_counter == it->second.entry.version_counter &&
             pos < it->second.chain_pos))
          orphaned[id] = {e, holder, pos};
      }
    }
    for (auto& [id, c] : orphaned) {
      try {
        transport_.send({MessageKind::kGdoRebuildRequest, node, c.holder, id,
                         wire::kLockRecordBytes});
        transport_.send(
            {MessageKind::kGdoRebuildReply, c.holder, node, id,
             wire::kLockRecordBytes + c.entry.page_map.wire_bytes()});
      } catch (const Error&) {
        continue;
      }
      std::lock_guard<std::mutex> lock(mine.mirror_mu);
      mine.mirrors[id] = std::move(c.entry);
    }
  }
  return rebuilt;
}

std::size_t GdoService::rebuild_node_ring(NodeId node) {
  Partition& mine = partitions_[node.value()];

  // 1. Re-adopt the entries resident here from the surviving mirror copies.
  //    Newest version wins; on a tie the copy earliest in the object's ring
  //    chain (the canonical first mirror) beats a failover copy further out.
  struct Candidate {
    GdoEntry entry;
    NodeId holder;
    std::size_t chain_pos = 0;
  };
  std::map<ObjectId, Candidate> best;
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    const NodeId holder(static_cast<std::uint32_t>(p));
    if (holder == node || !transport_.reachable(holder)) continue;
    // Collect ids first: chain-position lookup takes the ring lock, which
    // must nest inside the partition locks, not interleave with them.
    std::vector<std::pair<ObjectId, GdoEntry>> copies;
    {
      const Partition& part = partitions_[p];
      std::lock_guard<std::mutex> lock(part.mirror_mu);
      for (const auto& [id, e] : part.mirrors)
        if (resident_of(id) == node) copies.emplace_back(id, e);
    }
    for (auto& [id, e] : copies) {
      const std::vector<NodeId> chain = failover_chain(id);
      const auto at = std::find(chain.begin(), chain.end(), holder);
      const std::size_t pos = static_cast<std::size_t>(
          at == chain.end() ? chain.size() : at - chain.begin());
      const auto it = best.find(id);
      if (it == best.end() ||
          e.version_counter > it->second.entry.version_counter ||
          (e.version_counter == it->second.entry.version_counter &&
           pos < it->second.chain_pos))
        best[id] = {std::move(e), holder, pos};
    }
  }
  std::size_t rebuilt = 0;
  for (auto& [id, c] : best) {
    try {
      transport_.send({MessageKind::kGdoRebuildRequest, node, c.holder, id,
                       wire::kLockRecordBytes});
      transport_.send({MessageKind::kGdoRebuildReply, c.holder, node, id,
                       wire::kLockRecordBytes + c.entry.page_map.wire_bytes()});
    } catch (const Error&) {
      continue;  // source died mid-rebuild; the entry stays missing for now
    }
    {
      std::lock_guard<std::mutex> lock(mine.mu);
      mine.entries[id] = c.entry;
    }
    // Refresh the quorum group from the adopted copy and retire every other
    // chain copy so a later rebuild cannot resurrect one.
    replicate(id, c.entry);
    const std::vector<NodeId> keep = mirror_targets(id, node);
    for (std::size_t p = 0; p < partitions_.size(); ++p) {
      const NodeId cand(static_cast<std::uint32_t>(p));
      if (cand == node) continue;
      if (std::find(keep.begin(), keep.end(), cand) != keep.end()) continue;
      Partition& part = partitions_[p];
      std::lock_guard<std::mutex> lock(part.mirror_mu);
      part.mirrors.erase(id);
    }
    ++rebuilt;
  }

  // 2. Refresh the mirror copies this node hosts inside other residents'
  //    quorum groups, so it counts toward their quorums again.
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    const NodeId res(static_cast<std::uint32_t>(p));
    if (res == node || !transport_.reachable(res)) continue;
    std::vector<std::pair<ObjectId, GdoEntry>> copies;
    {
      const Partition& part = partitions_[p];
      std::lock_guard<std::mutex> lock(part.mu);
      for (const auto& [id, e] : part.entries) copies.emplace_back(id, e);
    }
    for (auto& [id, e] : copies) {
      const std::vector<NodeId> group = mirror_targets(id, res);
      if (std::find(group.begin(), group.end(), node) == group.end())
        continue;
      try {
        transport_.send({MessageKind::kGdoRebuildRequest, node, res, id,
                         wire::kLockRecordBytes});
        transport_.send({MessageKind::kGdoRebuildReply, res, node, id,
                         wire::kLockRecordBytes + e.page_map.wire_bytes()});
      } catch (const Error&) {
        continue;
      }
      std::lock_guard<std::mutex> lock(mine.mirror_mu);
      mine.mirrors[id] = std::move(e);
    }
  }
  return rebuilt;
}

void GdoService::reclaim_crashed(bool ignore_leases) {
  if (transport_.fault_hooks() == nullptr) return;
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    Partition& part = partitions_[p];
    std::vector<ObjectId> ids;
    {
      std::lock_guard<std::mutex> lock(part.mu);
      ids.reserve(part.entries.size());
      for (const auto& [id, e] : part.entries) ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end(),
              [](ObjectId a, ObjectId b) { return a.value() < b.value(); });
    for (const ObjectId id : ids) {
      std::lock_guard<std::mutex> lock(part.mu);
      const auto it = part.entries.find(id);
      if (it == part.entries.end()) continue;
      FaultAtomicSection atomic(transport_.fault_hooks());
      const std::uint64_t before = stats_.reclaimed->value() + stats_.purged->value();
      std::vector<Grant> wakeups;
      reap_dead_locked(id, it->second,
                       NodeId(static_cast<std::uint32_t>(p)), ignore_leases,
                       wakeups);
      // A reap that freed or purged anything diverged from the mirror copy;
      // sync it like any other mutation (a crash right after the reap must
      // not resurrect the reclaimed holder from the stale mirror).
      if (stats_.reclaimed->value() + stats_.purged->value() != before)
        replicate(id, it->second);
    }
  }
}

}  // namespace lotec
