// GdoEntry: the per-object record of the Global Directory of Objects.
//
// Mirrors Figure 1 of the paper:
//   LockState     - free / held-for-read / held-for-write
//   ReadCount     - number of families concurrently holding the read lock
//   HolderPtr     - per holding family, the <TxnId, NodeId> list of member
//                   transactions involved with the object (the part cached
//                   at the holding site; the GDO keeps the family-level view
//                   and receives the list back on release)
//   NonHoldersPtr - a list of per-family lists of waiting transactions
//   PageMap       - newest location + version of every page
//
// "Retained" is a *local* per-transaction state at the holding site (a
// pre-committed sub-transaction's lock retained by its parent); from the
// GDO's family-granularity viewpoint the family simply holds the lock from
// grant until its root releases it.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "gdo/lock_mode.hpp"
#include "gdo/page_map.hpp"

namespace lotec {

/// Global lock state of one object.
enum class GdoLockState : std::uint8_t { kFree, kRead, kWrite };

[[nodiscard]] constexpr std::string_view to_string(GdoLockState s) noexcept {
  switch (s) {
    case GdoLockState::kFree: return "free";
    case GdoLockState::kRead: return "read";
    case GdoLockState::kWrite: return "write";
  }
  return "?";
}

/// One family currently holding the object's lock.
struct HolderFamily {
  FamilyId family{};
  NodeId node{};
  LockMode mode = LockMode::kRead;
  /// Member transactions known to have acquired the lock (<TID,NID> list of
  /// Fig. 1; the node is the family's single execution site).
  std::vector<TxnId> txns;
  /// Lock-lease bookkeeping (fault engine only; zero when none installed):
  /// the node's crash epoch when the lock was granted, and the logical tick
  /// the lease runs out.  A holder whose node has crashed since the grant
  /// (live epoch > recorded epoch) belongs to a dead family incarnation and
  /// is reclaimed once its lease expires.
  std::uint64_t epoch = 0;
  std::uint64_t lease_expiry = 0;
};

/// One family waiting for the object's lock (an entry of the NonHoldersPtr
/// list-of-lists).
struct WaiterFamily {
  FamilyId family{};
  NodeId node{};
  LockMode mode = LockMode::kRead;
  /// True when the family already holds the lock in read mode and wants to
  /// upgrade to write.  Upgraders take priority at the head of the queue.
  bool upgrade = false;
  std::vector<TxnId> txns;  ///< waiting transactions of the family
  /// Crash epoch of `node` when the request was queued (fault engine only).
  /// A waiter from a dead incarnation can never consume its grant and is
  /// purged before grants are handed out.
  std::uint64_t epoch = 0;
};

/// A site retaining the object's global lock across family lifetimes (the
/// callback-locking extension).  No family is active under a cached holder:
/// `state`/`read_count` track live holders only, and a cached-holder site
/// re-activates its lock with a zero-message local re-grant.  The marker
/// carries the same epoch/lease pair as a live HolderFamily so crash
/// reclamation treats an idle cached holder exactly like a live one.
struct CachedHolder {
  NodeId node{};
  LockMode mode = LockMode::kRead;
  std::uint64_t epoch = 0;
  std::uint64_t lease_expiry = 0;
};

struct GdoEntry {
  GdoLockState state = GdoLockState::kFree;
  std::uint32_t read_count = 0;  ///< # holder families in read mode
  std::unordered_map<FamilyId, HolderFamily> holders;
  std::deque<WaiterFamily> waiters;
  /// Sites holding the lock *cached* between families (lock_cache knob).
  /// Invariant: a non-empty waiter queue implies no marker conflicts with
  /// the queued modes — retention is refused while waiters exist and
  /// conflicting markers are revoked before a request queues — so the
  /// grant/wakeup machinery never needs to consult this list.
  std::vector<CachedHolder> cached;
  PageMap page_map;
  /// Sites holding any cached copy of the object (maintained for the RC
  /// extension's eager pushes and for cache metrics).
  std::unordered_set<NodeId> caching_sites;
  /// Monotonic per-object version counter for stamping committed updates.
  Lsn version_counter = 0;
  std::size_t num_pages = 0;

  [[nodiscard]] bool held() const noexcept {
    return state != GdoLockState::kFree;
  }

  [[nodiscard]] bool held_by(FamilyId f) const {
    return holders.count(f) != 0;
  }

  /// Is some family other than `f` holding the lock?
  [[nodiscard]] bool held_by_other(FamilyId f) const {
    for (const auto& [fam, h] : holders)
      if (fam != f) return true;
    return false;
  }

  /// Find `f`'s position in the waiter queue, or npos.
  [[nodiscard]] std::size_t waiter_index(FamilyId f) const {
    for (std::size_t i = 0; i < waiters.size(); ++i)
      if (waiters[i].family == f) return i;
    return static_cast<std::size_t>(-1);
  }

  /// Find `node`'s cached-holder marker, or npos.
  [[nodiscard]] std::size_t cached_index(NodeId node) const {
    for (std::size_t i = 0; i < cached.size(); ++i)
      if (cached[i].node == node) return i;
    return static_cast<std::size_t>(-1);
  }
};

}  // namespace lotec
