// Lock modes and conflict rules (multiple readers / single writer).
#pragma once

#include <cstdint>
#include <string_view>

namespace lotec {

enum class LockMode : std::uint8_t { kRead, kWrite };

[[nodiscard]] constexpr std::string_view to_string(LockMode m) noexcept {
  return m == LockMode::kRead ? "R" : "W";
}

/// Multiple-readers / single-writer conflict matrix.
[[nodiscard]] constexpr bool conflicts(LockMode held, LockMode requested)
    noexcept {
  return held == LockMode::kWrite || requested == LockMode::kWrite;
}

}  // namespace lotec
