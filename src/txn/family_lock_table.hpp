// FamilyLockTable: the locally cached lock state of one transaction family.
//
// This is "the locally cached portion of a GDO entry ... exactly the
// information needed to manage the current holding transaction's family's
// access to the object" (Section 4.1).  It implements:
//
//  * the local fast path of Algorithm 4.1 (LocalLockAcquisition) — grants
//    that never touch the network,
//  * the lock-disposition rules 1-5 of Section 4.1 at sub-transaction
//    pre-commit and abort (Algorithm 4.3's lock handling),
//  * the run-time preclusion of mutually recursive invocations (Section
//    3.4): a request that would wait on a lock *held* by an ancestor is a
//    programming error, because the ancestor cannot release it until the
//    descendant finishes.
//
// The table is confined to the family's execution site and is accessed only
// by the family's (single) thread — no synchronization needed.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.hpp"
#include "gdo/lock_mode.hpp"
#include "txn/transaction.hpp"

namespace lotec {
class CheckSink;
}

namespace lotec {

/// What the local algorithm decided about an acquisition request.
enum class LocalAcquireOutcome : std::uint8_t {
  kGranted,      ///< granted locally, no network traffic
  kNeedGlobal,   ///< family does not hold the object: GlobalLockAcquisition
  kNeedUpgrade,  ///< family holds global Read, Write requested: GDO upgrade
};

/// Local lock record for one object the family holds.
struct LocalLock {
  /// Mode the *family* holds at the GDO.
  LockMode global_mode = LockMode::kRead;
  /// Transactions currently holding the lock (serial, mode).  Sequential
  /// family execution keeps this to the active path: at most one writer, or
  /// readers that are ancestors of the running transaction.
  std::vector<std::pair<std::uint32_t, LockMode>> holders;
  /// Transactions retaining the lock (serials); populated by inheritance at
  /// pre-commit (Moss retention extended per Section 3.4).
  std::unordered_set<std::uint32_t> retainers;

  [[nodiscard]] bool held() const noexcept { return !holders.empty(); }
  [[nodiscard]] bool held_for_write() const noexcept {
    for (const auto& [s, m] : holders)
      if (m == LockMode::kWrite) return true;
    return false;
  }
  [[nodiscard]] bool holds(std::uint32_t serial) const noexcept {
    for (const auto& [s, m] : holders)
      if (s == serial) return true;
    return false;
  }
};

class FamilyLockTable {
 public:
  /// Local half of Algorithm 4.1.  Returns kGranted when served locally
  /// (the caller counts it as a local lock operation), or tells the caller
  /// which global interaction is required.  Throws RecursiveInvocationError
  /// when the request can only be satisfied after an ancestor releases a
  /// lock it still holds.
  LocalAcquireOutcome try_local_acquire(const Transaction& txn, ObjectId obj,
                                        LockMode mode);

  /// Record a successful global grant (fresh acquisition or upgrade).
  void on_global_grant(const Transaction& txn, ObjectId obj, LockMode mode,
                       bool upgrade);

  /// Record an optimistic pre-acquisition (Section 5.1 extension): the
  /// family holds the global lock but no transaction has touched it yet;
  /// the root *retains* it so any descendant may acquire it locally.
  void on_prefetch_grant(const Transaction& root, ObjectId obj,
                         LockMode mode);

  /// Rule 3: at pre-commit the parent inherits and retains all of the
  /// child's locks, both held and retained.
  void on_pre_commit(const Transaction& txn);

  /// Rule 4: at abort the transaction's locks are released unless retained
  /// by an ancestor (who continues retaining them).  Returns the objects
  /// whose global lock the family must now release (Algorithm 4.3's
  /// "Forward request to GlobalLockRelease, no dirty page info").
  std::vector<ObjectId> on_abort(const Transaction& txn);

  /// Rule 5: objects to release globally when the root finishes.
  [[nodiscard]] std::vector<ObjectId> all_objects() const;

  [[nodiscard]] const LocalLock* find(ObjectId obj) const {
    const auto it = locks_.find(obj);
    return it == locks_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t size() const noexcept { return locks_.size(); }
  void clear() { locks_.clear(); }

  /// Attach the schedule checker's event sink (survives clear()).  The
  /// table reports mutual-recursion preclusions so the checker can confirm
  /// the Section 3.4 rule actually fires under adversarial schedules.
  void set_check(CheckSink* sink, FamilyId family) {
    check_ = sink;
    family_ = family;
  }

 private:
  std::unordered_map<ObjectId, LocalLock> locks_;
  CheckSink* check_ = nullptr;
  FamilyId family_{};
};

}  // namespace lotec
