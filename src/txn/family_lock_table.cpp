#include "txn/family_lock_table.hpp"

#include <algorithm>

#include "check/events.hpp"

namespace lotec {

LocalAcquireOutcome FamilyLockTable::try_local_acquire(const Transaction& txn,
                                                       ObjectId obj,
                                                       LockMode mode) {
  const auto it = locks_.find(obj);
  if (it == locks_.end()) {
    // "IF the object is not [locked] at this site THEN forward to
    //  GlobalLockAcquisition."
    return LocalAcquireOutcome::kNeedGlobal;
  }
  LocalLock& lock = it->second;
  const std::uint32_t serial = txn.id().serial;

  // The mutual-recursion preclusion check (Section 3.4, verified at run
  // time): granting would require waiting on an ancestor that cannot
  // release until we finish.  A pure read over ancestors' read locks is the
  // one benign case Algorithm 4.1 grants.
  const bool write_involved = mode == LockMode::kWrite ||
                              lock.held_for_write();
  for (const auto& [holder_serial, holder_mode] : lock.holders) {
    if (holder_serial == serial) continue;  // re-entrant, handled below
    if (txn.is_self_or_ancestor(holder_serial) && write_involved) {
      if (check_ != nullptr)
        check_->on_recursion_precluded(family_, serial, obj);
      throw RecursiveInvocationError(
          obj, txn.id(), TxnId{txn.id().family, holder_serial});
    }
  }

  // A write request against a family-level read lock needs a GDO upgrade
  // before any local grant is meaningful (other families may share the read
  // lock right now).
  if (mode == LockMode::kWrite && lock.global_mode == LockMode::kRead)
    return LocalAcquireOutcome::kNeedUpgrade;

  if (lock.holds(serial)) {
    // Already holding (a transaction re-touching its own object); nothing
    // to do.  Upgrade of our own local mode:
    if (mode == LockMode::kWrite) {
      for (auto& [s, m] : lock.holders)
        if (s == serial) m = LockMode::kWrite;
    }
    return LocalAcquireOutcome::kGranted;
  }

  if (!lock.held()) {
    // "IF the lock is retained by an ancestor of the requester THEN grant."
    // Rule 1 requires *all* retainers to be ancestors of the requester.
    for (const std::uint32_t r : lock.retainers) {
      if (!txn.is_self_or_ancestor(r))
        throw UsageError(
            "FamilyLockTable: lock retained by a non-ancestor transaction — "
            "intra-family sibling concurrency is not supported");
    }
    lock.holders.emplace_back(serial, mode);
    return LocalAcquireOutcome::kGranted;
  }

  // Held by other member(s) of the family.  Ancestor-held write conflicts
  // were precluded above; what remains is read sharing ("ELSE grant the
  // Read lock to the requesting transaction").
  if (!write_involved) {
    lock.holders.emplace_back(serial, LockMode::kRead);
    return LocalAcquireOutcome::kGranted;
  }

  // A conflicting sibling holder would mean concurrent sibling execution,
  // which this runtime (like the paper's simulator) does not schedule.
  throw UsageError(
      "FamilyLockTable: conflicting lock held by a sibling transaction — "
      "intra-family sibling concurrency is not supported");
}

void FamilyLockTable::on_global_grant(const Transaction& txn, ObjectId obj,
                                      LockMode mode, bool upgrade) {
  const std::uint32_t serial = txn.id().serial;
  if (upgrade) {
    const auto it = locks_.find(obj);
    if (it == locks_.end())
      throw UsageError("FamilyLockTable: upgrade grant for unknown object");
    it->second.global_mode = LockMode::kWrite;
    if (!it->second.holds(serial))
      it->second.holders.emplace_back(serial, LockMode::kWrite);
    else
      for (auto& [s, m] : it->second.holders)
        if (s == serial) m = LockMode::kWrite;
    return;
  }
  auto [it, inserted] = locks_.try_emplace(obj);
  if (!inserted)
    throw UsageError("FamilyLockTable: duplicate global grant");
  it->second.global_mode = mode;
  it->second.holders.emplace_back(serial, mode);
}

void FamilyLockTable::on_prefetch_grant(const Transaction& root, ObjectId obj,
                                        LockMode mode) {
  if (root.parent() != nullptr)
    throw UsageError("FamilyLockTable: prefetch grants belong to the root");
  auto [it, inserted] = locks_.try_emplace(obj);
  if (!inserted)
    throw UsageError("FamilyLockTable: duplicate prefetch grant");
  it->second.global_mode = mode;
  it->second.retainers.insert(root.id().serial);
}

void FamilyLockTable::on_pre_commit(const Transaction& txn) {
  if (txn.parent() == nullptr)
    throw UsageError("FamilyLockTable::on_pre_commit: root has no parent");
  const std::uint32_t serial = txn.id().serial;
  const std::uint32_t parent = txn.parent()->id().serial;
  for (auto& [obj, lock] : locks_) {
    // Held locks are inherited and *retained* by the parent (rule 3) —
    // note the parent retains rather than holds; if it needs to access the
    // object itself it re-acquires from its own retention.
    const auto h = std::find_if(lock.holders.begin(), lock.holders.end(),
                                [&](const auto& p) { return p.first == serial; });
    if (h != lock.holders.end()) {
      lock.holders.erase(h);
      lock.retainers.insert(parent);
    }
    // Retained locks pass up as well.
    if (lock.retainers.erase(serial) > 0) lock.retainers.insert(parent);
  }
}

std::vector<ObjectId> FamilyLockTable::on_abort(const Transaction& txn) {
  const std::uint32_t serial = txn.id().serial;
  std::vector<ObjectId> to_release;
  for (auto it = locks_.begin(); it != locks_.end();) {
    LocalLock& lock = it->second;
    const auto h = std::find_if(lock.holders.begin(), lock.holders.end(),
                                [&](const auto& p) { return p.first == serial; });
    const bool touched = h != lock.holders.end() ||
                         lock.retainers.count(serial) > 0;
    if (h != lock.holders.end()) lock.holders.erase(h);
    lock.retainers.erase(serial);
    if (touched && lock.holders.empty() && lock.retainers.empty()) {
      // Rule 4: not retained by any ancestor — release to other families.
      to_release.push_back(it->first);
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  return to_release;
}

std::vector<ObjectId> FamilyLockTable::all_objects() const {
  std::vector<ObjectId> out;
  out.reserve(locks_.size());
  for (const auto& [obj, lock] : locks_) out.push_back(obj);
  return out;
}

}  // namespace lotec
