// Family: one transaction family — a root transaction, its tree of
// sub-transactions, and the family's locally cached lock state.
//
// Per the paper's execution model, "individual transaction families execute
// locally at a single site"; a Family object therefore lives on exactly one
// node and is driven by one thread at a time.
#pragma once

#include <memory>

#include "common/ids.hpp"
#include "txn/family_lock_table.hpp"
#include "txn/transaction.hpp"

namespace lotec {

class Family {
 public:
  Family(FamilyId id, NodeId node, UndoStrategy undo_strategy)
      : id_(id), node_(node), undo_strategy_(undo_strategy) {}

  [[nodiscard]] FamilyId id() const noexcept { return id_; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] UndoStrategy undo_strategy() const noexcept {
    return undo_strategy_;
  }

  /// Start the root transaction (the user's method invocation).
  Transaction& begin_root(ObjectId target, MethodId method) {
    if (root_) throw UsageError("Family: root already started");
    root_ = std::make_unique<Transaction>(TxnId{id_, 0}, nullptr, target,
                                          method, undo_strategy_);
    next_serial_ = 1;
    return *root_;
  }

  /// Start a sub-transaction (a sub-invocation made from `parent`).
  Transaction& begin_child(Transaction& parent, ObjectId target,
                           MethodId method) {
    return parent.add_child(TxnId{id_, next_serial_++}, target, method,
                            undo_strategy_);
  }

  [[nodiscard]] Transaction* root() noexcept { return root_.get(); }
  [[nodiscard]] const Transaction* root() const noexcept {
    return root_.get();
  }
  [[nodiscard]] FamilyLockTable& locks() noexcept { return locks_; }
  [[nodiscard]] const FamilyLockTable& locks() const noexcept {
    return locks_;
  }

  /// Transactions created so far (root + sub-transactions).
  [[nodiscard]] std::uint32_t num_txns() const noexcept {
    return next_serial_;
  }

  /// Discard the tree and lock table for a retry (deadlock victim restart).
  /// The FamilyId is retained so a repeatedly restarted family ages into a
  /// non-victim (victims are the youngest on the cycle), avoiding livelock.
  void reset() {
    root_.reset();
    locks_.clear();
    next_serial_ = 0;
  }

 private:
  FamilyId id_;
  NodeId node_;
  UndoStrategy undo_strategy_;
  std::unique_ptr<Transaction> root_;
  std::uint32_t next_serial_ = 0;
  FamilyLockTable locks_;
};

}  // namespace lotec
