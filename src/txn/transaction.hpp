// Transaction: one node of a nested object transaction tree.
//
// In the paper's model (Section 3.3) every method invocation on a shared
// object is a [sub-]transaction: a user invocation creates a root, an
// invocation made from inside a transaction creates a child.  The 1:1
// mapping produces the family's tree structure.  Unlike Moss' model, any
// level of the tree (not just leaves) accesses data — the data of the object
// whose method the transaction executes.
#pragma once

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/ids.hpp"
#include "page/undo_log.hpp"

namespace lotec {

enum class TxnState : std::uint8_t {
  kActive,
  kPreCommitted,  ///< sub-transaction committed; effects visible to family
  kCommitted,     ///< root committed; effects visible to everyone
  kAborted
};

[[nodiscard]] constexpr const char* to_string(TxnState s) noexcept {
  switch (s) {
    case TxnState::kActive: return "active";
    case TxnState::kPreCommitted: return "pre-committed";
    case TxnState::kCommitted: return "committed";
    case TxnState::kAborted: return "aborted";
  }
  return "?";
}

class Transaction {
 public:
  Transaction(TxnId id, Transaction* parent, ObjectId target,
              MethodId method, UndoStrategy undo_strategy)
      : id_(id),
        parent_(parent),
        target_(target),
        method_(method),
        undo_(undo_strategy) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  [[nodiscard]] const TxnId& id() const noexcept { return id_; }
  [[nodiscard]] Transaction* parent() const noexcept { return parent_; }
  [[nodiscard]] bool is_root() const noexcept { return parent_ == nullptr; }
  [[nodiscard]] ObjectId target() const noexcept { return target_; }
  [[nodiscard]] MethodId method() const noexcept { return method_; }
  [[nodiscard]] TxnState state() const noexcept { return state_; }
  [[nodiscard]] UndoLog& undo() noexcept { return undo_; }
  [[nodiscard]] const UndoLog& undo() const noexcept { return undo_; }

  [[nodiscard]] const std::vector<std::unique_ptr<Transaction>>& children()
      const noexcept {
    return children_;
  }

  /// Nesting depth (root = 0).
  [[nodiscard]] std::size_t depth() const noexcept {
    std::size_t d = 0;
    for (const Transaction* t = parent_; t != nullptr; t = t->parent_) ++d;
    return d;
  }

  /// True if `serial` identifies this transaction or one of its ancestors.
  /// This is the per-invocation check the paper prices at "overhead
  /// proportional to the depth of transaction nesting".
  [[nodiscard]] bool is_self_or_ancestor(std::uint32_t serial) const noexcept {
    for (const Transaction* t = this; t != nullptr; t = t->parent_)
      if (t->id_.serial == serial) return true;
    return false;
  }

  /// Spawn a child transaction (a sub-invocation).
  Transaction& add_child(TxnId id, ObjectId target, MethodId method,
                         UndoStrategy undo_strategy) {
    if (state_ != TxnState::kActive)
      throw UsageError("Transaction: cannot invoke from a finished txn");
    children_.push_back(std::make_unique<Transaction>(id, this, target, method,
                                                      undo_strategy));
    return *children_.back();
  }

  /// Sub-transaction pre-commit: mark state and hand the undo records to the
  /// parent (closed nesting: a later ancestor abort must also undo this
  /// child's committed work).  Lock disposition is FamilyLockTable's job.
  void pre_commit() {
    if (state_ != TxnState::kActive)
      throw UsageError("Transaction::pre_commit: not active");
    if (parent_ == nullptr)
      throw UsageError("Transaction::pre_commit: roots commit, not pre-commit");
    for (const auto& c : children_)
      if (c->state_ == TxnState::kActive)
        throw UsageError(
            "Transaction::pre_commit: a child is still active (rule 3: a "
            "transaction cannot pre-commit until all sub-transactions have)");
    state_ = TxnState::kPreCommitted;
    parent_->undo_.absorb(std::move(undo_));
  }

  /// Root commit: discard undo information.
  void commit_root() {
    if (state_ != TxnState::kActive || parent_ != nullptr)
      throw UsageError("Transaction::commit_root: not an active root");
    for (const auto& c : children_)
      if (c->state_ == TxnState::kActive)
        throw UsageError("Transaction::commit_root: a child is still active");
    state_ = TxnState::kCommitted;
    undo_.clear();
  }

  /// Abort: roll back this transaction's effects (its own writes plus any
  /// absorbed from pre-committed children).  `resolve` maps object ids to
  /// the local images.  No network communication (Section 4.1).
  void abort(const std::function<ObjectImage&(ObjectId)>& resolve) {
    if (state_ != TxnState::kActive)
      throw UsageError("Transaction::abort: not active");
    state_ = TxnState::kAborted;
    undo_.undo(resolve);
  }

 private:
  TxnId id_;
  Transaction* parent_;
  ObjectId target_;
  MethodId method_;
  TxnState state_ = TxnState::kActive;
  UndoLog undo_;
  std::vector<std::unique_ptr<Transaction>> children_;
};

}  // namespace lotec
