// Network cost model for the Figure 6-8 "total message time" experiments.
//
// The paper evaluates three bit rates (10 Mbps, 100 Mbps, 1 Gbps switched
// Ethernet) crossed with five per-message software (startup) costs
// (100us, 20us, 5us, 1us, 500ns).  Time for a message is
//     software_cost + total_bytes * 8 / bit_rate
// and the figures report the sum over all consistency-maintenance messages
// for a chosen shared object.
#pragma once

#include <array>
#include <cstdint>

#include "net/message.hpp"

namespace lotec {

class NetworkCostModel {
 public:
  NetworkCostModel(double bits_per_second, double software_cost_us)
      : bits_per_second_(bits_per_second), software_cost_us_(software_cost_us) {}

  [[nodiscard]] double bits_per_second() const noexcept {
    return bits_per_second_;
  }
  [[nodiscard]] double software_cost_us() const noexcept {
    return software_cost_us_;
  }

  /// Time in microseconds to send one message of `total_bytes` bytes.
  [[nodiscard]] double message_time_us(std::uint64_t total_bytes) const noexcept {
    return software_cost_us_ +
           static_cast<double>(total_bytes) * 8.0 / bits_per_second_ * 1e6;
  }

  /// Aggregate time in microseconds for `messages` messages totalling
  /// `total_bytes` bytes (the form used over NetworkStats per-object rows).
  [[nodiscard]] double total_time_us(std::uint64_t messages,
                                     std::uint64_t total_bytes) const noexcept {
    return software_cost_us_ * static_cast<double>(messages) +
           static_cast<double>(total_bytes) * 8.0 / bits_per_second_ * 1e6;
  }

  // Bit-rate presets matching the paper's networks.
  static constexpr double kEthernet10Mbps = 10e6;
  static constexpr double kEthernet100Mbps = 100e6;
  static constexpr double kEthernet1Gbps = 1e9;

  /// The paper's software-cost sweep, in microseconds.
  [[nodiscard]] static constexpr std::array<double, 5> software_cost_sweep_us() {
    return {100.0, 20.0, 5.0, 1.0, 0.5};
  }

 private:
  double bits_per_second_;
  double software_cost_us_;
};

}  // namespace lotec
