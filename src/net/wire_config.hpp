// WireConfig: knobs for the cross-process wire transport (src/wire).
//
// Pure data, deliberately placed in src/net so runtime/config.hpp can hold
// one without dragging socket headers into every translation unit.  The
// implementation (frames, sockets, worker processes) lives in src/wire.
#pragma once

#include <cstdint>
#include <string>

namespace lotec {

struct WireConfig {
  /// Run the cluster as real OS processes: one lotec_worker per node,
  /// joined by Unix-domain sockets (TCP with `tcp`), with every accounted
  /// message shipped coordinator -> src worker -> dst worker and
  /// acknowledged back.  Requires the deterministic scheduler and is
  /// mutually exclusive with the deterministic-only seams (schedule
  /// exploration, check sinks, FaultEngine message faults).
  bool enabled = false;
  /// Use TCP loopback sockets instead of Unix-domain sockets.
  bool tcp = false;
  /// Path of the lotec_worker executable.  Empty = resolve via the
  /// LOTEC_WORKER environment variable, then next to the running binary
  /// (and in a sibling tools/ directory).
  std::string worker_path;
  /// Directory for the per-node Unix-domain listen sockets.  Empty = a
  /// fresh directory under $TMPDIR (removed at teardown).
  std::string socket_dir;
  /// Per-node span JSONL output: each worker writes
  /// <prefix>.node<K>.jsonl with one wire.deliver span per frame it
  /// delivered (span ids namespaced by node id so files from several
  /// workers merge cleanly in `trace_report spans`).  Empty = off.
  std::string worker_spans;
  /// Milliseconds the coordinator waits for a worker's HelloAck after
  /// spawn/respawn before declaring the launch failed.
  std::uint32_t handshake_timeout_ms = 10000;
  /// Initial per-attempt acknowledgement timeout for one shipped frame.
  /// Each retry doubles it (exponential backoff).
  std::uint32_t ack_timeout_ms = 2000;
  /// Send attempts per frame before the destination is declared
  /// unreachable (mapped onto the NodeUnreachable retry path).
  std::uint32_t max_send_attempts = 3;
};

}  // namespace lotec
