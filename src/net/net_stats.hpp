// NetworkStats: the ledger of every message the system sends.
//
// Byte counts per shared object are the paper's primary measured quantity
// (Figures 2-5); message counts feed the time model (Figures 6-8) and the
// "LOTEC sends many more, smaller messages" observation; per-kind totals
// drive the locking-overhead analysis of Section 5.1.  Local lock
// operations (no network) are counted separately so the GDO-message /
// local-operation ratio can be reported.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "net/cost_model.hpp"
#include "net/message.hpp"

namespace lotec {

/// One recorded message in the optional trace (observability: dump to CSV
/// via sim/trace.hpp and analyze with tools/trace_report).
struct TraceEvent {
  std::uint64_t seq = 0;
  MessageKind kind{};
  NodeId src{};
  NodeId dst{};
  ObjectId object{};
  std::uint64_t payload_bytes = 0;
  std::uint64_t total_bytes = 0;

  /// Traces are compared whole for the fault-determinism guarantee (same
  /// seed => byte-identical message sequence).
  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

struct TrafficCounter {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  void add(std::uint64_t message_bytes) noexcept {
    ++messages;
    bytes += message_bytes;
  }
  TrafficCounter& operator+=(const TrafficCounter& o) noexcept {
    messages += o.messages;
    bytes += o.bytes;
    return *this;
  }
};

class NetworkStats {
 public:
  /// Record one unicast message.  `joined_batch` marks a message that rode
  /// an already-open physical batch frame to the same destination
  /// (Transport's MessageBatcher): its LOGICAL accounting — total, per-kind,
  /// per-object, trace — is identical either way (the paper's cost model and
  /// every figure counter stay bit-exact); only the PHYSICAL ledger differs,
  /// charging a batch entry header instead of a full frame header and no new
  /// physical send.
  void record(const WireMessage& m, bool joined_batch = false) {
    std::lock_guard<std::mutex> lock(mu_);
    record_locked(m, joined_batch);
  }

  /// Record a message sent to `fanout` destinations.  With multicast
  /// enabled the network carries one copy; otherwise `fanout` copies.
  void record_multicast(const WireMessage& m, std::size_t fanout,
                        bool multicast_capable) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t copies = multicast_capable ? 1 : fanout;
    for (std::size_t i = 0; i < copies; ++i) record_locked(m);
  }

  /// Enable tracing of every message (bounded; oldest events are NOT
  /// evicted — recording stops at capacity and drop_count() reports the
  /// overflow).
  void enable_trace(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    trace_capacity_ = capacity;
    trace_.clear();
    trace_.reserve(std::min<std::size_t>(capacity, 1 << 16));
    trace_dropped_ = 0;
  }

  [[nodiscard]] std::vector<TraceEvent> trace() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trace_;
  }

  [[nodiscard]] std::uint64_t trace_dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trace_dropped_;
  }

  /// Count a purely local lock operation (no network traffic).
  void record_local_lock_op() {
    std::lock_guard<std::mutex> lock(mu_);
    ++local_lock_ops_;
  }

  // --- queries -----------------------------------------------------------

  [[nodiscard]] TrafficCounter total() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

  [[nodiscard]] TrafficCounter by_kind(MessageKind k) const {
    std::lock_guard<std::mutex> lock(mu_);
    return by_kind_[static_cast<std::size_t>(k)];
  }

  /// Traffic attributed to one shared object (zero counter if none).
  [[nodiscard]] TrafficCounter by_object(ObjectId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_object_.find(id);
    return it == by_object_.end() ? TrafficCounter{} : it->second;
  }

  /// All per-object rows (copy; the internal table is a FlatMap but callers
  /// keep the familiar unordered_map shape).
  [[nodiscard]] std::unordered_map<ObjectId, TrafficCounter> per_object()
      const {
    std::lock_guard<std::mutex> lock(mu_);
    std::unordered_map<ObjectId, TrafficCounter> out;
    out.reserve(by_object_.size());
    for (const auto& [id, c] : by_object_) out.emplace(id, c);
    return out;
  }

  /// Bytes of page data only (excluding control traffic), per object.
  [[nodiscard]] TrafficCounter page_data_by_object(ObjectId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = page_data_by_object_.find(id);
    return it == page_data_by_object_.end() ? TrafficCounter{} : it->second;
  }

  [[nodiscard]] std::uint64_t local_lock_ops() const {
    std::lock_guard<std::mutex> lock(mu_);
    return local_lock_ops_;
  }

  /// Physical wire traffic: frames actually put on the network after
  /// batching.  Equals total() exactly when batching is off (or never
  /// coalesced anything); with batching on, messages here counts frames and
  /// bytes reflects the per-entry header saving.
  [[nodiscard]] TrafficCounter physical() const {
    std::lock_guard<std::mutex> lock(mu_);
    return physical_;
  }

  /// Logical messages that rode an existing batch frame instead of paying a
  /// physical send of their own.
  [[nodiscard]] std::uint64_t batched_joins() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batched_joins_;
  }

  /// Total consistency-maintenance time for one object under a cost model
  /// (sum of per-message software cost + transmission time).
  [[nodiscard]] double object_time_us(ObjectId id,
                                      const NetworkCostModel& model) const {
    const TrafficCounter c = by_object(id);
    return model.total_time_us(c.messages, c.bytes);
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    total_ = {};
    by_kind_.fill(TrafficCounter{});
    by_object_.clear();
    page_data_by_object_.clear();
    physical_ = {};
    batched_joins_ = 0;
    local_lock_ops_ = 0;
    trace_.clear();
    trace_dropped_ = 0;
  }

 private:
  void record_locked(const WireMessage& m, bool joined_batch = false) {
    const std::uint64_t n = m.total_bytes();
    total_.add(n);
    by_kind_[static_cast<std::size_t>(m.kind)].add(n);
    if (m.object.valid()) {
      by_object_[m.object].add(n);
      if (carries_page_data(m.kind)) page_data_by_object_[m.object].add(n);
    }
    if (joined_batch) {
      // Rides the open frame: payload plus a batch entry header, no new
      // physical send.
      physical_.bytes += m.payload_bytes + wire::kBatchEntryHeaderBytes;
      ++batched_joins_;
    } else {
      physical_.add(n);
    }
    if (trace_capacity_ > 0) {
      if (trace_.size() < trace_capacity_) {
        trace_.push_back(TraceEvent{total_.messages, m.kind, m.src, m.dst,
                                    m.object, m.payload_bytes, n});
      } else {
        ++trace_dropped_;
      }
    }
  }

  mutable std::mutex mu_;
  TrafficCounter total_;
  std::array<TrafficCounter, static_cast<std::size_t>(MessageKind::kNumKinds)>
      by_kind_{};
  FlatMap<ObjectId, TrafficCounter> by_object_;
  FlatMap<ObjectId, TrafficCounter> page_data_by_object_;
  TrafficCounter physical_;
  std::uint64_t batched_joins_ = 0;
  std::uint64_t local_lock_ops_ = 0;
  std::size_t trace_capacity_ = 0;
  std::vector<TraceEvent> trace_;
  std::uint64_t trace_dropped_ = 0;
};

}  // namespace lotec
