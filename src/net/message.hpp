// Message taxonomy and wire sizing.
//
// Every cross-node interaction in the system is described by a WireMessage
// and charged to the NetworkStats ledger.  The byte sizes below model a
// realistic lightweight messaging protocol: a fixed per-message header
// (link + network + protocol framing) plus a payload whose size is computed
// by the sender from the actual data carried (page contents, holder lists,
// page maps, dirty-page piggybacks).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/ids.hpp"
#include "obs/trace_context.hpp"

namespace lotec {

enum class MessageKind : std::uint8_t {
  // --- locking traffic (small control messages) ---
  kLockAcquireRequest,   ///< site -> GDO home: request object lock
  kLockAcquireGrant,     ///< GDO home -> site: grant + holder list + page map
  kLockAcquireQueued,    ///< GDO home -> site: request enqueued (will wake later)
  kLockGrantWakeup,      ///< GDO home -> site: queued request now granted
  kLockReleaseRequest,   ///< site -> GDO home: root release + dirty-page info
  kLockReleaseAck,       ///< GDO home -> site
  // --- consistency traffic (page data) ---
  kPageFetchRequest,     ///< acquiring site -> owner site: page list wanted
  kPageFetchReply,       ///< owner site -> acquiring site: page contents
  kDemandFetchRequest,   ///< LOTEC misprediction: fetch one page on demand
  kDemandFetchReply,
  kUpdatePush,           ///< RC extension: eager push of updates at release
  // --- directory maintenance ---
  kGdoReplicaSync,       ///< GDO home -> mirror: entry update
  kGdoReplicaAck,
  kGdoLookupRequest,     ///< site -> GDO home: read-only entry lookup
  kGdoLookupReply,
  kGdoRebuildRequest,    ///< restarted home -> mirror: entry copies wanted
  kGdoRebuildReply,      ///< mirror -> restarted home: entry + page map
  // --- prefetch extension (Section 5.1 future work) ---
  kPrefetchLockRequest,  ///< optimistic pre-acquisition of a lock
  kPrefetchPageReply,
  // --- inter-family lock caching (callback locking extension) ---
  kLockCallback,         ///< GDO home -> caching site: revoke/downgrade cached lock
  kCallbackReply,        ///< caching site -> GDO home: flush + dirty-page records
  // --- multi-version snapshot reads (mv_read extension) ---
  kSnapshotMapRequest,   ///< reading site -> GDO home: page map + commit tick
  kSnapshotMapReply,     ///< GDO home -> reading site: map copy, no lock taken
  kSnapshotFetchRequest, ///< reading site -> owner site: versioned pages wanted
  kSnapshotFetchReply,   ///< owner site -> reading site: newest-\<=-stamp pages
  // --- elastic directory (consistent-hash ring extension) ---
  kShardMigrateRequest,  ///< new owner -> old owner: entry handoff wanted
  kShardMigrateReply,    ///< old owner -> new owner: entry + page map
  kShardRedirect,        ///< fenced owner -> requester: shard moved, re-route

  kNumKinds  // sentinel
};

[[nodiscard]] constexpr std::string_view to_string(MessageKind k) noexcept {
  switch (k) {
    case MessageKind::kLockAcquireRequest: return "LockAcquireRequest";
    case MessageKind::kLockAcquireGrant: return "LockAcquireGrant";
    case MessageKind::kLockAcquireQueued: return "LockAcquireQueued";
    case MessageKind::kLockGrantWakeup: return "LockGrantWakeup";
    case MessageKind::kLockReleaseRequest: return "LockReleaseRequest";
    case MessageKind::kLockReleaseAck: return "LockReleaseAck";
    case MessageKind::kPageFetchRequest: return "PageFetchRequest";
    case MessageKind::kPageFetchReply: return "PageFetchReply";
    case MessageKind::kDemandFetchRequest: return "DemandFetchRequest";
    case MessageKind::kDemandFetchReply: return "DemandFetchReply";
    case MessageKind::kUpdatePush: return "UpdatePush";
    case MessageKind::kGdoReplicaSync: return "GdoReplicaSync";
    case MessageKind::kGdoReplicaAck: return "GdoReplicaAck";
    case MessageKind::kGdoLookupRequest: return "GdoLookupRequest";
    case MessageKind::kGdoLookupReply: return "GdoLookupReply";
    case MessageKind::kGdoRebuildRequest: return "GdoRebuildRequest";
    case MessageKind::kGdoRebuildReply: return "GdoRebuildReply";
    case MessageKind::kPrefetchLockRequest: return "PrefetchLockRequest";
    case MessageKind::kPrefetchPageReply: return "PrefetchPageReply";
    case MessageKind::kLockCallback: return "LockCallback";
    case MessageKind::kCallbackReply: return "CallbackReply";
    case MessageKind::kSnapshotMapRequest: return "SnapshotMapRequest";
    case MessageKind::kSnapshotMapReply: return "SnapshotMapReply";
    case MessageKind::kSnapshotFetchRequest: return "SnapshotFetchRequest";
    case MessageKind::kSnapshotFetchReply: return "SnapshotFetchReply";
    case MessageKind::kShardMigrateRequest: return "ShardMigrateRequest";
    case MessageKind::kShardMigrateReply: return "ShardMigrateReply";
    case MessageKind::kShardRedirect: return "ShardRedirect";
    case MessageKind::kNumKinds: break;
  }
  return "?";
}

/// Does this kind carry page data (as opposed to pure control information)?
[[nodiscard]] constexpr bool carries_page_data(MessageKind k) noexcept {
  switch (k) {
    case MessageKind::kPageFetchReply:
    case MessageKind::kDemandFetchReply:
    case MessageKind::kUpdatePush:
    case MessageKind::kPrefetchPageReply:
    case MessageKind::kSnapshotFetchReply:
      return true;
    default:
      return false;
  }
}

/// Wire sizing constants (bytes).
namespace wire {
/// Fixed framing per message: Ethernet (18) + IP (20) + UDP (8) + LOTEC
/// protocol header (18: kind, ids, lengths).
inline constexpr std::uint64_t kHeaderBytes = 64;
/// One <transaction id, node id> pair in a holder / waiter list (Fig. 1).
inline constexpr std::uint64_t kTxnNodePairBytes = 16;
/// One page-map entry: page index + owning node + version LSN.
inline constexpr std::uint64_t kPageMapEntryBytes = 16;
/// One dirty-page record piggybacked on a release message.
inline constexpr std::uint64_t kDirtyPageRecordBytes = 8;
/// A page-list entry in a fetch request.
inline constexpr std::uint64_t kPageRequestEntryBytes = 8;
/// Lock metadata (object id, mode, state flags) in lock messages.
inline constexpr std::uint64_t kLockRecordBytes = 24;
/// Per-entry header inside a batched frame (kind, ids, length): a message
/// that joins an open batch pays this instead of the full kHeaderBytes —
/// the network/transport framing (Ethernet/IP/UDP) is shared with the batch
/// head.  Physical accounting only; logical per-message costs never change.
inline constexpr std::uint64_t kBatchEntryHeaderBytes = 16;
}  // namespace wire

/// One recorded message.  `payload_bytes` excludes the fixed header.
struct WireMessage {
  MessageKind kind{};
  NodeId src{};
  NodeId dst{};
  /// Object whose consistency/locking this message serves (may be invalid
  /// for directory housekeeping not attributable to a single object).
  ObjectId object{};
  std::uint64_t payload_bytes = 0;
  /// Causal header (rides in the fixed frame's padding — see
  /// obs/trace_context.hpp).  NOT part of total_bytes() and never compared
  /// by the checker's message fingerprint; `mutable` so the Transport can
  /// stamp it on the const reference every call site passes (the five
  /// members above stay positional-brace-initializable).
  mutable TraceContext trace{};

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return wire::kHeaderBytes + payload_bytes;
  }
};

}  // namespace lotec
