// Transport: the single choke point for cross-node communication.
//
// Nodes in this reproduction live in one process, so "sending" a message is
// a direct call into the destination's service object — but every such call
// must pass its WireMessage(s) through the Transport, which (a) accounts
// them in NetworkStats, (b) enforces reachability (a node can be marked
// failed to exercise GDO replica failover), (c) knows whether the network
// is multicast-capable (Section 6 extension), and (d) consults the
// installed FaultHooks, the seam through which the fault-injection engine
// (src/fault) drops, duplicates and delays messages and advances its
// logical clock.  With no hooks installed the fault paths cost one pointer
// comparison — the disabled engine is free.
//
// Local operations (src == dst) are free: the paper's model charges network
// cost only for inter-site messages, and the locking-overhead analysis of
// Section 5.1 counts them separately.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "net/net_stats.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"

namespace lotec {

/// A message could not be delivered because a node is failed (crashed) or
/// the link between src and dst is partitioned.  Carries both endpoints:
/// the sender needs to know *which* side failed to pick a recovery path
/// (relocate itself vs retry against another copy).  `src` may be invalid
/// when the failure is detected outside a concrete send (directory routing).
class NodeUnreachable : public Error {
 public:
  explicit NodeUnreachable(NodeId dst)
      : Error("node " + std::to_string(dst.value()) + " unreachable"),
        dst_(dst) {}
  NodeUnreachable(NodeId src, NodeId dst)
      : Error("node " + std::to_string(dst.value()) + " unreachable from " +
              (src.valid() ? std::to_string(src.value()) : "?")),
        src_(src),
        dst_(dst) {}

  [[nodiscard]] NodeId src() const noexcept { return src_; }
  /// The unreachable node (kept as `node()` for pre-fault-engine callers).
  [[nodiscard]] NodeId node() const noexcept { return dst_; }

 private:
  NodeId src_{};
  NodeId dst_;
};

/// A message was lost in transit by the fault engine.  Distinct from
/// NodeUnreachable (both endpoints are up); the runtime treats both as
/// transient and retries with backoff.
class MessageDropped : public Error {
 public:
  explicit MessageDropped(const WireMessage& m)
      : Error(std::string("message ") + std::string(to_string(m.kind)) +
              " " + std::to_string(m.src.value()) + "->" +
              std::to_string(m.dst.value()) + " dropped by fault injection"),
        kind_(m.kind) {}
  [[nodiscard]] MessageKind kind() const noexcept { return kind_; }

 private:
  MessageKind kind_;
};

/// The seam between the network substrate and the fault-injection engine
/// (src/fault implements this; net stays dependency-free).  `on_message` is
/// consulted for every send *before* reachability checks: it advances the
/// engine's logical clock, fires due schedule events (which may flip node
/// reachability via Transport::set_node_failed), and decides message fate —
/// it may throw MessageDropped / NodeUnreachable (partition), and returns
/// the number of EXTRA copies to account (duplication).
///
/// The query surface (now / crash_count / lease_term) is what the GDO's
/// lock-lease machinery reads to detect orphaned locks: a holder installed
/// at crash epoch E whose node is now at epoch > E belongs to a dead
/// incarnation and may be reclaimed once its lease expires.
class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  /// May throw MessageDropped or NodeUnreachable; returns extra copies to
  /// record (message duplication).
  virtual std::size_t on_message(const WireMessage& m) = 0;

  /// Logical time: messages consulted so far (the deterministic clock all
  /// schedule triggers and leases are expressed in).
  [[nodiscard]] virtual std::uint64_t now() const = 0;

  /// How many times `node` has crashed so far (its crash epoch).
  [[nodiscard]] virtual std::uint64_t crash_count(NodeId node) const = 0;

  /// Lease term (in logical ticks) granted with every global lock.
  [[nodiscard]] virtual std::uint64_t lease_term() const = 0;

  /// Atomic sections.  While at least one is open, due schedule events are
  /// deferred to the first message after the last section closes (the clock
  /// and background chaos still run).  The directory opens a section around
  /// each entry mutation *and its replica sync*: a crash event landing
  /// between the two would strand the mutation on the dying home alone —
  /// the caller keeps a grant (or loses a registration) that no surviving
  /// copy records.  A real primary acks only after the backup does; this is
  /// the synchronous emulation's equivalent of that ordering.
  virtual void begin_atomic() noexcept {}
  virtual void end_atomic() noexcept {}
};

/// RAII guard for FaultHooks atomic sections; no-op without hooks.
class FaultAtomicSection {
 public:
  explicit FaultAtomicSection(FaultHooks* hooks) noexcept : hooks_(hooks) {
    if (hooks_ != nullptr) hooks_->begin_atomic();
  }
  ~FaultAtomicSection() {
    if (hooks_ != nullptr) hooks_->end_atomic();
  }
  FaultAtomicSection(const FaultAtomicSection&) = delete;
  FaultAtomicSection& operator=(const FaultAtomicSection&) = delete;

 private:
  FaultHooks* hooks_;
};

/// Passive observation seam on the same choke point FaultHooks uses.  The
/// schedule checker (src/check) listens here to count delivery steps and
/// drive PCT priority changepoints.  A probe sees every message BEFORE the
/// fault engine's verdict — dropped or delayed messages still count as
/// steps, so step numbering is stable across fault outcomes — and it must
/// never send, mutate cluster state, or throw.  Disabled cost: one pointer
/// comparison per send (mirrors the fault and tracer seams).
class MessageProbe {
 public:
  virtual ~MessageProbe() = default;
  virtual void on_transport_message(const WireMessage& m) = 0;
};

struct NetworkConfig {
  bool multicast_capable = false;
  /// Coalesce same-round directory traffic (release, replica-sync, callback
  /// rounds) to one destination into one physical batch frame.  Off by
  /// default: the figures' logical per-kind counters are identical either
  /// way, but the physical ledger and wire-transport framing change, so the
  /// knob must be explicit.  Incompatible with the fault engine (batched
  /// tails defer their acks, which would mask per-message fault verdicts);
  /// ClusterConfig::validate enforces that.
  bool batch_messages = false;
};

/// Which message kinds may join a batch frame: round traffic the directory
/// emits in bursts to the same destination within one protocol action.
/// Grants, wakeups and fetches stay unbatched — their recipients act on
/// them immediately and reordering relative to the round would change the
/// schedule.
[[nodiscard]] constexpr bool batch_eligible(MessageKind k) noexcept {
  switch (k) {
    case MessageKind::kLockReleaseRequest:
    case MessageKind::kLockReleaseAck:
    case MessageKind::kGdoReplicaSync:
    case MessageKind::kGdoReplicaAck:
    case MessageKind::kLockCallback:
    case MessageKind::kCallbackReply:
      return true;
    default:
      return false;
  }
}

class Transport {
 public:
  explicit Transport(std::size_t num_nodes, NetworkConfig config = {})
      : config_(config), failed_(num_nodes, false) {}

  /// Polymorphic: the wire transport (src/wire) overrides the three
  /// behavioral entry points below to ship each accounted message through
  /// real worker processes.  NetworkStats holds a mutex, so Transport was
  /// never copyable; slicing is not a hazard.
  virtual ~Transport() = default;

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return failed_.size();
  }
  [[nodiscard]] NetworkStats& stats() noexcept { return stats_; }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool multicast_capable() const noexcept {
    return config_.multicast_capable;
  }

  /// Install (or clear) the fault-injection seam.  Owned by the caller.
  void set_fault_hooks(FaultHooks* hooks) noexcept { hooks_ = hooks; }
  [[nodiscard]] FaultHooks* fault_hooks() const noexcept { return hooks_; }

  /// Install (or clear) the span tracer whose logical clock advances once
  /// per message.  Owned by the caller.  Like the fault seam, a disabled
  /// tracer costs one pointer comparison plus one bool check per send.
  void set_tracer(SpanTracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] SpanTracer* tracer() const noexcept { return tracer_; }

  /// Install (or clear) the passive message probe.  Owned by the caller.
  void set_probe(MessageProbe* probe) noexcept { probe_ = probe; }
  [[nodiscard]] MessageProbe* probe() const noexcept { return probe_; }

  /// Install (or clear) the timeseries collector whose logical window
  /// clock advances once per accounted message.  Owned by the caller.
  /// Same contract as the tracer seam: the collector never sends, so a
  /// run with telemetry on carries bit-identical traffic; when off the
  /// cost is one pointer comparison per send.
  void set_timeseries(TimeseriesCollector* collector) noexcept {
    timeseries_ = collector;
  }
  [[nodiscard]] TimeseriesCollector* timeseries() const noexcept {
    return timeseries_;
  }

  /// Install (or clear) the always-on logical/physical send tallies (the
  /// registry counters `net.logical_sends` / `net.physical_sends`), so the
  /// timeseries can rate batching effectiveness per window.  Owned by the
  /// caller (ClusterCore resolves them at construction).
  void set_send_counters(MetricsCounter* logical,
                         MetricsCounter* physical) noexcept {
    logical_sends_ = logical;
    physical_sends_ = physical;
  }

  /// Install (or clear) the always-on flight recorder; every send is
  /// mirrored into both endpoints' rings.  Owned by the caller.
  void set_flight_recorder(FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }
  [[nodiscard]] FlightRecorder* flight_recorder() const noexcept {
    return recorder_;
  }

  /// Account one message.  Messages where src == dst are local and free.
  /// Throws NodeUnreachable if either endpoint is failed (a crashed sender
  /// cannot put anything on the wire) and propagates fault-engine verdicts
  /// (MessageDropped, partition NodeUnreachable).
  virtual void send(const WireMessage& m) {
    if (tracer_ != nullptr) tracer_->tick_message();
    stamp_and_record(m);
    if (probe_ != nullptr) probe_->on_transport_message(m);
    check_node(m.src);
    check_node(m.dst);
    std::size_t extra = 0;
    if (hooks_ != nullptr) extra = hooks_->on_message(m);
    if (failed_[m.src.value()]) throw NodeUnreachable(m.src, m.src);
    if (failed_[m.dst.value()]) throw NodeUnreachable(m.src, m.dst);
    if (m.src == m.dst) {
      last_send_joined_ = false;
      return;  // local, no network traffic
    }
    // Batching decides the PHYSICAL fate only, after every per-message
    // semantic above (tick, stamp, probe, fault verdict, reachability) has
    // run unchanged — which is why the logical ledgers and the checker's
    // schedules are bit-identical whether the knob is on or off.
    const bool joined = note_batch(m);
    stats_.record(m, joined);
    for (std::size_t i = 0; i < extra; ++i) stats_.record(m);
    last_send_joined_ = joined;
    if (joined) ++window_joins_;
    if (logical_sends_ != nullptr) {
      logical_sends_->add(1 + extra);
      physical_sends_->add((joined ? 0 : 1) + extra);
    }
    if (timeseries_ != nullptr) timeseries_->on_message();
  }

  /// Open/close a batch window.  Within a window, the second and later
  /// batch-eligible messages to the same (src, dst) pair join the pair's
  /// open batch frame instead of paying a physical send.  Windows are
  /// opened around one protocol round (a release batch, a callback round);
  /// nesting is allowed and coalescing spans the outermost window.  No-ops
  /// when batching is off.
  void begin_batch_window() {
    if (!config_.batch_messages) return;
    ++batch_depth_;
  }
  void end_batch_window() {
    if (!config_.batch_messages || batch_depth_ == 0) return;
    if (--batch_depth_ == 0) {
      // Mark the flush point in the trace when the window actually
      // coalesced something (object carries the join count); instants send
      // nothing, so traffic stays identical.
      if (tracer_ != nullptr && window_joins_ > 0)
        tracer_->instant(SpanPhase::kBatchFlush, 0, 0, window_joins_);
      window_joins_ = 0;
      open_batches_.clear();
      on_batch_window_end();
    }
  }

  [[nodiscard]] bool batching_enabled() const noexcept {
    return config_.batch_messages;
  }
  /// Whether the most recent send() joined an open batch (the wire
  /// transport reads this to defer the per-message ack wait).
  [[nodiscard]] bool last_send_joined() const noexcept {
    return last_send_joined_;
  }

  /// Account a one-to-many push (RC extension).  `destinations` that equal
  /// src are skipped.  With multicast the network carries one copy.
  ///
  /// Partial-failure semantics: failed destinations are SKIPPED and
  /// returned; stats record the successfully reached subset (with multicast
  /// one wire copy as long as at least one destination is reachable).  The
  /// caller must not apply the push's effects at the returned nodes.  A
  /// failed *source* still throws: a crashed node sends nothing.
  virtual std::vector<NodeId> send_to_all(
      const WireMessage& m, const std::vector<NodeId>& destinations) {
    if (tracer_ != nullptr) tracer_->tick_message();
    stamp_and_record(m);
    if (probe_ != nullptr) probe_->on_transport_message(m);
    check_node(m.src);
    if (hooks_ != nullptr) (void)hooks_->on_message(m);
    if (failed_[m.src.value()]) throw NodeUnreachable(m.src, m.src);
    std::vector<NodeId> unreachable;
    std::size_t remote = 0;
    for (const NodeId dst : destinations) {
      check_node(dst);
      if (dst == m.src) continue;
      if (failed_[dst.value()]) {
        unreachable.push_back(dst);
        continue;
      }
      ++remote;
    }
    if (remote > 0) {
      stats_.record_multicast(m, remote, config_.multicast_capable);
      const std::size_t copies = config_.multicast_capable ? 1 : remote;
      if (logical_sends_ != nullptr) {
        logical_sends_->add(copies);
        physical_sends_->add(copies);
      }
    }
    last_send_joined_ = false;  // fan-out traffic never joins a batch
    if (timeseries_ != nullptr) timeseries_->on_message();
    return unreachable;
  }

  /// Count a purely local lock operation (Section 5.1 accounting).
  void record_local_lock_op() { stats_.record_local_lock_op(); }

  [[nodiscard]] bool reachable(NodeId node) const {
    check_node(node);
    return !failed_[node.value()];
  }

  /// Mark a node failed/recovered (GDO failover tests and the fault
  /// engine's crash/restart events).  The wire transport overrides this to
  /// kill/respawn the corresponding worker process.
  virtual void set_node_failed(NodeId node, bool failed) {
    check_node(node);
    failed_[node.value()] = failed;
  }

  /// Called once by Cluster::execute after a batch drains, before results
  /// are assembled.  The wire transport gathers every worker's delivery
  /// ledger here and cross-checks it against what it shipped; the
  /// in-process transport has nothing to reconcile.
  virtual void on_batch_complete() {}

 protected:
  /// Hook for subclasses when the outermost batch window closes: the wire
  /// transport flushes deferred acks here.  In-process delivery is
  /// synchronous, so the base class has nothing to flush.
  virtual void on_batch_window_end() {}

  /// Decide whether `m` joins an open batch.  Returns false (and opens a
  /// batch head for the pair when eligible) outside that case.
  [[nodiscard]] bool note_batch(const WireMessage& m) {
    if (batch_depth_ == 0 || !batch_eligible(m.kind)) return false;
    const std::uint64_t pair =
        (static_cast<std::uint64_t>(m.src.value()) << 32) | m.dst.value();
    for (const std::uint64_t open : open_batches_)
      if (open == pair) return true;
    open_batches_.push_back(pair);  // m becomes the pair's batch head
    return false;
  }
  /// Stamp the sender's causal context into the frame padding and mirror
  /// the message into the tracer's record and the flight recorder.  Runs
  /// BEFORE the probe and the fault hooks so remote-side spans, checker
  /// probes and fault redeliveries all see the stamped context.  The stamp
  /// rides in WireMessage padding (`mutable TraceContext trace`) — zero
  /// accounted bytes, zero extra messages, and the checker's fingerprint
  /// hashes explicit fields only, so traffic stays bit-identical.
  void stamp_and_record(const WireMessage& m) {
    const bool traced = tracer_ != nullptr && tracer_->enabled();
    if (traced) m.trace = tracer_->current_context();
    if (!traced && recorder_ == nullptr) return;
    const std::uint64_t object =
        m.object.valid() ? m.object.value() : SpanRecord::kNoObject;
    if (traced) {
      tracer_->note_message(to_string(m.kind), m.src.value(), m.dst.value(),
                            object, m.total_bytes(), m.trace);
    }
    if (recorder_ != nullptr) {
      recorder_->note_message(to_string(m.kind), m.src.value(),
                              m.dst.value(), object, m.total_bytes(),
                              m.trace);
    }
  }

  void check_node(NodeId node) const {
    if (!node.valid() || node.value() >= failed_.size())
      throw UsageError("Transport: node id out of range");
  }

  NetworkConfig config_;
  NetworkStats stats_;
  std::vector<bool> failed_;
  FaultHooks* hooks_ = nullptr;
  SpanTracer* tracer_ = nullptr;
  MessageProbe* probe_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  TimeseriesCollector* timeseries_ = nullptr;
  MetricsCounter* logical_sends_ = nullptr;
  MetricsCounter* physical_sends_ = nullptr;
  /// Joins coalesced in the current batch window (batch.flush instant).
  std::uint64_t window_joins_ = 0;
  /// (src << 32 | dst) pairs with an open batch head in the current window.
  /// A round touches a handful of destinations, so a linear scan beats any
  /// map; cleared when the outermost window closes.
  std::vector<std::uint64_t> open_batches_;
  std::size_t batch_depth_ = 0;
  bool last_send_joined_ = false;
};

/// RAII batch window (no-op when batching is disabled).
class BatchWindow {
 public:
  explicit BatchWindow(Transport& transport) noexcept
      : transport_(transport) {
    transport_.begin_batch_window();
  }
  ~BatchWindow() { transport_.end_batch_window(); }
  BatchWindow(const BatchWindow&) = delete;
  BatchWindow& operator=(const BatchWindow&) = delete;

 private:
  Transport& transport_;
};

}  // namespace lotec
