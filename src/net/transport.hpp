// Transport: the single choke point for cross-node communication.
//
// Nodes in this reproduction live in one process, so "sending" a message is
// a direct call into the destination's service object — but every such call
// must pass its WireMessage(s) through the Transport, which (a) accounts
// them in NetworkStats, (b) enforces reachability (a node can be marked
// failed to exercise GDO replica failover), and (c) knows whether the
// network is multicast-capable (Section 6 extension).
//
// Local operations (src == dst) are free: the paper's model charges network
// cost only for inter-site messages, and the locking-overhead analysis of
// Section 5.1 counts them separately.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "net/net_stats.hpp"

namespace lotec {

/// Destination node is marked failed.
class NodeUnreachable : public Error {
 public:
  explicit NodeUnreachable(NodeId node)
      : Error("node " + std::to_string(node.value()) + " unreachable"),
        node_(node) {}
  [[nodiscard]] NodeId node() const noexcept { return node_; }

 private:
  NodeId node_;
};

struct NetworkConfig {
  bool multicast_capable = false;
};

class Transport {
 public:
  explicit Transport(std::size_t num_nodes, NetworkConfig config = {})
      : config_(config), failed_(num_nodes, false) {}

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return failed_.size();
  }
  [[nodiscard]] NetworkStats& stats() noexcept { return stats_; }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool multicast_capable() const noexcept {
    return config_.multicast_capable;
  }

  /// Account one message.  Messages where src == dst are local and free.
  /// Throws NodeUnreachable if the destination is failed.
  void send(const WireMessage& m) {
    check_node(m.src);
    check_node(m.dst);
    if (failed_[m.dst.value()]) throw NodeUnreachable(m.dst);
    if (m.src == m.dst) return;  // local, no network traffic
    stats_.record(m);
  }

  /// Account a one-to-many push (RC extension).  `destinations` that equal
  /// src are skipped.  With multicast the network carries one copy.
  void send_to_all(WireMessage m, const std::vector<NodeId>& destinations) {
    check_node(m.src);
    std::size_t remote = 0;
    for (const NodeId dst : destinations) {
      check_node(dst);
      if (dst == m.src) continue;
      if (failed_[dst.value()]) throw NodeUnreachable(dst);
      ++remote;
    }
    if (remote == 0) return;
    stats_.record_multicast(m, remote, config_.multicast_capable);
  }

  /// Count a purely local lock operation (Section 5.1 accounting).
  void record_local_lock_op() { stats_.record_local_lock_op(); }

  [[nodiscard]] bool reachable(NodeId node) const {
    check_node(node);
    return !failed_[node.value()];
  }

  /// Mark a node failed/recovered (used by GDO failover tests).
  void set_node_failed(NodeId node, bool failed) {
    check_node(node);
    failed_[node.value()] = failed;
  }

 private:
  void check_node(NodeId node) const {
    if (!node.valid() || node.value() >= failed_.size())
      throw UsageError("Transport: node id out of range");
  }

  NetworkConfig config_;
  NetworkStats stats_;
  std::vector<bool> failed_;
};

}  // namespace lotec
