// Quiescent-state validation: system-wide invariants that must hold on a
// Cluster once no transactions are running.
//
//   1. Every GDO lock is free: no holder families, no waiters (all
//      transactions released their locks).
//   2. The page map is honest: the site named as owner of a page holds a
//      resident copy of it at exactly the mapped version.
//   3. No site holds a page whose version EXCEEDS the mapped newest version
//      (nobody is "ahead" of the directory).
//   4. No dirty bits linger anywhere (dirty pages only exist while the
//      writing family holds the lock).
//   5. No pinned objects remain at any node.
//
// Returns a list of human-readable violations (empty = all invariants
// hold); tests assert emptiness, tools can print them.
#pragma once

#include <string>
#include <vector>

#include "runtime/cluster.hpp"

namespace lotec {

[[nodiscard]] std::vector<std::string> validate_quiescent(Cluster& cluster);

}  // namespace lotec
