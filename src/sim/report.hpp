// Report: plain-text table/series printing for the benchmark harnesses.
//
// Each figure bench prints the same rows/series the paper's figure plots
// (x-axis label + one column per protocol) plus a CSV block for plotting.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace lotec {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Render with aligned columns.
  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
      widths[i] = headers_[i].size();
    for (const auto& r : rows_)
      for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i)
        widths[i] = std::max(widths[i], r[i].size());
    const auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < headers_.size(); ++i) {
        const std::string& c = i < cells.size() ? cells[i] : empty_;
        os << (i == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[i]))
           << (i == 0 ? std::left : std::right) << c;
        os << std::right;
      }
      os << '\n';
    };
    line(headers_);
    std::string rule;
    for (std::size_t i = 0; i < headers_.size(); ++i)
      rule += std::string(widths[i], '-') + (i + 1 < headers_.size() ? "  " : "");
    os << rule << '\n';
    for (const auto& r : rows_) line(r);
  }

  /// Render as CSV (for external plotting).
  void print_csv(std::ostream& os = std::cout) const {
    const auto csv_line = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i)
        os << (i ? "," : "") << cells[i];
      os << '\n';
    };
    csv_line(headers_);
    for (const auto& r : rows_) csv_line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::string empty_;
};

[[nodiscard]] inline std::string fmt_u64(std::uint64_t v) {
  return std::to_string(v);
}

[[nodiscard]] inline std::string fmt_double(double v, int precision = 1) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

[[nodiscard]] inline std::string fmt_percent(double ratio, int precision = 1) {
  return fmt_double(ratio * 100.0, precision) + "%";
}

inline void print_section(const std::string& title, std::ostream& os = std::cout) {
  os << '\n' << "== " << title << " ==\n";
}

}  // namespace lotec
