#include "sim/experiment.hpp"

#include <unordered_set>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace lotec {

namespace {

bool is_lock_kind(MessageKind k) {
  switch (k) {
    case MessageKind::kLockAcquireRequest:
    case MessageKind::kLockAcquireGrant:
    case MessageKind::kLockAcquireQueued:
    case MessageKind::kLockGrantWakeup:
    case MessageKind::kLockReleaseRequest:
    case MessageKind::kLockReleaseAck:
    case MessageKind::kPrefetchLockRequest:
    case MessageKind::kLockCallback:
    case MessageKind::kCallbackReply:
      return true;
    default:
      return false;
  }
}

bool is_page_kind(MessageKind k) {
  switch (k) {
    case MessageKind::kPageFetchRequest:
    case MessageKind::kPageFetchReply:
    case MessageKind::kDemandFetchRequest:
    case MessageKind::kDemandFetchReply:
    case MessageKind::kUpdatePush:
    case MessageKind::kPrefetchPageReply:
      return true;
    default:
      return false;
  }
}

/// Distinct (object, method) pairs of a script, first-seen order — the
/// family's statically predictable lock set for the prefetch ablation.
std::vector<std::pair<ObjectId, MethodId>> script_lock_set(
    const FamilyScript& script) {
  std::vector<std::pair<ObjectId, MethodId>> out;
  std::unordered_set<std::size_t> seen;
  for (const ScriptNode& node : script.nodes)
    if (seen.insert(node.object).second)
      out.emplace_back(ObjectId(node.object), node.method);
  return out;
}

}  // namespace

ScenarioResult run_scenario(const Workload& workload, ProtocolKind protocol,
                            const ExperimentOptions& options) {
  ClusterConfig cfg;
  cfg.nodes = options.nodes;
  cfg.protocol = protocol;
  cfg.page_size = options.page_size;
  cfg.seed = options.cluster_seed;
  cfg.max_active_families = options.max_active_families;
  cfg.net.multicast_capable = options.multicast;
  cfg.undo = options.undo;
  cfg.cache_capacity_pages = options.cache_capacity_pages;
  cfg.lock_cache = options.lock_cache;
  cfg.lock_cache_capacity = options.lock_cache_capacity;
  cfg.fault = options.fault;
  if (options.fault.has_node_faults()) cfg.gdo.replicate = true;
  Cluster cluster(cfg);
  if (options.record_trace) cluster.stats().enable_trace(std::size_t{1} << 22);

  std::vector<RootRequest> requests = workload.instantiate(cluster);
  if (options.site_locality >= 0.0) {
    Rng placement(options.cluster_seed ^ 0x10CA11D1ULL);
    for (RootRequest& r : requests)
      r.node = NodeId(static_cast<std::uint32_t>(
          placement.chance(options.site_locality)
              ? 0
              : placement.below(options.nodes)));
  }
  if (options.prefetch_hints) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto* script =
          static_cast<const FamilyScript*>(requests[i].user_data.get());
      requests[i].prefetch = script_lock_set(*script);
    }
  }

  const std::vector<TxnResult> results = cluster.execute(std::move(requests));

  ScenarioResult out;
  out.protocol = protocol;
  for (std::size_t i = 0; i < workload.num_objects(); ++i)
    out.object_ids.push_back(ObjectId(i));

  const NetworkStats& stats = cluster.stats();
  out.per_object = stats.per_object();
  for (const ObjectId id : out.object_ids)
    out.page_data[id] = stats.page_data_by_object(id);
  out.total = stats.total();
  out.local_lock_ops = stats.local_lock_ops();
  for (std::size_t k = 0;
       k < static_cast<std::size_t>(MessageKind::kNumKinds); ++k) {
    const auto kind = static_cast<MessageKind>(k);
    const TrafficCounter c = stats.by_kind(kind);
    if (is_lock_kind(kind)) out.lock_messages += c.messages;
    if (is_page_kind(kind)) out.page_messages += c.messages;
  }
  out.cache_regrants = cluster.gdo().cache_regrants();
  out.cache_callbacks = cluster.gdo().cache_callbacks();
  out.cache_flushes = cluster.gdo().cache_flushes();

  std::vector<double> trips;
  trips.reserve(results.size());
  for (const TxnResult& r : results) {
    if (r.committed)
      ++out.committed;
    else
      ++out.aborted;
    out.deadlock_retries += static_cast<std::uint64_t>(r.deadlock_retries);
    out.demand_fetches += r.demand_fetches;
    out.pages_fetched += r.pages_fetched;
    out.delta_pages += r.delta_pages;
    out.remote_round_trips += r.remote_round_trips;
    out.fault_retries += static_cast<std::uint64_t>(r.fault_retries);
    if (r.crashed_in_commit) ++out.crashed_in_commit;
    trips.push_back(static_cast<double>(r.remote_round_trips));
  }
  out.round_trips_p50 = percentile(trips, 50);
  out.round_trips_p95 = percentile(trips, 95);
  if (const FaultEngine* engine = cluster.fault_engine())
    out.fault_stats = engine->stats();
  if (options.record_trace) out.trace = stats.trace();
  return out;
}

std::vector<ScenarioResult> run_protocol_suite(
    const Workload& workload, const std::vector<ProtocolKind>& protocols,
    const ExperimentOptions& options) {
  std::vector<ScenarioResult> out;
  out.reserve(protocols.size());
  for (const ProtocolKind p : protocols)
    out.push_back(run_scenario(workload, p, options));
  return out;
}

}  // namespace lotec
