#include "sim/experiment.hpp"

#include <unordered_set>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace lotec {

namespace {

bool is_lock_kind(MessageKind k) {
  switch (k) {
    case MessageKind::kLockAcquireRequest:
    case MessageKind::kLockAcquireGrant:
    case MessageKind::kLockAcquireQueued:
    case MessageKind::kLockGrantWakeup:
    case MessageKind::kLockReleaseRequest:
    case MessageKind::kLockReleaseAck:
    case MessageKind::kPrefetchLockRequest:
    case MessageKind::kLockCallback:
    case MessageKind::kCallbackReply:
      return true;
    default:
      return false;
  }
}

bool is_page_kind(MessageKind k) {
  switch (k) {
    case MessageKind::kPageFetchRequest:
    case MessageKind::kPageFetchReply:
    case MessageKind::kDemandFetchRequest:
    case MessageKind::kDemandFetchReply:
    case MessageKind::kUpdatePush:
    case MessageKind::kPrefetchPageReply:
    case MessageKind::kSnapshotMapRequest:
    case MessageKind::kSnapshotMapReply:
    case MessageKind::kSnapshotFetchRequest:
    case MessageKind::kSnapshotFetchReply:
      return true;
    default:
      return false;
  }
}

/// Distinct (object, method) pairs of a script, first-seen order — the
/// family's statically predictable lock set for the prefetch ablation.
std::vector<std::pair<ObjectId, MethodId>> script_lock_set(
    const FamilyScript& script) {
  std::vector<std::pair<ObjectId, MethodId>> out;
  std::unordered_set<std::size_t> seen;
  for (const ScriptNode& node : script.nodes)
    if (seen.insert(node.object).second)
      out.emplace_back(ObjectId(node.object), node.method);
  return out;
}

}  // namespace

ClusterConfig ExperimentOptions::to_cluster_config(
    ProtocolKind protocol) const {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.protocol = protocol;
  cfg.page_size = page_size;
  cfg.seed = cluster_seed;
  cfg.max_active_families = max_active_families;
  cfg.net.multicast_capable = multicast;
  cfg.net.batch_messages = batch_messages;
  cfg.undo = undo;
  cfg.cache_capacity_pages = cache_capacity_pages;
  cfg.lock_cache = lock_cache;
  cfg.lock_cache_capacity = lock_cache_capacity;
  cfg.fault = fault;
  if (fault.has_node_faults()) cfg.gdo.replicate = true;
  cfg.gdo.ring = ring;
  if (ring.enabled) cfg.gdo.replicate = true;  // quorum groups need it
  cfg.obs.trace_spans = trace_spans;
  cfg.obs.spans_jsonl = spans_jsonl;
  cfg.obs.chrome_trace = chrome_trace;
  cfg.obs.flight_dump = flight_dump;
  cfg.obs.timeseries = timeseries;
  cfg.obs.timeseries_interval = timeseries_interval;
  cfg.obs.timeseries_jsonl = timeseries_jsonl;
  cfg.wire = wire;
  cfg.mv_read = mv_read;
  cfg.mv_version_ring = mv_version_ring;
  return cfg;
}

void ExperimentOptions::validate() const {
  if (site_locality < -1.0 || site_locality > 1.0)
    throw UsageError(
        "ExperimentOptions: site_locality must lie in [-1, 1] (negative "
        "disables hot-site placement); got " + std::to_string(site_locality));
  if (read_only_fraction < 0.0 || read_only_fraction > 1.0)
    throw UsageError(
        "ExperimentOptions: read_only_fraction must lie in [0, 1]; got " +
        std::to_string(read_only_fraction));
  if (prefetch_hints && read_only_fraction > 0.0)
    throw UsageError(
        "ExperimentOptions: prefetch_hints assumes every family takes the "
        "locking path; disable it when read_only_fraction > 0");
  // Everything else maps onto a ClusterConfig knob; one validator, one set
  // of messages (and Cluster construction runs the same checks, so nothing
  // slips through a path that skips run_scenario).
  to_cluster_config(ProtocolKind::kLotec).validate();
}

std::string protocol_trace_path(const std::string& base,
                                ProtocolKind protocol) {
  const std::string tag = "_" + std::string(to_string(protocol));
  const auto dot = base.rfind('.');
  const auto slash = base.find_last_of("/\\");
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash))
    return base + tag;
  return base.substr(0, dot) + tag + base.substr(dot);
}

ScenarioResult run_scenario(const Workload& workload, ProtocolKind protocol,
                            const ExperimentOptions& options) {
  options.validate();
  Cluster cluster(options.to_cluster_config(protocol));
  if (options.record_trace) cluster.stats().enable_trace(std::size_t{1} << 22);

  std::vector<RootRequest> requests =
      workload.instantiate(cluster, options.read_only_fraction);
  if (options.strip_family_kinds)
    for (RootRequest& r : requests) r.kind = FamilyKind::kReadWrite;
  if (options.site_locality >= 0.0) {
    Rng placement(options.cluster_seed ^ 0x10CA11D1ULL);
    for (RootRequest& r : requests)
      r.node = NodeId(static_cast<std::uint32_t>(
          placement.chance(options.site_locality)
              ? 0
              : placement.below(options.nodes)));
  }
  if (options.prefetch_hints) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const auto* script =
          static_cast<const FamilyScript*>(requests[i].user_data.get());
      requests[i].prefetch = script_lock_set(*script);
    }
  }

  const std::vector<TxnResult> results = cluster.execute(std::move(requests));

  ScenarioResult out;
  out.protocol = protocol;
  for (std::size_t i = 0; i < workload.num_objects(); ++i)
    out.object_ids.push_back(ObjectId(i));

  ClusterObservation obs = cluster.observe();
  const NetworkStats& stats = obs.stats();
  out.per_object = stats.per_object();
  for (const ObjectId id : out.object_ids)
    out.page_data[id] = stats.page_data_by_object(id);
  out.total = stats.total();

  // Fold stats-derived measurements into the registry so the counters map
  // is the single complete snapshot.  Everything the runners and the
  // directory tally ("txn.*", "page.*", "cache.*", "lease.*",
  // "net.round_trips", "lock.local_grants") is already there — only the
  // message-kind classification and the local-lock tally live in
  // NetworkStats and get folded here.
  MetricsRegistry& metrics = obs.metrics();
  metrics.counter("lock.local_ops").add(stats.local_lock_ops());
  {
    std::uint64_t lock_msgs = 0, page_msgs = 0;
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(MessageKind::kNumKinds); ++k) {
      const auto kind = static_cast<MessageKind>(k);
      const TrafficCounter c = stats.by_kind(kind);
      if (is_lock_kind(kind)) lock_msgs += c.messages;
      if (is_page_kind(kind)) page_msgs += c.messages;
      // Per-kind breakdown ("net.kind.<Kind>.messages/bytes"): the series
      // lotec_sim --counters-out exports and the distributed-smoke CI job
      // diffs between in-process and --distributed runs.
      const std::string base = "net.kind." + std::string(to_string(kind));
      metrics.counter(base + ".messages").add(c.messages);
      metrics.counter(base + ".bytes").add(c.bytes);
    }
    metrics.counter("net.lock_messages").add(lock_msgs);
    metrics.counter("net.page_messages").add(page_msgs);
  }

  std::vector<double> trips;
  trips.reserve(results.size());
  for (const TxnResult& r : results) {
    if (r.committed)
      ++out.committed;
    else
      ++out.aborted;
    if (r.crashed_in_commit) ++out.crashed_in_commit;
    trips.push_back(static_cast<double>(r.remote_round_trips));
  }
  out.round_trips_p50 = percentile(trips, 50);
  out.round_trips_p95 = percentile(trips, 95);
  if (const FaultEngine* engine = obs.fault_engine())
    out.fault_stats = engine->stats();
  if (options.record_trace) out.trace = stats.trace();

  out.counters = metrics.counters();
  if (options.trace_spans) {
    obs.tracer().flush_sinks();
    out.spans = obs.spans();
    out.messages = obs.messages();
    out.histograms = metrics.histograms();
  }
  return out;
}

std::vector<ScenarioResult> run_protocol_suite(
    const Workload& workload, const std::vector<ProtocolKind>& protocols,
    const ExperimentOptions& options) {
  std::vector<ScenarioResult> out;
  out.reserve(protocols.size());
  for (const ProtocolKind p : protocols) {
    ExperimentOptions per = options;
    if (!per.spans_jsonl.empty())
      per.spans_jsonl = protocol_trace_path(per.spans_jsonl, p);
    if (!per.chrome_trace.empty())
      per.chrome_trace = protocol_trace_path(per.chrome_trace, p);
    out.push_back(run_scenario(workload, p, per));
  }
  return out;
}

}  // namespace lotec
