// Trace CSV serialization: dump a recorded message trace for external
// analysis (or tools/trace_report) and parse it back.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "fault/fault_schedule.hpp"
#include "net/net_stats.hpp"

namespace lotec {

/// Write `events` as CSV with a header row.
void dump_trace_csv(const std::vector<TraceEvent>& events, std::ostream& os);

/// Parse a CSV produced by dump_trace_csv.  Throws UsageError on malformed
/// input.
[[nodiscard]] std::vector<TraceEvent> load_trace_csv(std::istream& is);

/// Write the fault engine's injection trace as CSV with a header row (what
/// fired, at which logical tick, against which node/message).
void dump_fault_trace_csv(const std::vector<FaultRecord>& records,
                          std::ostream& os);

}  // namespace lotec
