#include "sim/validate.hpp"

#include <map>
#include <sstream>

namespace lotec {

namespace {

void check_object(Cluster& cluster, ObjectId id,
                  std::vector<std::string>& out) {
  const GdoEntry entry = cluster.gdo().snapshot(id);
  const auto oops = [&](const std::string& what) {
    std::ostringstream oss;
    oss << "object " << id.value() << ": " << what;
    out.push_back(oss.str());
  };

  // 1. Lock state quiescent.
  if (entry.state != GdoLockState::kFree)
    oops("lock not free (" + std::string(to_string(entry.state)) + ")");
  if (!entry.holders.empty()) oops("holder families linger");
  if (!entry.waiters.empty()) oops("waiter families linger");
  if (!entry.cached.empty()) oops("cached lock holders linger");

  // 2/3. Page map honesty + no site ahead of the directory.
  for (std::size_t p = 0; p < entry.num_pages; ++p) {
    const PageIndex page(static_cast<std::uint32_t>(p));
    const PageLocation& loc = entry.page_map.at(page);
    bool owner_checked = false;
    for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
      Node& node = cluster.node(NodeId(static_cast<std::uint32_t>(n)));
      std::lock_guard<std::mutex> lock(node.store_mu);
      const ObjectImage* img = node.store.find(id);
      if (img == nullptr) continue;
      if (img->has_page(page)) {
        const Lsn v = img->page_version(page);
        if (v > loc.version) {
          std::ostringstream oss;
          oss << "node " << n << " holds page " << p << " at version " << v
              << " ahead of the directory's " << loc.version;
          oops(oss.str());
        }
        if (node.id == loc.node) {
          owner_checked = true;
          if (v != loc.version) {
            std::ostringstream oss;
            oss << "owner node " << n << " holds page " << p
                << " at version " << v << ", directory says " << loc.version;
            oops(oss.str());
          }
        }
      } else if (node.id == loc.node) {
        std::ostringstream oss;
        oss << "directory names node " << n << " owner of page " << p
            << " but the page is not resident there";
        oops(oss.str());
      }
      // 4. No lingering dirt.
      if (img->dirty_pages().contains(page) && p == 0) {
        // (report dirty once per object, below)
      }
    }
    if (!owner_checked && loc.node.value() >= cluster.num_nodes())
      oops("page map names an out-of-range node");
  }

  // 4. Dirty bits clear at every site.
  for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
    Node& node = cluster.node(NodeId(static_cast<std::uint32_t>(n)));
    std::lock_guard<std::mutex> lock(node.store_mu);
    const ObjectImage* img = node.store.find(id);
    if (img != nullptr && !img->dirty_pages().empty()) {
      std::ostringstream oss;
      oss << "node " << n << " has lingering dirty pages "
          << img->dirty_pages().to_string();
      oops(oss.str());
    }
  }
}

}  // namespace

std::vector<std::string> validate_quiescent(Cluster& cluster) {
  std::vector<std::string> out;
  // Walk every object ever created (ids are sequential).
  for (std::uint64_t i = 0;; ++i) {
    const ObjectId id(i);
    try {
      (void)cluster.meta_of(id);
    } catch (const UsageError&) {
      break;  // past the last object
    }
    check_object(cluster, id, out);
  }
  // 5. No pins remain.
  for (std::size_t n = 0; n < cluster.num_nodes(); ++n) {
    Node& node = cluster.node(NodeId(static_cast<std::uint32_t>(n)));
    std::lock_guard<std::mutex> lock(node.store_mu);
    if (!node.pins.empty()) {
      std::ostringstream oss;
      oss << "node " << n << " still pins " << node.pins.size()
          << " object(s)";
      out.push_back(oss.str());
    }
    // 6. Lock caches drained (the end-of-batch drain flushed every deferred
    // report back to the directory).
    if (node.lock_cache.size() != 0) {
      std::ostringstream oss;
      oss << "node " << n << " still caches " << node.lock_cache.size()
          << " global lock(s)";
      out.push_back(oss.str());
    }
  }
  // 7. Elastic directory: migrations drained, and every entry is served by
  // exactly one partition — the one the residency map names (an entry in
  // two entries maps, or none, means a handoff lost or duplicated it).
  if (GdoService& gdo = cluster.gdo(); gdo.ring_enabled()) {
    if (const std::size_t q = gdo.pending_migrations(); q != 0)
      out.push_back(std::to_string(q) + " shard migration(s) still queued");
    std::map<std::uint64_t, std::vector<std::size_t>> served;
    for (std::size_t n = 0; n < cluster.num_nodes(); ++n)
      for (const ObjectId id :
           gdo.objects_homed_at(NodeId(static_cast<std::uint32_t>(n))))
        served[id.value()].push_back(n);
    for (std::uint64_t i = 0;; ++i) {
      const ObjectId id(i);
      try {
        (void)cluster.meta_of(id);
      } catch (const UsageError&) {
        break;
      }
      const NodeId res = gdo.resident_of(id);
      const auto it = served.find(i);
      std::ostringstream oss;
      if (it == served.end()) {
        oss << "object " << i << ": no partition serves its entry "
            << "(residency says node " << res.value() << ")";
        out.push_back(oss.str());
      } else if (it->second.size() != 1 ||
                 it->second.front() != res.value()) {
        oss << "object " << i << ": served by partition(s) {";
        for (std::size_t k = 0; k < it->second.size(); ++k)
          oss << (k ? ", " : "") << it->second[k];
        oss << "} but residency names node " << res.value();
        out.push_back(oss.str());
      }
    }
  }
  return out;
}

}  // namespace lotec
