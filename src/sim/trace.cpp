#include "sim/trace.hpp"

#include <sstream>

#include "common/error.hpp"

namespace lotec {

void dump_trace_csv(const std::vector<TraceEvent>& events, std::ostream& os) {
  os << "seq,kind,src,dst,object,payload_bytes,total_bytes\n";
  for (const TraceEvent& e : events) {
    os << e.seq << ',' << to_string(e.kind) << ',' << e.src.value() << ','
       << e.dst.value() << ',';
    if (e.object.valid())
      os << e.object.value();
    else
      os << "-";
    os << ',' << e.payload_bytes << ',' << e.total_bytes << '\n';
  }
}

void dump_fault_trace_csv(const std::vector<FaultRecord>& records,
                          std::ostream& os) {
  os << "tick,action,node,kind,object\n";
  for (const FaultRecord& r : records) {
    os << r.tick << ',' << to_string(r.action) << ',';
    if (r.node.valid())
      os << r.node.value();
    else
      os << "-";
    os << ',';
    if (r.kind != MessageKind::kNumKinds)
      os << to_string(r.kind);
    else
      os << "-";
    os << ',';
    if (r.object.valid())
      os << r.object.value();
    else
      os << "-";
    os << '\n';
  }
}

namespace {

MessageKind parse_kind(const std::string& name) {
  for (std::size_t k = 0; k < static_cast<std::size_t>(MessageKind::kNumKinds);
       ++k) {
    const auto kind = static_cast<MessageKind>(k);
    if (to_string(kind) == name) return kind;
  }
  throw UsageError("trace CSV: unknown message kind '" + name + "'");
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) out.push_back(cell);
  return out;
}

}  // namespace

std::vector<TraceEvent> load_trace_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) ||
      line != "seq,kind,src,dst,object,payload_bytes,total_bytes")
    throw UsageError("trace CSV: missing or unexpected header");
  std::vector<TraceEvent> out;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto cells = split_csv_line(line);
    if (cells.size() != 7)
      throw UsageError("trace CSV: malformed row '" + line + "'");
    TraceEvent e;
    e.seq = std::stoull(cells[0]);
    e.kind = parse_kind(cells[1]);
    e.src = NodeId(static_cast<std::uint32_t>(std::stoul(cells[2])));
    e.dst = NodeId(static_cast<std::uint32_t>(std::stoul(cells[3])));
    if (cells[4] != "-") e.object = ObjectId(std::stoull(cells[4]));
    e.payload_bytes = std::stoull(cells[5]);
    e.total_bytes = std::stoull(cells[6]);
    out.push_back(e);
  }
  return out;
}

}  // namespace lotec
