// Experiment harness: run one workload under one (or each) consistency
// protocol on a fresh cluster and collect the measurements the paper's
// figures report.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/cluster.hpp"
#include "workload/generator.hpp"

namespace lotec {

/// Everything measured from one (workload, protocol) run.
struct ScenarioResult {
  ProtocolKind protocol = ProtocolKind::kLotec;
  /// Object ids in creation order (Oi of the figures = object_ids[i]).
  std::vector<ObjectId> object_ids;
  /// Total consistency+locking traffic attributed to each object.
  std::unordered_map<ObjectId, TrafficCounter> per_object;
  /// Page-data-only traffic per object.
  std::unordered_map<ObjectId, TrafficCounter> page_data;
  TrafficCounter total;
  std::uint64_t local_lock_ops = 0;
  // Per-kind aggregates needed by the locking-overhead analysis.
  std::uint64_t lock_messages = 0;
  std::uint64_t page_messages = 0;
  // Lock-cache tallies (zero unless options.lock_cache).
  std::uint64_t cache_regrants = 0;
  std::uint64_t cache_callbacks = 0;
  std::uint64_t cache_flushes = 0;
  // Transaction outcomes.
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::uint64_t deadlock_retries = 0;
  std::uint64_t demand_fetches = 0;
  std::uint64_t pages_fetched = 0;
  std::uint64_t delta_pages = 0;
  std::uint64_t remote_round_trips = 0;
  /// Distribution of blocking round trips per root transaction (the
  /// latency proxy the prefetch ablation reduces).
  double round_trips_p50 = 0;
  double round_trips_p95 = 0;
  // Fault-injection accounting (zero unless options.fault enables the
  // engine; fault_stats also reflects the install_hooks-only ablation).
  std::uint64_t fault_retries = 0;
  std::size_t crashed_in_commit = 0;
  FaultStats fault_stats;
  /// Full message trace, recorded when options.record_trace is set (the
  /// fault ablation compares runs for byte-identical traffic).
  std::vector<TraceEvent> trace;

  [[nodiscard]] TrafficCounter object_traffic(ObjectId id) const {
    const auto it = per_object.find(id);
    return it == per_object.end() ? TrafficCounter{} : it->second;
  }
};

struct ExperimentOptions {
  std::size_t nodes = 16;
  std::uint32_t page_size = 4096;
  std::uint64_t cluster_seed = 7;
  std::size_t max_active_families = 16;
  bool multicast = false;
  bool prefetch_hints = false;  ///< Section 5.1 ablation: pre-acquire the
                                ///< whole script's lock set at family start
  UndoStrategy undo = UndoStrategy::kByteRange;
  /// Per-node cache budget in pages (0 = unbounded).
  std::size_t cache_capacity_pages = 0;
  /// Inter-family lock caching (sticky global locks with callback
  /// revocation).  Off for every paper figure; the locality ablation
  /// toggles it.
  bool lock_cache = false;
  /// Cached global locks kept per site (0 = unbounded).
  std::size_t lock_cache_capacity = 0;
  /// Site-locality knob (lock-cache ablation): when non-negative, each
  /// family executes at the designated hot site (node 0) with this
  /// probability and at a uniformly random site otherwise — i.e. the
  /// probability that consecutive acquires of an object originate at the
  /// same site, which is the axis callback locking trades on.  Negative
  /// (the default) keeps the cluster's round-robin placement.  The
  /// assignment depends only on cluster_seed and the request list, never on
  /// the protocol or the lock_cache flag, so paired runs see identical
  /// placements.
  double site_locality = -1.0;
  /// Deterministic fault injection for this run (chaos benchmarks and the
  /// zero-overhead ablation).  Node faults imply GDO replication.
  FaultConfig fault;
  /// Record the full message trace into ScenarioResult::trace.
  bool record_trace = false;
};

/// Run `workload` under `protocol` on a fresh cluster.
[[nodiscard]] ScenarioResult run_scenario(const Workload& workload,
                                          ProtocolKind protocol,
                                          const ExperimentOptions& options = {});

/// Run the workload under each protocol in `protocols` (fresh identical
/// cluster each time).
[[nodiscard]] std::vector<ScenarioResult> run_protocol_suite(
    const Workload& workload, const std::vector<ProtocolKind>& protocols,
    const ExperimentOptions& options = {});

}  // namespace lotec
