// Experiment harness: run one workload under one (or each) consistency
// protocol on a fresh cluster and collect the measurements the paper's
// figures report.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/cluster.hpp"
#include "workload/generator.hpp"

namespace lotec {

/// Everything measured from one (workload, protocol) run.
///
/// Counter redesign (PR 3): the flat per-run tallies live in `counters`, a
/// name -> value snapshot of the cluster's MetricsRegistry taken at the end
/// of the run (naming conventions: PROTOCOL.md §9).  Read them via
/// `counter(name)`; new measurements get a registry name and need no new
/// struct field.  (The PR-3 compatibility accessors over this map were
/// retired once every call site migrated.)
struct ScenarioResult {
  ProtocolKind protocol = ProtocolKind::kLotec;
  /// Object ids in creation order (Oi of the figures = object_ids[i]).
  std::vector<ObjectId> object_ids;
  /// Total consistency+locking traffic attributed to each object.
  std::unordered_map<ObjectId, TrafficCounter> per_object;
  /// Page-data-only traffic per object.
  std::unordered_map<ObjectId, TrafficCounter> page_data;
  TrafficCounter total;
  /// End-of-run snapshot of every named counter in the cluster's
  /// MetricsRegistry (sorted by name; zero-valued entries included).
  std::map<std::string, std::uint64_t> counters;
  /// Span-duration histograms by name ("span.<phase>"), populated only when
  /// options.trace_spans was set.
  std::map<std::string, HistogramSnapshot> histograms;
  /// All spans recorded during the run (empty unless options.trace_spans).
  std::vector<SpanRecord> spans;
  /// All messages observed at the Transport choke point with their causal
  /// stamps (empty unless options.trace_spans) — the per-message-kind axis
  /// of analyze_critical_path.
  std::vector<MessageRecord> messages;
  // Transaction outcomes.
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::size_t crashed_in_commit = 0;
  /// Distribution of blocking round trips per root transaction (the
  /// latency proxy the prefetch ablation reduces).
  double round_trips_p50 = 0;
  double round_trips_p95 = 0;
  // Fault-injection accounting (zero unless options.fault enables the
  // engine; fault_stats also reflects the install_hooks-only ablation).
  FaultStats fault_stats;
  /// Full message trace, recorded when options.record_trace is set (the
  /// fault ablation compares runs for byte-identical traffic).
  std::vector<TraceEvent> trace;

  /// Value of a named registry counter; 0 when never registered.
  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }

  [[nodiscard]] TrafficCounter object_traffic(ObjectId id) const {
    const auto it = per_object.find(id);
    return it == per_object.end() ? TrafficCounter{} : it->second;
  }
};

struct ExperimentOptions {
  std::size_t nodes = 16;
  std::uint32_t page_size = 4096;
  std::uint64_t cluster_seed = 7;
  std::size_t max_active_families = 16;
  bool multicast = false;
  /// Coalesce same-round directory traffic into batch frames (PROTOCOL.md
  /// §13).  Physical-only: the logical per-kind ledgers every figure is
  /// computed from are bit-identical either way.
  bool batch_messages = false;
  bool prefetch_hints = false;  ///< Section 5.1 ablation: pre-acquire the
                                ///< whole script's lock set at family start
  UndoStrategy undo = UndoStrategy::kByteRange;
  /// Per-node cache budget in pages (0 = unbounded).
  std::size_t cache_capacity_pages = 0;
  /// Inter-family lock caching (sticky global locks with callback
  /// revocation).  Off for every paper figure; the locality ablation
  /// toggles it.
  bool lock_cache = false;
  /// Cached global locks kept per site (0 = unbounded).
  std::size_t lock_cache_capacity = 0;
  /// Site-locality knob (lock-cache ablation): when non-negative, each
  /// family executes at the designated hot site (node 0) with this
  /// probability and at a uniformly random site otherwise — i.e. the
  /// probability that consecutive acquires of an object originate at the
  /// same site, which is the axis callback locking trades on.  Negative
  /// (the default) keeps the cluster's round-robin placement.  The
  /// assignment depends only on cluster_seed and the request list, never on
  /// the protocol or the lock_cache flag, so paired runs see identical
  /// placements.
  double site_locality = -1.0;
  /// Deterministic fault injection for this run (chaos benchmarks and the
  /// zero-overhead ablation).  Node faults imply GDO replication.
  FaultConfig fault;
  /// Record the full message trace into ScenarioResult::trace.
  bool record_trace = false;
  /// Record per-family phase spans into ScenarioResult::spans (and the
  /// span.<phase> histograms).  Off by default; a disabled run produces
  /// bit-identical message traffic.
  bool trace_spans = false;
  /// Stream spans as JSON lines to this file (requires trace_spans).
  std::string spans_jsonl;
  /// Time-series telemetry plane (PROTOCOL.md §16): install the per-window
  /// scrape collector.  Off for every paper figure; the ablation_obs bench
  /// gates that an off run is bit-identical and an on run costs < 2% wall
  /// clock.
  bool timeseries = false;
  /// Logical window length in transport messages (timeseries only).
  std::uint64_t timeseries_interval = 256;
  /// Stream one JSON line per closed window here (timeseries only).
  std::string timeseries_jsonl;
  /// Write Chrome trace-event JSON (Perfetto-loadable) to this file at the
  /// end of the run (requires trace_spans).
  std::string chrome_trace;
  /// Dump the always-on flight recorder here on every node-crash event (the
  /// post-mortem black box; works with or without trace_spans).
  std::string flight_dump;
  /// Run the cluster as real OS processes over sockets (src/wire): one
  /// lotec_worker per node, every accounted message physically shipped and
  /// ledger-cross-checked at batch end.  `wire.enabled` is the master
  /// switch (lotec_sim --distributed N sets it along with nodes).
  WireConfig wire;
  /// Share of families submitted as declared read-only (kReadOnly), their
  /// scripts remapped onto the generator's shadow reader methods.  Acts on
  /// requests; meaningful with or without mv_read (without it, read-only
  /// families take the ordinary lock path).
  double read_only_fraction = 0.0;
  /// Multi-version snapshot reads (PROTOCOL.md §14): read-only families
  /// resolve pages against a commit-tick snapshot, with zero lock traffic.
  bool mv_read = false;
  /// Committed versions retained per page for snapshot resolution.
  std::size_t mv_version_ring = 4;
  /// Elastic directory (PROTOCOL.md §15): consistent-hash placement with
  /// online shard migration and quorum mirror groups.  `ring.enabled` is
  /// the master switch (soak --rebalance sets it); off, the static
  /// partition map and single mirror produce bit-identical traffic.
  RingConfig ring;
  /// Test hook (knob-off bit-identity): after instantiation, demote every
  /// kReadOnly request back to kReadWrite.  With mv_read off the two runs
  /// must produce bit-identical wire traffic — the declared kind alone
  /// never touches the protocol.
  bool strip_family_kinds = false;

  /// The ClusterConfig these options describe for `protocol`.  run_scenario
  /// builds its cluster from exactly this (plus the request-level knobs —
  /// site_locality, prefetch_hints, record_trace — which act on requests,
  /// not the cluster).
  [[nodiscard]] ClusterConfig to_cluster_config(ProtocolKind protocol) const;

  /// Reject incoherent option combinations with an actionable UsageError.
  /// Checks the experiment-level knobs, then delegates everything with a
  /// ClusterConfig counterpart to ClusterConfig::validate() — the same
  /// validation Cluster construction itself runs, so run_scenario and a
  /// directly-built Cluster reject identical configs with identical
  /// messages.  Called by run_scenario before any cluster is built.
  void validate() const;
};

/// Run `workload` under `protocol` on a fresh cluster.
[[nodiscard]] ScenarioResult run_scenario(const Workload& workload,
                                          ProtocolKind protocol,
                                          const ExperimentOptions& options = {});

/// Run the workload under each protocol in `protocols` (fresh identical
/// cluster each time).  When options name span output files, each
/// protocol's files get a `_<PROTOCOL>` suffix before the extension (see
/// protocol_trace_path).
[[nodiscard]] std::vector<ScenarioResult> run_protocol_suite(
    const Workload& workload, const std::vector<ProtocolKind>& protocols,
    const ExperimentOptions& options = {});

/// `base` with `_<PROTOCOL>` inserted before the extension:
/// ("trace.json", kLotec) -> "trace_LOTEC.json".
[[nodiscard]] std::string protocol_trace_path(const std::string& base,
                                              ProtocolKind protocol);

}  // namespace lotec
