// Scenario presets matching the paper's four byte-count experiments
// (Figures 2-5).  The time experiments (Figures 6-8) reuse the Figure 3
// scenario's traffic under different network cost models.
//
// The paper's scenarios:
//   Fig 2: medium objects (1-5 pages),   high contention,     20 objects
//   Fig 3: large objects (10-20 pages),  high contention,     20 objects
//   Fig 4: medium objects,               moderate contention, 100 objects
//   Fig 5: large objects,                moderate contention, 100 objects
//
// Knob choices (full rationale in EXPERIMENTS.md): high contention = small
// object population with Zipf-skewed, hierarchical (CAD-style) invocation;
// methods touch a minority of each object's attributes so OTEC's
// updated-pages optimization and LOTEC's predicted-pages optimization both
// have room to save traffic.  Calibrated so the high-contention scenarios
// land in the paper's reported bands (OTEC saves ~20-25% over COTEC, LOTEC
// another ~5-12% over OTEC).
#pragma once

#include "workload/spec.hpp"

namespace lotec {
namespace scenarios {

inline WorkloadSpec medium_high_contention() {
  WorkloadSpec spec;
  spec.num_objects = 20;
  spec.min_pages = 1;
  spec.max_pages = 5;
  spec.num_transactions = 300;
  spec.contention_theta = 0.8;
  spec.touched_attr_fraction = 0.35;
  spec.write_fraction = 0.6;
  spec.read_method_fraction = 0.2;
  spec.max_depth = 3;
  spec.child_probability = 0.45;
  spec.max_children = 3;
  spec.seed = 0xF162;
  return spec;
}

inline WorkloadSpec large_high_contention() {
  WorkloadSpec spec = medium_high_contention();
  spec.min_pages = 10;
  spec.max_pages = 20;
  spec.touched_attr_fraction = 0.35;
  spec.write_fraction = 0.75;
  spec.seed = 0xF163;
  return spec;
}

inline WorkloadSpec medium_moderate_contention() {
  WorkloadSpec spec = medium_high_contention();
  spec.num_objects = 100;
  spec.num_transactions = 1200;
  spec.contention_theta = 0.3;
  spec.child_probability = 0.35;
  spec.max_children = 2;
  spec.seed = 0xF164;
  return spec;
}

inline WorkloadSpec large_moderate_contention() {
  WorkloadSpec spec = medium_moderate_contention();
  spec.min_pages = 10;
  spec.max_pages = 20;
  spec.touched_attr_fraction = 0.35;
  spec.write_fraction = 0.7;
  spec.seed = 0xF165;
  return spec;
}

}  // namespace scenarios
}  // namespace lotec
