// Population-level tail-latency attribution (PROTOCOL.md §16).
//
// The critical-path analysis (PR 5) decomposes ONE family — the slowest —
// into per-phase self time.  This module generalizes that decomposition to
// EVERY root family attempt in a trace: each attempt's sojourn is classified
// into exclusive phase buckets (lock wait, GDO round, page gather, execute,
// undo, commit report, snapshot, ring stall, wire, other), and attempts are
// then grouped into percentile bands by sojourn so the report can answer
// "what do the p99.9 outliers spend their time on that the median does not".
//
// The bucket decomposition is exact by construction: every span interval is
// clipped to its parent's (already-clipped) interval before self time is
// measured, so each logical tick of a root's [begin, end) is attributed to
// exactly one bucket — the deepest span covering it — and the buckets of one
// attempt sum to its sojourn ticks identically (asserted by the
// deterministic-scheduler test, like the PR 5 self-time identity).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "obs/span.hpp"

namespace lotec {

/// Exclusive sojourn buckets.  Coarser than SpanPhase on purpose: the
/// question is "what protocol activity stalled this family", not which
/// specific span type ran.
enum class TailBucket : std::uint8_t {
  kLockWait = 0,  ///< lock.acquire / lock.inherit / cache.callback_round /
                  ///< lock.grant
  kGdoRound,      ///< gdo.round / gdo.serve
  kPageGather,    ///< page.gather / page.serve
  kExecute,       ///< method.execute
  kUndo,          ///< txn.undo
  kCommitReport,  ///< commit.report
  kSnapshot,      ///< snapshot.map_round / snapshot.fetch (mv_read)
  kRingStall,     ///< shard.migrate / shard.redirect (elastic directory)
  kWire,          ///< wire.deliver (worker-side frame delivery)
  kOther,         ///< root self time: scheduling, retries, fault events,
                  ///< batch flushes — everything no child span covers
};

inline constexpr std::size_t kNumTailBuckets = 10;

[[nodiscard]] std::string_view to_string(TailBucket bucket) noexcept;
[[nodiscard]] TailBucket tail_bucket_for(SpanPhase phase) noexcept;

/// One root family attempt's decomposition.
struct AttemptAttribution {
  std::uint64_t root = 0;    ///< family.attempt span id
  std::uint64_t family = 0;
  std::uint64_t trace = 0;
  std::uint32_t node = 0;
  std::uint64_t sojourn = 0;  ///< end - begin, logical ticks
  std::array<std::uint64_t, kNumTailBuckets> buckets{};
};

/// One percentile band of the attempt population, by sojourn.
struct TailBand {
  std::string_view label;     ///< "p0-50", ..., "p99.9-100"
  std::uint64_t attempts = 0;
  std::uint64_t sojourn = 0;  ///< total ticks in the band
  std::array<std::uint64_t, kNumTailBuckets> buckets{};

  /// Bucket share of the band's total sojourn, in [0, 1] (0 on an empty
  /// band).
  [[nodiscard]] double share(TailBucket b) const noexcept {
    return sojourn == 0
               ? 0.0
               : static_cast<double>(
                     buckets[static_cast<std::size_t>(b)]) /
                     static_cast<double>(sojourn);
  }
};

inline constexpr std::size_t kNumTailBands = 5;

struct TailAttribution {
  std::vector<AttemptAttribution> attempts;  ///< sorted by sojourn ascending
  std::array<TailBand, kNumTailBands> bands{};

  [[nodiscard]] bool empty() const noexcept { return attempts.empty(); }
};

/// Decompose every root family attempt in `spans`.  Bands split the sorted
/// population at p50 / p90 / p99 / p99.9 (an attempt belongs to exactly one
/// band; small populations leave the upper bands empty).
[[nodiscard]] TailAttribution analyze_tail_attribution(
    const std::vector<SpanRecord>& spans);

/// Human-readable band table (the `trace_report --tail-attribution` output).
void write_tail_attribution(const TailAttribution& ta, std::ostream& os);

}  // namespace lotec
