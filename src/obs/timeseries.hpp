// Time-series telemetry plane (PROTOCOL.md §16).
//
// The metrics stack (PR 3/PR 5) answers "what happened over the whole run":
// cumulative counters and one histogram per span phase.  The
// TimeseriesCollector answers "what is happening *over time*": it scrapes
// MetricsRegistry on a configurable interval — every N transport messages
// (the deterministic logical clock) or at explicit close points a wall-clock
// driver picks — into per-window counter deltas plus windowed latency
// histograms, retained in a bounded ring, and emits them three ways: a JSONL
// stream (one line per window, the input of `lotec_top --jsonl` and the
// throughput bench's timeseries artifact), Prometheus text exposition
// (`write_prometheus_text`, also the payload format of the wire plane's
// kStatsScrapeReply), and per-window rows in BenchJson (the bench iterates
// `windows()` itself).
//
// Gating discipline (same as the span tracer): the collector is OFF unless
// installed; when off the transport's hook is one pointer comparison, and
// the collector never sends a message either way, so traffic and span
// output are bit-identical with telemetry on or off.  The steady-state
// scrape is allocation-free: handles into the registry are cached and
// refreshed only when MetricsRegistry::generation() moves, and the ring's
// window storage is pre-sized at that same refresh point (asserted by the
// counting-operator-new test, as for note_message).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace lotec {

/// Saturating add in the window buckets' narrower width: a window that
/// overflows uint32 pins at the ceiling instead of wrapping (satellite: the
/// percentile walk stays monotonic even on absurd merge chains).
[[nodiscard]] constexpr std::uint32_t saturating_add_u32(
    std::uint32_t a, std::uint64_t b) noexcept {
  // Compare before adding: a + b itself can wrap uint64 when b is huge.
  return b >= 0xFFFFFFFFull - a
             ? 0xFFFFFFFFu
             : static_cast<std::uint32_t>(a + static_cast<std::uint32_t>(b));
}

/// One window's worth of a latency histogram: the bucket-wise delta between
/// two cumulative HistogramSnapshots.  Buckets are uint32 (a window is
/// bounded; the retention ring holds many of these) and all arithmetic
/// saturates.  min/max are bucket-resolution approximations — cumulative
/// snapshots cannot recover the exact window extremes — clamped to the
/// cumulative max so percentile() never exceeds a value that was actually
/// recorded.
struct WindowHistogram {
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint32_t, kBuckets> buckets{};

  /// Delta of two cumulative snapshots (`prev` taken earlier on the SAME
  /// histogram).  A registry reset between the two (now.count < prev.count)
  /// degrades gracefully to `now` alone.
  [[nodiscard]] static WindowHistogram delta(const HistogramSnapshot& now,
                                             const HistogramSnapshot& prev);

  /// Merge another window in.  An empty `o` is a strict no-op (it must not
  /// perturb min/max or any percentile); merging into an empty *this copies.
  void merge(const WindowHistogram& o) noexcept;

  /// Same NaN-safe bucket-resolution percentile as HistogramSnapshot.
  [[nodiscard]] double percentile(double p) const noexcept;

  friend bool operator==(const WindowHistogram&,
                         const WindowHistogram&) = default;
};

/// One closed window: deltas of every registered counter and histogram over
/// [open_tick, close_tick].  The name tables live on the collector
/// (`counter_names()` / `histogram_names()`); the vectors here are parallel
/// to them.
struct TimeseriesWindow {
  std::uint64_t index = 0;       ///< 0-based window sequence number
  std::uint64_t open_tick = 0;   ///< collector message count at open
  std::uint64_t close_tick = 0;  ///< ... and at close
  std::vector<std::uint64_t> counter_deltas;
  std::vector<WindowHistogram> hist_deltas;
};

struct TimeseriesConfig {
  /// Close a window every this many transport messages observed at the
  /// Transport choke point (the deterministic logical interval).  0 = only
  /// explicit close_window() calls (wall-clock drivers pace themselves).
  std::uint64_t tick_interval = 0;
  /// Windows retained in the ring (older windows are overwritten).
  std::size_t retain = 256;
  /// When non-empty, stream one JSON line per closed window here.
  std::string jsonl_path;
};

class TimeseriesCollector {
 public:
  explicit TimeseriesCollector(MetricsRegistry& registry,
                               TimeseriesConfig config = {});
  ~TimeseriesCollector();

  TimeseriesCollector(const TimeseriesCollector&) = delete;
  TimeseriesCollector& operator=(const TimeseriesCollector&) = delete;

  /// Hot-path hook, called by Transport::send for every accounted message.
  /// One relaxed atomic increment; the thread that crosses the interval
  /// boundary closes the window.  Never sends, never throws.
  void on_message() noexcept {
    const std::uint64_t n = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (interval_ != 0 && n >= next_close_.load(std::memory_order_relaxed))
      maybe_close(n);
  }

  /// Explicit close (wall-clock pacing, end-of-run flush).  No-op when
  /// nothing was recorded since the last close and the registry is
  /// unchanged?  No: an empty window is still a window (zero txn/s is a
  /// signal); callers that want to skip empties check the return.  Returns
  /// the closed window's index.
  std::uint64_t close_window();

  /// Number of windows closed so far (monotonic; the ring retains the last
  /// `retain` of them).
  [[nodiscard]] std::uint64_t windows_closed() const;

  /// Copies of the retained windows, oldest first.
  [[nodiscard]] std::vector<TimeseriesWindow> windows() const;

  /// Name tables the window vectors are parallel to (stable between
  /// registry generations).
  [[nodiscard]] std::vector<std::string> counter_names() const;
  [[nodiscard]] std::vector<std::string> histogram_names() const;

  /// Write every retained window as JSONL to `os` (same line format as the
  /// streaming sink).
  void write_jsonl(std::ostream& os) const;

  /// Prometheus text exposition of the CURRENT cumulative registry state
  /// plus `lotec_window_*` gauges derived from the most recent closed
  /// window.  `labels` are attached to every sample (protocol/transport/
  /// node), values escaped per the text format.
  void write_prometheus(
      std::ostream& os,
      const std::vector<std::pair<std::string, std::string>>& labels) const;

 private:
  void maybe_close(std::uint64_t now_ticks);
  std::uint64_t close_window_locked(std::uint64_t now_ticks);
  /// Rebuild handle tables + pre-size ring storage; called under mu_ when
  /// the registry generation moved (the only allocating path).
  void refresh_handles_locked();
  void emit_jsonl_locked(const TimeseriesWindow& w);

  MetricsRegistry& registry_;
  const std::uint64_t interval_;
  const std::size_t retain_;

  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> next_close_{0};

  mutable std::mutex mu_;
  std::uint64_t seen_generation_ = ~std::uint64_t{0};
  std::vector<std::string> counter_names_;
  std::vector<const MetricsCounter*> counter_handles_;
  std::vector<std::uint64_t> counter_last_;
  std::vector<std::string> histogram_names_;
  std::vector<const LatencyHistogram*> histogram_handles_;
  std::vector<HistogramSnapshot> histogram_last_;
  std::uint64_t open_tick_ = 0;
  std::uint64_t closed_ = 0;
  std::vector<TimeseriesWindow> ring_;  ///< slot = index % retain_
  std::unique_ptr<std::ostream> jsonl_;
};

// --- Prometheus text exposition helpers ----------------------------------

/// Sanitize a registry metric name ("span.family.attempt") into a
/// Prometheus metric name ("lotec_span_family_attempt"): every char outside
/// [a-zA-Z0-9_:] becomes '_', a leading digit gets a '_' prefix, and the
/// "lotec_" namespace prefix is prepended unless already present.
[[nodiscard]] std::string prom_metric_name(std::string_view name);

/// Escape a label VALUE per the text format: backslash, double-quote and
/// newline become \\, \" and \n.
[[nodiscard]] std::string prom_escape_label(std::string_view value);

/// Write counters (as `# TYPE ... counter`, name suffixed `_total`) and
/// histograms (as native `_bucket{le=...}` / `_sum` / `_count` series,
/// upper bounds 2^(i+1)-2 per the power-of-two bucket layout) with `labels`
/// on every sample.  Deterministic output: samples are emitted in the map
/// order of the inputs.
void write_prometheus_text(
    const std::map<std::string, std::uint64_t>& counters,
    const std::map<std::string, HistogramSnapshot>& histograms,
    const std::vector<std::pair<std::string, std::string>>& labels,
    std::ostream& os);

/// One parsed exposition sample (round-trip checks and lotec_top's scrape
/// decoding).  Histogram series come back as their component samples
/// (`..._bucket`, `..._sum`, `..._count`) — the parser does not reassemble.
struct PromSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;

  friend bool operator==(const PromSample&, const PromSample&) = default;
};

/// Parse text exposition: returns every sample line, skipping comments and
/// blanks.  Throws Error on lines that are neither (hostile scrape payloads
/// must not crash lotec_top).
[[nodiscard]] std::vector<PromSample> parse_prometheus_text(
    std::string_view text);

}  // namespace lotec
