#include "obs/span.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <set>
#include <stdexcept>
#include <utility>

#include "obs/chrome_trace.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace lotec {

namespace {

/// The calling thread's open spans, innermost last.  Spans are begun and
/// ended on the thread doing the traced work (family runner threads, or the
/// driver thread for directory serves — the emulation's calls are
/// synchronous), so a thread-local stack gives "the span I am inside" for
/// message stamping without widening any call signature.
struct TlsEntry {
  const SpanTracer* tracer;
  std::uint64_t span;
  std::uint64_t trace;
  SpanPhase phase;
};
thread_local std::vector<TlsEntry> tls_spans;

}  // namespace

std::string_view to_string(SpanPhase phase) noexcept {
  switch (phase) {
    case SpanPhase::kFamilyAttempt: return "family.attempt";
    case SpanPhase::kLockAcquire: return "lock.acquire";
    case SpanPhase::kLockInherit: return "lock.inherit";
    case SpanPhase::kGdoRound: return "gdo.round";
    case SpanPhase::kPageGather: return "page.gather";
    case SpanPhase::kMethodExecute: return "method.execute";
    case SpanPhase::kUndo: return "txn.undo";
    case SpanPhase::kCommitReport: return "commit.report";
    case SpanPhase::kCallbackRound: return "cache.callback_round";
    case SpanPhase::kFaultEvent: return "fault.event";
    case SpanPhase::kGdoServe: return "gdo.serve";
    case SpanPhase::kPageServe: return "page.serve";
    case SpanPhase::kLockGrant: return "lock.grant";
    case SpanPhase::kWireDeliver: return "wire.deliver";
    case SpanPhase::kShardMigrate: return "shard.migrate";
    case SpanPhase::kShardRedirect: return "shard.redirect";
    case SpanPhase::kSnapshotMapRound: return "snapshot.map_round";
    case SpanPhase::kSnapshotFetch: return "snapshot.fetch";
    case SpanPhase::kBatchFlush: return "batch.flush";
  }
  return "unknown";
}

std::string_view intern_message_kind(std::string_view kind) {
  // A leaked set of owned strings: entries must outlive every MessageRecord,
  // including records held across tracer teardown, so process lifetime is
  // the only safe bound.  The domain is message-kind names — a few dozen.
  static std::mutex mu;
  static auto* interned = new std::set<std::string, std::less<>>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = interned->find(kind);
  if (it == interned->end()) it = interned->emplace(kind).first;
  return *it;
}

JsonLinesSink::JsonLinesSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), os_(owned_.get()) {
  if (!*os_) throw std::runtime_error("cannot open span sink file: " + path);
}

JsonLinesSink::JsonLinesSink(std::ostream& os) : os_(&os) {}

JsonLinesSink::~JsonLinesSink() { flush(); }

void JsonLinesSink::on_span(const SpanRecord& span) {
  write_span_jsonl(span, *os_);
}

void JsonLinesSink::on_message(const MessageRecord& message) {
  write_message_jsonl(message, *os_);
}

void JsonLinesSink::flush() { os_->flush(); }

ChromeTraceSink::ChromeTraceSink(std::string path) : path_(std::move(path)) {}

ChromeTraceSink::~ChromeTraceSink() {
  try {
    flush();
  } catch (...) {
  }
}

void ChromeTraceSink::flush() {
  std::ofstream os(path_);
  if (!os) throw std::runtime_error("cannot open chrome trace file: " + path_);
  write_chrome_trace(spans_, os);
  written_ = true;
}

SpanTracer::~SpanTracer() {
  // Drop any stale context entries this thread still holds for the dying
  // tracer: a later tracer allocated at the same address must not inherit
  // them.  (Other threads' entries die with their threads — family runner
  // threads never outlive the cluster that owns the tracer.)
  tls_spans.erase(std::remove_if(tls_spans.begin(), tls_spans.end(),
                                 [this](const TlsEntry& e) {
                                   return e.tracer == this;
                                 }),
                  tls_spans.end());
}

void SpanTracer::enable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = true;
  if (registry_) {
    for (std::size_t i = 0; i < kNumSpanPhases; ++i) {
      const auto phase = static_cast<SpanPhase>(i);
      phase_hist_[i] = &registry_->histogram(
          "span." + std::string(to_string(phase)));
    }
  }
}

void SpanTracer::add_sink(std::unique_ptr<SpanSink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
}

std::uint64_t SpanTracer::begin_locked(SpanPhase phase, std::uint64_t family,
                                       std::uint32_t node,
                                       std::uint64_t object,
                                       std::uint64_t trace_override,
                                       std::uint64_t link) {
  SpanRecord span;
  span.id = next_id_++;
  span.phase = phase;
  span.family = family;
  span.node = node;
  span.object = object;
  span.begin = next_tick_locked();
  span.end = span.begin;
  span.link = link;
  const std::uint64_t lane = lane_for(family, node);
  auto& stack = open_[lane];
  span.parent = stack.empty() ? 0 : stack.back().id;
  if (trace_override != 0) {
    span.trace = trace_override;
  } else if (phase == SpanPhase::kFamilyAttempt) {
    // Every attempt — including each retry — is its own causal domain.
    span.trace = next_trace_++;
  } else {
    span.trace = stack.empty() ? 0 : stack.back().trace;
  }
  stack.push_back(span);
  open_lane_[span.id] = lane;
  if (recorder_ != nullptr) recorder_->note_span_begin(span);
  tls_spans.push_back({this, span.id, span.trace, phase});
  return span.id;
}

std::uint64_t SpanTracer::begin(SpanPhase phase, std::uint64_t family,
                                std::uint32_t node, std::uint64_t object) {
  if (!enabled_) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return begin_locked(phase, family, node, object, /*trace_override=*/0,
                      /*link=*/0);
}

std::uint64_t SpanTracer::begin_remote(SpanPhase phase, std::uint32_t node,
                                       const TraceContext& ctx,
                                       std::uint64_t object) {
  if (!enabled_) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return begin_locked(phase, /*family=*/0, node, object, ctx.trace_id,
                      ctx.parent_span);
}

void SpanTracer::end(std::uint64_t id, std::uint64_t family) {
  if (!enabled_ || id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto lane_it = open_lane_.find(id);
  // Resolve the lane the span was opened on; fall back to the caller's
  // family hint for ids the tracer no longer knows (already closed).
  std::uint64_t lane = family;
  if (lane_it != open_lane_.end()) lane = lane_it->second;
  auto it = open_.find(lane);
  if (it == open_.end() || it->second.empty()) return;
  // Spans are strictly LIFO per lane; close any inner spans left open by an
  // exception unwinding past their scope.
  auto& stack = it->second;
  std::vector<std::uint64_t> closed;
  while (!stack.empty()) {
    SpanRecord span = stack.back();
    stack.pop_back();
    span.end = next_tick_locked();
    open_lane_.erase(span.id);
    closed.push_back(span.id);
    emit_locked(span);
    if (span.id == id) break;
  }
  tls_spans.erase(
      std::remove_if(tls_spans.begin(), tls_spans.end(),
                     [&](const TlsEntry& e) {
                       return e.tracer == this &&
                              std::find(closed.begin(), closed.end(),
                                        e.span) != closed.end();
                     }),
      tls_spans.end());
}

void SpanTracer::instant(SpanPhase phase, std::uint64_t family,
                         std::uint32_t node, std::uint64_t object) {
  instant_linked(phase, family, node, TraceContext{}, object);
}

void SpanTracer::instant_linked(SpanPhase phase, std::uint64_t family,
                                std::uint32_t node, const TraceContext& ctx,
                                std::uint64_t object) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord span;
  span.id = next_id_++;
  span.phase = phase;
  span.family = family;
  span.node = node;
  span.object = object;
  span.begin = next_tick_locked();
  span.end = span.begin;
  span.link = ctx.parent_span;
  const auto it = open_.find(lane_for(family, node));
  if (it != open_.end() && !it->second.empty()) {
    span.parent = it->second.back().id;
    span.trace = it->second.back().trace;
  } else if (ctx.valid()) {
    span.trace = ctx.trace_id;
  }
  if (recorder_ != nullptr) recorder_->note_instant(span);
  emit_locked(span);
}

TraceContext SpanTracer::current_context() const {
  if (!enabled_) return {};
  for (auto it = tls_spans.rbegin(); it != tls_spans.rend(); ++it) {
    if (it->tracer == this)
      return {it->trace, it->span, static_cast<std::uint8_t>(it->phase)};
  }
  return {};
}

void SpanTracer::note_message(std::string_view kind, std::uint32_t src,
                              std::uint32_t dst, std::uint64_t object,
                              std::uint64_t bytes, const TraceContext& ctx) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  MessageRecord rec;
  rec.tick = now();
  rec.kind = kind;  // view of the caller's static to_string table: no copy
  rec.src = src;
  rec.dst = dst;
  rec.object = object;
  rec.bytes = bytes;
  rec.trace = ctx.trace_id;
  rec.span = ctx.parent_span;
  for (auto& sink : sinks_) sink->on_message(rec);
  messages_.push_back(std::move(rec));
}

void SpanTracer::emit_locked(const SpanRecord& span) {
  done_.push_back(span);
  if (recorder_ != nullptr && span.end != span.begin)
    recorder_->note_span_end(span);
  if (auto* hist = phase_hist_[static_cast<std::size_t>(span.phase)]) {
    hist->record(span.end - span.begin);
  }
  for (auto& sink : sinks_) sink->on_span(span);
}

std::vector<SpanRecord> SpanTracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

std::vector<MessageRecord> SpanTracer::messages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_;
}

std::size_t SpanTracer::open_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [lane, stack] : open_) n += stack.size();
  return n;
}

void SpanTracer::flush_sinks() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& sink : sinks_) sink->flush();
}

}  // namespace lotec
