#include "obs/span.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"

namespace lotec {

std::string_view to_string(SpanPhase phase) noexcept {
  switch (phase) {
    case SpanPhase::kFamilyAttempt: return "family.attempt";
    case SpanPhase::kLockAcquire: return "lock.acquire";
    case SpanPhase::kLockInherit: return "lock.inherit";
    case SpanPhase::kGdoRound: return "gdo.round";
    case SpanPhase::kPageGather: return "page.gather";
    case SpanPhase::kMethodExecute: return "method.execute";
    case SpanPhase::kUndo: return "txn.undo";
    case SpanPhase::kCommitReport: return "commit.report";
    case SpanPhase::kCallbackRound: return "cache.callback_round";
    case SpanPhase::kFaultEvent: return "fault.event";
  }
  return "unknown";
}

JsonLinesSink::JsonLinesSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), os_(owned_.get()) {
  if (!*os_) throw std::runtime_error("cannot open span sink file: " + path);
}

JsonLinesSink::JsonLinesSink(std::ostream& os) : os_(&os) {}

JsonLinesSink::~JsonLinesSink() { flush(); }

void JsonLinesSink::on_span(const SpanRecord& span) {
  write_span_jsonl(span, *os_);
}

void JsonLinesSink::flush() { os_->flush(); }

ChromeTraceSink::ChromeTraceSink(std::string path) : path_(std::move(path)) {}

ChromeTraceSink::~ChromeTraceSink() {
  try {
    flush();
  } catch (...) {
  }
}

void ChromeTraceSink::flush() {
  std::ofstream os(path_);
  if (!os) throw std::runtime_error("cannot open chrome trace file: " + path_);
  write_chrome_trace(spans_, os);
  written_ = true;
}

void SpanTracer::enable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = true;
  if (registry_) {
    for (std::size_t i = 0; i < kNumSpanPhases; ++i) {
      const auto phase = static_cast<SpanPhase>(i);
      phase_hist_[i] = &registry_->histogram(
          "span." + std::string(to_string(phase)));
    }
  }
}

void SpanTracer::add_sink(std::unique_ptr<SpanSink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
}

std::uint64_t SpanTracer::begin(SpanPhase phase, std::uint64_t family,
                                std::uint32_t node, std::uint64_t object) {
  if (!enabled_) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord span;
  span.id = next_id_++;
  span.phase = phase;
  span.family = family;
  span.node = node;
  span.object = object;
  span.begin = next_tick_locked();
  span.end = span.begin;
  auto& stack = open_[family];
  span.parent = stack.empty() ? 0 : stack.back().id;
  stack.push_back(span);
  return span.id;
}

void SpanTracer::end(std::uint64_t id, std::uint64_t family) {
  if (!enabled_ || id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(family);
  if (it == open_.end() || it->second.empty()) return;
  // Spans are strictly LIFO per family lane; close any inner spans left
  // open by an exception unwinding past their scope.
  auto& stack = it->second;
  while (!stack.empty()) {
    SpanRecord span = stack.back();
    stack.pop_back();
    span.end = next_tick_locked();
    emit_locked(span);
    if (span.id == id) break;
  }
}

void SpanTracer::instant(SpanPhase phase, std::uint64_t family,
                         std::uint32_t node, std::uint64_t object) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  SpanRecord span;
  span.id = next_id_++;
  span.phase = phase;
  span.family = family;
  span.node = node;
  span.object = object;
  span.begin = next_tick_locked();
  span.end = span.begin;
  auto it = open_.find(family);
  span.parent =
      (it == open_.end() || it->second.empty()) ? 0 : it->second.back().id;
  emit_locked(span);
}

void SpanTracer::emit_locked(const SpanRecord& span) {
  done_.push_back(span);
  if (auto* hist = phase_hist_[static_cast<std::size_t>(span.phase)]) {
    hist->record(span.end - span.begin);
  }
  for (auto& sink : sinks_) sink->on_span(span);
}

std::vector<SpanRecord> SpanTracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void SpanTracer::flush_sinks() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& sink : sinks_) sink->flush();
}

}  // namespace lotec
