#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace lotec {

namespace {

// Bucket index for a sample: floor(log2(ticks + 1)), clamped to the table.
std::size_t bucket_for(std::uint64_t ticks) noexcept {
  const std::uint64_t shifted = ticks + 1;
  const std::size_t idx =
      static_cast<std::size_t>(std::bit_width(shifted)) - 1;
  return std::min(idx, HistogramSnapshot::kBuckets - 1);
}

}  // namespace

double HistogramSnapshot::percentile(double p) const noexcept {
  if (count == 0) return 0.0;
  if (std::isnan(p)) return 0.0;  // std::clamp on NaN is UB
  p = std::clamp(p, 0.0, 100.0);
  if (p <= 0.0) return static_cast<double>(min);
  if (p >= 100.0) return static_cast<double>(max);
  const double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) >= rank) {
      // Upper bound of bucket i is 2^(i+1) - 2 (largest value mapping there).
      const double upper = static_cast<double>((std::uint64_t{2} << i) - 2);
      return std::min(upper, static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

void LatencyHistogram::record(std::uint64_t ticks) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  if (data_.count == 0) {
    data_.min = ticks;
    data_.max = ticks;
  } else {
    data_.min = std::min(data_.min, ticks);
    data_.max = std::max(data_.max, ticks);
  }
  ++data_.count;
  data_.sum += ticks;
  ++data_.buckets[bucket_for(ticks)];
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

void LatencyHistogram::reset() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  data_ = HistogramSnapshot{};
}

MetricsCounter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<MetricsCounter>();
    ++generation_;
  }
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<LatencyHistogram>();
    ++generation_;
  }
  return *slot;
}

std::uint64_t MetricsRegistry::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

std::vector<std::pair<std::string, const MetricsCounter*>>
MetricsRegistry::counter_handles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const MetricsCounter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, const LatencyHistogram*>>
MetricsRegistry::histogram_handles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const LatencyHistogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::uint64_t MetricsRegistry::value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) out.emplace(name, h->snapshot());
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace lotec
