// TraceContext: the compact causal header piggybacked on every WireMessage
// when span tracing is enabled.
//
// Wire format (modeled, never serialized separately): the context rides in
// the reserved padding of the fixed 64-byte message frame (see
// net/message.hpp — the LOTEC protocol header budget), laid out as
//
//   trace_id     8 bytes   per-root-attempt causal domain (0 = untraced)
//   parent_span  8 bytes   span open at the sender when the message left
//   phase        1 byte    SpanPhase of that span (attribution hint)
//
// so it costs ZERO accounted messages and ZERO accounted bytes whether
// tracing is on or off: total_bytes() never changes and NetworkStats never
// sees it.  This keeps the PR 3 contract that traced and untraced runs
// carry bit-identical wire traffic.  When tracing is disabled the context
// is never written at all (trace_id stays 0).
//
// This header depends only on <cstdint>: src/net includes it, and src/obs
// must not depend back on src/net.
#pragma once

#include <cstdint>

namespace lotec {

struct TraceContext {
  std::uint64_t trace_id = 0;     ///< 0 = no causal context attached
  std::uint64_t parent_span = 0;  ///< sender's open span id (0 = none)
  std::uint8_t phase = 0;         ///< SpanPhase of the sender's span

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

}  // namespace lotec
