// MetricsRegistry: named counters and latency histograms for the whole
// runtime — the single backing store behind ScenarioResult's counter map
// and the per-phase breakdowns the figure benches emit.
//
// Usage pattern ("registered once, queried by name"): a component resolves
// its handles at construction time —
//
//   MetricsCounter& regrants = registry.counter("cache.regrants");
//
// — and the hot path is a single relaxed atomic increment through the
// cached reference; the name -> handle map (and its mutex) is touched only
// at registration.  Handles are stable for the registry's lifetime.
//
// Counters are always on: they generate no messages and cost one atomic
// add, so enabling them cannot perturb traffic (the bit-identity property
// the obs ablation gates).  Histograms are fed from span durations and only
// accumulate while span tracing is enabled.
//
// The canonical metric names are documented in docs/PROTOCOL.md §9.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lotec {

/// A monotonically increasing named tally.  Thread-safe (relaxed atomics:
/// counters are statistics, never synchronization).
class MetricsCounter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time copy of a histogram (what ScenarioResult carries).
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 32;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  /// Power-of-two buckets: bucket i counts samples in [2^i - 1, 2^(i+1) - 1)
  /// (bucket 0 holds zeros and ones).
  std::array<std::uint64_t, kBuckets> buckets{};

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Bucket-resolution percentile estimate (upper bound of the bucket the
  /// p-th sample falls into); exact min/max at the extremes.  Total on any
  /// input: an empty histogram yields 0.0 for every p, a NaN p yields 0.0,
  /// and out-of-range p is clamped to [0, 100] — never NaN, never UB.
  [[nodiscard]] double percentile(double p) const noexcept;
};

/// Fixed-bucket latency histogram over logical-tick durations.  Recording
/// takes a leaf mutex — histogram samples come from span ends, which are
/// serialized under the deterministic scheduler and rare otherwise.
class LatencyHistogram {
 public:
  void record(std::uint64_t ticks) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset() noexcept;

 private:
  mutable std::mutex mu_;
  HistogramSnapshot data_;
};

class MetricsRegistry {
 public:
  /// Get-or-register; the returned reference is stable for the registry's
  /// lifetime (callers cache it and increment lock-free).
  [[nodiscard]] MetricsCounter& counter(const std::string& name);
  [[nodiscard]] LatencyHistogram& histogram(const std::string& name);

  /// Value of a counter by name; 0 when the name was never registered.
  [[nodiscard]] std::uint64_t value(const std::string& name) const;

  /// Name-sorted snapshot of every counter (the map ScenarioResult keeps).
  [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;
  [[nodiscard]] std::map<std::string, HistogramSnapshot> histograms() const;

  /// Bumped whenever a NEW counter or histogram name is registered.  The
  /// timeseries collector compares this against the generation its handle
  /// table was built at: unchanged means every registered metric already has
  /// a cached handle and the scrape stays allocation-free.
  [[nodiscard]] std::uint64_t generation() const;

  /// Name-sorted stable handles to every registered counter / histogram
  /// (valid for the registry's lifetime).  Allocates; called only when
  /// generation() moved.
  [[nodiscard]] std::vector<std::pair<std::string, const MetricsCounter*>>
  counter_handles() const;
  [[nodiscard]] std::vector<std::pair<std::string, const LatencyHistogram*>>
  histogram_handles() const;

  /// Zero every counter and histogram (registrations stay).
  void reset();

 private:
  mutable std::mutex mu_;
  // unique_ptr values keep handles stable across map rehash/insertion.
  std::map<std::string, std::unique_ptr<MetricsCounter>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  std::uint64_t generation_ = 0;
};

}  // namespace lotec
