// Span tracer: per-family phase spans stamped with a deterministic logical
// clock.  The clock advances once per transport message (Transport calls
// tick_message()) and once per span edge, so timestamps are reproducible
// across runs with the same seed — a trace diff is a real behaviour diff.
//
// Disabled is the default and must be provably free: every entry point
// checks one bool (ScopedSpan latches it in its constructor), no memory is
// touched, and no message is ever generated either way, so traced and
// untraced runs carry bit-identical wire traffic.
//
// Span phases (the taxonomy is documented in docs/PROTOCOL.md §9):
//   family.attempt       one (re)execution attempt of a root family
//   lock.acquire         acquiring the global lock for one object
//   lock.inherit         pre-commit lock inheritance to the parent (instant)
//   gdo.round            the remote GDO request/grant round inside acquire
//   page.gather          fetching pages for an object from caching sites
//   method.execute       running a method body
//   txn.undo             undoing a subtree or family on abort
//   commit.report        the commit-time release/report round
//   cache.callback_round one callback revocation round at the directory
//   fault.event          an injected fault firing (instant)
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"

namespace lotec {

class MetricsRegistry;
class LatencyHistogram;

enum class SpanPhase : std::uint8_t {
  kFamilyAttempt = 0,
  kLockAcquire,
  kLockInherit,
  kGdoRound,
  kPageGather,
  kMethodExecute,
  kUndo,
  kCommitReport,
  kCallbackRound,
  kFaultEvent,
};

inline constexpr std::size_t kNumSpanPhases = 10;

[[nodiscard]] std::string_view to_string(SpanPhase phase) noexcept;

/// One completed span (or instant, when begin == end and the phase is an
/// instant phase).  family == 0 marks the directory lane (GDO-side work not
/// attributable to a single family).  object == kNoObject when the span is
/// not about one object.
struct SpanRecord {
  static constexpr std::uint64_t kNoObject = ~std::uint64_t{0};

  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root (no enclosing span)
  SpanPhase phase = SpanPhase::kFamilyAttempt;
  std::uint64_t family = 0;  // 0 = directory lane
  std::uint32_t node = 0;
  std::uint64_t object = kNoObject;
  std::uint64_t begin = 0;  // logical ticks
  std::uint64_t end = 0;

  friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

/// Receives completed spans.  Sinks are invoked under the tracer mutex in
/// span-end order; implementations must not call back into the tracer.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void on_span(const SpanRecord& span) = 0;
  virtual void flush() {}
};

/// Test sink: collects spans in memory.
class InMemorySink final : public SpanSink {
 public:
  void on_span(const SpanRecord& span) override { spans_.push_back(span); }
  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }

 private:
  std::vector<SpanRecord> spans_;
};

/// Writes one JSON object per line (machine-readable stream; the input
/// format of `trace_report spans`).
class JsonLinesSink final : public SpanSink {
 public:
  explicit JsonLinesSink(const std::string& path);
  explicit JsonLinesSink(std::ostream& os);  // caller keeps os alive
  ~JsonLinesSink() override;

  void on_span(const SpanRecord& span) override;
  void flush() override;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
};

/// Buffers spans and writes a Chrome trace-event JSON file on flush (or
/// destruction) — loadable in Perfetto / chrome://tracing.
class ChromeTraceSink final : public SpanSink {
 public:
  explicit ChromeTraceSink(std::string path);
  ~ChromeTraceSink() override;

  void on_span(const SpanRecord& span) override { spans_.push_back(span); }
  void flush() override;

 private:
  std::string path_;
  std::vector<SpanRecord> spans_;
  bool written_ = false;
};

class SpanTracer {
 public:
  /// Turn tracing on.  Pre-resolves one `span.<phase>` histogram handle per
  /// phase when a registry was attached, so span ends stay cheap.
  void enable();
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Attach the registry that receives span-duration histograms.  Call
  /// before enable().
  void set_registry(MetricsRegistry* registry) { registry_ = registry; }

  /// Sinks receive every completed span; the tracer always also keeps an
  /// in-memory record (spans()).
  void add_sink(std::unique_ptr<SpanSink> sink);

  /// Advance the logical clock for one transport message.  The disabled
  /// cost of observability on the message path is exactly this bool check.
  void tick_message() noexcept {
    if (enabled_) clock_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t now() const noexcept {
    return clock_.load(std::memory_order_relaxed);
  }

  /// Open a span; returns its id (0 when disabled).  Parent is the
  /// innermost open span of the same family lane.
  std::uint64_t begin(SpanPhase phase, std::uint64_t family,
                      std::uint32_t node,
                      std::uint64_t object = SpanRecord::kNoObject);
  /// Close the innermost open span of the family lane (must match `id`).
  void end(std::uint64_t id, std::uint64_t family);
  /// Record a zero-duration event (begin == end).
  void instant(SpanPhase phase, std::uint64_t family, std::uint32_t node,
               std::uint64_t object = SpanRecord::kNoObject);

  /// All completed spans so far, in completion order.
  [[nodiscard]] std::vector<SpanRecord> spans() const;

  void flush_sinks();

 private:
  std::uint64_t next_tick_locked() noexcept {
    return clock_.fetch_add(1, std::memory_order_relaxed);
  }
  void emit_locked(const SpanRecord& span);

  bool enabled_ = false;
  std::atomic<std::uint64_t> clock_{0};
  MetricsRegistry* registry_ = nullptr;
  LatencyHistogram* phase_hist_[kNumSpanPhases] = {};

  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  // Per family-lane stack of open spans (record kept until end()).
  std::map<std::uint64_t, std::vector<SpanRecord>> open_;
  std::vector<SpanRecord> done_;
  std::vector<std::unique_ptr<SpanSink>> sinks_;
};

/// RAII span.  Latches the enabled check once; all methods are no-ops on a
/// disabled tracer or null pointer.
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer* tracer, SpanPhase phase, std::uint64_t family,
             std::uint32_t node,
             std::uint64_t object = SpanRecord::kNoObject)
      : tracer_(tracer && tracer->enabled() ? tracer : nullptr),
        family_(family) {
    if (tracer_) id_ = tracer_->begin(phase, family, node, object);
  }
  ~ScopedSpan() { finish(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Close early (idempotent).
  void finish() {
    if (tracer_) {
      tracer_->end(id_, family_);
      tracer_ = nullptr;
    }
  }

 private:
  SpanTracer* tracer_;
  std::uint64_t family_;
  std::uint64_t id_ = 0;
};

}  // namespace lotec
