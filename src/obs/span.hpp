// Span tracer: per-family phase spans stamped with a deterministic logical
// clock.  The clock advances once per transport message (Transport calls
// tick_message()) and once per span edge, so timestamps are reproducible
// across runs with the same seed — a trace diff is a real behaviour diff.
//
// Disabled is the default and must be provably free: every entry point
// checks one bool (ScopedSpan latches it in its constructor), no memory is
// touched, and no message is ever generated either way, so traced and
// untraced runs carry bit-identical wire traffic.  The causal TraceContext
// piggybacked on WireMessage (obs/trace_context.hpp) rides in the fixed
// frame's padding and is never accounted, preserving that contract.
//
// Span phases (the taxonomy is documented in docs/PROTOCOL.md §9):
//   family.attempt       one (re)execution attempt of a root family
//   lock.acquire         acquiring the global lock for one object
//   lock.inherit         pre-commit lock inheritance to the parent (instant)
//   gdo.round            the remote GDO request/grant round inside acquire
//   page.gather          fetching pages for an object from caching sites
//   method.execute       running a method body
//   txn.undo             undoing a subtree or family on abort
//   commit.report        the commit-time release/report round
//   cache.callback_round one callback revocation round at the directory
//   fault.event          an injected fault firing (instant)
//   gdo.serve            the directory serving one request (remote side)
//   page.serve           a site serving one page-fetch request (remote side)
//   lock.grant           a queued request waking with a grant (instant)
//   wire.deliver         a wire-transport worker delivering one frame
//                        (distributed runs only; emitted by lotec_worker)
//   shard.migrate        the elastic directory moving one entry to its new
//                        ring owner (directory lane)
//   shard.redirect       the directory bouncing a request to the entry's
//                        new ring owner during migration (instant)
//   snapshot.map_round   a read-only family refreshing its snapshot page
//                        map from the directory (mv_read path)
//   snapshot.fetch       a read-only family fetching committed page
//                        versions for its snapshot (mv_read path)
//   batch.flush          the outermost batch window closing and flushing
//                        its deferred messages (instant)
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "obs/trace_context.hpp"

namespace lotec {

class MetricsRegistry;
class LatencyHistogram;
class FlightRecorder;

enum class SpanPhase : std::uint8_t {
  kFamilyAttempt = 0,
  kLockAcquire,
  kLockInherit,
  kGdoRound,
  kPageGather,
  kMethodExecute,
  kUndo,
  kCommitReport,
  kCallbackRound,
  kFaultEvent,
  kGdoServe,
  kPageServe,
  kLockGrant,
  kWireDeliver,
  kShardMigrate,
  kShardRedirect,
  kSnapshotMapRound,
  kSnapshotFetch,
  kBatchFlush,
};

inline constexpr std::size_t kNumSpanPhases = 19;

[[nodiscard]] std::string_view to_string(SpanPhase phase) noexcept;

/// Returns a stable-backed copy of `kind` for MessageRecord::kind when the
/// caller's string is transient (e.g. parsed from a JSONL file).  Interned
/// strings live until process exit; the set of message kinds is tiny, so
/// this never grows past a few dozen entries.
[[nodiscard]] std::string_view intern_message_kind(std::string_view kind);

/// One completed span (or instant, when begin == end and the phase is an
/// instant phase).  family == 0 marks the directory lane (GDO-side work not
/// attributable to a single family).  object == kNoObject when the span is
/// not about one object.
struct SpanRecord {
  static constexpr std::uint64_t kNoObject = ~std::uint64_t{0};

  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root (no enclosing span)
  SpanPhase phase = SpanPhase::kFamilyAttempt;
  std::uint64_t family = 0;  // 0 = directory lane
  std::uint32_t node = 0;
  std::uint64_t object = kNoObject;
  std::uint64_t begin = 0;  // logical ticks
  std::uint64_t end = 0;
  /// Causal domain: the trace id minted for the enclosing family.attempt
  /// (0 for spans recorded before causal tracing, e.g. old jsonl files).
  std::uint64_t trace = 0;
  /// Cross-lane causal parent (the span whose message caused this one);
  /// distinct from `parent`, which always stays in-lane so the LIFO lane
  /// rule and containment invariants are untouched.  0 = none.
  std::uint64_t link = 0;

  friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

/// One message observed at the Transport choke point while tracing was
/// enabled — the per-message-kind axis of the critical-path analysis.
/// `kind` is the MessageKind name (src/obs cannot depend on src/net).  It is
/// a view, not an owned string: the hot path hands in `to_string(kind)`
/// (static storage) and pays zero allocations; anything loading records from
/// disk must go through intern_message_kind() to get a stable backing.
struct MessageRecord {
  std::uint64_t tick = 0;  ///< tracer clock right after the message's tick
  std::string_view kind;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t object = SpanRecord::kNoObject;
  std::uint64_t bytes = 0;      ///< accounted wire bytes (header + payload)
  std::uint64_t trace = 0;      ///< causal domain (0 = untraced sender)
  std::uint64_t span = 0;       ///< sender's open span when it left

  friend bool operator==(const MessageRecord&, const MessageRecord&) = default;
};

/// Receives completed spans.  Sinks are invoked under the tracer mutex in
/// span-end order; implementations must not call back into the tracer.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void on_span(const SpanRecord& span) = 0;
  /// Messages observed at the choke point (send order).  Default: ignored.
  virtual void on_message(const MessageRecord& /*message*/) {}
  virtual void flush() {}
};

/// Test sink: collects spans in memory.
class InMemorySink final : public SpanSink {
 public:
  void on_span(const SpanRecord& span) override { spans_.push_back(span); }
  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }

 private:
  std::vector<SpanRecord> spans_;
};

/// Writes one JSON object per line (machine-readable stream; the input
/// format of `trace_report spans`).  Message records are written as lines
/// with a "msg" key; old readers that only know span lines skip them.
class JsonLinesSink final : public SpanSink {
 public:
  explicit JsonLinesSink(const std::string& path);
  explicit JsonLinesSink(std::ostream& os);  // caller keeps os alive
  ~JsonLinesSink() override;

  void on_span(const SpanRecord& span) override;
  void on_message(const MessageRecord& message) override;
  void flush() override;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
};

/// Buffers spans and writes a Chrome trace-event JSON file on flush (or
/// destruction) — loadable in Perfetto / chrome://tracing.  Spans carrying
/// a `link` additionally emit flow events so Perfetto draws causal arrows.
class ChromeTraceSink final : public SpanSink {
 public:
  explicit ChromeTraceSink(std::string path);
  ~ChromeTraceSink() override;

  void on_span(const SpanRecord& span) override { spans_.push_back(span); }
  void flush() override;

 private:
  std::string path_;
  std::vector<SpanRecord> spans_;
  bool written_ = false;
};

class SpanTracer {
 public:
  SpanTracer() = default;
  ~SpanTracer();
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Turn tracing on.  Pre-resolves one `span.<phase>` histogram handle per
  /// phase when a registry was attached, so span ends stay cheap.
  void enable();
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Attach the registry that receives span-duration histograms.  Call
  /// before enable().
  void set_registry(MetricsRegistry* registry) { registry_ = registry; }

  /// Attach the always-on flight recorder; span begin/end/instant events
  /// are mirrored into its ring while tracing is enabled.  Owned by the
  /// caller (ClusterCore).
  void set_flight_recorder(FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }

  /// Sinks receive every completed span; the tracer always also keeps an
  /// in-memory record (spans()).
  void add_sink(std::unique_ptr<SpanSink> sink);

  /// Advance the logical clock for one transport message.  The disabled
  /// cost of observability on the message path is exactly this bool check.
  void tick_message() noexcept {
    if (enabled_) clock_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t now() const noexcept {
    return clock_.load(std::memory_order_relaxed);
  }

  /// Open a span; returns its id (0 when disabled).  Parent is the
  /// innermost open span of the same lane (family lane, or the node's
  /// directory lane when family == 0).  A kFamilyAttempt span mints a
  /// fresh trace id (so every retry starts a new causal domain); every
  /// other span inherits the lane top's trace.
  std::uint64_t begin(SpanPhase phase, std::uint64_t family,
                      std::uint32_t node,
                      std::uint64_t object = SpanRecord::kNoObject);

  /// Open a remote-side serve span on `node`'s directory lane, causally
  /// linked to the sender context the triggering message carried: the
  /// span's trace is ctx.trace_id and its link is ctx.parent_span.
  std::uint64_t begin_remote(SpanPhase phase, std::uint32_t node,
                             const TraceContext& ctx,
                             std::uint64_t object = SpanRecord::kNoObject);

  /// Close the innermost open span of the lane that `id` was opened on
  /// (abandoned inner spans are closed LIFO first).  `family` is the
  /// opener's lane hint, used only when `id`'s lane is unknown.
  void end(std::uint64_t id, std::uint64_t family);

  /// Record a zero-duration event (begin == end).
  void instant(SpanPhase phase, std::uint64_t family, std::uint32_t node,
               std::uint64_t object = SpanRecord::kNoObject);
  /// Linked instant: like instant(), with a cross-lane causal link to
  /// ctx.parent_span (e.g. the grant that woke a queued family).
  void instant_linked(SpanPhase phase, std::uint64_t family,
                      std::uint32_t node, const TraceContext& ctx,
                      std::uint64_t object = SpanRecord::kNoObject);

  /// The calling thread's innermost open span on this tracer, as a message
  /// context ({} when none / disabled).  Valid because every span is begun
  /// and ended on the thread doing the traced work.
  [[nodiscard]] TraceContext current_context() const;

  /// Record one message observed at the Transport choke point (called by
  /// Transport::send only while tracing is enabled).
  void note_message(std::string_view kind, std::uint32_t src,
                    std::uint32_t dst, std::uint64_t object,
                    std::uint64_t bytes, const TraceContext& ctx);

  /// Pre-size the message record buffer so note_message stays allocation
  /// free up to `n` records (benches call this with the expected message
  /// count; growth past it just falls back to amortized doubling).
  void reserve_messages(std::size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    messages_.reserve(n);
  }

  /// All completed spans so far, in completion order.
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  /// All messages recorded while tracing was enabled, in send order.
  [[nodiscard]] std::vector<MessageRecord> messages() const;
  /// Spans currently open across all lanes (0 on a quiescent tracer).
  [[nodiscard]] std::size_t open_count() const;

  void flush_sinks();

 private:
  /// Directory work is keyed per NODE (family 0 output stays 0): two nodes'
  /// serve spans must not share a LIFO stack.  Family ids are dense small
  /// integers; the top bit namespace cannot collide.
  static constexpr std::uint64_t kDirectoryLaneBase = std::uint64_t{1} << 62;
  [[nodiscard]] static std::uint64_t lane_for(std::uint64_t family,
                                              std::uint32_t node) noexcept {
    return family != 0 ? family : (kDirectoryLaneBase | node);
  }

  std::uint64_t next_tick_locked() noexcept {
    return clock_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t begin_locked(SpanPhase phase, std::uint64_t family,
                             std::uint32_t node, std::uint64_t object,
                             std::uint64_t trace_override,
                             std::uint64_t link);
  void emit_locked(const SpanRecord& span);

  bool enabled_ = false;
  std::atomic<std::uint64_t> clock_{0};
  MetricsRegistry* registry_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  LatencyHistogram* phase_hist_[kNumSpanPhases] = {};

  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_trace_ = 1;
  // Per lane stack of open spans (record kept until end()).
  std::map<std::uint64_t, std::vector<SpanRecord>> open_;
  // Open span id -> its lane, so end() can close directory-lane spans
  // without knowing the node they were opened on.
  std::map<std::uint64_t, std::uint64_t> open_lane_;
  std::vector<SpanRecord> done_;
  std::vector<MessageRecord> messages_;
  std::vector<std::unique_ptr<SpanSink>> sinks_;
};

/// RAII span.  Latches the enabled check once; all methods are no-ops on a
/// disabled tracer or null pointer.
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer* tracer, SpanPhase phase, std::uint64_t family,
             std::uint32_t node,
             std::uint64_t object = SpanRecord::kNoObject)
      : tracer_(tracer && tracer->enabled() ? tracer : nullptr),
        family_(family) {
    if (tracer_) id_ = tracer_->begin(phase, family, node, object);
  }
  ~ScopedSpan() { finish(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Close early (idempotent).
  void finish() {
    if (tracer_) {
      tracer_->end(id_, family_);
      tracer_ = nullptr;
    }
  }

 private:
  SpanTracer* tracer_;
  std::uint64_t family_;
  std::uint64_t id_ = 0;
};

/// RAII remote-side serve span on a node's directory lane, causally linked
/// to the calling thread's current context (i.e. to the span whose request
/// message the callee is serving — the call is synchronous, so the sender's
/// context is still on this thread when the serve begins).
class ScopedServeSpan {
 public:
  ScopedServeSpan(SpanTracer* tracer, SpanPhase phase, std::uint32_t node,
                  std::uint64_t object = SpanRecord::kNoObject)
      : tracer_(tracer && tracer->enabled() ? tracer : nullptr) {
    if (tracer_)
      id_ = tracer_->begin_remote(phase, node, tracer_->current_context(),
                                  object);
  }
  ~ScopedServeSpan() { finish(); }

  ScopedServeSpan(const ScopedServeSpan&) = delete;
  ScopedServeSpan& operator=(const ScopedServeSpan&) = delete;

  void finish() {
    if (tracer_) {
      tracer_->end(id_, 0);
      tracer_ = nullptr;
    }
  }

 private:
  SpanTracer* tracer_;
  std::uint64_t id_ = 0;
};

}  // namespace lotec
