#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>

#include "common/error.hpp"
#include "obs/chrome_trace.hpp"

namespace lotec {

// --- WindowHistogram -----------------------------------------------------

WindowHistogram WindowHistogram::delta(const HistogramSnapshot& now,
                                       const HistogramSnapshot& prev) {
  WindowHistogram w;
  if (now.count < prev.count) {
    // The histogram was reset between the two snapshots; the cumulative
    // state IS the window.
    w.count = now.count;
    w.sum = now.sum;
    for (std::size_t i = 0; i < kBuckets; ++i)
      w.buckets[i] = saturating_add_u32(0, now.buckets[i]);
  } else {
    w.count = now.count - prev.count;
    w.sum = now.sum >= prev.sum ? now.sum - prev.sum : 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t d = now.buckets[i] >= prev.buckets[i]
                                  ? now.buckets[i] - prev.buckets[i]
                                  : now.buckets[i];
      w.buckets[i] = saturating_add_u32(0, d);
    }
  }
  if (w.count == 0) return w;
  // Bucket-resolution extremes: lower bound of the lowest occupied bucket
  // (2^i - 1) and upper bound of the highest ((2^(i+1)) - 2), clamped to
  // the cumulative max — a real recorded value.
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (w.buckets[i] != 0) {
      w.min = (std::uint64_t{1} << i) - 1;
      break;
    }
  }
  for (std::size_t i = kBuckets; i-- > 0;) {
    if (w.buckets[i] != 0) {
      w.max = std::min((std::uint64_t{2} << i) - 2, now.max);
      break;
    }
  }
  w.max = std::max(w.max, w.min);
  return w;
}

void WindowHistogram::merge(const WindowHistogram& o) noexcept {
  if (o.count == 0) return;  // empty windows must not perturb anything
  if (count == 0) {
    *this = o;
    return;
  }
  count += o.count;
  sum += o.sum;
  min = std::min(min, o.min);
  max = std::max(max, o.max);
  for (std::size_t i = 0; i < kBuckets; ++i)
    buckets[i] = saturating_add_u32(buckets[i], o.buckets[i]);
}

double WindowHistogram::percentile(double p) const noexcept {
  if (count == 0) return 0.0;
  if (std::isnan(p)) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  if (p <= 0.0) return static_cast<double>(min);
  if (p >= 100.0) return static_cast<double>(max);
  const double rank = p / 100.0 * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) >= rank) {
      const double upper = static_cast<double>((std::uint64_t{2} << i) - 2);
      return std::min(upper, static_cast<double>(max));
    }
  }
  return static_cast<double>(max);
}

// --- TimeseriesCollector -------------------------------------------------

TimeseriesCollector::TimeseriesCollector(MetricsRegistry& registry,
                                         TimeseriesConfig config)
    : registry_(registry),
      interval_(config.tick_interval),
      retain_(std::max<std::size_t>(1, config.retain)) {
  next_close_.store(interval_, std::memory_order_relaxed);
  ring_.resize(retain_);
  if (!config.jsonl_path.empty()) {
    auto os = std::make_unique<std::ofstream>(config.jsonl_path);
    if (!*os)
      throw Error("timeseries: cannot open jsonl sink " + config.jsonl_path);
    jsonl_ = std::move(os);
  }
  std::lock_guard<std::mutex> lock(mu_);
  refresh_handles_locked();
}

TimeseriesCollector::~TimeseriesCollector() {
  if (jsonl_) jsonl_->flush();
}

void TimeseriesCollector::maybe_close(std::uint64_t now_ticks) {
  std::lock_guard<std::mutex> lock(mu_);
  // Another thread may have closed this boundary between our fast-path
  // check and the lock.
  if (now_ticks < next_close_.load(std::memory_order_relaxed)) return;
  close_window_locked(now_ticks);
}

std::uint64_t TimeseriesCollector::close_window() {
  std::lock_guard<std::mutex> lock(mu_);
  return close_window_locked(ticks_.load(std::memory_order_relaxed));
}

std::uint64_t TimeseriesCollector::close_window_locked(
    std::uint64_t now_ticks) {
  if (registry_.generation() != seen_generation_) refresh_handles_locked();
  TimeseriesWindow& w = ring_[closed_ % retain_];
  w.index = closed_;
  w.open_tick = open_tick_;
  w.close_tick = now_ticks;
  for (std::size_t i = 0; i < counter_handles_.size(); ++i) {
    const std::uint64_t now = counter_handles_[i]->value();
    const std::uint64_t prev = counter_last_[i];
    w.counter_deltas[i] = now >= prev ? now - prev : now;
    counter_last_[i] = now;
  }
  for (std::size_t i = 0; i < histogram_handles_.size(); ++i) {
    const HistogramSnapshot now = histogram_handles_[i]->snapshot();
    w.hist_deltas[i] = WindowHistogram::delta(now, histogram_last_[i]);
    histogram_last_[i] = now;
  }
  open_tick_ = now_ticks;
  ++closed_;
  if (interval_ != 0)
    next_close_.store(now_ticks + interval_, std::memory_order_relaxed);
  if (jsonl_) emit_jsonl_locked(w);
  return w.index;
}

void TimeseriesCollector::refresh_handles_locked() {
  // Known metrics carry their previous snapshot across the refresh;
  // newly-seen metrics baseline at zero, so the window in which a metric
  // first appears reports its full cumulative value as the delta (nothing
  // recorded before the collector noticed it is ever swallowed).
  std::map<std::string, std::uint64_t> prev_counter;
  for (std::size_t i = 0; i < counter_names_.size(); ++i)
    prev_counter[counter_names_[i]] = counter_last_[i];
  std::map<std::string, HistogramSnapshot> prev_hist;
  for (std::size_t i = 0; i < histogram_names_.size(); ++i)
    prev_hist[histogram_names_[i]] = histogram_last_[i];

  auto counters = registry_.counter_handles();
  auto histograms = registry_.histogram_handles();
  counter_names_.clear();
  counter_handles_.clear();
  counter_last_.clear();
  for (auto& [name, handle] : counters) {
    counter_names_.push_back(name);
    counter_handles_.push_back(handle);
    const auto it = prev_counter.find(name);
    counter_last_.push_back(it == prev_counter.end() ? 0 : it->second);
  }
  histogram_names_.clear();
  histogram_handles_.clear();
  histogram_last_.clear();
  for (auto& [name, handle] : histograms) {
    histogram_names_.push_back(name);
    histogram_handles_.push_back(handle);
    const auto it = prev_hist.find(name);
    histogram_last_.push_back(it == prev_hist.end() ? HistogramSnapshot{}
                                                    : it->second);
  }
  // Pre-size every ring slot so steady-state closes write in place.
  for (TimeseriesWindow& w : ring_) {
    w.counter_deltas.assign(counter_handles_.size(), 0);
    w.hist_deltas.assign(histogram_handles_.size(), WindowHistogram{});
  }
  seen_generation_ = registry_.generation();
}

std::uint64_t TimeseriesCollector::windows_closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::vector<TimeseriesWindow> TimeseriesCollector::windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TimeseriesWindow> out;
  const std::uint64_t first = closed_ > retain_ ? closed_ - retain_ : 0;
  out.reserve(static_cast<std::size_t>(closed_ - first));
  for (std::uint64_t i = first; i < closed_; ++i)
    out.push_back(ring_[i % retain_]);
  return out;
}

std::vector<std::string> TimeseriesCollector::counter_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counter_names_;
}

std::vector<std::string> TimeseriesCollector::histogram_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_names_;
}

namespace {

void write_window_jsonl(const TimeseriesWindow& w,
                        const std::vector<std::string>& counter_names,
                        const std::vector<std::string>& histogram_names,
                        std::ostream& os) {
  os << "{\"window\":" << w.index << ",\"open\":" << w.open_tick
     << ",\"close\":" << w.close_tick << ",\"counters\":{";
  bool first = true;
  for (std::size_t i = 0; i < w.counter_deltas.size(); ++i) {
    if (w.counter_deltas[i] == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(counter_names[i]) << "\":" << w.counter_deltas[i];
  }
  os << "},\"hist\":{";
  first = true;
  for (std::size_t i = 0; i < w.hist_deltas.size(); ++i) {
    const WindowHistogram& h = w.hist_deltas[i];
    if (h.count == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(histogram_names[i]) << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"min\":" << h.min << ",\"max\":" << h.max
       << ",\"p50\":" << h.percentile(50.0) << ",\"p99\":" << h.percentile(99.0)
       << ",\"p999\":" << h.percentile(99.9) << '}';
  }
  os << "}}\n";
}

}  // namespace

void TimeseriesCollector::emit_jsonl_locked(const TimeseriesWindow& w) {
  write_window_jsonl(w, counter_names_, histogram_names_, *jsonl_);
  jsonl_->flush();  // lotec_top tails this file live
}

void TimeseriesCollector::write_jsonl(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t first = closed_ > retain_ ? closed_ - retain_ : 0;
  for (std::uint64_t i = first; i < closed_; ++i)
    write_window_jsonl(ring_[i % retain_], counter_names_, histogram_names_,
                       os);
}

void TimeseriesCollector::write_prometheus(
    std::ostream& os,
    const std::vector<std::pair<std::string, std::string>>& labels) const {
  write_prometheus_text(registry_.counters(), registry_.histograms(), labels,
                        os);
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_ == 0) return;
  const TimeseriesWindow& w = ring_[(closed_ - 1) % retain_];
  std::string suffix;
  {
    std::string acc;
    for (const auto& [k, v] : labels) {
      acc += ',';
      acc += k;
      acc += "=\"";
      acc += prom_escape_label(v);
      acc += '"';
    }
    suffix = acc;
  }
  os << "# TYPE lotec_window gauge\n"
     << "lotec_window{field=\"index\"" << suffix << "} " << w.index << '\n'
     << "lotec_window{field=\"open\"" << suffix << "} " << w.open_tick << '\n'
     << "lotec_window{field=\"close\"" << suffix << "} " << w.close_tick
     << '\n';
  os << "# TYPE lotec_window_delta gauge\n";
  for (std::size_t i = 0; i < w.counter_deltas.size(); ++i) {
    if (w.counter_deltas[i] == 0) continue;
    os << "lotec_window_delta{metric=\""
       << prom_escape_label(counter_names_[i]) << '"' << suffix << "} "
       << w.counter_deltas[i] << '\n';
  }
  os << "# TYPE lotec_window_latency gauge\n";
  for (std::size_t i = 0; i < w.hist_deltas.size(); ++i) {
    const WindowHistogram& h = w.hist_deltas[i];
    if (h.count == 0) continue;
    const std::string hist = prom_escape_label(histogram_names_[i]);
    os << "lotec_window_latency{hist=\"" << hist << "\",q=\"0.5\"" << suffix
       << "} " << h.percentile(50.0) << '\n'
       << "lotec_window_latency{hist=\"" << hist << "\",q=\"0.99\"" << suffix
       << "} " << h.percentile(99.0) << '\n'
       << "lotec_window_latency{hist=\"" << hist << "\",q=\"0.999\"" << suffix
       << "} " << h.percentile(99.9) << '\n';
  }
}

// --- Prometheus text helpers ---------------------------------------------

std::string prom_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 6);
  if (name.substr(0, 6) != "lotec_") out = "lotec_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prom_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string label_block(
    const std::vector<std::pair<std::string, std::string>>& labels,
    std::string_view extra_key = {}, std::string_view extra_value = {}) {
  std::string out;
  bool first = true;
  auto add = [&](std::string_view k, std::string_view v) {
    out += first ? '{' : ',';
    first = false;
    // Keys go through the NAME sanitizer (label names share the metric
    // name's charset), values through the escaper.
    std::string key;
    for (const char c : k) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      key.push_back(ok ? c : '_');
    }
    if (!key.empty() && key[0] >= '0' && key[0] <= '9') key.insert(0, "_");
    out += key;
    out += "=\"";
    out += prom_escape_label(v);
    out += '"';
  };
  for (const auto& [k, v] : labels) add(k, v);
  if (!extra_key.empty()) add(extra_key, extra_value);
  if (!first) out += '}';
  return out;
}

}  // namespace

void write_prometheus_text(
    const std::map<std::string, std::uint64_t>& counters,
    const std::map<std::string, HistogramSnapshot>& histograms,
    const std::vector<std::pair<std::string, std::string>>& labels,
    std::ostream& os) {
  const std::string plain = label_block(labels);
  for (const auto& [name, value] : counters) {
    const std::string family = prom_metric_name(name);
    // TYPE names the metric family; samples get the `_total` suffix (the
    // OpenMetrics counter convention).
    os << "# TYPE " << family << " counter\n"
       << family << "_total" << plain << ' ' << value << '\n';
  }
  for (const auto& [name, snap] : histograms) {
    const std::string metric = prom_metric_name(name);
    os << "# TYPE " << metric << " histogram\n";
    std::uint64_t cumulative = 0;
    std::size_t top = 0;
    for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i)
      if (snap.buckets[i] != 0) top = i;
    for (std::size_t i = 0; i <= top; ++i) {
      cumulative += snap.buckets[i];
      os << metric << "_bucket"
         << label_block(labels, "le",
                        std::to_string((std::uint64_t{2} << i) - 2))
         << ' ' << cumulative << '\n';
    }
    os << metric << "_bucket" << label_block(labels, "le", "+Inf") << ' '
       << snap.count << '\n'
       << metric << "_sum" << plain << ' ' << snap.sum << '\n'
       << metric << "_count" << plain << ' ' << snap.count << '\n';
  }
}

std::vector<PromSample> parse_prometheus_text(std::string_view text) {
  std::vector<PromSample> out;
  std::size_t pos = 0;
  int lineno = 0;
  auto fail = [&](const std::string& why) {
    throw Error("prometheus parse: line " + std::to_string(lineno) + ": " +
                why);
  };
  while (pos < text.size()) {
    ++lineno;
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    // Trim trailing CR / spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;

    PromSample s;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    if (i == 0) fail("missing metric name");
    s.name = std::string(line.substr(0, i));
    for (const char c : s.name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      if (!ok) fail("bad character in metric name");
    }
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        std::size_t eq = i;
        while (eq < line.size() && line[eq] != '=') ++eq;
        if (eq >= line.size()) fail("label without '='");
        std::string key(line.substr(i, eq - i));
        i = eq + 1;
        if (i >= line.size() || line[i] != '"') fail("unquoted label value");
        ++i;
        std::string value;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\' && i + 1 < line.size()) {
            ++i;
            if (line[i] == 'n')
              value.push_back('\n');
            else
              value.push_back(line[i]);
          } else {
            value.push_back(line[i]);
          }
          ++i;
        }
        if (i >= line.size()) fail("unterminated label value");
        ++i;  // closing quote
        s.labels.emplace_back(std::move(key), std::move(value));
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size()) fail("unterminated label block");
      ++i;  // closing brace
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) fail("missing sample value");
    const std::string value_str(line.substr(i));
    if (value_str == "+Inf") {
      s.value = std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      s.value = std::strtod(value_str.c_str(), &end);
      if (end == value_str.c_str() || *end != '\0')
        fail("bad sample value '" + value_str + "'");
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace lotec
