// The per-cluster observability bundle: one MetricsRegistry (always on —
// counters are free), one SpanTracer (off unless ObsConfig asks) and one
// FlightRecorder (always on, see obs/flight_recorder.hpp).  ClusterCore
// owns an Observability instance and hands pointers to the tracer and the
// recorder down to Transport, GdoService, FamilyRunner and the fault
// engine.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"

namespace lotec {

struct ObsConfig {
  /// Record per-family phase spans.  Off by default; a disabled run is
  /// bit-identical in message traffic to a build without the layer.
  bool trace_spans = false;
  /// When non-empty (and trace_spans), stream spans as JSON lines here.
  std::string spans_jsonl;
  /// When non-empty (and trace_spans), write Chrome trace-event JSON here
  /// on flush (open in Perfetto via `trace_report spans`).
  std::string chrome_trace;
  /// Keep the always-on flight recorder (independent of trace_spans).
  bool flight_recorder = true;
  /// Ring capacity per node (events retained for the post-mortem).
  std::size_t flight_recorder_capacity = 512;
  /// When non-empty, the fault engine dumps the recorder here on every
  /// node-crash event (second crash appends ".2", and so on).
  std::string flight_dump;
  /// Time-series telemetry plane (PROTOCOL.md §16).  Off by default; when
  /// off, traffic AND span output are bit-identical to a build without the
  /// collector (it is simply never installed on the transport).
  bool timeseries = false;
  /// Logical window length: close a window every this many transport
  /// messages.  0 = explicit close_window() only (wall-clock pacing).
  std::uint64_t timeseries_interval = 0;
  /// Windows retained in the collector's ring.
  std::size_t timeseries_retain = 256;
  /// When non-empty, stream one JSON line per closed window here (what
  /// `lotec_top --jsonl` tails).
  std::string timeseries_jsonl;
};

struct Observability {
  MetricsRegistry metrics;
  SpanTracer tracer;
  std::unique_ptr<FlightRecorder> recorder;
  std::unique_ptr<TimeseriesCollector> timeseries;

  /// Apply config: attach the registry, create the flight recorder (needs
  /// the cluster's node count) and enable/attach span sinks.
  void configure(const ObsConfig& cfg, std::size_t nodes = 0) {
    tracer.set_registry(&metrics);
    if (cfg.flight_recorder && nodes > 0) {
      recorder = std::make_unique<FlightRecorder>(
          nodes, cfg.flight_recorder_capacity);
      tracer.set_flight_recorder(recorder.get());
    }
    if (cfg.timeseries) {
      TimeseriesConfig ts;
      ts.tick_interval = cfg.timeseries_interval;
      ts.retain = cfg.timeseries_retain;
      ts.jsonl_path = cfg.timeseries_jsonl;
      timeseries = std::make_unique<TimeseriesCollector>(metrics, ts);
    }
    if (!cfg.trace_spans) return;
    if (!cfg.spans_jsonl.empty()) {
      tracer.add_sink(std::make_unique<JsonLinesSink>(cfg.spans_jsonl));
    }
    if (!cfg.chrome_trace.empty()) {
      tracer.add_sink(std::make_unique<ChromeTraceSink>(cfg.chrome_trace));
    }
    tracer.enable();
  }
};

}  // namespace lotec
