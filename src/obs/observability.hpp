// The per-cluster observability bundle: one MetricsRegistry (always on —
// counters are free) and one SpanTracer (off unless ObsConfig asks).
// ClusterCore owns an Observability instance and hands pointers to the
// tracer down to Transport, GdoService, FamilyRunner and the fault engine.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace lotec {

struct ObsConfig {
  /// Record per-family phase spans.  Off by default; a disabled run is
  /// bit-identical in message traffic to a build without the layer.
  bool trace_spans = false;
  /// When non-empty (and trace_spans), stream spans as JSON lines here.
  std::string spans_jsonl;
  /// When non-empty (and trace_spans), write Chrome trace-event JSON here
  /// on flush (open in Perfetto via `trace_report spans`).
  std::string chrome_trace;
};

struct Observability {
  MetricsRegistry metrics;
  SpanTracer tracer;

  /// Apply config: attach the registry and enable/attach sinks.
  void configure(const ObsConfig& cfg) {
    tracer.set_registry(&metrics);
    if (!cfg.trace_spans) return;
    if (!cfg.spans_jsonl.empty()) {
      tracer.add_sink(std::make_unique<JsonLinesSink>(cfg.spans_jsonl));
    }
    if (!cfg.chrome_trace.empty()) {
      tracer.add_sink(std::make_unique<ChromeTraceSink>(cfg.chrome_trace));
    }
    tracer.enable();
  }
};

}  // namespace lotec
