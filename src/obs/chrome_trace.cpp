#include "obs/chrome_trace.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <set>
#include <stdexcept>

namespace lotec {

namespace {

bool is_instant_phase(SpanPhase phase) noexcept {
  return phase == SpanPhase::kLockInherit || phase == SpanPhase::kFaultEvent;
}

// Minimal scanners for the flat one-line objects this module itself writes.
// Keys are unique per line and values are unsigned integers or plain strings,
// so substring search is unambiguous.
std::optional<std::uint64_t> find_uint(const std::string& line,
                                       std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t i = pos + needle.size();
  while (i < line.size() && line[i] == ' ') ++i;
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return std::nullopt;
  std::uint64_t value = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(line[i] - '0');
    ++i;
  }
  return value;
}

std::optional<std::string> find_string(const std::string& line,
                                       std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const auto start = pos + needle.size();
  const auto close = line.find('"', start);
  if (close == std::string::npos) return std::nullopt;
  return line.substr(start, close - start);
}

}  // namespace

std::optional<SpanPhase> phase_from_string(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kNumSpanPhases; ++i) {
    const auto phase = static_cast<SpanPhase>(i);
    if (to_string(phase) == name) return phase;
  }
  return std::nullopt;
}

void write_span_jsonl(const SpanRecord& span, std::ostream& os) {
  os << "{\"id\":" << span.id << ",\"parent\":" << span.parent
     << ",\"phase\":\"" << to_string(span.phase) << "\",\"family\":"
     << span.family << ",\"node\":" << span.node;
  if (span.object != SpanRecord::kNoObject) os << ",\"object\":" << span.object;
  os << ",\"begin\":" << span.begin << ",\"end\":" << span.end << "}\n";
}

void write_spans_jsonl(const std::vector<SpanRecord>& spans,
                       std::ostream& os) {
  for (const auto& span : spans) write_span_jsonl(span, os);
}

std::vector<SpanRecord> load_spans_jsonl(std::istream& is) {
  std::vector<SpanRecord> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto fail = [&](const char* what) {
      throw std::runtime_error("span jsonl line " + std::to_string(lineno) +
                               ": " + what);
    };
    SpanRecord span;
    const auto id = find_uint(line, "id");
    const auto parent = find_uint(line, "parent");
    const auto phase_name = find_string(line, "phase");
    const auto family = find_uint(line, "family");
    const auto node = find_uint(line, "node");
    const auto begin = find_uint(line, "begin");
    const auto end = find_uint(line, "end");
    if (!id || !parent || !phase_name || !family || !node || !begin || !end) {
      fail("missing field");
    }
    const auto phase = phase_from_string(*phase_name);
    if (!phase) fail("unknown phase");
    span.id = *id;
    span.parent = *parent;
    span.phase = *phase;
    span.family = *family;
    span.node = static_cast<std::uint32_t>(*node);
    span.object = find_uint(line, "object").value_or(SpanRecord::kNoObject);
    span.begin = *begin;
    span.end = *end;
    out.push_back(span);
  }
  return out;
}

std::vector<SpanRecord> load_spans_jsonl_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open span file: " + path);
  return load_spans_jsonl(is);
}

void write_chrome_trace(const std::vector<SpanRecord>& spans,
                        std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Metadata: name each node's process and each family lane's thread so
  // Perfetto shows "node N" / "family F" instead of bare pids.
  std::set<std::uint32_t> nodes;
  std::set<std::pair<std::uint32_t, std::uint64_t>> lanes;
  for (const auto& span : spans) {
    nodes.insert(span.node);
    lanes.emplace(span.node, span.family);
  }
  for (const auto node : nodes) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << node
       << ",\"tid\":0,\"args\":{\"name\":\"node " << node << "\"}}";
  }
  for (const auto& [node, family] : lanes) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << node
       << ",\"tid\":" << family << ",\"args\":{\"name\":\"";
    if (family == 0) {
      os << "directory";
    } else {
      os << "family " << family;
    }
    os << "\"}}";
  }

  for (const auto& span : spans) {
    sep();
    os << "{\"name\":\"" << to_string(span.phase)
       << "\",\"cat\":\"lotec\",\"ph\":\""
       << (is_instant_phase(span.phase) ? "i" : "X") << "\",\"ts\":"
       << span.begin;
    if (!is_instant_phase(span.phase)) {
      os << ",\"dur\":" << (span.end - span.begin);
    } else {
      os << ",\"s\":\"t\"";
    }
    os << ",\"pid\":" << span.node << ",\"tid\":" << span.family
       << ",\"args\":{\"id\":" << span.id << ",\"parent\":" << span.parent;
    if (span.object != SpanRecord::kNoObject) {
      os << ",\"object\":" << span.object;
    }
    os << "}}";
  }
  os << "\n]}\n";
}

}  // namespace lotec
