#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <stdexcept>

namespace lotec {

namespace {

bool is_instant_phase(SpanPhase phase) noexcept {
  return phase == SpanPhase::kLockInherit ||
         phase == SpanPhase::kFaultEvent || phase == SpanPhase::kLockGrant;
}

// Minimal scanners for the flat one-line objects this module itself writes.
// Keys are unique per line and values are unsigned integers or plain strings,
// so substring search is unambiguous.
std::optional<std::uint64_t> find_uint(const std::string& line,
                                       std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t i = pos + needle.size();
  while (i < line.size() && line[i] == ' ') ++i;
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return std::nullopt;
  std::uint64_t value = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(line[i] - '0');
    ++i;
  }
  return value;
}

std::optional<std::string> find_string(const std::string& line,
                                       std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const auto start = pos + needle.size();
  const auto close = line.find('"', start);
  if (close == std::string::npos) return std::nullopt;
  return line.substr(start, close - start);
}

const char kHexDigits[] = "0123456789abcdef";

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += "\\u00";
          out += kHexDigits[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHexDigits[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool json_wellformed(std::string_view text) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        if (i + 1 >= text.size()) return false;
        const char esc = text[++i];
        switch (esc) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            break;
          case 'u': {
            if (i + 4 >= text.size()) return false;
            for (int k = 1; k <= 4; ++k) {
              const char h = text[i + static_cast<std::size_t>(k)];
              const bool hex = (h >= '0' && h <= '9') ||
                               (h >= 'a' && h <= 'f') ||
                               (h >= 'A' && h <= 'F');
              if (!hex) return false;
            }
            i += 4;
            break;
          }
          default:
            return false;
        }
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string literal
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

std::optional<SpanPhase> phase_from_string(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kNumSpanPhases; ++i) {
    const auto phase = static_cast<SpanPhase>(i);
    if (to_string(phase) == name) return phase;
  }
  return std::nullopt;
}

void write_span_jsonl(const SpanRecord& span, std::ostream& os) {
  os << "{\"id\":" << span.id << ",\"parent\":" << span.parent
     << ",\"phase\":\"" << json_escape(to_string(span.phase))
     << "\",\"family\":" << span.family << ",\"node\":" << span.node;
  if (span.object != SpanRecord::kNoObject) os << ",\"object\":" << span.object;
  if (span.trace != 0) os << ",\"trace\":" << span.trace;
  if (span.link != 0) os << ",\"link\":" << span.link;
  os << ",\"begin\":" << span.begin << ",\"end\":" << span.end << "}\n";
}

void write_message_jsonl(const MessageRecord& message, std::ostream& os) {
  os << "{\"msg\":\"" << json_escape(message.kind)
     << "\",\"tick\":" << message.tick << ",\"src\":" << message.src
     << ",\"dst\":" << message.dst;
  if (message.object != SpanRecord::kNoObject)
    os << ",\"object\":" << message.object;
  os << ",\"bytes\":" << message.bytes;
  if (message.trace != 0) os << ",\"trace\":" << message.trace;
  if (message.span != 0) os << ",\"span\":" << message.span;
  os << "}\n";
}

void write_spans_jsonl(const std::vector<SpanRecord>& spans,
                       std::ostream& os) {
  for (const auto& span : spans) write_span_jsonl(span, os);
}

void load_obs_jsonl(std::istream& is, std::vector<SpanRecord>& spans,
                    std::vector<MessageRecord>& messages) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto fail = [&](const char* what) {
      throw std::runtime_error("span jsonl line " + std::to_string(lineno) +
                               ": " + what);
    };
    if (const auto kind = find_string(line, "msg")) {
      MessageRecord rec;
      const auto tick = find_uint(line, "tick");
      const auto src = find_uint(line, "src");
      const auto dst = find_uint(line, "dst");
      const auto bytes = find_uint(line, "bytes");
      if (!tick || !src || !dst || !bytes) fail("missing field");
      rec.kind = intern_message_kind(*kind);
      rec.tick = *tick;
      rec.src = static_cast<std::uint32_t>(*src);
      rec.dst = static_cast<std::uint32_t>(*dst);
      rec.object = find_uint(line, "object").value_or(SpanRecord::kNoObject);
      rec.bytes = *bytes;
      rec.trace = find_uint(line, "trace").value_or(0);
      rec.span = find_uint(line, "span").value_or(0);
      messages.push_back(std::move(rec));
      continue;
    }
    SpanRecord span;
    const auto id = find_uint(line, "id");
    const auto parent = find_uint(line, "parent");
    const auto phase_name = find_string(line, "phase");
    const auto family = find_uint(line, "family");
    const auto node = find_uint(line, "node");
    const auto begin = find_uint(line, "begin");
    const auto end = find_uint(line, "end");
    if (!id || !parent || !phase_name || !family || !node || !begin || !end) {
      fail("missing field");
    }
    const auto phase = phase_from_string(*phase_name);
    if (!phase) fail("unknown phase");
    span.id = *id;
    span.parent = *parent;
    span.phase = *phase;
    span.family = *family;
    span.node = static_cast<std::uint32_t>(*node);
    span.object = find_uint(line, "object").value_or(SpanRecord::kNoObject);
    span.trace = find_uint(line, "trace").value_or(0);
    span.link = find_uint(line, "link").value_or(0);
    span.begin = *begin;
    span.end = *end;
    spans.push_back(span);
  }
}

std::vector<SpanRecord> load_spans_jsonl(std::istream& is) {
  std::vector<SpanRecord> spans;
  std::vector<MessageRecord> messages;
  load_obs_jsonl(is, spans, messages);
  return spans;
}

std::vector<SpanRecord> load_spans_jsonl_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open span file: " + path);
  return load_spans_jsonl(is);
}

void write_chrome_trace(const std::vector<SpanRecord>& spans,
                        std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Metadata: name each node's process and each family lane's thread so
  // Perfetto shows "node N" / "family F" instead of bare pids.
  std::set<std::uint32_t> nodes;
  std::set<std::pair<std::uint32_t, std::uint64_t>> lanes;
  std::map<std::uint64_t, const SpanRecord*> by_id;
  for (const auto& span : spans) {
    nodes.insert(span.node);
    lanes.emplace(span.node, span.family);
    by_id[span.id] = &span;
  }
  for (const auto node : nodes) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << node
       << ",\"tid\":0,\"args\":{\"name\":\"node " << node << "\"}}";
  }
  for (const auto& [node, family] : lanes) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << node
       << ",\"tid\":" << family << ",\"args\":{\"name\":\"";
    if (family == 0) {
      os << "directory";
    } else {
      os << "family " << family;
    }
    os << "\"}}";
  }

  for (const auto& span : spans) {
    sep();
    os << "{\"name\":\"" << json_escape(to_string(span.phase))
       << "\",\"cat\":\"lotec\",\"ph\":\""
       << (is_instant_phase(span.phase) ? "i" : "X") << "\",\"ts\":"
       << span.begin;
    if (!is_instant_phase(span.phase)) {
      os << ",\"dur\":" << (span.end - span.begin);
    } else {
      os << ",\"s\":\"t\"";
    }
    os << ",\"pid\":" << span.node << ",\"tid\":" << span.family
       << ",\"args\":{\"id\":" << span.id << ",\"parent\":" << span.parent;
    if (span.object != SpanRecord::kNoObject) {
      os << ",\"object\":" << span.object;
    }
    if (span.trace != 0) os << ",\"trace\":" << span.trace;
    if (span.link != 0) os << ",\"link\":" << span.link;
    os << "}}";
  }

  // Flow events: one s->f arrow per cross-lane causal link, anchored inside
  // the linked (source) span and at the start of the linked-to (child)
  // span.  Links whose source span is not in this trace are skipped.
  for (const auto& span : spans) {
    if (span.link == 0) continue;
    const auto it = by_id.find(span.link);
    if (it == by_id.end()) continue;
    const SpanRecord& from = *it->second;
    // Clamp the start anchor into the source slice so Perfetto binds it.
    const std::uint64_t ts_from =
        std::clamp(span.begin, from.begin, from.end);
    sep();
    os << "{\"name\":\"causal\",\"cat\":\"lotec\",\"ph\":\"s\",\"id\":"
       << span.id << ",\"ts\":" << ts_from << ",\"pid\":" << from.node
       << ",\"tid\":" << from.family << "}";
    sep();
    os << "{\"name\":\"causal\",\"cat\":\"lotec\",\"ph\":\"f\",\"bp\":\"e\","
          "\"id\":"
       << span.id << ",\"ts\":" << span.begin << ",\"pid\":" << span.node
       << ",\"tid\":" << span.family << "}";
  }
  os << "\n]}\n";
}

}  // namespace lotec
