// FlightRecorder: an always-on black box of recent span/instant/message
// events, one fixed-size ring per node.
//
// Design constraints (ISSUE 5 tentpole, piece 3):
//   - always on: messages are recorded even with span tracing disabled, so
//     a crash post-mortem exists for every run;
//   - no allocation on the hot path: every slot is pre-allocated at
//     construction and events carry only POD fields plus string_views into
//     static storage (phase names, MessageKind names);
//   - lock-free writes: a slot is claimed with one fetch_add and filled
//     with plain stores.  Concurrent writers to one ring (two sender
//     threads with the same destination) get distinct slots; a reader
//     racing a writer could see a torn slot, which is why reads are
//     post-mortem only — at a crash instant or after quiescence.
//
// dump() renders the rings as Chrome trace-event JSON (Perfetto-loadable):
// matched begin/end pairs become complete ("X") slices, a begin whose end
// never arrived becomes an open slice flagged {"open":1} (this is how the
// in-flight commit.report of a crash victim shows up), instants and
// messages become instant events.  Timestamps are the recorder's own
// global sequence numbers — the tracer clock stands still when tracing is
// off, so the recorder cannot borrow it.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span.hpp"
#include "obs/trace_context.hpp"

namespace lotec {

struct FlightEvent {
  enum class Kind : std::uint8_t {
    kNone = 0,   ///< empty slot
    kSpanBegin,
    kSpanEnd,
    kInstant,
    kMessage,
    kCrash,
  };
  static constexpr std::uint32_t kNoPeer = ~std::uint32_t{0};

  Kind kind = Kind::kNone;
  /// Phase name or MessageKind name — static storage only (to_string).
  std::string_view name;
  std::uint64_t seq = 0;  ///< global recorder sequence (orders all rings)
  std::uint32_t node = 0;
  std::uint64_t id = 0;      ///< span id (span events)
  std::uint64_t parent = 0;  ///< in-lane parent span id
  std::uint64_t family = 0;
  std::uint64_t object = SpanRecord::kNoObject;
  std::uint64_t trace = 0;
  std::uint64_t link = 0;
  std::uint32_t src = kNoPeer;  ///< message endpoints (message events)
  std::uint32_t dst = kNoPeer;
  std::uint64_t bytes = 0;
};

class FlightRecorder {
 public:
  static constexpr std::uint32_t kNoVictim = ~std::uint32_t{0};

  /// Pre-allocates `capacity` slots for each of `nodes` rings.
  FlightRecorder(std::size_t nodes, std::size_t capacity);

  /// Record one transport message into BOTH endpoint rings (the victim of
  /// a crash needs the messages that were in flight towards it).  `kind`
  /// must point into static storage.
  void note_message(std::string_view kind, std::uint32_t src,
                    std::uint32_t dst, std::uint64_t object,
                    std::uint64_t bytes, const TraceContext& ctx);

  /// Span mirroring (called by SpanTracer while tracing is enabled).
  void note_span_begin(const SpanRecord& span);
  void note_span_end(const SpanRecord& span);
  void note_instant(const SpanRecord& span);

  /// Record a node-crash marker into the victim's ring.
  void note_crash(std::uint32_t node);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return rings_.size();
  }

  /// The ring contents for one node, oldest first.  Post-mortem use only
  /// (see the file comment on read/write races).
  [[nodiscard]] std::vector<FlightEvent> events(std::uint32_t node) const;

  /// Write every ring as Chrome trace-event JSON.  `victim`, when not
  /// kNoVictim, is called out in the trace metadata.
  void dump(std::ostream& os, std::uint32_t victim = kNoVictim) const;
  /// dump() to a file; returns false (without throwing) on I/O failure.
  bool dump_file(const std::string& path,
                 std::uint32_t victim = kNoVictim) const;

 private:
  struct NodeRing {
    std::atomic<std::uint64_t> next{0};
    std::vector<FlightEvent> slots;
  };

  void put(std::uint32_t node, FlightEvent ev);

  std::size_t capacity_;
  std::atomic<std::uint64_t> seq_{1};
  std::vector<std::unique_ptr<NodeRing>> rings_;
};

}  // namespace lotec
