#include "obs/tail_attribution.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

namespace lotec {

std::string_view to_string(TailBucket bucket) noexcept {
  switch (bucket) {
    case TailBucket::kLockWait: return "lock_wait";
    case TailBucket::kGdoRound: return "gdo_round";
    case TailBucket::kPageGather: return "page_gather";
    case TailBucket::kExecute: return "execute";
    case TailBucket::kUndo: return "undo";
    case TailBucket::kCommitReport: return "commit_report";
    case TailBucket::kSnapshot: return "snapshot";
    case TailBucket::kRingStall: return "ring_stall";
    case TailBucket::kWire: return "wire";
    case TailBucket::kOther: return "other";
  }
  return "unknown";
}

TailBucket tail_bucket_for(SpanPhase phase) noexcept {
  switch (phase) {
    case SpanPhase::kLockAcquire:
    case SpanPhase::kLockInherit:
    case SpanPhase::kCallbackRound:
    case SpanPhase::kLockGrant:
      return TailBucket::kLockWait;
    case SpanPhase::kGdoRound:
    case SpanPhase::kGdoServe:
      return TailBucket::kGdoRound;
    case SpanPhase::kPageGather:
    case SpanPhase::kPageServe:
      return TailBucket::kPageGather;
    case SpanPhase::kMethodExecute:
      return TailBucket::kExecute;
    case SpanPhase::kUndo:
      return TailBucket::kUndo;
    case SpanPhase::kCommitReport:
      return TailBucket::kCommitReport;
    case SpanPhase::kSnapshotMapRound:
    case SpanPhase::kSnapshotFetch:
      return TailBucket::kSnapshot;
    case SpanPhase::kShardMigrate:
    case SpanPhase::kShardRedirect:
      return TailBucket::kRingStall;
    case SpanPhase::kWireDeliver:
      return TailBucket::kWire;
    case SpanPhase::kFamilyAttempt:
    case SpanPhase::kFaultEvent:
    case SpanPhase::kBatchFlush:
      return TailBucket::kOther;
  }
  return TailBucket::kOther;
}

namespace {

/// Causal tree-parent: cross-lane link when present, in-lane parent
/// otherwise (same rule as the critical-path analysis).
std::uint64_t tree_parent(const SpanRecord& span) noexcept {
  return span.link != 0 ? span.link : span.parent;
}

struct Interval {
  std::uint64_t lo;
  std::uint64_t hi;
};

/// Attribute every tick of `clip` (the span's interval already clipped to
/// its ancestors) to the deepest covering span's bucket.  Children are
/// clipped to `clip` before recursion, overlapping children deduplicated,
/// so exactly |clip| ticks are attributed across the subtree — the
/// buckets-sum-to-sojourn identity holds on ANY input, not just properly
/// nested traces.
void attribute(const SpanRecord& span, Interval clip,
               const std::unordered_map<std::uint64_t,
                                        std::vector<const SpanRecord*>>& kids,
               std::unordered_set<std::uint64_t>& visited,
               std::array<std::uint64_t, kNumTailBuckets>& buckets) {
  std::vector<std::pair<Interval, const SpanRecord*>> clipped;
  if (const auto it = kids.find(span.id); it != kids.end()) {
    for (const SpanRecord* kid : it->second) {
      if (!visited.insert(kid->id).second) continue;  // corrupt-input guard
      const std::uint64_t lo = std::max(kid->begin, clip.lo);
      const std::uint64_t hi = std::min(kid->end, clip.hi);
      if (lo < hi) clipped.push_back({{lo, hi}, kid});
      // Zero-width children (instants, fully out-of-window spans) still
      // recurse so their own descendants are marked visited, but they
      // cannot claim ticks.
    }
  }
  std::sort(clipped.begin(), clipped.end(),
            [](const auto& a, const auto& b) {
              return a.first.lo != b.first.lo ? a.first.lo < b.first.lo
                                              : a.second->id < b.second->id;
            });
  // Sweep: ticks covered by a child go to that child's subtree (the first
  // child to cover a tick wins on overlap); uncovered ticks are this span's
  // self time.
  std::uint64_t covered = 0;
  std::uint64_t cursor = clip.lo;
  for (auto& [iv, kid] : clipped) {
    const std::uint64_t lo = std::max(iv.lo, cursor);
    if (lo >= iv.hi) continue;  // fully shadowed by an earlier sibling
    attribute(*kid, {lo, iv.hi}, kids, visited, buckets);
    covered += iv.hi - lo;
    cursor = iv.hi;
  }
  const std::uint64_t width = clip.hi - clip.lo;
  buckets[static_cast<std::size_t>(tail_bucket_for(span.phase))] +=
      width - covered;
}

}  // namespace

TailAttribution analyze_tail_attribution(const std::vector<SpanRecord>& spans) {
  TailAttribution out;

  // Index children by tree-parent.  Span ids are globally unique (the
  // tracer allocates them from one counter; worker-side ids live in their
  // own namespaced range), so one flat index serves every attempt's tree
  // even over merged multi-worker files.
  std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>> kids;
  kids.reserve(spans.size());
  for (const auto& span : spans) {
    if (span.phase == SpanPhase::kFamilyAttempt) continue;
    const std::uint64_t up = tree_parent(span);
    if (up != 0) kids[up].push_back(&span);
  }

  for (const auto& span : spans) {
    if (span.phase != SpanPhase::kFamilyAttempt) continue;
    AttemptAttribution a;
    a.root = span.id;
    a.family = span.family;
    a.trace = span.trace;
    a.node = span.node;
    a.sojourn = span.end - span.begin;
    std::unordered_set<std::uint64_t> visited;
    visited.insert(span.id);
    attribute(span, {span.begin, span.end}, kids, visited, a.buckets);
    out.attempts.push_back(a);
  }

  std::sort(out.attempts.begin(), out.attempts.end(),
            [](const AttemptAttribution& x, const AttemptAttribution& y) {
              return x.sojourn != y.sojourn ? x.sojourn < y.sojourn
                                            : x.root < y.root;
            });

  // Percentile bands over the sorted population.  Edges are attempt-count
  // ranks; every attempt lands in exactly one band.
  static constexpr std::array<std::string_view, kNumTailBands> kLabels = {
      "p0-50", "p50-90", "p90-99", "p99-99.9", "p99.9-100"};
  static constexpr std::array<double, kNumTailBands> kLo = {0.0, 0.50, 0.90,
                                                            0.99, 0.999};
  const std::size_t n = out.attempts.size();
  std::array<std::size_t, kNumTailBands + 1> edge{};
  for (std::size_t b = 0; b < kNumTailBands; ++b)
    edge[b] = static_cast<std::size_t>(kLo[b] * static_cast<double>(n));
  edge[kNumTailBands] = n;
  for (std::size_t b = 0; b < kNumTailBands; ++b) {
    TailBand& band = out.bands[b];
    band.label = kLabels[b];
    for (std::size_t i = edge[b]; i < edge[b + 1]; ++i) {
      const AttemptAttribution& a = out.attempts[i];
      ++band.attempts;
      band.sojourn += a.sojourn;
      for (std::size_t k = 0; k < kNumTailBuckets; ++k)
        band.buckets[k] += a.buckets[k];
    }
  }
  return out;
}

void write_tail_attribution(const TailAttribution& ta, std::ostream& os) {
  os << "tail attribution: " << ta.attempts.size()
     << " root family attempts\n";
  if (ta.empty()) return;
  os << std::left << std::setw(11) << "band" << std::right << std::setw(9)
     << "attempts" << std::setw(12) << "sojourn";
  for (std::size_t k = 0; k < kNumTailBuckets; ++k)
    os << std::setw(14) << to_string(static_cast<TailBucket>(k));
  os << '\n';
  const auto flags = os.flags();
  const auto precision = os.precision();
  for (const TailBand& band : ta.bands) {
    os << std::left << std::setw(11) << band.label << std::right
       << std::setw(9) << band.attempts << std::setw(12) << band.sojourn;
    for (std::size_t k = 0; k < kNumTailBuckets; ++k) {
      os << std::setw(13) << std::fixed << std::setprecision(1)
         << band.share(static_cast<TailBucket>(k)) * 100.0 << '%';
      os.flags(flags);
      os.precision(precision);
    }
    os << '\n';
  }
}

}  // namespace lotec
