// Serialization for span records: JSON-lines (one object per line, the
// stream format JsonLinesSink emits and `trace_report spans` reads back)
// and Chrome trace-event JSON (the array-of-events format Perfetto and
// chrome://tracing load directly).  Both are hand-rolled — the repo takes
// no JSON dependency.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span.hpp"

namespace lotec {

/// Inverse of to_string(SpanPhase); nullopt on an unknown name.
[[nodiscard]] std::optional<SpanPhase> phase_from_string(
    std::string_view name) noexcept;

/// Escape a string for inclusion inside a JSON string literal: quotes,
/// backslashes and control characters (the latter as \u00XX).  Every name
/// this module emits goes through here, so a hostile span/counter name can
/// never break the trace file.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Minimal structural JSON validator: balanced braces/brackets outside
/// string literals, legal escape sequences inside them.  NOT a full parser
/// — it exists so tests can re-parse emitted traces without a JSON
/// dependency.
[[nodiscard]] bool json_wellformed(std::string_view text);

/// One span as a single-line JSON object (trailing newline included).
/// `object` is omitted when the span has none; `trace`/`link` are omitted
/// when zero, so pre-causal files and records round-trip byte-identically.
void write_span_jsonl(const SpanRecord& span, std::ostream& os);

/// One message record as a single-line JSON object keyed by "msg" (so span
/// readers can skip it).
void write_message_jsonl(const MessageRecord& message, std::ostream& os);

void write_spans_jsonl(const std::vector<SpanRecord>& spans, std::ostream& os);

/// Parse a JSON-lines observability stream (blank lines skipped) into
/// spans and messages.  Throws std::runtime_error with the offending line
/// number on malformed input.
void load_obs_jsonl(std::istream& is, std::vector<SpanRecord>& spans,
                    std::vector<MessageRecord>& messages);

/// Span-only convenience readers ("msg" lines are parsed and discarded).
[[nodiscard]] std::vector<SpanRecord> load_spans_jsonl(std::istream& is);
[[nodiscard]] std::vector<SpanRecord> load_spans_jsonl_file(
    const std::string& path);

/// Chrome trace-event JSON: {"traceEvents":[...]} with one complete ("X")
/// event per span, instant ("i") events for zero-duration phases, flow
/// ("s"/"f") event pairs for spans carrying a cross-lane causal `link`
/// (Perfetto draws them as arrows), and process_name metadata per node.
/// pid = node, tid = family (0 = the directory lane).  Timestamps are
/// logical ticks passed as microseconds.
void write_chrome_trace(const std::vector<SpanRecord>& spans,
                        std::ostream& os);

}  // namespace lotec
