// Serialization for span records: JSON-lines (one object per line, the
// stream format JsonLinesSink emits and `trace_report spans` reads back)
// and Chrome trace-event JSON (the array-of-events format Perfetto and
// chrome://tracing load directly).  Both are hand-rolled — the repo takes
// no JSON dependency.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span.hpp"

namespace lotec {

/// Inverse of to_string(SpanPhase); nullopt on an unknown name.
[[nodiscard]] std::optional<SpanPhase> phase_from_string(
    std::string_view name) noexcept;

/// One span as a single-line JSON object (trailing newline included).
/// `object` is omitted when the span has none.
void write_span_jsonl(const SpanRecord& span, std::ostream& os);

void write_spans_jsonl(const std::vector<SpanRecord>& spans, std::ostream& os);

/// Parse a JSON-lines span stream (blank lines skipped).  Throws
/// std::runtime_error with the offending line number on malformed input.
[[nodiscard]] std::vector<SpanRecord> load_spans_jsonl(std::istream& is);
[[nodiscard]] std::vector<SpanRecord> load_spans_jsonl_file(
    const std::string& path);

/// Chrome trace-event JSON: {"traceEvents":[...]} with one complete ("X")
/// event per span, instant ("i") events for zero-duration phases, and
/// process_name metadata per node.  pid = node, tid = family (0 = the
/// directory lane).  Timestamps are logical ticks passed as microseconds.
void write_chrome_trace(const std::vector<SpanRecord>& spans,
                        std::ostream& os);

}  // namespace lotec
