// Envoy-style macro-generated stats structs.
//
// MetricsRegistry resolves counters by name through a std::map — fine once,
// wrong per increment.  The repo convention is already "resolve handles in
// the constructor, bump raw pointers on the hot path", but each component
// hand-rolls the member list and the resolve calls, and the two drift.
//
// LOTEC_DEFINE_STATS_STRUCT generates both from one X-macro list, so adding
// a counter is a one-line change and the handle is always pre-resolved:
//
//   #define CORE_COUNTERS(COUNTER) COUNTER(commits, "core.commit") ...
//   LOTEC_DEFINE_STATS_STRUCT(CoreStats, CORE_COUNTERS)
//
//   CoreStats stats_{registry};   // resolves every handle once
//   stats_.commits->add(1);       // O(1) relaxed atomic increment
//
// The generated struct holds `MetricsCounter*` members named by the first
// macro argument, registered under the string name in the second.  This is
// the same shape as Envoy's GENERATE_COUNTER_STRUCT / ALL_..._STATS pattern,
// minus scopes: the registry is flat and names carry the dotted prefix.
#pragma once

#include "obs/metrics.hpp"

// clang-format off
#define LOTEC_GENERATE_COUNTER_MEMBER(field, name) \
  ::lotec::MetricsCounter* field = nullptr;

#define LOTEC_GENERATE_COUNTER_RESOLVE(field, name) \
  field = &registry.counter(name);
// clang-format on

/// Defines `struct StructName` with one pre-resolved MetricsCounter* per
/// entry of LIST, where LIST is an X-macro: LIST(COUNTER) expands to
/// COUNTER(field_name, "registry.name") repetitions.
#define LOTEC_DEFINE_STATS_STRUCT(StructName, LIST)               \
  struct StructName {                                             \
    StructName() = default;                                       \
    explicit StructName(::lotec::MetricsRegistry& registry) {     \
      resolve(registry);                                          \
    }                                                             \
    void resolve(::lotec::MetricsRegistry& registry) {            \
      LIST(LOTEC_GENERATE_COUNTER_RESOLVE)                        \
    }                                                             \
    LIST(LOTEC_GENERATE_COUNTER_MEMBER)                           \
  }
