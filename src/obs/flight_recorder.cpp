#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <set>

#include "obs/chrome_trace.hpp"

namespace lotec {

FlightRecorder::FlightRecorder(std::size_t nodes, std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  rings_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    auto ring = std::make_unique<NodeRing>();
    ring->slots.resize(capacity_);
    rings_.push_back(std::move(ring));
  }
}

void FlightRecorder::put(std::uint32_t node, FlightEvent ev) {
  if (node >= rings_.size()) return;
  NodeRing& ring = *rings_[node];
  const std::uint64_t slot =
      ring.next.fetch_add(1, std::memory_order_relaxed) % capacity_;
  ev.node = node;
  ring.slots[slot] = ev;
}

void FlightRecorder::note_message(std::string_view kind, std::uint32_t src,
                                  std::uint32_t dst, std::uint64_t object,
                                  std::uint64_t bytes,
                                  const TraceContext& ctx) {
  FlightEvent ev;
  ev.kind = FlightEvent::Kind::kMessage;
  ev.name = kind;
  ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  ev.object = object;
  ev.trace = ctx.trace_id;
  ev.link = ctx.parent_span;
  ev.src = src;
  ev.dst = dst;
  ev.bytes = bytes;
  put(src, ev);
  if (dst != src) put(dst, ev);
}

void FlightRecorder::note_span_begin(const SpanRecord& span) {
  FlightEvent ev;
  ev.kind = FlightEvent::Kind::kSpanBegin;
  ev.name = to_string(span.phase);
  ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  ev.id = span.id;
  ev.parent = span.parent;
  ev.family = span.family;
  ev.object = span.object;
  ev.trace = span.trace;
  ev.link = span.link;
  put(span.node, ev);
}

void FlightRecorder::note_span_end(const SpanRecord& span) {
  FlightEvent ev;
  ev.kind = FlightEvent::Kind::kSpanEnd;
  ev.name = to_string(span.phase);
  ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  ev.id = span.id;
  ev.parent = span.parent;
  ev.family = span.family;
  ev.object = span.object;
  ev.trace = span.trace;
  ev.link = span.link;
  put(span.node, ev);
}

void FlightRecorder::note_instant(const SpanRecord& span) {
  FlightEvent ev;
  ev.kind = FlightEvent::Kind::kInstant;
  ev.name = to_string(span.phase);
  ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  ev.id = span.id;
  ev.parent = span.parent;
  ev.family = span.family;
  ev.object = span.object;
  ev.trace = span.trace;
  ev.link = span.link;
  put(span.node, ev);
}

void FlightRecorder::note_crash(std::uint32_t node) {
  FlightEvent ev;
  ev.kind = FlightEvent::Kind::kCrash;
  ev.name = "crash";
  ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  put(node, ev);
}

std::vector<FlightEvent> FlightRecorder::events(std::uint32_t node) const {
  std::vector<FlightEvent> out;
  if (node >= rings_.size()) return out;
  const NodeRing& ring = *rings_[node];
  for (const FlightEvent& ev : ring.slots)
    if (ev.kind != FlightEvent::Kind::kNone) out.push_back(ev);
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

void FlightRecorder::dump(std::ostream& os, std::uint32_t victim) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Per-node process metadata (the victim is called out by name so the
  // post-mortem reader finds the interesting process immediately).
  for (std::uint32_t n = 0; n < rings_.size(); ++n) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << n
       << ",\"tid\":0,\"args\":{\"name\":\"node " << n
       << (n == victim ? " (CRASH VICTIM)" : "") << "\"}}";
  }

  for (std::uint32_t n = 0; n < rings_.size(); ++n) {
    const std::vector<FlightEvent> evs = events(n);
    if (evs.empty()) continue;
    const std::uint64_t newest = evs.back().seq;

    // Pair span begins with their ends inside the ring window.
    std::map<std::uint64_t, const FlightEvent*> ends;
    for (const FlightEvent& ev : evs)
      if (ev.kind == FlightEvent::Kind::kSpanEnd) ends[ev.id] = &ev;

    std::set<std::uint64_t> paired;
    for (const FlightEvent& ev : evs) {
      switch (ev.kind) {
        case FlightEvent::Kind::kSpanBegin: {
          const auto it = ends.find(ev.id);
          const bool open = it == ends.end();
          // An open slice reaches the newest event — the span was still in
          // flight when the recording stopped (e.g. the victim's
          // commit.report at the crash instant).
          const std::uint64_t end_seq = open ? newest + 1 : it->second->seq;
          if (!open) paired.insert(ev.id);
          sep();
          os << "{\"name\":\"" << json_escape(ev.name)
             << "\",\"cat\":\"flight\",\"ph\":\"X\",\"ts\":" << ev.seq
             << ",\"dur\":" << (end_seq - ev.seq) << ",\"pid\":" << n
             << ",\"tid\":" << ev.family << ",\"args\":{\"id\":" << ev.id
             << ",\"trace\":" << ev.trace;
          if (open) os << ",\"open\":1";
          os << "}}";
          break;
        }
        case FlightEvent::Kind::kSpanEnd:
          // An end whose begin scrolled out of the ring: render the tail we
          // still know about as a truncated slice from the ring's horizon.
          if (paired.count(ev.id) == 0) {
            const std::uint64_t horizon = evs.front().seq;
            sep();
            os << "{\"name\":\"" << json_escape(ev.name)
               << "\",\"cat\":\"flight\",\"ph\":\"X\",\"ts\":" << horizon
               << ",\"dur\":" << (ev.seq - horizon) << ",\"pid\":" << n
               << ",\"tid\":" << ev.family << ",\"args\":{\"id\":" << ev.id
               << ",\"trace\":" << ev.trace << ",\"truncated\":1}}";
          }
          break;
        case FlightEvent::Kind::kInstant:
          sep();
          os << "{\"name\":\"" << json_escape(ev.name)
             << "\",\"cat\":\"flight\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
             << ev.seq << ",\"pid\":" << n << ",\"tid\":" << ev.family
             << ",\"args\":{\"trace\":" << ev.trace << "}}";
          break;
        case FlightEvent::Kind::kMessage:
          sep();
          os << "{\"name\":\"msg " << json_escape(ev.name)
             << "\",\"cat\":\"flight\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
             << ev.seq << ",\"pid\":" << n
             << ",\"tid\":0,\"args\":{\"src\":" << ev.src << ",\"dst\":"
             << ev.dst << ",\"bytes\":" << ev.bytes << ",\"trace\":"
             << ev.trace << "}}";
          break;
        case FlightEvent::Kind::kCrash:
          sep();
          os << "{\"name\":\"CRASH\",\"cat\":\"flight\",\"ph\":\"i\","
                "\"s\":\"p\",\"ts\":"
             << ev.seq << ",\"pid\":" << n << ",\"tid\":0,\"args\":{}}";
          break;
        case FlightEvent::Kind::kNone:
          break;
      }
    }
  }
  os << "\n]}\n";
}

bool FlightRecorder::dump_file(const std::string& path,
                               std::uint32_t victim) const {
  std::ofstream os(path);
  if (!os) return false;
  dump(os, victim);
  return os.good();
}

}  // namespace lotec
