// Critical-path analysis over a completed causal span DAG.
//
// Input: the spans (and optionally messages) of one traced run.  The
// analysis picks the slowest root family.attempt span, walks the causal
// tree under it — children are spans whose cross-lane `link` (preferred)
// or in-lane `parent` points at a tree member, restricted to the root's
// trace id — and produces:
//
//   - per-phase SELF-time attribution: each span's duration minus the part
//     covered by its children, so the per-phase totals sum to the root's
//     wall time (exactly under well-nested spans; "within rounding" when
//     concurrent-scheduler interleavings overlap siblings);
//   - the longest blocking chain: from the root, repeatedly descend into
//     the child with the largest duration;
//   - per-message-kind cost: count and accounted bytes of every message
//     the trace's spans sent (matched by the message's causal trace id).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/span.hpp"

namespace lotec {

struct CriticalPathStep {
  std::uint64_t id = 0;
  SpanPhase phase = SpanPhase::kFamilyAttempt;
  std::uint64_t family = 0;
  std::uint32_t node = 0;
  std::uint64_t object = SpanRecord::kNoObject;
  std::uint64_t duration = 0;  ///< end - begin
  std::uint64_t self = 0;      ///< duration not covered by children
};

struct MessageKindCost {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

struct CriticalPath {
  std::uint64_t trace_id = 0;
  std::uint64_t root = 0;   ///< root span id (0 = no family.attempt found)
  std::uint64_t family = 0;
  std::uint32_t node = 0;
  std::uint64_t wall_ticks = 0;
  /// Self time per phase across the whole causal tree; sums to wall_ticks.
  std::array<std::uint64_t, kNumSpanPhases> phase_self{};
  /// Root-to-leaf chain of slowest children.
  std::vector<CriticalPathStep> chain;
  /// Message cost attributed to this trace, keyed by MessageKind name.
  std::map<std::string, MessageKindCost> by_kind;

  [[nodiscard]] bool valid() const noexcept { return root != 0; }
  [[nodiscard]] std::uint64_t phase_self_total() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t v : phase_self) total += v;
    return total;
  }
};

/// Analyze the slowest root family of a completed trace.  Returns an
/// invalid (root == 0) result when the trace has no family.attempt span.
[[nodiscard]] CriticalPath analyze_critical_path(
    const std::vector<SpanRecord>& spans,
    const std::vector<MessageRecord>& messages = {});

}  // namespace lotec
