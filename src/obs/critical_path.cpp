#include "obs/critical_path.hpp"

#include <algorithm>
#include <cstddef>
#include <unordered_map>

namespace lotec {

namespace {

// The causal tree-parent of a span: the cross-lane link when present
// (remote serve spans, grant-linked instants), the in-lane parent
// otherwise.
std::uint64_t tree_parent(const SpanRecord& span) noexcept {
  return span.link != 0 ? span.link : span.parent;
}

// Sum of the parts of [begin,end) covered by the children's intervals,
// clipped to the parent and deduplicated (overlapping children count once).
std::uint64_t covered_by_children(const SpanRecord& parent,
                                  const std::vector<const SpanRecord*>& kids) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ivs;
  ivs.reserve(kids.size());
  for (const SpanRecord* kid : kids) {
    const std::uint64_t lo = std::max(kid->begin, parent.begin);
    const std::uint64_t hi = std::min(kid->end, parent.end);
    if (lo < hi) ivs.emplace_back(lo, hi);
  }
  std::sort(ivs.begin(), ivs.end());
  std::uint64_t covered = 0;
  std::uint64_t cursor = 0;
  bool any = false;
  for (const auto& [lo, hi] : ivs) {
    if (!any || lo > cursor) {
      covered += hi - lo;
      cursor = hi;
      any = true;
    } else if (hi > cursor) {
      covered += hi - cursor;
      cursor = hi;
    }
  }
  return covered;
}

}  // namespace

CriticalPath analyze_critical_path(const std::vector<SpanRecord>& spans,
                                   const std::vector<MessageRecord>& messages) {
  CriticalPath out;

  // Slowest root: the longest family.attempt span (ties broken by lowest
  // family, then lowest id, for determinism).
  const SpanRecord* root = nullptr;
  for (const auto& span : spans) {
    if (span.phase != SpanPhase::kFamilyAttempt) continue;
    if (root == nullptr) {
      root = &span;
      continue;
    }
    const std::uint64_t dur = span.end - span.begin;
    const std::uint64_t best = root->end - root->begin;
    if (dur > best ||
        (dur == best && (span.family < root->family ||
                         (span.family == root->family && span.id < root->id)))) {
      root = &span;
    }
  }
  if (root == nullptr) return out;

  out.trace_id = root->trace;
  out.root = root->id;
  out.family = root->family;
  out.node = root->node;
  out.wall_ticks = root->end - root->begin;

  // Children index over the spans reachable from the root.  Restrict to the
  // root's trace when the trace has ids (cross-trace links never exist, but
  // legacy traces with trace == 0 everywhere still work — the reachability
  // walk alone scopes them).
  std::unordered_map<std::uint64_t, std::vector<const SpanRecord*>> kids;
  for (const auto& span : spans) {
    if (span.id == root->id) continue;
    if (root->trace != 0 && span.trace != 0 && span.trace != root->trace)
      continue;
    const std::uint64_t up = tree_parent(span);
    if (up != 0) kids[up].push_back(&span);
  }

  // Depth-first over the tree: self-time per phase plus the slowest-child
  // chain.  The tree is acyclic by construction (ids are allocated in
  // begin order and parents precede children), but a visited set guards
  // against corrupt input files.
  std::unordered_map<std::uint64_t, bool> visited;
  std::vector<const SpanRecord*> stack{root};
  visited[root->id] = true;
  while (!stack.empty()) {
    const SpanRecord* span = stack.back();
    stack.pop_back();
    std::vector<const SpanRecord*> children;
    if (const auto it = kids.find(span->id); it != kids.end()) {
      for (const SpanRecord* kid : it->second) {
        if (visited[kid->id]) continue;
        visited[kid->id] = true;
        children.push_back(kid);
        stack.push_back(kid);
      }
    }
    const std::uint64_t dur = span->end - span->begin;
    const std::uint64_t covered = covered_by_children(*span, children);
    const std::uint64_t self = dur > covered ? dur - covered : 0;
    out.phase_self[static_cast<std::size_t>(span->phase)] += self;
  }

  // Blocking chain: repeatedly descend into the longest child.
  const SpanRecord* cursor = root;
  std::unordered_map<std::uint64_t, bool> on_chain;
  while (cursor != nullptr && !on_chain[cursor->id]) {
    on_chain[cursor->id] = true;
    std::vector<const SpanRecord*> children;
    if (const auto it = kids.find(cursor->id); it != kids.end())
      children = it->second;
    const std::uint64_t dur = cursor->end - cursor->begin;
    const std::uint64_t covered = covered_by_children(*cursor, children);
    CriticalPathStep step;
    step.id = cursor->id;
    step.phase = cursor->phase;
    step.family = cursor->family;
    step.node = cursor->node;
    step.object = cursor->object;
    step.duration = dur;
    step.self = dur > covered ? dur - covered : 0;
    out.chain.push_back(step);
    const SpanRecord* next = nullptr;
    for (const SpanRecord* kid : children) {
      if (next == nullptr) {
        next = kid;
        continue;
      }
      const std::uint64_t kd = kid->end - kid->begin;
      const std::uint64_t nd = next->end - next->begin;
      if (kd > nd || (kd == nd && kid->id < next->id)) next = kid;
    }
    cursor = next;
  }

  // Message attribution: every wire message stamped with this trace id.
  if (root->trace != 0) {
    for (const auto& msg : messages) {
      if (msg.trace != root->trace) continue;
      MessageKindCost& cost = out.by_kind[std::string(msg.kind)];
      ++cost.messages;
      cost.bytes += msg.bytes;
    }
  }

  return out;
}

}  // namespace lotec
