#include "ring/hash_ring.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace lotec {

namespace {

/// SplitMix64 finalizer — the same mixer the static partition map and the
/// TokenScheduler use, so ring placement quality matches the rest of the
/// system without introducing a second hash family.
constexpr std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Token point for one (node, replica) pair under `seed`.  Chained mixes:
/// each input perturbs the state before the next finalization, so nearby
/// node ids and replica indices land far apart on the circle.
constexpr std::uint64_t token_point(std::uint64_t seed, std::uint32_t node,
                                    std::size_t replica) noexcept {
  return mix(mix(mix(seed) ^ node) ^ static_cast<std::uint64_t>(replica));
}

}  // namespace

HashRing::HashRing(std::uint64_t seed, std::size_t virtual_nodes)
    : seed_(seed), virtual_nodes_(virtual_nodes) {
  if (virtual_nodes_ == 0)
    throw UsageError("HashRing: virtual_nodes must be positive");
}

bool HashRing::add_node(NodeId node) {
  if (!node.valid()) throw UsageError("HashRing::add_node: invalid node");
  const auto it = std::lower_bound(members_.begin(), members_.end(), node);
  if (it != members_.end() && *it == node) return false;
  members_.insert(it, node);
  tokens_.reserve(tokens_.size() + virtual_nodes_);
  for (std::size_t r = 0; r < virtual_nodes_; ++r) {
    const Token t{token_point(seed_, node.value(), r), node.value()};
    tokens_.insert(std::lower_bound(tokens_.begin(), tokens_.end(), t), t);
  }
  return true;
}

bool HashRing::remove_node(NodeId node) {
  const auto it = std::lower_bound(members_.begin(), members_.end(), node);
  if (it == members_.end() || *it != node) return false;
  members_.erase(it);
  std::erase_if(tokens_,
                [v = node.value()](const Token& t) { return t.node == v; });
  return true;
}

bool HashRing::contains(NodeId node) const noexcept {
  return std::binary_search(members_.begin(), members_.end(), node);
}

std::vector<NodeId> HashRing::members() const { return members_; }

std::size_t HashRing::first_token(ObjectId id) const {
  const std::uint64_t point = mix(mix(seed_) ^ id.value());
  const auto it = std::lower_bound(
      tokens_.begin(), tokens_.end(), point,
      [](const Token& t, std::uint64_t p) { return t.point < p; });
  return it == tokens_.end() ? 0 : static_cast<std::size_t>(
                                       it - tokens_.begin());
}

NodeId HashRing::owner_of(ObjectId id) const {
  if (tokens_.empty())
    throw UsageError("HashRing::owner_of: ring has no members");
  return NodeId(tokens_[first_token(id)].node);
}

std::vector<NodeId> HashRing::successors(ObjectId id,
                                         std::size_t count) const {
  std::vector<NodeId> out;
  if (tokens_.empty() || count == 0) return out;
  const std::size_t start = first_token(id);
  const std::uint32_t owner = tokens_[start].node;
  out.reserve(std::min(count, members_.size() - 1));
  // Walk clockwise collecting distinct nodes; at most one full revolution.
  for (std::size_t i = 1; i < tokens_.size() && out.size() < count; ++i) {
    const std::uint32_t n = tokens_[(start + i) % tokens_.size()].node;
    if (n == owner) continue;
    const NodeId candidate(n);
    if (std::find(out.begin(), out.end(), candidate) == out.end())
      out.push_back(candidate);
  }
  return out;
}

}  // namespace lotec
