// Consistent-hash placement ring for the elastic GDO (PROTOCOL.md §15).
//
// The static directory maps an object to `mix(id) % nodes` — cheap, but any
// change in the node count remaps nearly every object.  The ring instead
// hashes each member node to `virtual_nodes` seeded tokens on a 64-bit
// circle and assigns an object to the first token clockwise from the
// object's own hash.  A join or leave then moves only the key ranges
// adjacent to the changed node's tokens (monotonicity), which is what makes
// online shard migration affordable: the migrator has to move a 1/n-ish
// slice, not the whole directory.
//
// Everything is deterministic: token placement depends only on
// (seed, node, replica), ties break on the node id, and lookups are binary
// searches over a sorted vector — no unordered containers, no pointers, so
// two processes with the same membership history agree bit-for-bit on every
// placement (required by the TokenScheduler's replayable runs and by the
// wire transport, where each process computes placements independently).
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"

namespace lotec {

class HashRing {
 public:
  /// An empty ring; `virtual_nodes` tokens are minted per member.
  explicit HashRing(std::uint64_t seed = 0, std::size_t virtual_nodes = 16);

  /// Add a member (idempotent; returns false if already present).
  bool add_node(NodeId node);

  /// Remove a member (idempotent; returns false if absent).
  bool remove_node(NodeId node);

  [[nodiscard]] bool contains(NodeId node) const noexcept;

  /// Members in ascending node-id order.
  [[nodiscard]] std::vector<NodeId> members() const;
  [[nodiscard]] std::size_t num_members() const noexcept {
    return members_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  /// The node owning `id`: first token clockwise from hash(id).  The ring
  /// must be non-empty.
  [[nodiscard]] NodeId owner_of(ObjectId id) const;

  /// The `count` distinct members following `id`'s owner clockwise (the
  /// object's mirror group).  Fewer are returned when the ring has fewer
  /// than count+1 members.  Never includes the owner.
  [[nodiscard]] std::vector<NodeId> successors(ObjectId id,
                                               std::size_t count) const;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::size_t virtual_nodes() const noexcept {
    return virtual_nodes_;
  }

 private:
  struct Token {
    std::uint64_t point;
    std::uint32_t node;
    friend constexpr auto operator<=>(const Token&, const Token&) = default;
  };

  /// Index of the first token at or after hash(id), wrapping.
  [[nodiscard]] std::size_t first_token(ObjectId id) const;

  std::uint64_t seed_;
  std::size_t virtual_nodes_;
  /// Sorted by (point, node); ties on the raw point are broken by node id,
  /// so placement is a pure function of (seed, membership set).
  std::vector<Token> tokens_;
  /// Sorted member list (ascending node id).
  std::vector<NodeId> members_;
};

}  // namespace lotec
