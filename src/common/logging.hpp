// Minimal leveled logger.
//
// The runtime is instrumented with trace-level messages that are compiled in
// but disabled by default; tests flip the level to debug lock-protocol
// interleavings.  Thread-safe at the line level.
#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace lotec {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) noexcept { level_.store(level); }
  [[nodiscard]] LogLevel level() const noexcept { return level_.load(); }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= level_.load();
  }

  void write(LogLevel level, std::string_view component,
             const std::string& message) {
    if (!enabled(level)) return;
    static constexpr const char* names[] = {"TRACE", "DEBUG", "INFO", "WARN"};
    std::lock_guard<std::mutex> lock(mu_);
    std::cerr << "[" << names[static_cast<int>(level)] << "][" << component
              << "] " << message << '\n';
  }

 private:
  std::atomic<LogLevel> level_{LogLevel::kOff};
  std::mutex mu_;
};

}  // namespace lotec

/// Log with lazy message construction: the stream expression is evaluated
/// only when the level is enabled.
#define LOTEC_LOG(level, component, expr)                              \
  do {                                                                 \
    if (::lotec::Logger::instance().enabled(level)) {                  \
      std::ostringstream lotec_log_oss_;                               \
      lotec_log_oss_ << expr;                                          \
      ::lotec::Logger::instance().write(level, component,              \
                                        lotec_log_oss_.str());         \
    }                                                                  \
  } while (0)

#define LOTEC_TRACE(component, expr) \
  LOTEC_LOG(::lotec::LogLevel::kTrace, component, expr)
#define LOTEC_DEBUG(component, expr) \
  LOTEC_LOG(::lotec::LogLevel::kDebug, component, expr)
#define LOTEC_INFO(component, expr) \
  LOTEC_LOG(::lotec::LogLevel::kInfo, component, expr)
#define LOTEC_WARN(component, expr) \
  LOTEC_LOG(::lotec::LogLevel::kWarn, component, expr)
