// Small statistics helpers used by the metrics and report layers.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace lotec {

/// Streaming summary of a sequence of samples (Welford's algorithm for
/// numerically stable mean/variance).
class Summary {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    total_ += x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double total() const noexcept { return total_; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double total_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile over a stored sample vector (used for latency reporting).
[[nodiscard]] inline double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace lotec
