// Deterministic random number generation.
//
// All randomness in the system (workload generation, scheduler tie-breaking,
// failure injection) flows through `Rng` so that a fixed seed reproduces an
// identical run — a requirement for the deterministic benchmark traces and
// the property-based test suites.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace lotec {

/// xoshiro256** by Blackman & Vigna: fast, high quality, tiny state, and —
/// unlike std::mt19937 across standard libraries — bit-for-bit portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) throw UsageError("Rng::below: bound must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    if (lo > hi) throw UsageError("Rng::between: lo > hi");
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Zipf-like skewed choice over [0, n): index i is chosen with weight
  /// 1/(i+1)^theta.  theta == 0 is uniform; larger theta concentrates
  /// accesses on low indices (the "hot set"), which is how the workload
  /// generator induces the paper's high-contention scenarios.
  std::size_t zipf(std::size_t n, double theta);

  /// Derive an independent child generator (for splitting streams between
  /// subsystems without correlating them).
  Rng split() noexcept { return Rng(next() ^ 0xd1342543de82ef95ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

/// Precomputed Zipf sampler for repeated draws with fixed (n, theta).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta);

  [[nodiscard]] std::size_t draw(Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized cumulative weights
};

}  // namespace lotec
