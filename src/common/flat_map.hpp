// FlatMap: an open-addressing hash map for the runtime's hot lookup tables.
//
// std::unordered_map pays a heap allocation per node and a pointer chase per
// lookup; the directory entry map, page-store index and per-family lock/pin
// tables are hit on every acquire/release/access, so those costs are pure
// overhead.  FlatMap stores keys and values inline in two parallel slot
// arrays with one control byte per slot (empty / full / tombstone) and
// resolves collisions by linear probing over a power-of-two table — one
// cache line of control bytes covers 64 probes.
//
// Deliberate design points:
//  * Drop-in subset of the std::unordered_map API (find / at / operator[] /
//    try_emplace / insert_or_assign / erase / contains / iteration), so call
//    sites migrate without churn.
//  * Pointer/reference stability is NOT provided across rehash (std's node
//    maps give it; open addressing cannot).  Callers that need stable
//    addresses keep values behind unique_ptr — exactly what PageStore does.
//  * Iteration order is slot order: deterministic for a fixed key sequence
//    (std::hash is deterministic per build), but different from
//    std::unordered_map's.  Anything order-sensitive must sort, same as the
//    repo's existing rule for unordered containers.
//  * Erase leaves a tombstone; tombstones are reclaimed wholesale at the
//    next rehash.  Growth triggers when full + tombstone slots exceed 7/8
//    of capacity, keeping probe chains short.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace lotec {

template <class Key, class T, class Hash = std::hash<Key>,
          class KeyEqual = std::equal_to<Key>>
class FlatMap {
  enum class Ctrl : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

 public:
  using key_type = Key;
  using mapped_type = T;
  using value_type = std::pair<const Key, T>;
  using size_type = std::size_t;

  template <bool Const>
  class Iter {
   public:
    using map_type = std::conditional_t<Const, const FlatMap, FlatMap>;
    using value_type = std::pair<const Key, T>;
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    Iter() = default;
    Iter(map_type* map, size_type slot) : map_(map), slot_(slot) {
      skip_to_full();
    }
    /// iterator -> const_iterator.
    template <bool C = Const, class = std::enable_if_t<C>>
    Iter(const Iter<false>& o) : map_(o.map_), slot_(o.slot_) {}

    reference operator*() const { return *map_->slot_ptr(slot_); }
    pointer operator->() const { return map_->slot_ptr(slot_); }

    Iter& operator++() {
      ++slot_;
      skip_to_full();
      return *this;
    }
    Iter operator++(int) {
      Iter tmp = *this;
      ++*this;
      return tmp;
    }

    friend bool operator==(const Iter& a, const Iter& b) {
      return a.slot_ == b.slot_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) { return !(a == b); }

   private:
    friend class FlatMap;
    friend class Iter<true>;
    void skip_to_full() {
      while (map_ != nullptr && slot_ < map_->capacity_ &&
             map_->ctrl_[slot_] != Ctrl::kFull)
        ++slot_;
    }
    map_type* map_ = nullptr;
    size_type slot_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;
  explicit FlatMap(size_type initial_capacity) { reserve(initial_capacity); }

  FlatMap(const FlatMap& o) { copy_from(o); }
  FlatMap& operator=(const FlatMap& o) {
    if (this != &o) {
      destroy_all();
      copy_from(o);
    }
    return *this;
  }
  FlatMap(FlatMap&& o) noexcept { move_from(std::move(o)); }
  FlatMap& operator=(FlatMap&& o) noexcept {
    if (this != &o) {
      destroy_all();
      move_from(std::move(o));
    }
    return *this;
  }
  ~FlatMap() { destroy_all(); }

  [[nodiscard]] size_type size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] size_type capacity() const noexcept { return capacity_; }

  [[nodiscard]] iterator begin() { return iterator(this, 0); }
  [[nodiscard]] iterator end() { return iterator(this, capacity_); }
  [[nodiscard]] const_iterator begin() const {
    return const_iterator(this, 0);
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator(this, capacity_);
  }
  [[nodiscard]] const_iterator cbegin() const { return begin(); }
  [[nodiscard]] const_iterator cend() const { return end(); }

  /// Ensure capacity for `n` elements without rehash.
  void reserve(size_type n) {
    // Max load factor 7/8 counts tombstones too; sizing from live elements
    // keeps the next rehash at least n inserts away.
    size_type want = kMinCapacity;
    while (want - want / 8 < n) want <<= 1;
    if (want > capacity_) rehash(want);
  }

  void clear() {
    destroy_all();
    // Keep the arrays: clear() callers (per-attempt state) refill at the
    // same scale, so freeing would just re-pay the allocation.
    for (size_type i = 0; i < capacity_; ++i) ctrl_[i] = Ctrl::kEmpty;
    size_ = 0;
    used_ = 0;
  }

  [[nodiscard]] iterator find(const Key& key) {
    const size_type s = find_slot(key);
    return s == kNotFound ? end() : iterator_at(s);
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    const size_type s = find_slot(key);
    return s == kNotFound ? end() : const_iterator_at(s);
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find_slot(key) != kNotFound;
  }
  [[nodiscard]] size_type count(const Key& key) const {
    return contains(key) ? 1 : 0;
  }

  [[nodiscard]] T& at(const Key& key) {
    const size_type s = find_slot(key);
    if (s == kNotFound) throw std::out_of_range("FlatMap::at: missing key");
    return slot_ptr(s)->second;
  }
  [[nodiscard]] const T& at(const Key& key) const {
    const size_type s = find_slot(key);
    if (s == kNotFound) throw std::out_of_range("FlatMap::at: missing key");
    return slot_ptr(s)->second;
  }

  T& operator[](const Key& key) { return try_emplace(key).first->second; }

  template <class... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    grow_if_needed();
    const auto [slot, inserted] = insert_slot(key);
    if (inserted)
      construct(slot, key, T(std::forward<Args>(args)...));
    return {iterator_at(slot), inserted};
  }

  template <class V>
  std::pair<iterator, bool> insert_or_assign(const Key& key, V&& value) {
    grow_if_needed();
    const auto [slot, inserted] = insert_slot(key);
    if (inserted)
      construct(slot, key, T(std::forward<V>(value)));
    else
      slot_ptr(slot)->second = std::forward<V>(value);
    return {iterator_at(slot), inserted};
  }

  std::pair<iterator, bool> insert(const value_type& v) {
    return try_emplace(v.first, v.second);
  }
  std::pair<iterator, bool> insert(value_type&& v) {
    return try_emplace(v.first, std::move(v.second));
  }
  template <class... Args>
  std::pair<iterator, bool> emplace(Args&&... args) {
    return insert(value_type(std::forward<Args>(args)...));
  }

  size_type erase(const Key& key) {
    const size_type s = find_slot(key);
    if (s == kNotFound) return 0;
    erase_slot(s);
    return 1;
  }
  iterator erase(iterator pos) {
    erase_slot(pos.slot_);
    return iterator(this, pos.slot_ + 1);
  }
  iterator erase(const_iterator pos) {
    erase_slot(pos.slot_);
    return iterator(this, pos.slot_ + 1);
  }

 private:
  static constexpr size_type kMinCapacity = 16;  // power of two
  static constexpr size_type kNotFound = ~size_type{0};

  [[nodiscard]] iterator iterator_at(size_type slot) {
    iterator it;
    it.map_ = this;
    it.slot_ = slot;
    return it;
  }
  [[nodiscard]] const_iterator const_iterator_at(size_type slot) const {
    const_iterator it;
    it.map_ = this;
    it.slot_ = slot;
    return it;
  }

  [[nodiscard]] value_type* slot_ptr(size_type slot) {
    return std::launder(reinterpret_cast<value_type*>(slots_.get()) + slot);
  }
  [[nodiscard]] const value_type* slot_ptr(size_type slot) const {
    return std::launder(
        reinterpret_cast<const value_type*>(slots_.get()) + slot);
  }

  [[nodiscard]] size_type probe_start(const Key& key) const {
    // Multiply-shift spread of the std::hash value: identity hashes (the
    // common std::hash<integral>) would otherwise cluster consecutive ids.
    std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return static_cast<size_type>(h) & (capacity_ - 1);
  }

  /// Slot holding `key`, or kNotFound.
  [[nodiscard]] size_type find_slot(const Key& key) const {
    if (capacity_ == 0) return kNotFound;
    size_type s = probe_start(key);
    for (;;) {
      const Ctrl c = ctrl_[s];
      if (c == Ctrl::kEmpty) return kNotFound;
      if (c == Ctrl::kFull && KeyEqual{}(slot_ptr(s)->first, key)) return s;
      s = (s + 1) & (capacity_ - 1);
    }
  }

  /// Slot to insert `key` at (reusing the first tombstone on the probe
  /// path), or the existing slot.  Caller guaranteed capacity.
  std::pair<size_type, bool> insert_slot(const Key& key) {
    size_type s = probe_start(key);
    size_type first_tombstone = kNotFound;
    for (;;) {
      const Ctrl c = ctrl_[s];
      if (c == Ctrl::kEmpty) {
        if (first_tombstone != kNotFound) return {first_tombstone, true};
        return {s, true};
      }
      if (c == Ctrl::kTombstone) {
        if (first_tombstone == kNotFound) first_tombstone = s;
      } else if (KeyEqual{}(slot_ptr(s)->first, key)) {
        return {s, false};
      }
      s = (s + 1) & (capacity_ - 1);
    }
  }

  void construct(size_type slot, const Key& key, T&& value) {
    ::new (static_cast<void*>(slot_ptr(slot)))
        value_type(key, std::move(value));
    if (ctrl_[slot] == Ctrl::kEmpty) ++used_;  // tombstone reuse keeps used_
    ctrl_[slot] = Ctrl::kFull;
    ++size_;
  }

  void erase_slot(size_type slot) {
    slot_ptr(slot)->~value_type();
    // An empty successor proves no probe chain crosses this slot, so it can
    // revert to empty instead of a tombstone (keeps long-lived maps with
    // erase churn from accumulating tombstones at the chain tails).
    const size_type next = (slot + 1) & (capacity_ - 1);
    if (capacity_ != 0 && ctrl_[next] == Ctrl::kEmpty) {
      ctrl_[slot] = Ctrl::kEmpty;
      --used_;
    } else {
      ctrl_[slot] = Ctrl::kTombstone;
    }
    --size_;
  }

  void grow_if_needed() {
    if (capacity_ == 0) {
      rehash(kMinCapacity);
      return;
    }
    // used_ counts full + tombstone slots: both lengthen probe chains.
    if (used_ + 1 > capacity_ - capacity_ / 8)
      rehash(size_ + 1 > capacity_ / 2 ? capacity_ * 2 : capacity_);
  }

  void rehash(size_type new_capacity) {
    auto old_ctrl = std::move(ctrl_);
    auto old_slots = std::move(slots_);
    const size_type old_capacity = capacity_;

    ctrl_ = std::make_unique<Ctrl[]>(new_capacity);
    slots_.reset(new std::byte[new_capacity * sizeof(value_type)]);
    capacity_ = new_capacity;
    size_ = 0;
    used_ = 0;

    for (size_type i = 0; i < old_capacity; ++i) {
      if (old_ctrl[i] != Ctrl::kFull) continue;
      auto* v = std::launder(
          reinterpret_cast<value_type*>(old_slots.get()) + i);
      const auto [slot, inserted] = insert_slot(v->first);
      (void)inserted;  // keys were unique
      construct(slot, v->first, std::move(v->second));
      v->~value_type();
    }
  }

  void destroy_all() {
    for (size_type i = 0; i < capacity_; ++i)
      if (ctrl_[i] == Ctrl::kFull) slot_ptr(i)->~value_type();
    size_ = 0;
    used_ = 0;
  }

  void copy_from(const FlatMap& o) {
    ctrl_.reset();
    slots_.reset();
    capacity_ = 0;
    size_ = 0;
    used_ = 0;
    if (o.size_ == 0) return;
    reserve(o.size_);
    for (const auto& [k, v] : o) try_emplace(k, v);
  }

  void move_from(FlatMap&& o) noexcept {
    ctrl_ = std::move(o.ctrl_);
    slots_ = std::move(o.slots_);
    capacity_ = o.capacity_;
    size_ = o.size_;
    used_ = o.used_;
    o.capacity_ = 0;
    o.size_ = 0;
    o.used_ = 0;
  }

  std::unique_ptr<Ctrl[]> ctrl_;
  std::unique_ptr<std::byte[]> slots_;
  size_type capacity_ = 0;
  size_type size_ = 0;  ///< full slots
  size_type used_ = 0;  ///< full + tombstone slots
};

}  // namespace lotec
