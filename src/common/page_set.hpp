// PageSet: a compact dynamic bitset over the pages of one object.
//
// The protocols reason constantly about sets of pages (dirty pages, pages
// predicted to be needed, pages to transfer, pages resident at a site), so
// this type provides the set algebra they need with cheap word-parallel
// operations.  Objects in the paper's experiments span 1-20 pages, but the
// type supports arbitrary sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/ids.hpp"

namespace lotec {

class PageSet {
 public:
  PageSet() = default;
  /// A set over `num_pages` pages, initially empty.
  explicit PageSet(std::size_t num_pages) : num_pages_(num_pages) {
    words_.resize((num_pages + 63) / 64, 0);
  }

  /// A set over `num_pages` pages with every page present.
  [[nodiscard]] static PageSet full(std::size_t num_pages) {
    PageSet s(num_pages);
    for (std::size_t i = 0; i < num_pages; ++i) s.insert(PageIndex(static_cast<std::uint32_t>(i)));
    return s;
  }

  [[nodiscard]] std::size_t universe_size() const noexcept {
    return num_pages_;
  }

  void insert(PageIndex p) {
    check(p);
    words_[p.value() / 64] |= (std::uint64_t{1} << (p.value() % 64));
  }

  void erase(PageIndex p) {
    check(p);
    words_[p.value() / 64] &= ~(std::uint64_t{1} << (p.value() % 64));
  }

  [[nodiscard]] bool contains(PageIndex p) const {
    check(p);
    return (words_[p.value() / 64] >> (p.value() % 64)) & 1;
  }

  [[nodiscard]] bool empty() const noexcept {
    for (auto w : words_)
      if (w != 0) return false;
    return true;
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// In-place union; both sets must share a universe size.
  PageSet& operator|=(const PageSet& o) {
    check_compat(o);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  /// In-place intersection.
  PageSet& operator&=(const PageSet& o) {
    check_compat(o);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  /// In-place difference (remove o's members).
  PageSet& operator-=(const PageSet& o) {
    check_compat(o);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  friend PageSet operator|(PageSet a, const PageSet& b) { return a |= b; }
  friend PageSet operator&(PageSet a, const PageSet& b) { return a &= b; }
  friend PageSet operator-(PageSet a, const PageSet& b) { return a -= b; }

  friend bool operator==(const PageSet&, const PageSet&) = default;

  /// True when every member of this set is also in `o`.
  [[nodiscard]] bool subset_of(const PageSet& o) const {
    check_compat(o);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~o.words_[i]) return false;
    return true;
  }

  [[nodiscard]] bool intersects(const PageSet& o) const {
    check_compat(o);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & o.words_[i]) return true;
    return false;
  }

  /// Enumerate members in ascending order.
  [[nodiscard]] std::vector<PageIndex> to_vector() const {
    std::vector<PageIndex> out;
    out.reserve(count());
    for (std::size_t i = 0; i < num_pages_; ++i) {
      const PageIndex p(static_cast<std::uint32_t>(i));
      if (contains(p)) out.push_back(p);
    }
    return out;
  }

  /// Debug rendering, e.g. "{0,2,5}".
  [[nodiscard]] std::string to_string() const {
    std::string s = "{";
    bool first = true;
    for (const auto p : to_vector()) {
      if (!first) s += ',';
      s += std::to_string(p.value());
      first = false;
    }
    s += '}';
    return s;
  }

 private:
  void check(PageIndex p) const {
    if (!p.valid() || p.value() >= num_pages_)
      throw UsageError("PageSet: page index " +
                       std::to_string(p.value()) + " out of range (size " +
                       std::to_string(num_pages_) + ")");
  }
  void check_compat(const PageSet& o) const {
    if (num_pages_ != o.num_pages_)
      throw UsageError("PageSet: universe size mismatch");
  }

  std::size_t num_pages_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace lotec
