// Error taxonomy for the LOTEC runtime.
//
// Programming errors (violating API contracts, e.g. accessing an undeclared
// attribute in strict mode, or mutually recursive invocation, which the
// paper's model precludes) throw exceptions derived from `Error`.
// Expected control-flow events (transaction abort, deadlock victim) use
// dedicated exception types that the runtime catches internally.
#pragma once

#include <stdexcept>
#include <string>

#include "common/ids.hpp"

namespace lotec {

/// Base class for all LOTEC errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A configuration or API-contract violation by the caller.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// Mutually recursive inter-object invocation: a transaction requested a
/// lock *held* (not merely retained) by one of its ancestors.  The paper
/// (Section 3.4) precludes such invocations and verifies compliance at run
/// time; this is the runtime check firing.
class RecursiveInvocationError : public Error {
 public:
  RecursiveInvocationError(ObjectId object, const TxnId& requester,
                           const TxnId& holder)
      : Error("mutually recursive invocation precluded: " +
              to_string(requester) + " requested lock on object " +
              std::to_string(object.value()) + " held by ancestor " +
              to_string(holder)),
        object_(object),
        requester_(requester),
        holder_(holder) {}

  [[nodiscard]] ObjectId object() const noexcept { return object_; }
  [[nodiscard]] const TxnId& requester() const noexcept { return requester_; }
  [[nodiscard]] const TxnId& holder() const noexcept { return holder_; }

 private:
  ObjectId object_;
  TxnId requester_;
  TxnId holder_;
};

/// Why a transaction (family) was aborted.
enum class AbortReason {
  kUser,          ///< the method body requested abort
  kDeadlock,      ///< chosen as a deadlock victim
  kInjected,      ///< failure injection from the workload generator
  kRetryExhausted,///< too many restarts
  kNodeFailure    ///< a node crash (own site or a peer) ended the family
};

[[nodiscard]] constexpr const char* to_string(AbortReason r) noexcept {
  switch (r) {
    case AbortReason::kUser: return "user";
    case AbortReason::kDeadlock: return "deadlock";
    case AbortReason::kInjected: return "injected";
    case AbortReason::kRetryExhausted: return "retry-exhausted";
    case AbortReason::kNodeFailure: return "node-failure";
  }
  return "?";
}

/// Thrown inside a transaction body to unwind to the family executor, which
/// performs UNDO processing and either retries or reports the abort.
/// Internal control flow; never escapes the runtime.
class TxnAbort {
 public:
  explicit TxnAbort(AbortReason reason) noexcept : reason_(reason) {}
  [[nodiscard]] AbortReason reason() const noexcept { return reason_; }

 private:
  AbortReason reason_;
};

}  // namespace lotec
