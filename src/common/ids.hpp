// Strongly-typed identifiers used throughout the LOTEC system.
//
// Raw integers for node / object / transaction identifiers are a classic
// source of silent bugs in distributed-systems code (passing a node id where
// an object id is expected compiles fine).  Every identifier is therefore a
// distinct type built from the `Id` template below.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace lotec {

/// A strongly-typed integral identifier.  `Tag` makes each instantiation a
/// distinct type; `Rep` is the underlying representation.
template <typename Tag, typename Rep = std::uint32_t>
class Id {
 public:
  using rep_type = Rep;

  /// Sentinel meaning "no value"; default construction yields it.
  static constexpr Rep kInvalid = static_cast<Rep>(-1);

  constexpr Id() noexcept = default;
  constexpr explicit Id(Rep value) noexcept : value_(value) {}

  [[nodiscard]] constexpr Rep value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalid;
  }

  friend constexpr auto operator<=>(Id, Id) noexcept = default;

 private:
  Rep value_ = kInvalid;
};

template <typename Tag, typename Rep>
std::ostream& operator<<(std::ostream& os, Id<Tag, Rep> id) {
  if (!id.valid()) return os << "<invalid>";
  return os << id.value();
}

/// A node (site / processor) in the distributed system.
using NodeId = Id<struct NodeTag, std::uint32_t>;

/// A shared object managed by the GDO.
using ObjectId = Id<struct ObjectTag, std::uint64_t>;

/// A class (type) of shared objects.
using ClassId = Id<struct ClassTag, std::uint32_t>;

/// An attribute within a class (index into the class's attribute list).
using AttrId = Id<struct AttrTag, std::uint32_t>;

/// A method within a class (index into the class's method list).
using MethodId = Id<struct MethodTag, std::uint32_t>;

/// A page within an object's image (zero-based page index).
using PageIndex = Id<struct PageTag, std::uint32_t>;

/// A transaction family: the globally unique identifier of a root
/// transaction.  All sub-transactions of a root share its FamilyId.
using FamilyId = Id<struct FamilyTag, std::uint64_t>;

/// Global log sequence number used to version pages.
using Lsn = std::uint64_t;

/// Identifies a [sub-]transaction: the family (root) it belongs to plus a
/// serial number within the family.  Serial 0 is the root itself.  This is
/// the paper's <TID, NID> pair with the node id tracked separately.
struct TxnId {
  FamilyId family{};
  std::uint32_t serial = 0;

  [[nodiscard]] constexpr bool valid() const noexcept {
    return family.valid();
  }
  [[nodiscard]] constexpr bool is_root() const noexcept { return serial == 0; }

  friend constexpr auto operator<=>(const TxnId&, const TxnId&) noexcept =
      default;
};

inline std::ostream& operator<<(std::ostream& os, const TxnId& t) {
  return os << "T" << t.family << "." << t.serial;
}

[[nodiscard]] inline std::string to_string(const TxnId& t) {
  return "T" + std::to_string(t.family.value()) + "." +
         std::to_string(t.serial);
}

}  // namespace lotec

namespace std {

template <typename Tag, typename Rep>
struct hash<lotec::Id<Tag, Rep>> {
  size_t operator()(lotec::Id<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

template <>
struct hash<lotec::TxnId> {
  size_t operator()(const lotec::TxnId& t) const noexcept {
    const size_t h1 = std::hash<lotec::FamilyId>{}(t.family);
    const size_t h2 = std::hash<std::uint32_t>{}(t.serial);
    return h1 ^ (h2 + 0x9e3779b97f4a7c15ULL + (h1 << 6) + (h1 >> 2));
  }
};

}  // namespace std
