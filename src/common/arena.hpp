// Arena: a block-based bump allocator for per-family-attempt transient
// state.
//
// A family attempt allocates a burst of short-lived records — undo byte
// images, gathered page lists, span scratch — and frees them all at once
// when the attempt commits or retries.  malloc/free per record is the wrong
// shape for that lifetime: every allocation pays locking and size-class
// bookkeeping, and the frees are pure overhead because the whole generation
// dies together.  Arena instead bumps a pointer through geometrically
// growing blocks and recycles the blocks wholesale on reset().
//
// Deliberate design points:
//  * reset() keeps the blocks.  Attempt N+1 refills at roughly attempt N's
//    scale, so steady state allocates zero bytes from the system.
//  * adopt() splices another arena's blocks into this one without moving
//    any bytes — pointers into the adopted arena stay valid.  This is what
//    lets a child UndoLog's records survive absorb() into the parent
//    without copying.
//  * No per-object destructors run; only trivially-destructible payloads
//    (byte images, PODs) or types whose destructors are no-ops belong here.
//    ArenaVector handles its own element destruction for the general case.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace lotec {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 16 * 1024;

  explicit Arena(std::size_t first_block_bytes = kDefaultBlockBytes)
      : next_block_bytes_(first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Raw aligned storage; alignment must be a power of two.
  [[nodiscard]] void* allocate(std::size_t bytes,
                               std::size_t alignment = alignof(std::max_align_t)) {
    assert((alignment & (alignment - 1)) == 0);
    if (bytes == 0) bytes = 1;  // distinct non-null pointers, like operator new
    std::uintptr_t p = reinterpret_cast<std::uintptr_t>(cursor_);
    std::uintptr_t aligned = (p + alignment - 1) & ~(alignment - 1);
    if (aligned + bytes > reinterpret_cast<std::uintptr_t>(limit_)) {
      refill(bytes, alignment);
      p = reinterpret_cast<std::uintptr_t>(cursor_);
      aligned = (p + alignment - 1) & ~(alignment - 1);
    }
    cursor_ = reinterpret_cast<std::byte*>(aligned + bytes);
    allocated_ += bytes;
    return reinterpret_cast<void*>(aligned);
  }

  /// Typed uninitialized array of `n` elements.
  template <class T>
  [[nodiscard]] T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Construct a single object in the arena.  No destructor will run.
  template <class T, class... Args>
  [[nodiscard]] T* make(Args&&... args) {
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Copy a byte span into the arena; returns the stable copy.
  [[nodiscard]] std::byte* copy_bytes(const std::byte* src, std::size_t n) {
    auto* dst = allocate_array<std::byte>(n);
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
    return dst;
  }

  /// Drop all allocations but keep the blocks for reuse.  Blocks are
  /// reordered largest-first and the bump cursor walks through all of them
  /// before any new block is allocated, so a steady-state attempt that
  /// refills at the previous attempt's scale touches the system allocator
  /// zero times.  (Reordering moves only the block headers; the storage —
  /// and any stale pointers into it — never moves.)
  void reset() {
    std::sort(blocks_.begin(), blocks_.end(),
              [](const Block& a, const Block& b) { return a.size > b.size; });
    active_ = 0;
    if (!blocks_.empty()) {
      cursor_ = blocks_.front().data.get();
      limit_ = cursor_ + blocks_.front().size;
    } else {
      cursor_ = limit_ = nullptr;
    }
    allocated_ = 0;
  }

  /// Splice `other`'s blocks into this arena.  Pointers into `other` remain
  /// valid for this arena's lifetime; `other` is left empty and reusable.
  void adopt(Arena&& other) {
    if (&other == this) return;
    // Adopted blocks hold live bytes of the current generation, so they go
    // *before* the active block — the bump walk never re-enters them until
    // reset() declares the whole generation dead.  Their tails are simply
    // lost until then.
    blocks_.insert(blocks_.begin(),
                   std::make_move_iterator(other.blocks_.begin()),
                   std::make_move_iterator(other.blocks_.end()));
    active_ += other.blocks_.size();
    allocated_ += other.allocated_;
    other.blocks_.clear();
    other.cursor_ = nullptr;
    other.limit_ = nullptr;
    other.allocated_ = 0;
  }

  /// Total bytes handed out since the last reset (not block capacity).
  [[nodiscard]] std::size_t allocated_bytes() const { return allocated_; }
  /// Total block capacity currently held.
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t c = 0;
    for (const Block& b : blocks_) c += b.size;
    return c;
  }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void refill(std::size_t bytes, std::size_t alignment) {
    // Walk into the next recycled block that fits before growing.  A
    // too-small block is skipped (its space is lost until the next reset,
    // when the largest-first order makes it the tail again).
    while (active_ + 1 < blocks_.size()) {
      Block& b = blocks_[++active_];
      if (b.size >= bytes + alignment) {
        cursor_ = b.data.get();
        limit_ = cursor_ + b.size;
        return;
      }
    }
    std::size_t want = next_block_bytes_;
    while (want < bytes + alignment) want *= 2;
    Block b;
    b.data = std::make_unique<std::byte[]>(want);
    b.size = want;
    cursor_ = b.data.get();
    limit_ = cursor_ + want;
    blocks_.push_back(std::move(b));
    active_ = blocks_.size() - 1;
    next_block_bytes_ = want * 2;  // geometric growth caps block count
  }

  std::vector<Block> blocks_;
  /// Index of the block the bump cursor currently sits in; blocks before it
  /// are full (or adopted) this generation, blocks after it are recycled
  /// and free.
  std::size_t active_ = 0;
  std::byte* cursor_ = nullptr;
  std::byte* limit_ = nullptr;
  std::size_t next_block_bytes_;
  std::size_t allocated_ = 0;
};

/// std-compatible allocator over an Arena.  Deallocation is a no-op; memory
/// is reclaimed by Arena::reset().
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& o) noexcept : arena_(o.arena_) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return arena_->allocate_array<T>(n);
  }
  void deallocate(T*, std::size_t) noexcept {}

  [[nodiscard]] Arena& arena() const noexcept { return *arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  template <class U>
  friend class ArenaAllocator;
  Arena* arena_;
};

/// Vector whose backing storage lives in an Arena.  Element destructors run
/// normally (vector semantics); only the storage is arena-owned.
template <class T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace lotec
