#include "common/rng.hpp"

#include <algorithm>
#include <cmath>

namespace lotec {

ZipfSampler::ZipfSampler(std::size_t n, double theta) {
  if (n == 0) throw UsageError("ZipfSampler: n must be positive");
  if (theta < 0) throw UsageError("ZipfSampler: theta must be >= 0");
  cdf_.resize(n);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::size_t ZipfSampler::draw(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

std::size_t Rng::zipf(std::size_t n, double theta) {
  // One-shot path; callers doing many draws should use ZipfSampler.
  return ZipfSampler(n, theta).draw(*this);
}

}  // namespace lotec
