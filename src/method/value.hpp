// Typed encode/decode helpers over raw attribute bytes.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>

#include "common/error.hpp"

namespace lotec {

template <typename T>
concept PlainValue = std::is_trivially_copyable_v<T>;

/// Decode a trivially copyable value from the front of an attribute's bytes.
template <PlainValue T>
[[nodiscard]] T decode_value(std::span<const std::byte> bytes) {
  if (bytes.size() < sizeof(T))
    throw UsageError("decode_value: attribute too small for type");
  T v;
  std::memcpy(&v, bytes.data(), sizeof(T));
  return v;
}

/// Encode a trivially copyable value into the front of an attribute's bytes.
template <PlainValue T>
void encode_value(std::span<std::byte> bytes, const T& v) {
  if (bytes.size() < sizeof(T))
    throw UsageError("encode_value: attribute too small for type");
  std::memcpy(bytes.data(), &v, sizeof(T));
}

/// Decode a NUL-padded string occupying the whole attribute.
[[nodiscard]] inline std::string decode_string(
    std::span<const std::byte> bytes) {
  std::string s(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  const auto nul = s.find('\0');
  if (nul != std::string::npos) s.resize(nul);
  return s;
}

/// Encode a string, NUL-padding the rest of the attribute.
inline void encode_string(std::span<std::byte> bytes, const std::string& s) {
  if (s.size() > bytes.size())
    throw UsageError("encode_string: string longer than attribute");
  std::memcpy(bytes.data(), s.data(), s.size());
  std::memset(bytes.data() + s.size(), 0, bytes.size() - s.size());
}

}  // namespace lotec
