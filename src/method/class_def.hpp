// ClassDef and ClassBuilder: the schema of a shared object type.
//
// A class is a set of attributes (laid out into pages by ObjectLayout) plus
// a set of methods with declared access sets.  Finalizing the class runs the
// "compiler" page-access analysis, producing one AccessSummary per method.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "method/method_def.hpp"
#include "page/layout.hpp"

namespace lotec {

class ClassDef {
 public:
  ClassDef(ClassId id, std::string name, ObjectLayout layout,
           std::vector<MethodDef> methods,
           std::optional<std::uint8_t> protocol_override = {});

  [[nodiscard]] ClassId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const ObjectLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] std::size_t num_methods() const noexcept {
    return methods_.size();
  }
  /// Per-class consistency protocol (Section 6 extension: "different
  /// consistency protocols ... on a per-class basis"), as the underlying
  /// value of a ProtocolKind; nullopt = the cluster default.  Stored
  /// type-erased so the method library stays independent of protocol/.
  [[nodiscard]] std::optional<std::uint8_t> protocol_override() const noexcept {
    return protocol_override_;
  }

  [[nodiscard]] const MethodDef& method(MethodId m) const {
    check(m);
    return methods_[m.value()];
  }
  [[nodiscard]] const AccessSummary& summary(MethodId m) const {
    check(m);
    return summaries_[m.value()];
  }

  [[nodiscard]] MethodId find_method(const std::string& name) const;

 private:
  void check(MethodId m) const {
    if (!m.valid() || m.value() >= methods_.size())
      throw UsageError("ClassDef: method id out of range");
  }

  ClassId id_;
  std::string name_;
  ObjectLayout layout_;
  std::vector<MethodDef> methods_;
  std::vector<AccessSummary> summaries_;
  std::optional<std::uint8_t> protocol_override_;
};

/// Fluent construction of a ClassDef.
///
///   auto cls = ClassBuilder("Account", page_size)
///                  .attribute("balance", 8)
///                  .attribute("history", 4096)
///                  .method("deposit", /*reads=*/{"balance"},
///                          /*writes=*/{"balance"}, body)
///                  .build(registry);
class ClassBuilder {
 public:
  ClassBuilder(std::string name, std::uint32_t page_size)
      : name_(std::move(name)), page_size_(page_size) {}

  ClassBuilder& attribute(std::string attr_name, std::uint32_t size_bytes) {
    attrs_.push_back({std::move(attr_name), size_bytes});
    return *this;
  }

  /// Pin this class to a specific consistency protocol (pass the underlying
  /// value of a ProtocolKind); objects of other classes keep the cluster
  /// default.
  ClassBuilder& protocol(std::uint8_t kind) {
    protocol_override_ = kind;
    return *this;
  }

  /// Add a method with access sets given as attribute names.
  ClassBuilder& method(std::string method_name,
                       std::vector<std::string> reads,
                       std::vector<std::string> writes, MethodBody body,
                       bool may_access_undeclared = false);

  /// Add a method with access sets given as attribute ids (workload
  /// generator path; attribute ids are indices in declaration order).
  /// `prediction_hint` optionally installs an aggressive (non-conservative)
  /// page prediction — see MethodDef::optimistic_prediction.
  ClassBuilder& method_ids(std::string method_name, AttrSet reads,
                           AttrSet writes, MethodBody body,
                           bool may_access_undeclared = false,
                           std::optional<AttrSet> prediction_hint = {});

  /// Finalize: lays out attributes, runs the page-access analysis.
  [[nodiscard]] ClassDef build(ClassId id) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  struct PendingMethod {
    std::string name;
    std::vector<std::string> read_names;
    std::vector<std::string> write_names;
    AttrSet read_ids;
    AttrSet write_ids;
    bool by_name = true;
    bool may_access_undeclared = false;
    std::optional<AttrSet> prediction_hint;
    MethodBody body;
  };

  std::string name_;
  std::uint32_t page_size_;
  std::vector<AttributeDef> attrs_;
  std::vector<PendingMethod> methods_;
  std::optional<std::uint8_t> protocol_override_;
};

}  // namespace lotec
