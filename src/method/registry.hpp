// ClassRegistry: the system-wide catalogue of shared-object classes.
//
// Class definitions are immutable after registration and replicated to every
// node (schemas are code; in the paper the compiler's output is part of the
// program text at each site), so the registry is shared read-only and no
// schema traffic is charged to the network.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "method/class_def.hpp"

namespace lotec {

class ClassRegistry {
 public:
  /// Register a class built from `builder`; returns its id.
  ClassId register_class(const ClassBuilder& builder) {
    std::lock_guard<std::mutex> lock(mu_);
    const ClassId id(static_cast<std::uint32_t>(classes_.size()));
    auto cls = std::make_unique<ClassDef>(builder.build(id));
    if (by_name_.count(cls->name()))
      throw UsageError("ClassRegistry: duplicate class name '" + cls->name() +
                       "'");
    by_name_[cls->name()] = id;
    classes_.push_back(std::move(cls));
    return id;
  }

  [[nodiscard]] const ClassDef& get(ClassId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (!id.valid() || id.value() >= classes_.size())
      throw UsageError("ClassRegistry: class id out of range");
    return *classes_[id.value()];
  }

  [[nodiscard]] ClassId find(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_name_.find(name);
    if (it == by_name_.end())
      throw UsageError("ClassRegistry: no class named '" + name + "'");
    return it->second;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return classes_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ClassDef>> classes_;
  std::unordered_map<std::string, ClassId> by_name_;
};

}  // namespace lotec
