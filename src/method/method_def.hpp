// MethodDef: a method on a shared object class, with its declared access
// sets and body.
//
// In the paper, a compiler performs conservative attribute-access analysis
// on method code and annotates each method with (a) the attributes it may
// read/update and (b) calls to the local lock acquire/release routines at
// entry/exit.  Here the access sets are declared with the method (they play
// the role of the compiler's output) and the runtime inserts the lock
// acquire/release around every invocation automatically — the user never
// writes a synchronization operation, which is the paper's headline
// ease-of-use claim.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "common/page_set.hpp"
#include "method/attr_set.hpp"

namespace lotec {

class MethodContext;  // defined in runtime/method_context.hpp

using MethodBody = std::function<void(MethodContext&)>;

struct MethodDef {
  std::string name;
  /// Attributes the compiler determined the method may read.
  AttrSet reads;
  /// Attributes the compiler determined the method may update.
  AttrSet writes;
  /// True if the method may update attributes outside `writes` (data-
  /// dependent control flow the analysis could not bound).  Forces a write
  /// lock and lets strictness checks pass for undeclared accesses, which are
  /// then served by demand fetch under LOTEC.
  bool may_access_undeclared = false;
  /// Aggressive (non-conservative) prediction, Section 5.1's future-work
  /// direction: if set, LOTEC's transfer plan covers only these attributes'
  /// pages instead of reads|writes; declared accesses outside the hint are
  /// served by demand fetch.  `reads`/`writes` remain the safety envelope.
  std::optional<AttrSet> optimistic_prediction;
  MethodBody body;
};

/// The compiler's per-method page-level result: declared attribute sets
/// mapped onto the class's memory layout (Section 4.1, "recording the set of
/// potentially updated pages").
struct AccessSummary {
  PageSet read_pages;
  PageSet write_pages;
  /// Pages the acquiring transaction is predicted to need = reads U writes.
  /// LOTEC transfers only updated pages within this set.
  PageSet predicted_pages;
  /// Lock mode implied by the analysis.
  bool needs_write_lock = false;
};

}  // namespace lotec
