#include "method/class_def.hpp"

namespace lotec {

namespace {

/// The "compiler" analysis: map declared attribute sets onto the layout to
/// obtain per-method page sets and the implied lock mode.
AccessSummary analyze(const ObjectLayout& layout, const MethodDef& m) {
  AccessSummary s;
  s.read_pages = layout.pages_of(m.reads.items());
  s.write_pages = layout.pages_of(m.writes.items());
  if (m.may_access_undeclared) {
    // The analysis could not bound the accesses: conservatively predict the
    // whole object (this is exactly what "conservative" means in the paper —
    // all possibly accessed pages are recorded).
    s.predicted_pages = PageSet::full(layout.num_pages());
    s.needs_write_lock = true;
  } else if (m.optimistic_prediction) {
    s.predicted_pages = layout.pages_of(m.optimistic_prediction->items());
    s.needs_write_lock = !m.writes.empty();
  } else {
    s.predicted_pages = s.read_pages | s.write_pages;
    s.needs_write_lock = !m.writes.empty();
  }
  return s;
}

}  // namespace

ClassDef::ClassDef(ClassId id, std::string name, ObjectLayout layout,
                   std::vector<MethodDef> methods,
                   std::optional<std::uint8_t> protocol_override)
    : id_(id),
      name_(std::move(name)),
      layout_(std::move(layout)),
      methods_(std::move(methods)),
      protocol_override_(protocol_override) {
  if (methods_.empty())
    throw UsageError("ClassDef '" + name_ + "': a class needs >= 1 method");
  summaries_.reserve(methods_.size());
  for (const auto& m : methods_) {
    if (!m.body)
      throw UsageError("ClassDef '" + name_ + "': method '" + m.name +
                       "' has no body");
    summaries_.push_back(analyze(layout_, m));
  }
}

MethodId ClassDef::find_method(const std::string& name) const {
  for (std::size_t i = 0; i < methods_.size(); ++i)
    if (methods_[i].name == name)
      return MethodId(static_cast<std::uint32_t>(i));
  throw UsageError("ClassDef '" + name_ + "': no method named '" + name +
                   "'");
}

ClassBuilder& ClassBuilder::method(std::string method_name,
                                   std::vector<std::string> reads,
                                   std::vector<std::string> writes,
                                   MethodBody body,
                                   bool may_access_undeclared) {
  PendingMethod pm;
  pm.name = std::move(method_name);
  pm.read_names = std::move(reads);
  pm.write_names = std::move(writes);
  pm.by_name = true;
  pm.may_access_undeclared = may_access_undeclared;
  pm.body = std::move(body);
  methods_.push_back(std::move(pm));
  return *this;
}

ClassBuilder& ClassBuilder::method_ids(std::string method_name, AttrSet reads,
                                       AttrSet writes, MethodBody body,
                                       bool may_access_undeclared,
                                       std::optional<AttrSet> prediction_hint) {
  PendingMethod pm;
  pm.name = std::move(method_name);
  pm.read_ids = std::move(reads);
  pm.write_ids = std::move(writes);
  pm.by_name = false;
  pm.may_access_undeclared = may_access_undeclared;
  pm.prediction_hint = std::move(prediction_hint);
  pm.body = std::move(body);
  methods_.push_back(std::move(pm));
  return *this;
}

ClassDef ClassBuilder::build(ClassId id) const {
  ObjectLayout layout(attrs_, page_size_);
  std::vector<MethodDef> methods;
  methods.reserve(methods_.size());
  for (const auto& pm : methods_) {
    MethodDef m;
    m.name = pm.name;
    m.may_access_undeclared = pm.may_access_undeclared;
    m.optimistic_prediction = pm.prediction_hint;
    m.body = pm.body;
    if (pm.by_name) {
      for (const auto& n : pm.read_names) m.reads.insert(layout.find(n));
      for (const auto& n : pm.write_names) m.writes.insert(layout.find(n));
    } else {
      m.reads = pm.read_ids;
      m.writes = pm.write_ids;
    }
    methods.push_back(std::move(m));
  }
  return ClassDef(id, name_, std::move(layout), std::move(methods),
                  protocol_override_);
}

}  // namespace lotec
