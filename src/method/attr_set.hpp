// AttrSet: an ordered set of attribute ids (a method's read or write set).
#pragma once

#include <algorithm>
#include <initializer_list>
#include <vector>

#include "common/ids.hpp"

namespace lotec {

class AttrSet {
 public:
  AttrSet() = default;
  AttrSet(std::initializer_list<AttrId> attrs) : attrs_(attrs) { normalize(); }
  explicit AttrSet(std::vector<AttrId> attrs) : attrs_(std::move(attrs)) {
    normalize();
  }

  void insert(AttrId a) {
    const auto it = std::lower_bound(attrs_.begin(), attrs_.end(), a);
    if (it == attrs_.end() || *it != a) attrs_.insert(it, a);
  }

  [[nodiscard]] bool contains(AttrId a) const {
    return std::binary_search(attrs_.begin(), attrs_.end(), a);
  }

  [[nodiscard]] bool empty() const noexcept { return attrs_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return attrs_.size(); }

  [[nodiscard]] const std::vector<AttrId>& items() const noexcept {
    return attrs_;
  }

  [[nodiscard]] AttrSet united(const AttrSet& o) const {
    AttrSet out;
    std::set_union(attrs_.begin(), attrs_.end(), o.attrs_.begin(),
                   o.attrs_.end(), std::back_inserter(out.attrs_));
    return out;
  }

  friend bool operator==(const AttrSet&, const AttrSet&) = default;

 private:
  void normalize() {
    std::sort(attrs_.begin(), attrs_.end());
    attrs_.erase(std::unique(attrs_.begin(), attrs_.end()), attrs_.end());
  }

  std::vector<AttrId> attrs_;
};

}  // namespace lotec
