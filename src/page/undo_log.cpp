#include "page/undo_log.hpp"

namespace lotec {

void UndoLog::before_write(ObjectImage& img, std::uint64_t offset,
                           std::size_t len) {
  if (len == 0) return;
  if (strategy_ == UndoStrategy::kByteRange) {
    std::byte* buf = arena_.allocate_array<std::byte>(len);
    img.read_bytes(offset, std::span<std::byte>(buf, len));
    byte_records_.push_back(ByteRecord{img.id(), offset, buf, len});
    order_.emplace_back(Which::kByte, byte_records_.size() - 1);
    return;
  }
  // Shadow pages: copy each touched page the first time this log sees it.
  const std::uint64_t first = offset / img.page_size();
  const std::uint64_t last = (offset + len - 1) / img.page_size();
  auto& seen = shadowed_[img.id()];
  for (std::uint64_t i = first; i <= last; ++i) {
    const auto idx = static_cast<std::uint32_t>(i);
    if (!seen.insert(idx).second) continue;  // already shadowed
    const PageIndex p(idx);
    page_records_.push_back(PageRecord{img.id(), p, img.page(p)});
    order_.emplace_back(Which::kPage, page_records_.size() - 1);
  }
}

void UndoLog::absorb(UndoLog&& child) {
  if (child.strategy_ != strategy_)
    throw UsageError("UndoLog::absorb: mixed undo strategies");
  const std::size_t byte_base = byte_records_.size();
  const std::size_t page_base = page_records_.size();
  // Splice the child's arena blocks in first so its before-image pointers
  // stay valid after the records move over.
  arena_.adopt(std::move(child.arena_));
  for (auto& r : child.byte_records_) byte_records_.push_back(std::move(r));
  for (auto& r : child.page_records_) page_records_.push_back(std::move(r));
  for (const auto& [which, idx] : child.order_)
    order_.emplace_back(which,
                        which == Which::kByte ? idx + byte_base
                                              : idx + page_base);
  // A page the child shadowed counts as shadowed for us too: our copy of
  // its pre-child state is now in the log, and re-shadowing after further
  // parent writes would capture the child's committed (newer) data, which
  // would break reverse-order restoration.
  for (auto& [obj, pages] : child.shadowed_) {
    auto& mine = shadowed_[obj];
    mine.insert(pages.begin(), pages.end());
  }
  child.clear();
}

void UndoLog::undo(const std::function<ObjectImage&(ObjectId)>& resolve) {
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    if (it->first == Which::kByte) {
      const ByteRecord& r = byte_records_[it->second];
      resolve(r.object).restore_bytes(
          r.offset, std::span<const std::byte>(r.before, r.len));
    } else {
      PageRecord& r = page_records_[it->second];
      resolve(r.object).restore_page(r.page, std::move(r.before));
    }
  }
  clear();
}

void UndoLog::clear() {
  byte_records_.clear();
  page_records_.clear();
  order_.clear();
  shadowed_.clear();
  arena_.reset();  // keeps blocks: the next attempt refills in place
}

std::size_t UndoLog::record_count() const noexcept { return order_.size(); }

std::size_t UndoLog::memory_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& r : byte_records_) n += r.len;
  for (const auto& r : page_records_) n += r.before.data.size();
  return n;
}

}  // namespace lotec
