// PageStore: all object images cached at one site.
#pragma once

#include <memory>

#include "common/error.hpp"
#include "common/flat_map.hpp"
#include "page/object_image.hpp"

namespace lotec {

class PageStore {
 public:
  /// Create an image for an object not yet cached here.  `materialize`
  /// allocates all pages zero-filled (done only at the creating site; other
  /// sites start empty and receive pages by transfer).
  ObjectImage& create(ObjectId id, std::size_t num_pages,
                      std::uint32_t page_size, bool materialize) {
    auto [it, inserted] = images_.try_emplace(
        id, std::make_unique<ObjectImage>(id, num_pages, page_size));
    if (!inserted)
      throw UsageError("PageStore: object " + std::to_string(id.value()) +
                       " already cached");
    if (retain_depth_ > 0)
      it->second->enable_retention(retain_depth_, fence_);
    if (materialize) it->second->materialize_all();
    return *it->second;
  }

  /// Turn on bounded version retention (mv_read) for every image created at
  /// this site from now on.  `fence` is the cluster's oldest-live-snapshot
  /// stamp, shared by the retention GC.  Call before any object exists.
  void configure_retention(std::size_t depth,
                           const std::atomic<std::uint64_t>* fence) {
    retain_depth_ = depth;
    fence_ = fence;
  }

  [[nodiscard]] bool contains(ObjectId id) const {
    return images_.count(id) != 0;
  }

  /// Image for a cached object; throws if absent.
  [[nodiscard]] ObjectImage& get(ObjectId id) {
    const auto it = images_.find(id);
    if (it == images_.end())
      throw UsageError("PageStore: object " + std::to_string(id.value()) +
                       " not cached at this site");
    return *it->second;
  }
  [[nodiscard]] const ObjectImage& get(ObjectId id) const {
    return const_cast<PageStore*>(this)->get(id);
  }

  [[nodiscard]] ObjectImage* find(ObjectId id) {
    const auto it = images_.find(id);
    return it == images_.end() ? nullptr : it->second.get();
  }

  /// Image for `id`, creating an empty one if this site has never seen the
  /// object (first acquisition at this site).
  ObjectImage& get_or_create(ObjectId id, std::size_t num_pages,
                             std::uint32_t page_size) {
    if (ObjectImage* img = find(id)) return *img;
    return create(id, num_pages, page_size, /*materialize=*/false);
  }

  /// Drop an object entirely (capacity/invalidation experiments).  Refused
  /// — returns false, image untouched — while a snapshot reader has the
  /// object pinned: evicting would reclaim ring versions the reader's stamp
  /// may still resolve to.
  bool evict(ObjectId id) {
    if (snapshot_pinned(id)) return false;
    images_.erase(id);
    return true;
  }

  // --- snapshot pins (mv_read): a live reader's claim on this site's
  // --- image + version ring; eviction is refused while any pin is live ----

  void pin_snapshot(ObjectId id) { ++snapshot_pins_[id]; }

  void unpin_snapshot(ObjectId id) {
    const auto it = snapshot_pins_.find(id);
    if (it == snapshot_pins_.end())
      throw UsageError("PageStore: snapshot unpin without pin");
    if (--it->second == 0) snapshot_pins_.erase(it);
  }

  [[nodiscard]] bool snapshot_pinned(ObjectId id) const {
    return snapshot_pins_.count(id) != 0;
  }

  [[nodiscard]] std::size_t num_objects() const noexcept {
    return images_.size();
  }

  /// Total resident pages across all images (cache footprint metric).
  [[nodiscard]] std::size_t resident_pages() const {
    std::size_t n = 0;
    for (const auto& [id, img] : images_) n += img->resident().count();
    return n;
  }

 private:
  // FlatMap keyed lookup on every page access; images stay behind
  // unique_ptr so ObjectImage references survive rehash.  The only
  // iteration (resident_pages) is an order-insensitive sum.
  FlatMap<ObjectId, std::unique_ptr<ObjectImage>> images_;
  FlatMap<ObjectId, std::uint32_t> snapshot_pins_;
  std::size_t retain_depth_ = 0;
  const std::atomic<std::uint64_t>* fence_ = nullptr;
};

}  // namespace lotec
