#include "page/object_image.hpp"

#include <algorithm>
#include <cstring>

namespace lotec {

void ObjectImage::read_bytes(std::uint64_t offset,
                             std::span<std::byte> out) const {
  std::uint64_t pos = offset;
  std::size_t done = 0;
  while (done < out.size()) {
    const auto page_idx = static_cast<std::uint32_t>(pos / page_size_);
    const PageIndex p(page_idx);
    check(p);
    if (!pages_[page_idx]) throw PageNotResident(id_, p);
    const std::uint64_t in_page = pos % page_size_;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(page_size_ - in_page, out.size() - done));
    std::memcpy(out.data() + done, pages_[page_idx]->data.data() + in_page, n);
    done += n;
    pos += n;
  }
}

void ObjectImage::write_bytes(std::uint64_t offset,
                              std::span<const std::byte> in) {
  std::uint64_t pos = offset;
  std::size_t done = 0;
  while (done < in.size()) {
    const auto page_idx = static_cast<std::uint32_t>(pos / page_size_);
    const PageIndex p(page_idx);
    check(p);
    if (!pages_[page_idx]) throw PageNotResident(id_, p);
    const std::uint64_t in_page = pos % page_size_;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(page_size_ - in_page, in.size() - done));
    std::memcpy(pages_[page_idx]->data.data() + in_page, in.data() + done, n);
    dirty_.insert(p);
    dirty_ranges_[page_idx].emplace_back(static_cast<std::uint32_t>(in_page),
                                         static_cast<std::uint32_t>(n));
    done += n;
    pos += n;
  }
}

namespace {

/// Sort and merge overlapping/adjacent (offset, length) ranges.
std::vector<std::pair<std::uint32_t, std::uint32_t>> coalesce(
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges) {
  std::sort(ranges.begin(), ranges.end());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (const auto& [off, len] : ranges) {
    if (!out.empty() && off <= out.back().first + out.back().second) {
      const std::uint32_t end =
          std::max(out.back().first + out.back().second, off + len);
      out.back().second = end - out.back().first;
    } else {
      out.emplace_back(off, len);
    }
  }
  return out;
}

}  // namespace

PageSet ObjectImage::stamp_dirty(Lsn version) {
  const PageSet stamped = dirty_;
  for (const PageIndex p : stamped.to_vector()) {
    Page& page = *pages_[p.value()];
    PageDelta delta;
    delta.from_version = page.version;
    const auto it = dirty_ranges_.find(p.value());
    if (it != dirty_ranges_.end()) delta.ranges = coalesce(it->second);
    page.history.insert(page.history.begin(), std::move(delta));
    if (page.history.size() > kDeltaHistory)
      page.history.resize(kDeltaHistory);
    page.version = version;
  }
  dirty_.clear();
  dirty_ranges_.clear();
  return stamped;
}

void ObjectImage::restore_bytes(std::uint64_t offset,
                                std::span<const std::byte> in) {
  std::uint64_t pos = offset;
  std::size_t done = 0;
  while (done < in.size()) {
    const auto page_idx = static_cast<std::uint32_t>(pos / page_size_);
    const PageIndex p(page_idx);
    check(p);
    if (!pages_[page_idx]) throw PageNotResident(id_, p);
    const std::uint64_t in_page = pos % page_size_;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(page_size_ - in_page, in.size() - done));
    std::memcpy(pages_[page_idx]->data.data() + in_page, in.data() + done, n);
    done += n;
    pos += n;
  }
}

std::optional<PageIndex> ObjectImage::first_missing_page(
    std::uint64_t offset, std::uint64_t len) const {
  if (len == 0) return std::nullopt;
  const std::uint64_t first = offset / page_size_;
  const std::uint64_t last = (offset + len - 1) / page_size_;
  for (std::uint64_t i = first; i <= last; ++i) {
    const PageIndex p(static_cast<std::uint32_t>(i));
    check(p);
    if (!pages_[i]) return p;
  }
  return std::nullopt;
}

}  // namespace lotec
