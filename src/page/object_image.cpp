#include "page/object_image.hpp"

#include <algorithm>
#include <cstring>

namespace lotec {

void ObjectImage::read_bytes(std::uint64_t offset,
                             std::span<std::byte> out) const {
  std::uint64_t pos = offset;
  std::size_t done = 0;
  while (done < out.size()) {
    const auto page_idx = static_cast<std::uint32_t>(pos / page_size_);
    const PageIndex p(page_idx);
    check(p);
    if (!pages_[page_idx]) throw PageNotResident(id_, p);
    const std::uint64_t in_page = pos % page_size_;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(page_size_ - in_page, out.size() - done));
    std::memcpy(out.data() + done, pages_[page_idx]->data.data() + in_page, n);
    done += n;
    pos += n;
  }
}

void ObjectImage::write_bytes(std::uint64_t offset,
                              std::span<const std::byte> in) {
  std::uint64_t pos = offset;
  std::size_t done = 0;
  while (done < in.size()) {
    const auto page_idx = static_cast<std::uint32_t>(pos / page_size_);
    const PageIndex p(page_idx);
    check(p);
    if (!pages_[page_idx]) throw PageNotResident(id_, p);
    const std::uint64_t in_page = pos % page_size_;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(page_size_ - in_page, in.size() - done));
    // First write of the epoch to a committed page: capture the before-image
    // into the version ring so a snapshot reader overlapping this (future)
    // commit still resolves the pre-commit content.
    if (retain_depth_ > 0 && !dirty_.contains(p)) {
      retain(page_idx, *pages_[page_idx]);
      pending_retained_[page_idx] = pages_[page_idx]->version;
    }
    std::memcpy(pages_[page_idx]->data.data() + in_page, in.data() + done, n);
    dirty_.insert(p);
    dirty_ranges_[page_idx].emplace_back(static_cast<std::uint32_t>(in_page),
                                         static_cast<std::uint32_t>(n));
    done += n;
    pos += n;
  }
}

namespace {

/// Sort and merge overlapping/adjacent (offset, length) ranges.
std::vector<std::pair<std::uint32_t, std::uint32_t>> coalesce(
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges) {
  std::sort(ranges.begin(), ranges.end());
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (const auto& [off, len] : ranges) {
    if (!out.empty() && off <= out.back().first + out.back().second) {
      const std::uint32_t end =
          std::max(out.back().first + out.back().second, off + len);
      out.back().second = end - out.back().first;
    } else {
      out.emplace_back(off, len);
    }
  }
  return out;
}

}  // namespace

PageSet ObjectImage::stamp_dirty(Lsn version, std::uint64_t tick) {
  const PageSet stamped = dirty_;
  for (const PageIndex p : stamped.to_vector()) {
    Page& page = *pages_[p.value()];
    PageDelta delta;
    delta.from_version = page.version;
    const auto it = dirty_ranges_.find(p.value());
    if (it != dirty_ranges_.end()) delta.ranges = coalesce(it->second);
    page.history.insert(page.history.begin(), std::move(delta));
    if (page.history.size() > kDeltaHistory)
      page.history.resize(kDeltaHistory);
    page.version = version;
    page.tick = tick;
  }
  dirty_.clear();
  dirty_ranges_.clear();
  // The epoch committed: its before-images are now permanent ring entries.
  pending_retained_.clear();
  return stamped;
}

void ObjectImage::retain(std::uint32_t page_idx, const Page& page) {
  std::vector<RetainedVersion>& ring = rings_[page_idx];
  const auto pos = std::find_if(
      ring.begin(), ring.end(),
      [&](const RetainedVersion& r) { return r.tick <= page.tick; });
  if (pos != ring.end() && pos->version == page.version) return;
  ring.insert(pos, RetainedVersion{page.data, page.version, page.tick});
  trim_ring(page_idx);
}

void ObjectImage::trim_ring(std::uint32_t page_idx) {
  std::vector<RetainedVersion>& ring = rings_[page_idx];
  const std::uint64_t fence =
      fence_ ? fence_->load(std::memory_order_acquire)
             : ~std::uint64_t{0};
  // Drop the oldest entry past the bound only when the next newer retained
  // version already covers every live snapshot stamp — a reader pinned at
  // `fence` resolving newest-<=-fence then lands on that newer entry (or
  // something newer still), never on the reclaimed one.
  while (ring.size() > retain_depth_ &&
         ring[ring.size() - 2].tick <= fence)
    ring.pop_back();
}

void ObjectImage::discard_pending_retained() {
  for (const auto& [page_idx, version] : pending_retained_) {
    const auto it = rings_.find(page_idx);
    if (it == rings_.end()) continue;
    std::erase_if(it->second, [&](const RetainedVersion& r) {
      return r.version == version;
    });
    if (it->second.empty()) rings_.erase(it);
  }
  pending_retained_.clear();
}

std::optional<SnapshotView> ObjectImage::snapshot_page(
    PageIndex idx, std::uint64_t stamp) const {
  check(idx);
  std::optional<SnapshotView> best;
  const auto& slot = pages_[idx.value()];
  if (slot && !dirty_.contains(idx) && slot->tick <= stamp)
    best = SnapshotView{slot->data.data(), slot->version, slot->tick};
  const auto it = rings_.find(idx.value());
  if (it != rings_.end()) {
    for (const RetainedVersion& r : it->second) {
      if (r.tick > stamp) continue;
      // Ring is newest-first: the first admissible entry is the ring's best.
      if (!best || r.tick > best->tick)
        best = SnapshotView{r.data.data(), r.version, r.tick};
      break;
    }
  }
  return best;
}

void ObjectImage::adopt_version(PageIndex idx, std::vector<std::byte> data,
                                Lsn version, std::uint64_t tick) {
  check(idx);
  if (retain_depth_ == 0)
    throw UsageError("ObjectImage: adopt_version without retention");
  if (data.size() != page_size_)
    throw UsageError("ObjectImage: page size mismatch on adopt");
  std::vector<RetainedVersion>& ring = rings_[idx.value()];
  const auto pos = std::find_if(
      ring.begin(), ring.end(),
      [&](const RetainedVersion& r) { return r.tick <= tick; });
  if (pos != ring.end() && pos->version == version) return;
  ring.insert(pos, RetainedVersion{std::move(data), version, tick});
  trim_ring(idx.value());
}

void ObjectImage::restore_bytes(std::uint64_t offset,
                                std::span<const std::byte> in) {
  std::uint64_t pos = offset;
  std::size_t done = 0;
  while (done < in.size()) {
    const auto page_idx = static_cast<std::uint32_t>(pos / page_size_);
    const PageIndex p(page_idx);
    check(p);
    if (!pages_[page_idx]) throw PageNotResident(id_, p);
    const std::uint64_t in_page = pos % page_size_;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(page_size_ - in_page, in.size() - done));
    std::memcpy(pages_[page_idx]->data.data() + in_page, in.data() + done, n);
    done += n;
    pos += n;
  }
}

std::optional<PageIndex> ObjectImage::first_missing_page(
    std::uint64_t offset, std::uint64_t len) const {
  if (len == 0) return std::nullopt;
  const std::uint64_t first = offset / page_size_;
  const std::uint64_t last = (offset + len - 1) / page_size_;
  for (std::uint64_t i = first; i <= last; ++i) {
    const PageIndex p(static_cast<std::uint32_t>(i));
    check(p);
    if (!pages_[i]) return p;
  }
  return std::nullopt;
}

}  // namespace lotec
