// ObjectImage: one site's cached copy of a shared object's pages.
//
// Under LOTEC the up-to-date pages of an object may be scattered across
// several sites, so an image holds an arbitrary *subset* of the object's
// pages, each with the version (global LSN) it carried when installed.
// Reads and writes address the image by byte offset (attribute accesses may
// straddle page boundaries) and require the touched pages to be resident —
// the runtime guarantees that by transferring pages before method execution
// (or demand-fetching on a LOTEC misprediction).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/page_set.hpp"

namespace lotec {

/// The byte ranges one committed version changed relative to its
/// predecessor: content(version) == content(from_version) patched with
/// `ranges`.  This is what makes the DSD transfer mode (Section 4.2 /
/// Section 6: "only updates to the objects ... really need to be
/// transmitted") possible: an acquirer exactly one version behind needs
/// only the ranges, not the page.
struct PageDelta {
  Lsn from_version = 0;
  /// Coalesced, ascending (offset, length) pairs within the page.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;

  /// Wire size of shipping this delta: range payloads plus an 8-byte
  /// descriptor per range.
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept {
    std::uint64_t n = 0;
    for (const auto& [off, len] : ranges) n += len + 8;
    return n;
  }
};

/// Bound on the per-page delta history: an acquirer at most this many
/// versions behind can be served by deltas instead of the full page.
inline constexpr std::size_t kDeltaHistory = 8;

/// One page of object data plus the version it carried when produced and a
/// bounded history of the deltas that led to it (newest first; entry i
/// patches from_version -> the version entry i-1 patches from).
struct Page {
  std::vector<std::byte> data;
  Lsn version = 0;
  /// Global commit tick `version` was published under (mv_read extension);
  /// 0 for the initial materialization.  Copied along with the data on
  /// transfer, so a fetched page knows which snapshot stamps it satisfies.
  std::uint64_t tick = 0;
  std::vector<PageDelta> history;

  /// Wire bytes needed to bring a copy at `have` up to `version` using the
  /// delta chain, or nullopt when the history does not reach back that far
  /// (ship the full page instead).
  [[nodiscard]] std::optional<std::uint64_t> delta_chain_bytes(
      Lsn have) const noexcept {
    if (have >= version) return 0;
    std::uint64_t sum = 0;
    for (const PageDelta& d : history) {
      sum += 8 + d.wire_bytes();
      if (d.from_version == have) return sum;
      if (d.from_version < have) break;  // chain skipped past `have`
    }
    return std::nullopt;
  }
};

/// A sub-page update shipped instead of a full page (DSD mode): the byte
/// spans that changed between the receiver's cached version and `version`
/// (content taken from the sender's current page), plus the sender's delta
/// history so the receiver can serve further delta chains itself.
struct PagePatch {
  Lsn version = 0;
  /// Commit tick of `version` (rides the patch like Page::tick).
  std::uint64_t tick = 0;
  std::vector<PageDelta> history;
  /// Ascending-by-construction (offset, bytes) spans; overlapping spans are
  /// harmless (all carry the same final content).
  std::vector<std::pair<std::uint32_t, std::vector<std::byte>>> spans;
};

/// Raised when an access touches a page that is not resident; the runtime
/// catches it to trigger a demand fetch (LOTEC) or to fail a test that
/// asserts full residency (COTEC/OTEC must never see this).
class PageNotResident : public Error {
 public:
  PageNotResident(ObjectId object, PageIndex page)
      : Error("page " + std::to_string(page.value()) + " of object " +
              std::to_string(object.value()) + " not resident"),
        object_(object),
        page_(page) {}
  [[nodiscard]] ObjectId object() const noexcept { return object_; }
  [[nodiscard]] PageIndex page() const noexcept { return page_; }

 private:
  ObjectId object_;
  PageIndex page_;
};

/// One superseded committed page version retained for snapshot readers
/// (mv_read extension): full page content plus the (version, tick) pair it
/// was committed under.
struct RetainedVersion {
  std::vector<std::byte> data;
  Lsn version = 0;
  std::uint64_t tick = 0;
};

/// What a snapshot read resolved a page to: a borrowed view of either the
/// live committed page or a retained ring entry (valid while the store
/// mutex is held).
struct SnapshotView {
  const std::byte* data = nullptr;
  Lsn version = 0;
  std::uint64_t tick = 0;
};

class ObjectImage {
 public:
  ObjectImage(ObjectId id, std::size_t num_pages, std::uint32_t page_size)
      : id_(id),
        page_size_(page_size),
        pages_(num_pages),
        dirty_(num_pages) {
    if (num_pages == 0 || page_size == 0)
      throw UsageError("ObjectImage: empty geometry");
  }

  [[nodiscard]] ObjectId id() const noexcept { return id_; }
  [[nodiscard]] std::size_t num_pages() const noexcept {
    return pages_.size();
  }
  [[nodiscard]] std::uint32_t page_size() const noexcept { return page_size_; }

  [[nodiscard]] bool has_page(PageIndex p) const {
    check(p);
    return pages_[p.value()].has_value();
  }

  [[nodiscard]] Lsn page_version(PageIndex p) const {
    check(p);
    return pages_[p.value()] ? pages_[p.value()]->version : 0;
  }

  /// Pages currently resident at this site.
  [[nodiscard]] PageSet resident() const {
    PageSet s(pages_.size());
    for (std::size_t i = 0; i < pages_.size(); ++i)
      if (pages_[i]) s.insert(PageIndex(static_cast<std::uint32_t>(i)));
    return s;
  }

  /// Allocate every page zero-filled at version 0 (creating site).
  void materialize_all() {
    for (auto& p : pages_) {
      if (!p) p = Page{.data = std::vector<std::byte>(page_size_), .version = 0, .history = {}};
    }
  }

  /// Install (or overwrite) a page received from another site.  When
  /// retention is on, a superseded committed local copy moves into the
  /// version ring instead of being destroyed.
  void install_page(PageIndex idx, Page page) {
    check(idx);
    if (page.data.size() != page_size_)
      throw UsageError("ObjectImage: page size mismatch on install");
    if (retain_depth_ > 0 && pages_[idx.value()] &&
        !dirty_.contains(idx) &&
        pages_[idx.value()]->version < page.version)
      retain(idx.value(), *pages_[idx.value()]);
    pages_[idx.value()] = std::move(page);
  }

  /// Apply a sub-page patch to a resident page (DSD transfer).  A page
  /// whose version already reached patch.version is left untouched (it was
  /// concurrently installed); the caller guarantees the local content sits
  /// on the patch's delta chain, so writing every span yields the sender's
  /// exact content.  Does NOT mark pages dirty (committed remote state).
  void patch_page(PageIndex idx, const PagePatch& patch) {
    check(idx);
    if (!pages_[idx.value()]) throw PageNotResident(id_, idx);
    Page& page = *pages_[idx.value()];
    if (page.version >= patch.version) return;
    if (retain_depth_ > 0 && !dirty_.contains(idx)) retain(idx.value(), page);
    for (const auto& [off, bytes] : patch.spans) {
      if (off + bytes.size() > page.data.size())
        throw UsageError("ObjectImage: patch span out of page bounds");
      std::copy(bytes.begin(), bytes.end(),
                page.data.begin() + static_cast<std::ptrdiff_t>(off));
    }
    page.version = patch.version;
    page.tick = patch.tick;
    page.history = patch.history;
  }

  /// Copy of a resident page (for transfer to another site).
  [[nodiscard]] const Page& page(PageIndex idx) const {
    check(idx);
    if (!pages_[idx.value()]) throw PageNotResident(id_, idx);
    return *pages_[idx.value()];
  }

  /// Drop a page from the cache (invalidation / capacity experiments).
  void evict_page(PageIndex idx) {
    check(idx);
    pages_[idx.value()].reset();
    dirty_.erase(idx);
  }

  // --- byte-granularity access (may straddle pages) ----------------------

  /// Read `out.size()` bytes starting at `offset` into `out`.
  void read_bytes(std::uint64_t offset, std::span<std::byte> out) const;

  /// Overwrite bytes starting at `offset`; marks touched pages dirty.
  void write_bytes(std::uint64_t offset, std::span<const std::byte> in);

  /// Restore bytes from an undo before-image.  Unlike write_bytes this does
  /// NOT mark pages dirty: rolled-back state is, at worst, conservatively
  /// still covered by dirty bits set by the original (undone) writes.
  void restore_bytes(std::uint64_t offset, std::span<const std::byte> in);

  /// Restore a whole page from a shadow copy (same dirty semantics).
  void restore_page(PageIndex idx, Page before) {
    check(idx);
    if (before.data.size() != page_size_)
      throw UsageError("ObjectImage: shadow page size mismatch");
    pages_[idx.value()] = std::move(before);
  }

  /// The first non-resident page an access [offset, offset+len) would touch,
  /// if any — used by the demand-fetch path to discover what to fetch.
  [[nodiscard]] std::optional<PageIndex> first_missing_page(
      std::uint64_t offset, std::uint64_t len) const;

  // --- dirty tracking -----------------------------------------------------

  [[nodiscard]] const PageSet& dirty_pages() const noexcept { return dirty_; }
  void clear_dirty() {
    dirty_.clear();
    dirty_ranges_.clear();
    // An aborted epoch's before-images duplicate the (restored) live pages;
    // drop them so the ring holds only genuinely superseded versions.
    discard_pending_retained();
  }
  /// Stamp dirty pages with a new version at root commit; each stamped page
  /// also receives the delta (coalesced written ranges) that produced it
  /// from its previous version, and carries the global commit `tick` the
  /// version is published under.  Returns the stamped set.
  PageSet stamp_dirty(Lsn version, std::uint64_t tick = 0);

  // --- bounded version retention (mv_read extension) ----------------------

  /// Start retaining superseded committed page versions in a bounded ring of
  /// `depth` entries per page.  `fence` (may be null = no live snapshots) is
  /// the oldest live snapshot stamp: the ring garbage-collects past the
  /// bound only when no live reader could still resolve to the dropped
  /// version.  Off by default — a non-retaining image has zero overhead.
  void enable_retention(std::size_t depth,
                        const std::atomic<std::uint64_t>* fence) {
    if (depth == 0) throw UsageError("ObjectImage: retention depth 0");
    retain_depth_ = depth;
    fence_ = fence;
  }

  [[nodiscard]] bool retention_enabled() const noexcept {
    return retain_depth_ > 0;
  }

  /// Resolve page `idx` for a reader stamped `stamp`: the newest committed
  /// content with tick <= stamp known at this site — the live page (when
  /// resident, clean, and old enough) or a retained ring entry.  Returns
  /// nullopt when nothing here is old (or new) enough; the caller falls back
  /// to a remote snapshot fetch.  The view borrows storage: copy out while
  /// still holding the store mutex.
  [[nodiscard]] std::optional<SnapshotView> snapshot_page(
      PageIndex idx, std::uint64_t stamp) const;

  /// Adopt remotely-fetched snapshot content into the ring (never touches
  /// the live page, so coherence state is unaffected).  No-op if the ring
  /// already holds this version.
  void adopt_version(PageIndex idx, std::vector<std::byte> data, Lsn version,
                     std::uint64_t tick);

  /// Retained ring entries of a page, newest first (tests / introspection).
  [[nodiscard]] std::vector<RetainedVersion> retained(PageIndex idx) const {
    check(idx);
    const auto it = rings_.find(idx.value());
    return it == rings_.end() ? std::vector<RetainedVersion>{} : it->second;
  }

  /// The most recent delta of page `idx` (the one that produced its
  /// current version), if known.
  [[nodiscard]] const PageDelta* delta_of(PageIndex idx) const {
    check(idx);
    if (!pages_[idx.value()] || pages_[idx.value()]->history.empty())
      return nullptr;
    return &pages_[idx.value()]->history.front();
  }

 private:
  void check(PageIndex p) const {
    if (!p.valid() || p.value() >= pages_.size())
      throw UsageError("ObjectImage: page index out of range");
  }

  /// Move a copy of a committed page into its version ring (newest first,
  /// deduplicated by version), then trim past the bound where the snapshot
  /// fence allows.
  void retain(std::uint32_t page_idx, const Page& page);
  /// GC: drop oldest ring entries beyond the bound — but only when the next
  /// newer retained version is itself old enough for every live snapshot
  /// (tick <= fence), so no reader's newest-<=-stamp resolution can land on
  /// a reclaimed entry.
  void trim_ring(std::uint32_t page_idx);
  void discard_pending_retained();

  ObjectId id_;
  std::uint32_t page_size_;
  std::vector<std::optional<Page>> pages_;
  PageSet dirty_;
  /// Byte ranges written in the current (un-stamped) epoch, per page.
  std::unordered_map<std::uint32_t,
                     std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      dirty_ranges_;
  // --- version retention state (empty unless enable_retention ran) --------
  std::size_t retain_depth_ = 0;
  const std::atomic<std::uint64_t>* fence_ = nullptr;
  /// Per-page ring of superseded committed versions, newest first.
  std::unordered_map<std::uint32_t, std::vector<RetainedVersion>> rings_;
  /// Before-images captured for the current un-stamped dirty epoch
  /// (page -> retained version), discarded again if the epoch aborts.
  std::unordered_map<std::uint32_t, Lsn> pending_retained_;
};

}  // namespace lotec
