// UndoLog: local before-images supporting transaction abort.
//
// The paper notes (Section 4.1, Algorithm 4.3 commentary) that UNDO may be
// implemented "using either local UNDO logs or shadow pages" and that in
// either case no network communication is required.  Both strategies are
// implemented here and selectable per cluster:
//
//  * kByteRange — before each attribute write, the overwritten byte range is
//    saved.  Compact for narrow updates; one record per write.
//  * kShadowPage — before the first write a transaction makes to a page, the
//    whole page is copied.  One copy per touched page regardless of write
//    count.
//
// Closed nesting requires that when a sub-transaction pre-commits, its undo
// information is inherited by its parent (so a later ancestor abort also
// rolls back the child's committed work); `absorb` implements that, mirroring
// lock inheritance.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/arena.hpp"
#include "common/ids.hpp"
#include "page/object_image.hpp"

namespace lotec {

enum class UndoStrategy { kByteRange, kShadowPage };

[[nodiscard]] constexpr const char* to_string(UndoStrategy s) noexcept {
  return s == UndoStrategy::kByteRange ? "undo-log" : "shadow-pages";
}

class UndoLog {
 public:
  explicit UndoLog(UndoStrategy strategy = UndoStrategy::kByteRange)
      : strategy_(strategy) {}

  [[nodiscard]] UndoStrategy strategy() const noexcept { return strategy_; }

  /// Capture whatever the strategy requires, immediately BEFORE the caller
  /// performs a write of `len` bytes at `offset` into `img`.
  void before_write(ObjectImage& img, std::uint64_t offset, std::size_t len);

  /// Inherit a pre-committing child's records (appended after ours so that
  /// reverse-order undo rolls the child's work back first).
  void absorb(UndoLog&& child);

  /// Roll back everything captured, most recent first.  `resolve` maps an
  /// object id to the local image holding its pages.
  void undo(const std::function<ObjectImage&(ObjectId)>& resolve);

  void clear();

  [[nodiscard]] std::size_t record_count() const noexcept;
  /// Approximate bytes of before-image data held (for the undo-strategy
  /// ablation benchmark).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return record_count() == 0; }

 private:
  struct ByteRecord {
    ObjectId object;
    std::uint64_t offset;
    /// Before-image bytes, owned by `arena_` (or, after absorb, by blocks
    /// the arena adopted from the child — either way pointer-stable until
    /// clear()).
    std::byte* before;
    std::size_t len;
  };
  struct PageRecord {
    ObjectId object;
    PageIndex page;
    Page before;
  };
  // Either vector is used exclusively, depending on strategy; interleaving
  // order across both is preserved via a unified sequence of (which, index).
  enum class Which : std::uint8_t { kByte, kPage };

  UndoStrategy strategy_;
  /// Backing store for ByteRecord before-images.  One attempt's records die
  /// together at clear(), so a bump arena with wholesale reset beats one
  /// heap vector per captured write.
  Arena arena_;
  std::vector<ByteRecord> byte_records_;
  std::vector<PageRecord> page_records_;
  std::vector<std::pair<Which, std::size_t>> order_;
  /// Pages already shadow-copied by this log: (object, page) keys.
  std::unordered_map<ObjectId, std::unordered_set<std::uint32_t>> shadowed_;
};

}  // namespace lotec
