// ObjectLayout: where each attribute lives in an object's page image.
//
// The paper's LOTEC optimization requires the compiler to know "where, in an
// object's representation in memory, each attribute is stored" so that
// per-method attribute access sets can be mapped to sets of potentially
// accessed pages.  This class is that mapping: attributes are packed
// sequentially (8-byte aligned) and the image occupies
// ceil(total_size / page_size) pages.  Each object's image starts on its own
// page, which is why false sharing cannot arise (Section 4.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/page_set.hpp"

namespace lotec {

struct AttributeDef {
  std::string name;
  std::uint32_t size_bytes = 8;
};

class ObjectLayout {
 public:
  ObjectLayout() = default;

  /// Lay out `attrs` sequentially for the given page size.
  ObjectLayout(std::vector<AttributeDef> attrs, std::uint32_t page_size);

  [[nodiscard]] std::uint32_t page_size() const noexcept { return page_size_; }
  [[nodiscard]] std::size_t num_attributes() const noexcept {
    return attrs_.size();
  }
  [[nodiscard]] std::size_t num_pages() const noexcept { return num_pages_; }
  /// Total bytes occupied by attribute data (<= num_pages * page_size).
  [[nodiscard]] std::uint64_t data_size() const noexcept { return data_size_; }

  [[nodiscard]] const AttributeDef& attribute(AttrId a) const {
    check(a);
    return attrs_[a.value()];
  }

  /// Byte offset of an attribute within the object image.
  [[nodiscard]] std::uint64_t offset_of(AttrId a) const {
    check(a);
    return offsets_[a.value()];
  }

  /// Look up an attribute by name; throws UsageError if absent.
  [[nodiscard]] AttrId find(const std::string& name) const;

  /// The set of pages an access to attribute `a` touches (an attribute may
  /// straddle a page boundary).
  [[nodiscard]] PageSet pages_of(AttrId a) const;

  /// Union of pages_of over a set of attributes — the core of the
  /// compiler's attribute-access -> page-set analysis.
  [[nodiscard]] PageSet pages_of(const std::vector<AttrId>& attrs) const;

 private:
  void check(AttrId a) const {
    if (!a.valid() || a.value() >= attrs_.size())
      throw UsageError("ObjectLayout: attribute id out of range");
  }

  std::vector<AttributeDef> attrs_;
  std::vector<std::uint64_t> offsets_;
  std::uint32_t page_size_ = 0;
  std::uint64_t data_size_ = 0;
  std::size_t num_pages_ = 0;
};

}  // namespace lotec
