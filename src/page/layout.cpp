#include "page/layout.hpp"

namespace lotec {

namespace {
constexpr std::uint64_t kAttrAlignment = 8;

std::uint64_t align_up(std::uint64_t n, std::uint64_t a) {
  return (n + a - 1) / a * a;
}
}  // namespace

ObjectLayout::ObjectLayout(std::vector<AttributeDef> attrs,
                           std::uint32_t page_size)
    : attrs_(std::move(attrs)), page_size_(page_size) {
  if (page_size_ == 0) throw UsageError("ObjectLayout: page size must be > 0");
  if (attrs_.empty())
    throw UsageError("ObjectLayout: a class needs at least one attribute");
  offsets_.reserve(attrs_.size());
  std::uint64_t offset = 0;
  for (const auto& a : attrs_) {
    if (a.size_bytes == 0)
      throw UsageError("ObjectLayout: attribute '" + a.name +
                       "' has zero size");
    offset = align_up(offset, kAttrAlignment);
    offsets_.push_back(offset);
    offset += a.size_bytes;
  }
  data_size_ = offset;
  num_pages_ = static_cast<std::size_t>((data_size_ + page_size_ - 1) /
                                        page_size_);
  if (num_pages_ == 0) num_pages_ = 1;
}

AttrId ObjectLayout::find(const std::string& name) const {
  for (std::size_t i = 0; i < attrs_.size(); ++i)
    if (attrs_[i].name == name) return AttrId(static_cast<std::uint32_t>(i));
  throw UsageError("ObjectLayout: no attribute named '" + name + "'");
}

PageSet ObjectLayout::pages_of(AttrId a) const {
  check(a);
  PageSet s(num_pages_);
  const std::uint64_t begin = offsets_[a.value()];
  const std::uint64_t end = begin + attrs_[a.value()].size_bytes;
  for (std::uint64_t p = begin / page_size_; p <= (end - 1) / page_size_; ++p)
    s.insert(PageIndex(static_cast<std::uint32_t>(p)));
  return s;
}

PageSet ObjectLayout::pages_of(const std::vector<AttrId>& attrs) const {
  PageSet s(num_pages_);
  for (const AttrId a : attrs) s |= pages_of(a);
  return s;
}

}  // namespace lotec
