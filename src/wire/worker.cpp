#include "wire/worker.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "wire/frame.hpp"
#include "wire/ledger.hpp"
#include "wire/socket.hpp"

namespace lotec::wire {

namespace {

/// Worker-side span ids live in their own namespace (top bit set, node id in
/// bits 40..62) so merged span files from many workers plus the coordinator
/// never collide and trace_report can concatenate them directly.
constexpr std::uint64_t kWorkerSpanBit = std::uint64_t{1} << 63;

enum class ConnRole : std::uint8_t {
  kInboundUnknown,  ///< accepted, no Hello yet
  kInboundPeer,
  kCoordinator,
  kOutboundPeer,
  kAdmin,  ///< lotec_top observer: scrape-only, teardown is inconsequential
};

struct Conn {
  Fd fd;
  ConnRole role = ConnRole::kInboundUnknown;
  std::uint32_t peer = kCoordinatorNode;
  bool dead = false;
  /// Stream reassembly: partial frame bytes...
  std::vector<std::byte> buf;
  /// ...and payload bytes of `pending` still to drain off the stream.
  std::uint64_t skip = 0;
  Frame pending{};
  bool has_pending = false;
  /// Highest correlation id delivered on this connection (retransmit dedup;
  /// the coordinator issues globally monotonic ids and runs serially, so
  /// ids are non-decreasing per channel).
  std::uint64_t last_corr = 0;
};

struct PendingRelay {
  std::uint32_t dst = 0;
  std::chrono::steady_clock::time_point deadline;
};

class Worker {
 public:
  explicit Worker(const WorkerOptions& opt) : opt_(opt) {
    if (opt_.listen_fd < 0) throw Error("worker: no inherited listen fd");
    listen_ = Fd(opt_.listen_fd);
    if (!opt_.spans_path.empty()) {
      spans_.open(opt_.spans_path);
      if (!spans_)
        throw Error("worker: cannot open span file " + opt_.spans_path);
    }
  }

  int run() {
    dial_peers();
    while (running_) {
      poll_once();
      expire_relays();
      sweep_dead();
    }
    if (spans_.is_open()) spans_.flush();
    return 0;
  }

 private:
  // --- connection management -------------------------------------------

  Conn* add_conn(Fd fd, ConnRole role, std::uint32_t peer) {
    auto conn = std::make_unique<Conn>();
    conn->fd = std::move(fd);
    conn->role = role;
    conn->peer = peer;
    conns_.push_back(std::move(conn));
    return conns_.back().get();
  }

  [[nodiscard]] Conn* find_outbound(std::uint32_t peer) {
    for (auto& c : conns_)
      if (!c->dead && c->role == ConnRole::kOutboundPeer && c->peer == peer)
        return c.get();
    return nullptr;
  }

  void dial_peers() {
    // The supervisor pre-binds every listen socket before any worker
    // starts, so connect() lands in the backlog even when the peer is not
    // accepting yet — the full mesh comes up without ordering constraints.
    for (std::uint32_t j = 0; j < opt_.nodes; ++j) {
      if (j == opt_.node) continue;
      dial_peer(j, Millis(opt_.peer_connect_timeout_ms));
    }
  }

  Conn* dial_peer(std::uint32_t j, Millis timeout) {
    Fd fd = opt_.tcp ? tcp_connect(opt_.ports.at(j), timeout)
                     : uds_connect(socket_path(j), timeout);
    Conn* c = add_conn(std::move(fd), ConnRole::kOutboundPeer, j);
    Frame hello;
    hello.type = FrameType::kHello;
    hello.src = opt_.node;
    hello.dst = j;
    hello.payload_bytes = 0;
    send_frame(*c, hello, {});
    return c;
  }

  [[nodiscard]] std::string socket_path(std::uint32_t j) const {
    return opt_.socket_dir + "/node" + std::to_string(j) + ".sock";
  }

  void close_conn(Conn& c) {
    if (c.dead) return;
    c.dead = true;
    if (c.role == ConnRole::kCoordinator) {
      // Coordinator gone: the batch is over (or the coordinator crashed);
      // either way there is nobody left to serve.
      running_ = false;
      return;
    }
    if (c.role == ConnRole::kOutboundPeer) {
      // Relays in flight to that peer will never be acknowledged.
      nack_pending_to(c.peer, NackReason::kPeerUnreachable);
    }
  }

  void sweep_dead() {
    std::erase_if(conns_, [](const std::unique_ptr<Conn>& c) {
      return c->dead;
    });
  }

  // --- event loop -------------------------------------------------------

  void poll_once() {
    std::vector<pollfd> fds;
    std::vector<Conn*> by_index;
    fds.push_back({listen_.get(), POLLIN, 0});
    by_index.push_back(nullptr);
    for (auto& c : conns_) {
      if (c->dead) continue;
      fds.push_back({c->fd.get(), POLLIN, 0});
      by_index.push_back(c.get());
    }
    const int timeout = next_poll_timeout_ms();
    const int r = ::poll(fds.data(), fds.size(), timeout);
    if (r < 0) {
      if (errno == EINTR) return;
      throw SocketError(std::string("worker poll: ") + std::strerror(errno));
    }
    if (r == 0) return;
    if ((fds[0].revents & POLLIN) != 0)
      add_conn(accept_one(listen_), ConnRole::kInboundUnknown,
               kCoordinatorNode);
    for (std::size_t i = 1; i < fds.size(); ++i) {
      Conn* c = by_index[i];
      if (c->dead) continue;
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
        on_readable(*c);
      if (!running_) return;
    }
  }

  [[nodiscard]] int next_poll_timeout_ms() const {
    if (pending_.empty()) return 1000;
    auto earliest = pending_.begin()->second.deadline;
    for (const auto& [corr, relay] : pending_)
      earliest = std::min(earliest, relay.deadline);
    return std::min(1000, std::max(0, millis_until(earliest)));
  }

  void on_readable(Conn& c) {
    std::byte chunk[64 * 1024];
    const ssize_t n = ::recv(c.fd.get(), chunk, sizeof(chunk), 0);
    if (n == 0) {
      close_conn(c);
      return;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_conn(c);
      return;
    }
    c.buf.insert(c.buf.end(), chunk, chunk + n);
    drain_buffer(c);
  }

  void drain_buffer(Conn& c) {
    std::size_t pos = 0;
    while (!c.dead && running_) {
      if (c.has_pending) {
        const std::uint64_t avail = c.buf.size() - pos;
        const std::uint64_t take = std::min(c.skip, avail);
        c.skip -= take;
        pos += take;
        if (c.skip > 0) break;  // payload still arriving
        c.has_pending = false;
        handle_frame(c, c.pending);
      } else if (c.buf.size() - pos >= kFrameSize) {
        Frame f;
        try {
          f = decode_frame(
              std::span<const std::byte>(c.buf.data() + pos, kFrameSize));
        } catch (const WireProtocolError&) {
          // Hostile or corrupt bytes: reject the connection outright; a
          // desynchronized stream cannot be trusted frame-by-frame.
          try {
            Frame nack;
            nack.type = FrameType::kNack;
            nack.flags = static_cast<std::uint8_t>(NackReason::kBadFrame);
            nack.src = opt_.node;
            send_frame(c, nack, {});
          } catch (const SocketError&) {
          }
          close_conn(c);
          break;
        }
        pos += kFrameSize;
        if (f.payload_bytes > 0) {
          // Payload bytes are carried and counted, never buffered: the
          // worker drains them off the stream in place.
          c.pending = f;
          c.skip = f.payload_bytes;
          c.has_pending = true;
        } else {
          handle_frame(c, f);
        }
      } else {
        break;
      }
    }
    c.buf.erase(c.buf.begin(),
                c.buf.begin() + static_cast<std::ptrdiff_t>(pos));
  }

  // --- frame handling ---------------------------------------------------

  void handle_frame(Conn& c, const Frame& f) {
    switch (f.type) {
      case FrameType::kHello:
        c.peer = f.src;
        if (f.src == kCoordinatorNode || f.src == kAdminNode) {
          // An admin observer identifies like the coordinator but is
          // remembered as such: its disconnect must NOT end the batch, and
          // data frames are never accepted from it.
          c.role = f.src == kCoordinatorNode ? ConnRole::kCoordinator
                                             : ConnRole::kAdmin;
          Frame ack;
          ack.type = FrameType::kHelloAck;
          ack.src = opt_.node;
          ack.dst = f.src;
          ack.correlation = f.correlation;
          send_or_close(c, ack, {});
        } else {
          c.role = ConnRole::kInboundPeer;
        }
        return;
      case FrameType::kData:
        if (c.role == ConnRole::kAdmin) return;  // observers cannot inject
        if (c.role == ConnRole::kCoordinator)
          relay(f);
        else
          deliver(c, f);
        return;
      case FrameType::kAck:
      case FrameType::kNack:
        resolve_relay(f);
        return;
      case FrameType::kStatsRequest: {
        const std::vector<std::byte> payload = serialize_ledger(ledger_);
        Frame reply;
        reply.type = FrameType::kStatsReply;
        reply.src = opt_.node;
        reply.dst = kCoordinatorNode;
        reply.correlation = f.correlation;
        reply.payload_bytes = payload.size();
        send_or_close(c, reply, payload);
        return;
      }
      case FrameType::kStatsScrapeRequest: {
        // Telemetry scrape (PROTOCOL §16): the live ledger + derived
        // counters rendered as Prometheus text.  Out-of-band by
        // construction — nothing here touches the delivered/relayed
        // ledgers, so a scraped run's accounted counters are bit-identical
        // to an unscraped one (asserted by the worker scrape test).
        const std::string text = scrape_payload();
        std::vector<std::byte> payload(text.size());
        std::memcpy(payload.data(), text.data(), text.size());
        Frame reply;
        reply.type = FrameType::kStatsScrapeReply;
        reply.src = opt_.node;
        reply.dst = c.peer;
        reply.correlation = f.correlation;
        reply.payload_bytes = payload.size();
        send_or_close(c, reply, payload);
        return;
      }
      case FrameType::kShutdown: {
        // Flush the span file BEFORE acknowledging: the coordinator is free
        // to reap this process the moment the ack lands, and a SIGKILL
        // mid-flush would truncate the last JSONL line.
        if (spans_.is_open()) spans_.flush();
        Frame ack;
        ack.type = FrameType::kAck;
        ack.src = opt_.node;
        ack.dst = kCoordinatorNode;
        ack.correlation = f.correlation;
        send_or_close(c, ack, {});
        running_ = false;
        return;
      }
      case FrameType::kHelloAck:
      case FrameType::kStatsReply:
      case FrameType::kStatsScrapeReply:
        return;  // not expected at a worker; ignore
    }
  }

  /// Coordinator handed us a frame we originate (f.src == our node): ship
  /// it to the destination worker and remember the correlation so the ack
  /// can be routed back.
  void relay(const Frame& f) {
    Conn* out = find_outbound(f.dst);
    if (out == nullptr) {
      // Peer connection died (crash/restart chaos): listen sockets are
      // owned by the supervisor and outlive workers, so one reconnect
      // attempt reaches a respawned peer's backlog immediately.
      try {
        out = dial_peer(f.dst, Millis(1000));
      } catch (const SocketError&) {
        nack_to_coordinator(f, NackReason::kPeerUnreachable);
        return;
      }
    }
    try {
      send_frame(*out, f, {});
    } catch (const SocketError&) {
      close_conn(*out);
      try {
        out = dial_peer(f.dst, Millis(1000));
        send_frame(*out, f, {});
      } catch (const SocketError&) {
        nack_to_coordinator(f, NackReason::kPeerUnreachable);
        return;
      }
    }
    // Retransmits (coordinator ack timeout) ship again but are not
    // re-counted: correlation ids are globally monotonic and serial.
    if (f.correlation > relayed_corr_max_) {
      relayed_corr_max_ = f.correlation;
      auto& counts = ledger_.relayed[static_cast<std::size_t>(f.kind)];
      counts.messages += 1;
      counts.bytes += kFrameSize + f.payload_bytes;
    }
    pending_[f.correlation] = PendingRelay{
        f.dst, deadline_after(Millis(opt_.relay_ack_timeout_ms))};
  }

  /// A peer shipped us a frame addressed to this node: account it into the
  /// delivered ledger and the node-local shard mirror, then acknowledge.
  void deliver(Conn& c, const Frame& f) {
    const bool duplicate = f.correlation != 0 && f.correlation <= c.last_corr;
    if (duplicate) {
      ledger_.duplicates_dropped += 1;
    } else {
      c.last_corr = f.correlation;
      auto& counts = ledger_.delivered[static_cast<std::size_t>(f.kind)];
      counts.messages += 1;
      counts.bytes += kFrameSize + f.payload_bytes;
      apply_mirror(f);
      emit_span(f);
    }
    Frame ack;
    ack.type = FrameType::kAck;
    ack.kind = f.kind;
    ack.src = opt_.node;
    ack.dst = f.src;
    ack.object = f.object;
    ack.correlation = f.correlation;
    send_or_close(c, ack, {});
  }

  /// The node-local mirror of this site's slice of cluster state: what the
  /// in-process simulation tracks centrally (lock tables, page stores, the
  /// GDO shard's service counters) each worker derives from the frames
  /// actually delivered to it.
  void apply_mirror(const Frame& f) {
    switch (f.kind) {
      case MessageKind::kLockAcquireGrant:
      case MessageKind::kLockGrantWakeup:
        ledger_.locks_granted += 1;
        break;
      case MessageKind::kLockReleaseAck:
        ledger_.locks_released += 1;
        break;
      case MessageKind::kLockAcquireRequest:
      case MessageKind::kLockReleaseRequest:
      case MessageKind::kGdoLookupRequest:
      case MessageKind::kGdoRebuildRequest:
      case MessageKind::kPrefetchLockRequest:
        ledger_.gdo_requests_served += 1;
        break;
      case MessageKind::kGdoReplicaSync:
        ledger_.replica_syncs_applied += 1;
        break;
      default:
        break;
    }
    if (carries_page_data(f.kind)) ledger_.page_bytes_stored += f.payload_bytes;
  }

  void emit_span(const Frame& f) {
    if (!spans_.is_open()) return;
    ++span_seq_;
    SpanRecord s;
    s.id = kWorkerSpanBit | (std::uint64_t{opt_.node} << 40) | span_seq_;
    s.phase = SpanPhase::kWireDeliver;
    s.family = 0;  // directory lane: worker-side work has no family context
    s.node = opt_.node;
    s.object = f.object;
    s.begin = span_seq_ * 2;
    s.end = span_seq_ * 2 + 1;
    s.trace = f.trace.trace_id;
    s.link = f.trace.parent_span;
    write_span_jsonl(s, spans_);
  }

  /// An Ack/Nack came back from a peer for a frame we relayed: forward it
  /// to the coordinator, which owns the retry policy.
  void resolve_relay(const Frame& f) {
    pending_.erase(f.correlation);
    forward_to_coordinator(f);
  }

  void nack_to_coordinator(const Frame& data, NackReason reason) {
    Frame nack;
    nack.type = FrameType::kNack;
    nack.kind = data.kind;
    nack.flags = static_cast<std::uint8_t>(reason);
    nack.src = data.dst;  // the unreachable destination
    nack.dst = data.src;
    nack.object = data.object;
    nack.correlation = data.correlation;
    forward_to_coordinator(nack);
  }

  void nack_pending_to(std::uint32_t peer, NackReason reason) {
    std::vector<std::uint64_t> corrs;
    for (const auto& [corr, relay] : pending_)
      if (relay.dst == peer) corrs.push_back(corr);
    for (const std::uint64_t corr : corrs) {
      const PendingRelay relay = pending_.at(corr);
      pending_.erase(corr);
      Frame nack;
      nack.type = FrameType::kNack;
      nack.flags = static_cast<std::uint8_t>(reason);
      nack.src = relay.dst;
      nack.dst = opt_.node;
      nack.correlation = corr;
      forward_to_coordinator(nack);
    }
  }

  void forward_to_coordinator(const Frame& f) {
    for (auto& c : conns_) {
      if (!c->dead && c->role == ConnRole::kCoordinator) {
        send_or_close(*c, f, {});
        return;
      }
    }
  }

  void expire_relays() {
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> expired;
    for (const auto& [corr, relay] : pending_)
      if (relay.deadline <= now) expired.push_back(corr);
    for (const std::uint64_t corr : expired) {
      const PendingRelay relay = pending_.at(corr);
      pending_.erase(corr);
      Frame nack;
      nack.type = FrameType::kNack;
      nack.flags = static_cast<std::uint8_t>(NackReason::kTimeout);
      nack.src = relay.dst;
      nack.dst = opt_.node;
      nack.correlation = corr;
      forward_to_coordinator(nack);
    }
  }

  // --- sending ----------------------------------------------------------

  void send_frame(Conn& c, const Frame& f,
                  std::span<const std::byte> payload) {
    const std::array<std::byte, kFrameSize> header = encode_frame(f);
    write_full(c.fd, header);
    if (!payload.empty()) {
      write_full(c.fd, payload);
      if (payload.size() != f.payload_bytes)
        throw Error("wire: payload size does not match frame header");
    } else if (f.payload_bytes > 0) {
      // Modeled payloads have sizes, not contents: ship zero-filled bytes
      // so the kernel carries exactly what the analytic model charges.
      static const std::array<std::byte, 64 * 1024> zeros{};
      std::uint64_t left = f.payload_bytes;
      while (left > 0) {
        const std::size_t n =
            static_cast<std::size_t>(std::min<std::uint64_t>(left,
                                                             zeros.size()));
        write_full(c.fd, std::span<const std::byte>(zeros.data(), n));
        left -= n;
      }
    }
  }

  /// Render the worker's live state as Prometheus text: per-kind
  /// delivered/relayed ledgers plus the node-local mirror counters, all
  /// labeled node="<id>".  lotec_top decodes this with
  /// parse_prometheus_text — the same writer/parser pair the coordinator's
  /// exposition uses.
  [[nodiscard]] std::string scrape_payload() const {
    std::map<std::string, std::uint64_t> counters;
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(MessageKind::kNumKinds); ++k) {
      const auto kind = static_cast<MessageKind>(k);
      const auto& d = ledger_.delivered[k];
      const auto& r = ledger_.relayed[k];
      if (d.messages != 0) {
        counters["wire.delivered." + std::string(to_string(kind))] =
            d.messages;
        counters["wire.delivered_bytes." + std::string(to_string(kind))] =
            d.bytes;
      }
      if (r.messages != 0) {
        counters["wire.relayed." + std::string(to_string(kind))] = r.messages;
        counters["wire.relayed_bytes." + std::string(to_string(kind))] =
            r.bytes;
      }
    }
    counters["wire.duplicates_dropped"] = ledger_.duplicates_dropped;
    counters["wire.locks_granted"] = ledger_.locks_granted;
    counters["wire.locks_released"] = ledger_.locks_released;
    counters["wire.gdo_requests_served"] = ledger_.gdo_requests_served;
    counters["wire.replica_syncs_applied"] = ledger_.replica_syncs_applied;
    counters["wire.page_bytes_stored"] = ledger_.page_bytes_stored;
    counters["wire.spans_emitted"] = span_seq_;
    std::ostringstream os;
    write_prometheus_text(counters, {},
                          {{"node", std::to_string(opt_.node)},
                           {"transport", opt_.tcp ? "tcp" : "uds"}},
                          os);
    return os.str();
  }

  void send_or_close(Conn& c, const Frame& f,
                     std::span<const std::byte> payload) {
    try {
      send_frame(c, f, payload);
    } catch (const SocketError&) {
      close_conn(c);
    }
  }

  WorkerOptions opt_;
  Fd listen_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::map<std::uint64_t, PendingRelay> pending_;
  std::uint64_t relayed_corr_max_ = 0;
  WorkerLedger ledger_;
  std::ofstream spans_;
  std::uint64_t span_seq_ = 0;
  bool running_ = true;
};

std::uint64_t parse_u64_flag(const std::string& value, const char* flag) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw Error(std::string("worker: bad value for ") + flag + ": " + value);
  }
}

}  // namespace

WorkerOptions parse_worker_options(int argc, char** argv) {
  WorkerOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    if (key == "--node") {
      opt.node = static_cast<std::uint32_t>(parse_u64_flag(value, "--node"));
    } else if (key == "--nodes") {
      opt.nodes = static_cast<std::uint32_t>(parse_u64_flag(value, "--nodes"));
    } else if (key == "--listen-fd") {
      opt.listen_fd = static_cast<int>(parse_u64_flag(value, "--listen-fd"));
    } else if (key == "--dir") {
      opt.socket_dir = value;
    } else if (key == "--tcp") {
      opt.tcp = true;
    } else if (key == "--ports") {
      std::size_t start = 0;
      while (start <= value.size()) {
        const auto comma = value.find(',', start);
        const std::string item =
            value.substr(start, comma == std::string::npos ? std::string::npos
                                                           : comma - start);
        if (!item.empty())
          opt.ports.push_back(
              static_cast<std::uint16_t>(parse_u64_flag(item, "--ports")));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (key == "--spans") {
      opt.spans_path = value;
    } else if (key == "--connect-timeout-ms") {
      opt.peer_connect_timeout_ms = static_cast<std::uint32_t>(
          parse_u64_flag(value, "--connect-timeout-ms"));
    } else if (key == "--relay-timeout-ms") {
      opt.relay_ack_timeout_ms = static_cast<std::uint32_t>(
          parse_u64_flag(value, "--relay-timeout-ms"));
    } else {
      throw Error("worker: unknown flag " + arg);
    }
  }
  if (opt.nodes == 0) throw Error("worker: --nodes is required");
  if (opt.node >= opt.nodes)
    throw Error("worker: --node out of range for --nodes");
  if (opt.tcp && opt.ports.size() != opt.nodes)
    throw Error("worker: --ports must list one port per node");
  if (!opt.tcp && opt.socket_dir.empty())
    throw Error("worker: --dir is required for unix sockets");
  return opt;
}

int worker_main(const WorkerOptions& options) {
  Worker worker(options);
  return worker.run();
}

}  // namespace lotec::wire
