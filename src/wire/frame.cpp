#include "wire/frame.hpp"

#include <cstring>
#include <string>

namespace lotec::wire {

namespace {

void put_u32(std::span<std::byte, kFrameSize> b, std::size_t at,
             std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    b[at + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((v >> (8 * i)) & 0xFF);
}

void put_u64(std::span<std::byte, kFrameSize> b, std::size_t at,
             std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    b[at + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((v >> (8 * i)) & 0xFF);
}

std::uint32_t get_u32(std::span<const std::byte> b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | std::to_integer<std::uint32_t>(
                       b[at + static_cast<std::size_t>(i)]);
  return v;
}

std::uint64_t get_u64(std::span<const std::byte> b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | std::to_integer<std::uint64_t>(
                       b[at + static_cast<std::size_t>(i)]);
  return v;
}

}  // namespace

void encode_frame(const Frame& frame, std::span<std::byte, kFrameSize> out) {
  std::memset(out.data(), 0, kFrameSize);
  put_u32(out, 0, kMagic);
  out[4] = static_cast<std::byte>(kWireVersion);
  out[5] = static_cast<std::byte>(frame.type);
  out[6] = static_cast<std::byte>(frame.kind);
  out[7] = static_cast<std::byte>(frame.flags);
  put_u32(out, 8, frame.src);
  put_u32(out, 12, frame.dst);
  put_u64(out, 16, frame.object);
  put_u64(out, 24, frame.payload_bytes);
  put_u64(out, 32, frame.correlation);
  put_u64(out, 40, frame.trace.trace_id);
  put_u64(out, 48, frame.trace.parent_span);
  out[56] = static_cast<std::byte>(frame.trace.phase);
  // Bytes 57..63 stay zero (reserved).
}

std::array<std::byte, kFrameSize> encode_frame(const Frame& frame) {
  std::array<std::byte, kFrameSize> out;
  encode_frame(frame, out);
  return out;
}

Frame decode_frame(std::span<const std::byte> in) {
  if (in.size() < kFrameSize)
    throw WireProtocolError("wire frame truncated: " +
                            std::to_string(in.size()) + " of " +
                            std::to_string(kFrameSize) + " header bytes");
  if (get_u32(in, 0) != kMagic)
    throw WireProtocolError("wire frame: bad magic");
  if (std::to_integer<std::uint8_t>(in[4]) != kWireVersion)
    throw WireProtocolError(
        "wire frame: unsupported version " +
        std::to_string(std::to_integer<std::uint8_t>(in[4])));
  const std::uint8_t type = std::to_integer<std::uint8_t>(in[5]);
  if (type < static_cast<std::uint8_t>(FrameType::kData) ||
      type > static_cast<std::uint8_t>(FrameType::kStatsScrapeReply))
    throw WireProtocolError("wire frame: unknown frame type " +
                            std::to_string(type));
  const std::uint8_t kind = std::to_integer<std::uint8_t>(in[6]);
  if (kind >= static_cast<std::uint8_t>(MessageKind::kNumKinds))
    throw WireProtocolError("wire frame: message kind " +
                            std::to_string(kind) + " out of range");
  for (std::size_t i = 57; i < kFrameSize; ++i)
    if (in[i] != std::byte{0})
      throw WireProtocolError("wire frame: nonzero reserved byte at offset " +
                              std::to_string(i));

  Frame f;
  f.type = static_cast<FrameType>(type);
  f.kind = static_cast<MessageKind>(kind);
  f.flags = std::to_integer<std::uint8_t>(in[7]);
  f.src = get_u32(in, 8);
  f.dst = get_u32(in, 12);
  f.object = get_u64(in, 16);
  f.payload_bytes = get_u64(in, 24);
  if (f.payload_bytes > kMaxPayloadBytes)
    throw WireProtocolError("wire frame: declared payload of " +
                            std::to_string(f.payload_bytes) +
                            " bytes exceeds the " +
                            std::to_string(kMaxPayloadBytes) + "-byte cap");
  f.correlation = get_u64(in, 32);
  f.trace.trace_id = get_u64(in, 40);
  f.trace.parent_span = get_u64(in, 48);
  f.trace.phase = std::to_integer<std::uint8_t>(in[56]);
  return f;
}

Frame data_frame(const WireMessage& m, std::uint64_t correlation) {
  Frame f;
  f.type = FrameType::kData;
  f.kind = m.kind;
  f.src = m.src.valid() ? m.src.value() : kCoordinatorNode;
  f.dst = m.dst.valid() ? m.dst.value() : kCoordinatorNode;
  f.object = m.object.valid() ? m.object.value() : ~std::uint64_t{0};
  f.payload_bytes = m.payload_bytes;
  f.correlation = correlation;
  f.trace = m.trace;
  return f;
}

}  // namespace lotec::wire
