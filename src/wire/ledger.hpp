// WorkerLedger: the per-process accounting a lotec_worker keeps of every
// frame it relayed (as the source site) and delivered (as the destination
// site), plus the node-local shard mirror counters (locks installed at this
// site, page bytes stored, directory requests served by this shard).
//
// The coordinator gathers each worker's ledger through a StatsRequest /
// StatsReply round at the end of a batch and cross-checks it against what
// the WireTransport shipped — the golden-counter comparison that gates the
// wire backend against the in-process transport.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/message.hpp"
#include "wire/frame.hpp"

namespace lotec::wire {

struct KindCounts {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  friend bool operator==(const KindCounts&, const KindCounts&) = default;
};

inline constexpr std::size_t kNumWireKinds =
    static_cast<std::size_t>(MessageKind::kNumKinds);

struct WorkerLedger {
  /// Frames this worker accepted as the destination site, by kind.  Bytes
  /// are full wire bytes (fixed header + payload), matching
  /// WireMessage::total_bytes().
  std::array<KindCounts, kNumWireKinds> delivered{};
  /// Frames this worker forwarded as the source site, by kind.
  std::array<KindCounts, kNumWireKinds> relayed{};
  /// Retransmitted frames recognized by correlation id and dropped without
  /// double-accounting.
  std::uint64_t duplicates_dropped = 0;

  // --- node-local shard mirror (GDO shard / page store / lock table) ------
  /// Global lock grants installed into this site's lock table
  /// (LockAcquireGrant + LockGrantWakeup deliveries).
  std::uint64_t locks_granted = 0;
  /// Release acknowledgements retiring entries from this site's lock table.
  std::uint64_t locks_released = 0;
  /// Directory requests served by the GDO shard hosted on this node
  /// (lock/lookup/rebuild/release requests addressed to it).
  std::uint64_t gdo_requests_served = 0;
  /// Replica-sync frames applied by this node as a mirror.
  std::uint64_t replica_syncs_applied = 0;
  /// Page payload bytes stored into this node's page store (page-carrying
  /// deliveries).
  std::uint64_t page_bytes_stored = 0;

  [[nodiscard]] KindCounts delivered_total() const noexcept {
    KindCounts t;
    for (const KindCounts& c : delivered) {
      t.messages += c.messages;
      t.bytes += c.bytes;
    }
    return t;
  }
  [[nodiscard]] KindCounts relayed_total() const noexcept {
    KindCounts t;
    for (const KindCounts& c : relayed) {
      t.messages += c.messages;
      t.bytes += c.bytes;
    }
    return t;
  }

  WorkerLedger& operator+=(const WorkerLedger& o) noexcept {
    for (std::size_t k = 0; k < kNumWireKinds; ++k) {
      delivered[k].messages += o.delivered[k].messages;
      delivered[k].bytes += o.delivered[k].bytes;
      relayed[k].messages += o.relayed[k].messages;
      relayed[k].bytes += o.relayed[k].bytes;
    }
    duplicates_dropped += o.duplicates_dropped;
    locks_granted += o.locks_granted;
    locks_released += o.locks_released;
    gdo_requests_served += o.gdo_requests_served;
    replica_syncs_applied += o.replica_syncs_applied;
    page_bytes_stored += o.page_bytes_stored;
    return *this;
  }

  friend bool operator==(const WorkerLedger&, const WorkerLedger&) = default;
};

/// StatsReply payload: little-endian u64 sequence
/// [kNumWireKinds, {delivered msgs, delivered bytes, relayed msgs, relayed
/// bytes} x kinds, duplicates, locks_granted, locks_released,
/// gdo_requests_served, replica_syncs_applied, page_bytes_stored].
[[nodiscard]] std::vector<std::byte> serialize_ledger(const WorkerLedger& l);

/// Throws WireProtocolError on truncated / inconsistent payloads.
[[nodiscard]] WorkerLedger parse_ledger(std::span<const std::byte> payload);

}  // namespace lotec::wire
