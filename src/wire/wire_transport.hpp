// WireTransport: the Transport backend behind `--distributed N`.
//
// The deterministic in-process simulation stays the driver: the coordinator
// process executes families exactly as before, and the base Transport does
// all accounting, fault-hook consultation and reachability checking.  What
// this subclass adds is physics — after the base class accepts a remote
// message, the same message is *shipped* through real OS processes:
//
//   coordinator --Data--> worker[src] --Data--> worker[dst]
//   coordinator <--Ack--- worker[src] <--Ack--- worker[dst]
//
// Worker[dst] accounts the delivery into its own ledger (and its local
// shard mirror) before acknowledging.  Because the identical code path
// decides what gets accounted in both modes, the wire backend produces
// bit-identical message/byte counts to the in-process transport for the
// same seed and scenario — and on_batch_complete() *proves* it by
// gathering every worker's ledger and cross-checking per message kind.
//
// Failure mapping: ship timeouts retry with exponential backoff
// (ack_timeout_ms doubling, max_send_attempts) and then surface as
// NodeUnreachable(src, dst) — the exact exception the runtime's existing
// retry/recovery paths (PR 1 lease/epoch recovery) already handle.
// set_node_failed(node, true) kills the real worker process (SIGKILL);
// recovery respawns it on the same pre-bound listen socket.  Any kill
// marks the ledger incomplete and downgrades the batch-end cross-check
// (a dead incarnation's deliveries died with it).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/transport.hpp"
#include "net/wire_config.hpp"
#include "wire/frame.hpp"
#include "wire/launcher.hpp"
#include "wire/ledger.hpp"
#include "wire/socket.hpp"

namespace lotec::wire {

class WireTransport final : public Transport {
 public:
  /// Spawns the worker fleet and completes the Hello/HelloAck handshake
  /// with every worker.  Throws on spawn or handshake failure.
  WireTransport(std::size_t num_nodes, NetworkConfig net_config,
                WireConfig wire_config);

  /// Shuts the fleet down gracefully (Shutdown frames, so workers flush
  /// their span files) before the supervisor reaps anything left.
  ~WireTransport() override;

  void send(const WireMessage& m) override;
  std::vector<NodeId> send_to_all(
      const WireMessage& m, const std::vector<NodeId>& destinations) override;
  void set_node_failed(NodeId node, bool failed) override;
  void on_batch_complete() override;

  /// Deferred acks still outstanding (0 outside an open batch window).
  [[nodiscard]] std::size_t deferred_pending() const noexcept {
    std::size_t n = 0;
    for (const auto& v : deferred_) n += v.size();
    return n;
  }

  /// What this coordinator successfully shipped, by kind (full wire bytes).
  [[nodiscard]] const std::array<KindCounts, kNumWireKinds>& shipped()
      const noexcept {
    return shipped_;
  }
  /// Sum of all worker ledgers gathered by the last on_batch_complete().
  [[nodiscard]] const WorkerLedger& gathered() const noexcept {
    return gathered_;
  }
  /// Per-worker ledgers from the last gather (index = node id).
  [[nodiscard]] const std::vector<WorkerLedger>& worker_ledgers()
      const noexcept {
    return worker_ledgers_;
  }
  /// False once any worker was killed: deliveries accounted by a dead
  /// incarnation are unrecoverable, so the strict cross-check is skipped.
  [[nodiscard]] bool ledger_complete() const noexcept {
    return ledger_complete_;
  }
  [[nodiscard]] const WorkerSupervisor& supervisor() const noexcept {
    return *supervisor_;
  }

 protected:
  /// Flush every deferred ack when the outermost batch window closes.
  void on_batch_window_end() override;

 private:
  /// A frame written without waiting for its ack (batched tail): resolved
  /// wholesale when the batch window closes.
  struct PendingShip {
    MessageKind kind{};
    NodeId dst{};
    std::uint64_t total_bytes = 0;
    std::uint64_t correlation = 0;
  };

  void handshake(std::uint32_t node);
  void reconnect(std::uint32_t node);
  /// One physical delivery attempt cycle with retry/backoff; counts the
  /// frame into shipped_ on success, throws NodeUnreachable on exhaustion.
  /// With `deferred` set (the message joined an open batch) the frame is
  /// written and queued on deferred_[src] instead of waiting for its ack —
  /// the worker link is FIFO and the worker serial, so the later flush of
  /// the queue tail proves delivery of the whole run.
  void ship(const WireMessage& m, std::uint32_t dst, bool deferred = false);
  /// Wait out the deferred-ack queue of worker[src]; counts the flushed
  /// frames into shipped_ or throws NodeUnreachable on a Nack/timeout.
  void flush_deferred(std::uint32_t src);
  /// Read frames from worker[node]'s connection until an Ack/Nack matching
  /// `correlation` arrives.  Skipped Ack/Nack frames are remembered in
  /// stray_replies_[node] — they are the acknowledgements of earlier
  /// deferred ships, consumed later by flush_deferred.
  Frame read_reply(std::uint32_t node, std::uint64_t correlation,
                   std::chrono::steady_clock::time_point deadline,
                   std::vector<std::byte>* payload_out = nullptr);

  WireConfig wire_;
  std::unique_ptr<WorkerSupervisor> supervisor_;
  std::vector<Fd> conns_;  // coordinator -> worker[k], index = node id
  std::uint64_t next_correlation_ = 0;
  std::array<KindCounts, kNumWireKinds> shipped_{};
  WorkerLedger gathered_;
  std::vector<WorkerLedger> worker_ledgers_;
  std::vector<std::vector<PendingShip>> deferred_;   // index = src node
  std::vector<std::map<std::uint64_t, FrameType>> stray_replies_;
  bool ledger_complete_ = true;
};

}  // namespace lotec::wire
