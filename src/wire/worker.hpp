// WireWorker: the per-node process behind `lotec_sim --distributed N`.
//
// One worker is one LOTEC site made real: it owns that site's slice of the
// distributed state (the GDO shard it homes, its page store occupancy, its
// lock table) in the form of a mirror ledger, and it carries the site's
// share of the cluster's physical traffic.  The coordinator process keeps
// running the deterministic simulation; every message the simulation
// accounts for node S -> node D is *shipped*: coordinator hands the frame
// to worker S, worker S relays it over its peer connection to worker D,
// worker D accounts the delivery and acknowledges back along the same
// path.  At batch end the coordinator gathers each worker's ledger and
// cross-checks it against what it shipped — the bit-identical golden
// counter gate.
//
// Event loop: single-threaded poll() over
//   - the inherited listen socket (accepts peers and the coordinator),
//   - every accepted inbound connection,
//   - every outbound peer connection (acks to our relays come back here).
// Connections identify themselves with a Hello frame; the coordinator's
// Hello carries src = kCoordinatorNode.  Frames can fragment arbitrarily on
// the stream, so each connection keeps a reassembly buffer; page payloads
// are counted and discarded without buffering (the simulation's page
// contents stay in the coordinator — the worker carries the bytes, which is
// what the model charges).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lotec::wire {

struct WorkerOptions {
  std::uint32_t node = 0;   ///< this worker's node id
  std::uint32_t nodes = 0;  ///< cluster size
  int listen_fd = -1;       ///< pre-bound listening socket (inherited)
  bool tcp = false;
  std::string socket_dir;               ///< UDS: dir holding node<K>.sock
  std::vector<std::uint16_t> ports;     ///< TCP: listen port per node
  std::string spans_path;               ///< JSONL span output ("" = off)
  std::uint32_t peer_connect_timeout_ms = 10000;
  std::uint32_t relay_ack_timeout_ms = 8000;
};

/// Parse `--key=value` worker argv (past argv[0]).  Throws Error on
/// unknown/malformed flags.
[[nodiscard]] WorkerOptions parse_worker_options(int argc, char** argv);

/// Run the worker event loop until the coordinator sends Shutdown or its
/// connection closes.  Returns the process exit code.
int worker_main(const WorkerOptions& options);

}  // namespace lotec::wire
