#include "wire/launcher.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace lotec::wire {

namespace {

[[nodiscard]] bool is_executable(const std::string& path) {
  return !path.empty() && ::access(path.c_str(), X_OK) == 0;
}

[[nodiscard]] std::string self_exe_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  std::string path(buf);
  const auto slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

std::string find_worker_binary(const WireConfig& cfg) {
  if (!cfg.worker_path.empty()) {
    if (is_executable(cfg.worker_path)) return cfg.worker_path;
    throw Error("wire: worker binary not executable: " + cfg.worker_path);
  }
  if (const char* env = std::getenv("LOTEC_WORKER");
      env != nullptr && *env != '\0') {
    if (is_executable(env)) return env;
    throw Error(std::string("wire: $LOTEC_WORKER not executable: ") + env);
  }
  const std::string exe_dir = self_exe_dir();
  const std::string beside = exe_dir + "/lotec_worker";
  if (is_executable(beside)) return beside;
  // Benches and tests live in sibling directories of tools/ in the build
  // tree; look one level up.
  const std::string sibling = exe_dir + "/../tools/lotec_worker";
  if (is_executable(sibling)) return sibling;
  throw Error(
      "wire: cannot find the lotec_worker binary (tried --worker PATH, "
      "$LOTEC_WORKER, " +
      beside + " and " + sibling +
      "); build the `lotec_worker` target or set $LOTEC_WORKER");
}

WorkerSupervisor::WorkerSupervisor(const WireConfig& cfg, std::uint32_t nodes)
    : cfg_(cfg), nodes_(nodes), worker_binary_(find_worker_binary(cfg)) {
  if (nodes_ == 0) throw Error("wire: cannot supervise a 0-node cluster");
  socket_dir_ = cfg_.socket_dir;
  if (!cfg_.tcp && socket_dir_.empty()) {
    std::string templ = "/tmp/lotec-wire-XXXXXX";
    if (::mkdtemp(templ.data()) == nullptr)
      throw Error(std::string("wire: mkdtemp: ") + std::strerror(errno));
    socket_dir_ = templ;
    owns_socket_dir_ = true;
  }
  listen_fds_.reserve(nodes_);
  pids_.assign(nodes_, -1);
  // Bind everything before forking anything (see file comment).
  for (std::uint32_t k = 0; k < nodes_; ++k) {
    if (cfg_.tcp) {
      auto [fd, port] = tcp_listen(static_cast<int>(nodes_) + 8);
      listen_fds_.push_back(std::move(fd));
      ports_.push_back(port);
    } else {
      listen_fds_.push_back(uds_listen(
          socket_dir_ + "/node" + std::to_string(k) + ".sock",
          static_cast<int>(nodes_) + 8));
    }
  }
  for (std::uint32_t k = 0; k < nodes_; ++k) spawn(k);
}

WorkerSupervisor::~WorkerSupervisor() {
  for (std::uint32_t k = 0; k < nodes_; ++k) {
    if (pids_[k] <= 0) continue;
    ::kill(pids_[k], SIGKILL);
    ::waitpid(pids_[k], nullptr, 0);
    pids_[k] = -1;
  }
  if (owns_socket_dir_) {
    for (std::uint32_t k = 0; k < nodes_; ++k)
      ::unlink((socket_dir_ + "/node" + std::to_string(k) + ".sock").c_str());
    ::rmdir(socket_dir_.c_str());
  }
}

void WorkerSupervisor::spawn(std::uint32_t node) {
  std::vector<std::string> argv_store;
  argv_store.push_back(worker_binary_);
  argv_store.push_back("--node=" + std::to_string(node));
  argv_store.push_back("--nodes=" + std::to_string(nodes_));
  argv_store.push_back("--listen-fd=" +
                       std::to_string(listen_fds_[node].get()));
  if (cfg_.tcp) {
    std::string ports = "--ports=";
    for (std::uint32_t k = 0; k < nodes_; ++k) {
      if (k > 0) ports += ',';
      ports += std::to_string(ports_[k]);
    }
    argv_store.push_back("--tcp");
    argv_store.push_back(std::move(ports));
  } else {
    argv_store.push_back("--dir=" + socket_dir_);
  }
  if (!cfg_.worker_spans.empty())
    argv_store.push_back("--spans=" + cfg_.worker_spans + ".node" +
                         std::to_string(node) + ".jsonl");
  argv_store.push_back("--relay-timeout-ms=" +
                       std::to_string(cfg_.ack_timeout_ms *
                                      cfg_.max_send_attempts * 2));
  std::vector<char*> argv;
  argv.reserve(argv_store.size() + 1);
  for (std::string& s : argv_store) argv.push_back(s.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw Error(std::string("wire: fork: ") + std::strerror(errno));
  if (pid == 0) {
    // Child: the listen fds were created without CLOEXEC, so the one this
    // worker needs survives exec (the siblings' fds ride along unused).
    ::execv(worker_binary_.c_str(), argv.data());
    // exec failed; nothing sane to do in the child but scream and exit.
    ::perror("lotec_worker exec");
    ::_exit(127);
  }
  pids_[node] = pid;
}

Fd WorkerSupervisor::connect_to(std::uint32_t node, Millis timeout) const {
  if (node >= nodes_) throw Error("wire: connect_to node out of range");
  return cfg_.tcp
             ? tcp_connect(ports_[node], timeout)
             : uds_connect(socket_dir_ + "/node" + std::to_string(node) +
                               ".sock",
                           timeout);
}

void WorkerSupervisor::kill_worker(std::uint32_t node) {
  if (node >= nodes_ || pids_[node] <= 0) return;
  ::kill(pids_[node], SIGKILL);
  ::waitpid(pids_[node], nullptr, 0);
  pids_[node] = -1;
  ++kills_;
}

void WorkerSupervisor::respawn_worker(std::uint32_t node) {
  if (node >= nodes_ || pids_[node] > 0) return;
  spawn(node);
  ++respawns_;
}

bool WorkerSupervisor::alive(std::uint32_t node) const {
  if (node >= nodes_ || pids_[node] <= 0) return false;
  // A worker that crashed on its own shows up as reapable.
  return ::waitpid(pids_[node], nullptr, WNOHANG) == 0;
}

}  // namespace lotec::wire
