// Thin RAII socket layer for the wire transport: Unix-domain sockets by
// default, TCP loopback behind a flag, framed blocking I/O with poll-based
// deadlines.  Everything here is plain POSIX; no third-party dependency.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "common/error.hpp"

namespace lotec::wire {

/// Connection-level failure (peer died, timeout, refused).  The transport
/// maps these onto NodeUnreachable so the existing retry machinery applies.
class SocketError : public Error {
 public:
  using Error::Error;
};

/// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.release()) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

using Millis = std::chrono::milliseconds;

/// Monotonic deadline helper.
[[nodiscard]] std::chrono::steady_clock::time_point deadline_after(Millis d);
[[nodiscard]] int millis_until(std::chrono::steady_clock::time_point deadline);

/// Bind + listen on a Unix-domain socket at `path` (unlinked first).
[[nodiscard]] Fd uds_listen(const std::string& path, int backlog);
/// Bind + listen on 127.0.0.1 with an ephemeral port; returns {fd, port}.
[[nodiscard]] std::pair<Fd, std::uint16_t> tcp_listen(int backlog);

/// Connect, retrying until the deadline (covers listener startup races).
[[nodiscard]] Fd uds_connect(const std::string& path, Millis timeout);
[[nodiscard]] Fd tcp_connect(std::uint16_t port, Millis timeout);

/// Accept one pending connection (throws SocketError on failure).
[[nodiscard]] Fd accept_one(const Fd& listener);

/// Write all of `data` (restarting on EINTR / short writes).  Throws
/// SocketError when the peer is gone.
void write_full(const Fd& fd, std::span<const std::byte> data);

/// Read exactly `out.size()` bytes, polling with `deadline`.  Throws
/// SocketError on EOF, error, or deadline expiry.
void read_full(const Fd& fd, std::span<std::byte> out,
               std::chrono::steady_clock::time_point deadline);

/// Wait until `fd` is readable or the timeout elapses.  Returns false on
/// timeout; throws SocketError on poll failure or hangup without data.
bool wait_readable(const Fd& fd, int timeout_ms);

}  // namespace lotec::wire
