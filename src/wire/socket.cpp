#include "wire/socket.hpp"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <functional>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

namespace lotec::wire {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

Fd make_socket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  return Fd(fd);
}

sockaddr_un uds_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw SocketError("unix socket path too long (" +
                      std::to_string(path.size()) + " bytes): " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

Fd connect_retry(const std::function<Fd()>& attempt, Millis timeout,
                 const std::string& what) {
  const auto deadline = deadline_after(timeout);
  Millis backoff(1);
  for (;;) {
    try {
      return attempt();
    } catch (const SocketError&) {
      if (std::chrono::steady_clock::now() + backoff >= deadline) throw;
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, Millis(50));
    }
  }
  throw SocketError("connect timeout: " + what);
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::chrono::steady_clock::time_point deadline_after(Millis d) {
  return std::chrono::steady_clock::now() + d;
}

int millis_until(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<Millis>(
      deadline - std::chrono::steady_clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

Fd uds_listen(const std::string& path, int backlog) {
  Fd fd = make_socket(AF_UNIX);
  const sockaddr_un addr = uds_addr(path);
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw_errno("bind " + path);
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen " + path);
  return fd;
}

std::pair<Fd, std::uint16_t> tcp_listen(int backlog) {
  Fd fd = make_socket(AF_INET);
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw_errno("bind tcp");
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen tcp");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw_errno("getsockname");
  return {std::move(fd), ntohs(addr.sin_port)};
}

Fd uds_connect(const std::string& path, Millis timeout) {
  return connect_retry(
      [&] {
        Fd fd = make_socket(AF_UNIX);
        const sockaddr_un addr = uds_addr(path);
        if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) != 0)
          throw_errno("connect " + path);
        return fd;
      },
      timeout, path);
}

Fd tcp_connect(std::uint16_t port, Millis timeout) {
  return connect_retry(
      [&] {
        Fd fd = make_socket(AF_INET);
        const int one = 1;
        ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) != 0)
          throw_errno("connect tcp :" + std::to_string(port));
        return fd;
      },
      timeout, "tcp :" + std::to_string(port));
}

Fd accept_one(const Fd& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

void write_full(const Fd& fd, std::span<const std::byte> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd.get(), data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
}

void read_full(const Fd& fd, std::span<std::byte> out,
               std::chrono::steady_clock::time_point deadline) {
  std::size_t off = 0;
  while (off < out.size()) {
    if (!wait_readable(fd, millis_until(deadline)))
      throw SocketError("read timeout (" + std::to_string(off) + "/" +
                        std::to_string(out.size()) + " bytes)");
    const ssize_t n = ::recv(fd.get(), out.data() + off, out.size() - off, 0);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) throw SocketError("connection closed by peer");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    throw_errno("recv");
  }
}

bool wait_readable(const Fd& fd, int timeout_ms) {
  pollfd p{fd.get(), POLLIN, 0};
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r > 0) {
      if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0) return true;
      return false;
    }
    if (r == 0) return false;
    if (errno == EINTR) continue;
    throw_errno("poll");
  }
}

}  // namespace lotec::wire
