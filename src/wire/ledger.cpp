#include "wire/ledger.hpp"

#include <string>

namespace lotec::wire {

namespace {

void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  std::uint64_t u64() {
    if (off_ + 8 > data_.size())
      throw WireProtocolError("stats payload truncated at byte " +
                              std::to_string(off_));
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
      v = (v << 8) | std::to_integer<std::uint64_t>(
                         data_[off_ + static_cast<std::size_t>(i)]);
    off_ += 8;
    return v;
  }

  [[nodiscard]] bool done() const noexcept { return off_ == data_.size(); }

 private:
  std::span<const std::byte> data_;
  std::size_t off_ = 0;
};

}  // namespace

std::vector<std::byte> serialize_ledger(const WorkerLedger& l) {
  std::vector<std::byte> out;
  out.reserve(8 * (1 + 4 * kNumWireKinds + 6));
  append_u64(out, kNumWireKinds);
  for (std::size_t k = 0; k < kNumWireKinds; ++k) {
    append_u64(out, l.delivered[k].messages);
    append_u64(out, l.delivered[k].bytes);
    append_u64(out, l.relayed[k].messages);
    append_u64(out, l.relayed[k].bytes);
  }
  append_u64(out, l.duplicates_dropped);
  append_u64(out, l.locks_granted);
  append_u64(out, l.locks_released);
  append_u64(out, l.gdo_requests_served);
  append_u64(out, l.replica_syncs_applied);
  append_u64(out, l.page_bytes_stored);
  return out;
}

WorkerLedger parse_ledger(std::span<const std::byte> payload) {
  Reader r(payload);
  const std::uint64_t kinds = r.u64();
  if (kinds != kNumWireKinds)
    throw WireProtocolError("stats payload kind-count mismatch: peer has " +
                            std::to_string(kinds) + " kinds, this build has " +
                            std::to_string(kNumWireKinds));
  WorkerLedger l;
  for (std::size_t k = 0; k < kNumWireKinds; ++k) {
    l.delivered[k].messages = r.u64();
    l.delivered[k].bytes = r.u64();
    l.relayed[k].messages = r.u64();
    l.relayed[k].bytes = r.u64();
  }
  l.duplicates_dropped = r.u64();
  l.locks_granted = r.u64();
  l.locks_released = r.u64();
  l.gdo_requests_served = r.u64();
  l.replica_syncs_applied = r.u64();
  l.page_bytes_stored = r.u64();
  if (!r.done())
    throw WireProtocolError("stats payload has trailing bytes");
  return l;
}

}  // namespace lotec::wire
