// Wire frame: the binary serialization of a WireMessage.
//
// Every cross-node message in the system has always been *sized* as a fixed
// 64-byte header plus a computed payload (net/message.hpp).  The wire
// transport makes that layout real: a frame is exactly the 64 bytes below,
// followed by `payload_bytes` of page/control data on the socket, so the
// bytes the analytic model charges are the bytes the kernel carries.
//
// Layout (little-endian, offsets in bytes):
//
//   0   u32  magic            "LOTC" = 0x4C4F5443
//   4   u8   version          kWireVersion
//   5   u8   frame type       FrameType
//   6   u8   message kind     MessageKind (Data frames; 0 otherwise)
//   7   u8   flags            FrameFlags / Nack reason
//   8   u32  src node         0xFFFFFFFF = coordinator / invalid
//   12  u32  dst node
//   16  u64  object id        ~0 = no object
//   24  u64  payload bytes    bytes following the header on the socket
//   32  u64  correlation id   request/reply matching (monotonic)
//   40  u64  trace id         |
//   48  u64  parent span      |  PR 5 TraceContext riding in the frame
//   56  u8   trace phase      |  padding — exactly the modeled placement
//   57  u8x7 reserved         must be zero
//
// The causal TraceContext occupies the padding the in-process model already
// reserved for it, so Perfetto flow arrows keep working across real
// processes with zero accounted bytes: total_bytes() is unchanged.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/error.hpp"
#include "net/message.hpp"
#include "obs/trace_context.hpp"

namespace lotec::wire {

inline constexpr std::uint32_t kMagic = 0x4C4F5443;  // "LOTC"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameSize = 64;
static_assert(kFrameSize == wire::kHeaderBytes,
              "the wire frame must realize exactly the modeled fixed header");

/// Node id marker for the coordinator endpoint in Hello frames.
inline constexpr std::uint32_t kCoordinatorNode = 0xFFFFFFFFu;

/// Node id marker for an out-of-band admin/observer endpoint (lotec_top).
/// An admin connection may only ever ask for stats scrapes; workers never
/// route data through it and its teardown must not end the batch.
inline constexpr std::uint32_t kAdminNode = 0xFFFFFFFEu;

/// Largest payload a decoder accepts; anything bigger is hostile or
/// corrupt (the biggest legitimate payloads are page batches, well under
/// this).
inline constexpr std::uint64_t kMaxPayloadBytes = std::uint64_t{1} << 26;

enum class FrameType : std::uint8_t {
  kData = 1,        ///< one WireMessage, coordinator -> src, src -> dst
  kAck = 2,         ///< delivery confirmed (correlation id matches)
  kNack = 3,        ///< delivery failed; flags carry a NackReason
  kHello = 4,       ///< connection identification (src = sender id)
  kHelloAck = 5,    ///< worker ready (peer mesh connected)
  kStatsRequest = 6,///< coordinator -> worker: ship me your ledger
  kStatsReply = 7,  ///< worker -> coordinator: serialized WorkerLedger
  kShutdown = 8,    ///< coordinator -> worker: flush and exit cleanly
  kStatsScrapeRequest = 9,  ///< admin -> worker: telemetry scrape (PROTOCOL §16)
  kStatsScrapeReply = 10,   ///< worker -> admin: ledger + counters as
                            ///< Prometheus text (never accounted)
};

enum class NackReason : std::uint8_t {
  kNone = 0,
  kPeerUnreachable = 1,  ///< relay target's connection is dead
  kTimeout = 2,          ///< relay target never acknowledged
  kBadFrame = 3,         ///< receiver rejected the frame
};

/// A decoded frame header (payload travels separately on the socket).
struct Frame {
  FrameType type = FrameType::kData;
  MessageKind kind = MessageKind::kLockAcquireRequest;
  std::uint8_t flags = 0;
  std::uint32_t src = kCoordinatorNode;
  std::uint32_t dst = kCoordinatorNode;
  std::uint64_t object = ~std::uint64_t{0};
  std::uint64_t payload_bytes = 0;
  std::uint64_t correlation = 0;
  TraceContext trace{};

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Malformed or hostile bytes on the wire.  Distinct from Error so the
/// worker can reject a frame without tearing the process down.
class WireProtocolError : public Error {
 public:
  using Error::Error;
};

/// Serialize `frame` into exactly kFrameSize bytes.
void encode_frame(const Frame& frame, std::span<std::byte, kFrameSize> out);

[[nodiscard]] std::array<std::byte, kFrameSize> encode_frame(
    const Frame& frame);

/// Parse and validate one frame header.  Throws WireProtocolError on short
/// buffers, bad magic/version, unknown frame types, out-of-range message
/// kinds, oversized payload declarations, and nonzero reserved bytes —
/// hostile input never reaches the worker's state machines.
[[nodiscard]] Frame decode_frame(std::span<const std::byte> in);

/// Convenience: the Data frame for one accounted WireMessage.
[[nodiscard]] Frame data_frame(const WireMessage& m, std::uint64_t correlation);

}  // namespace lotec::wire
