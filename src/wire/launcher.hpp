// WorkerSupervisor: spawns, kills, respawns and reaps the lotec_worker
// processes behind a distributed run.
//
// The supervisor pre-binds every worker's listen socket *before* forking
// anything and keeps its own copy of each fd for the life of the run.  Two
// properties fall out of that:
//   - no startup races: peers connect into the backlog of a socket that
//     already exists, regardless of spawn order, and
//   - crash/restart chaos works: when a worker is killed its listen fd
//     survives in the supervisor, so the respawned process resumes
//     accepting on the very same socket and peers reconnect lazily.
#pragma once

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

#include "net/wire_config.hpp"
#include "wire/socket.hpp"

namespace lotec::wire {

/// Resolve the lotec_worker executable: cfg.worker_path, then the
/// LOTEC_WORKER environment variable, then `lotec_worker` next to the
/// running executable.  Throws Error when nothing is executable.
[[nodiscard]] std::string find_worker_binary(const WireConfig& cfg);

class WorkerSupervisor {
 public:
  /// Binds all listen sockets and spawns one worker per node.
  WorkerSupervisor(const WireConfig& cfg, std::uint32_t nodes);

  /// Kills (SIGKILL) and reaps any workers still running; removes the
  /// socket directory if this supervisor created it.
  ~WorkerSupervisor();

  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  [[nodiscard]] std::uint32_t nodes() const noexcept { return nodes_; }

  /// Connect to worker `node`'s listen socket (coordinator side).
  [[nodiscard]] Fd connect_to(std::uint32_t node, Millis timeout) const;

  /// SIGKILL + reap one worker (crash injection).  No-op if already dead.
  void kill_worker(std::uint32_t node);

  /// Restart a killed worker on its original listen socket.
  void respawn_worker(std::uint32_t node);

  [[nodiscard]] bool alive(std::uint32_t node) const;

  /// Total kill_worker() + respawn_worker() calls (soak assertions).
  [[nodiscard]] std::uint64_t kills() const noexcept { return kills_; }
  [[nodiscard]] std::uint64_t respawns() const noexcept { return respawns_; }

  [[nodiscard]] const std::string& socket_dir() const noexcept {
    return socket_dir_;
  }
  [[nodiscard]] const std::vector<std::uint16_t>& ports() const noexcept {
    return ports_;
  }
  [[nodiscard]] bool tcp() const noexcept { return cfg_.tcp; }

 private:
  void spawn(std::uint32_t node);

  WireConfig cfg_;
  std::uint32_t nodes_;
  std::string worker_binary_;
  std::string socket_dir_;
  bool owns_socket_dir_ = false;
  std::vector<Fd> listen_fds_;
  std::vector<std::uint16_t> ports_;  // TCP mode only
  std::vector<pid_t> pids_;           // -1 = not running
  std::uint64_t kills_ = 0;
  std::uint64_t respawns_ = 0;
};

}  // namespace lotec::wire
