#include "wire/wire_transport.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace lotec::wire {

WireTransport::WireTransport(std::size_t num_nodes, NetworkConfig net_config,
                             WireConfig wire_config)
    : Transport(num_nodes, net_config),
      wire_(std::move(wire_config)),
      supervisor_(std::make_unique<WorkerSupervisor>(
          wire_, static_cast<std::uint32_t>(num_nodes))) {
  conns_.resize(num_nodes);
  worker_ledgers_.resize(num_nodes);
  deferred_.resize(num_nodes);
  stray_replies_.resize(num_nodes);
  for (std::uint32_t k = 0; k < num_nodes; ++k) handshake(k);
}

WireTransport::~WireTransport() {
  // Windows are RAII-closed by their opener, so nothing should be pending
  // here; if teardown happens mid-window anyway (exception unwind), drop
  // the queue silently — the shutdown below supersedes any flush.
  for (auto& v : deferred_) v.clear();
  // Graceful shutdown first so workers flush span files; the supervisor's
  // destructor SIGKILLs whatever ignored us.
  for (std::uint32_t k = 0; k < conns_.size(); ++k) {
    if (!conns_[k].valid()) continue;
    try {
      Frame f;
      f.type = FrameType::kShutdown;
      f.dst = k;
      f.correlation = ++next_correlation_;
      write_full(conns_[k], encode_frame(f));
      (void)read_reply(k, f.correlation,
                       deadline_after(Millis(wire_.ack_timeout_ms)));
    } catch (const Error&) {
      // Best effort; the supervisor cleans up.
    }
  }
}

void WireTransport::handshake(std::uint32_t node) {
  conns_[node] = supervisor_->connect_to(
      node, Millis(wire_.handshake_timeout_ms));
  Frame hello;
  hello.type = FrameType::kHello;
  hello.src = kCoordinatorNode;
  hello.dst = node;
  hello.correlation = ++next_correlation_;
  write_full(conns_[node], encode_frame(hello));
  const Frame reply =
      read_reply(node, hello.correlation,
                 deadline_after(Millis(wire_.handshake_timeout_ms)));
  if (reply.type != FrameType::kHelloAck)
    throw Error("wire: worker " + std::to_string(node) +
                " handshake failed (got frame type " +
                std::to_string(static_cast<int>(reply.type)) + ")");
}

void WireTransport::reconnect(std::uint32_t node) {
  conns_[node].reset();
  handshake(node);
}

Frame WireTransport::read_reply(std::uint32_t node, std::uint64_t correlation,
                                std::chrono::steady_clock::time_point deadline,
                                std::vector<std::byte>* payload_out) {
  const Fd& conn = conns_[node];
  for (;;) {
    std::array<std::byte, kFrameSize> header;
    read_full(conn, header, deadline);
    const Frame f = decode_frame(header);
    std::vector<std::byte> payload(f.payload_bytes);
    if (f.payload_bytes > 0) read_full(conn, payload, deadline);
    if (f.correlation == correlation &&
        (f.type == FrameType::kAck || f.type == FrameType::kNack ||
         f.type == FrameType::kHelloAck || f.type == FrameType::kStatsReply)) {
      if (payload_out != nullptr) *payload_out = std::move(payload);
      return f;
    }
    // Not ours.  An Ack/Nack belongs to an earlier deferred ship on this
    // connection — remember it for flush_deferred.  Anything else is a
    // stale reply from a timed-out attempt: skip and keep reading.
    if (f.type == FrameType::kAck || f.type == FrameType::kNack)
      stray_replies_[node].emplace(f.correlation, f.type);
  }
}

void WireTransport::ship(const WireMessage& m, std::uint32_t dst,
                         bool deferred) {
  const std::uint32_t src = m.src.value();
  Frame f = data_frame(m, ++next_correlation_);
  f.dst = dst;  // send_to_all ships one copy per destination
  if (deferred) {
    // Batched tail: write the frame and move on.  No retry cycle — there is
    // no ack to time out on here; delivery is proven when flush_deferred
    // waits out the queue tail (FIFO link, serial worker).  A torn write is
    // a hard connection failure, mapped to the same NodeUnreachable the
    // retry exhaustion path produces.
    try {
      if (!conns_[src].valid()) reconnect(src);
      write_full(conns_[src], encode_frame(f));
      if (f.payload_bytes > 0) {
        static const std::array<std::byte, 64 * 1024> zeros{};
        std::uint64_t left = f.payload_bytes;
        while (left > 0) {
          const std::size_t n = static_cast<std::size_t>(
              std::min<std::uint64_t>(left, zeros.size()));
          write_full(conns_[src],
                     std::span<const std::byte>(zeros.data(), n));
          left -= n;
        }
      }
    } catch (const SocketError&) {
      conns_[src].reset();
      ledger_complete_ = false;
      throw NodeUnreachable(m.src, NodeId(dst));
    }
    deferred_[src].push_back(
        PendingShip{m.kind, NodeId(dst), m.total_bytes(), f.correlation});
    return;
  }
  Millis timeout(wire_.ack_timeout_ms);
  for (std::uint32_t attempt = 0; attempt < wire_.max_send_attempts;
       ++attempt) {
    try {
      if (!conns_[src].valid()) reconnect(src);
      write_full(conns_[src], encode_frame(f));
      if (f.payload_bytes > 0) {
        static const std::array<std::byte, 64 * 1024> zeros{};
        std::uint64_t left = f.payload_bytes;
        while (left > 0) {
          const std::size_t n = static_cast<std::size_t>(
              std::min<std::uint64_t>(left, zeros.size()));
          write_full(conns_[src],
                     std::span<const std::byte>(zeros.data(), n));
          left -= n;
        }
      }
      const Frame reply =
          read_reply(src, f.correlation, deadline_after(timeout));
      if (reply.type == FrameType::kAck) {
        auto& counts = shipped_[static_cast<std::size_t>(m.kind)];
        counts.messages += 1;
        counts.bytes += m.total_bytes();
        return;
      }
      // Nack: the relay chain reported the destination unreachable or a
      // timeout; retry after backoff like a lost message.
    } catch (const SocketError&) {
      // Connection to worker[src] is gone; next attempt reconnects.
      conns_[src].reset();
    }
    timeout *= 2;
  }
  // The message was accounted but never physically delivered: the strict
  // batch-end ledger comparison can no longer hold.
  ledger_complete_ = false;
  throw NodeUnreachable(m.src, NodeId(dst));
}

void WireTransport::flush_deferred(std::uint32_t src) {
  auto& pending = deferred_[src];
  if (pending.empty()) return;
  auto& stray = stray_replies_[src];
  const std::uint64_t tail = pending.back().correlation;
  bool ok = true;
  if (stray.find(tail) == stray.end()) {
    // One generous wait for the queue tail; every earlier ack either gets
    // skipped into `stray` on the way or was already recorded by an
    // interleaved waiting ship.
    try {
      const Frame reply = read_reply(
          src, tail,
          deadline_after(Millis(wire_.ack_timeout_ms *
                                std::max<std::uint32_t>(
                                    1, wire_.max_send_attempts))));
      if (reply.type != FrameType::kAck) ok = false;
    } catch (const SocketError&) {
      conns_[src].reset();
      ok = false;
    }
  }
  const NodeId last_dst = pending.back().dst;
  for (const PendingShip& p : pending) {
    const auto it = stray.find(p.correlation);
    if (it != stray.end()) {
      if (it->second != FrameType::kAck) ok = false;
      stray.erase(it);
    }
  }
  if (!ok) {
    pending.clear();
    ledger_complete_ = false;
    throw NodeUnreachable(NodeId(src), last_dst);
  }
  for (const PendingShip& p : pending) {
    auto& counts = shipped_[static_cast<std::size_t>(p.kind)];
    counts.messages += 1;
    counts.bytes += p.total_bytes;
  }
  pending.clear();
}

void WireTransport::on_batch_window_end() {
  for (std::uint32_t src = 0; src < deferred_.size(); ++src)
    flush_deferred(src);
}

void WireTransport::send(const WireMessage& m) {
  // Base class: tracer tick, causal stamp, probe, fault hooks,
  // reachability, NetworkStats accounting.  Throws exactly as in-process.
  Transport::send(m);
  if (m.src == m.dst) return;  // local: no wire traffic in either mode
  // A message that joined an open batch pipelines: its frame goes out now,
  // its ack is collected when the batch window closes.
  ship(m, m.dst.value(), last_send_joined());
}

std::vector<NodeId> WireTransport::send_to_all(
    const WireMessage& m, const std::vector<NodeId>& destinations) {
  std::vector<NodeId> unreachable = Transport::send_to_all(m, destinations);
  // Ship one physical copy per destination the base class accounted as
  // reached.  (With multicast the *accounting* records one wire copy; the
  // cross-check compares shipped_ — what this method counted — against the
  // workers' delivered ledgers, so the bases differ by design and stay
  // consistent.)
  for (const NodeId dst : destinations) {
    if (dst == m.src) continue;
    bool skipped = false;
    for (const NodeId u : unreachable)
      if (u == dst) {
        skipped = true;
        break;
      }
    if (!skipped) ship(m, dst.value());
  }
  return unreachable;
}

void WireTransport::set_node_failed(NodeId node, bool failed) {
  Transport::set_node_failed(node, failed);
  const std::uint32_t k = node.value();
  if (failed) {
    if (supervisor_->alive(k)) {
      supervisor_->kill_worker(k);
      // Whatever that incarnation had delivered died with it.
      ledger_complete_ = false;
    }
    conns_[k].reset();
    // Acks owed by the dead incarnation will never arrive.
    deferred_[k].clear();
    stray_replies_[k].clear();
  } else if (!supervisor_->alive(k)) {
    supervisor_->respawn_worker(k);
    reconnect(k);
  }
}

void WireTransport::on_batch_complete() {
  // Defensive: a well-formed run has no open window here, but the ledger
  // cross-check below requires every shipped frame resolved.
  for (std::uint32_t src = 0; src < deferred_.size(); ++src)
    flush_deferred(src);
  gathered_ = WorkerLedger{};
  for (std::uint32_t k = 0; k < conns_.size(); ++k) {
    if (!supervisor_->alive(k)) {
      worker_ledgers_[k] = WorkerLedger{};
      continue;
    }
    Frame req;
    req.type = FrameType::kStatsRequest;
    req.dst = k;
    req.correlation = ++next_correlation_;
    std::vector<std::byte> payload;
    try {
      if (!conns_[k].valid()) reconnect(k);
      write_full(conns_[k], encode_frame(req));
      const Frame reply =
          read_reply(k, req.correlation,
                     deadline_after(Millis(wire_.handshake_timeout_ms)),
                     &payload);
      if (reply.type != FrameType::kStatsReply)
        throw Error("wire: worker " + std::to_string(k) +
                    " answered the stats request with frame type " +
                    std::to_string(static_cast<int>(reply.type)));
    } catch (const SocketError& e) {
      throw Error("wire: gathering stats from worker " + std::to_string(k) +
                  ": " + e.what());
    }
    worker_ledgers_[k] = parse_ledger(payload);
    gathered_ += worker_ledgers_[k];
  }
  if (!ledger_complete_) return;  // kills happened; strict check impossible
  for (std::size_t kind = 0; kind < kNumWireKinds; ++kind) {
    if (shipped_[kind] == gathered_.delivered[kind]) continue;
    throw Error(
        "wire: ledger mismatch for " +
        std::string(to_string(static_cast<MessageKind>(kind))) +
        ": coordinator shipped " + std::to_string(shipped_[kind].messages) +
        " msgs / " + std::to_string(shipped_[kind].bytes) +
        " bytes, workers delivered " +
        std::to_string(gathered_.delivered[kind].messages) + " msgs / " +
        std::to_string(gathered_.delivered[kind].bytes) + " bytes");
  }
}

}  // namespace lotec::wire
