// GlobalLockCache: the per-site half of the inter-family lock caching
// (callback locking) extension.
//
// When a root family releases and the directory agrees to retain the grant
// (GdoService::retain_release), the site parks the lock here together with
// the grant's page map and — for write-mode entries — the *deferred release
// report*: the exact version this site stamped on each page it committed
// while the release was being cached.  A later family at this site
// re-activates the lock with zero network messages (local_regrant); a
// conflicting remote request reaches the site through the directory's
// callback seam, which extracts the pending report via revoke().
//
// Versioning under deferral: the directory's per-object counter does not
// advance while releases are cached, so the site sequences its own commits
// as max(directory counter at re-grant, max_version) + 1.  The report keeps
// each page at the *latest* version this site gave it; flushing applies the
// records through PageMap::record_current (whose version guard makes stale
// records harmless) and advances the directory counter to max_version.
//
// Locking: the internal mutex is a leaf — it is taken with a GDO partition
// lock held (callback handler) and with a Node::store_mu held (capacity
// checks), and never the other way around.  The lock_cache knob requires
// the deterministic scheduler (see ClusterCore), so contention is nil.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "check/events.hpp"
#include "common/flat_map.hpp"
#include "common/ids.hpp"
#include "gdo/gdo_service.hpp"

namespace lotec {

/// One cached (idle) global lock held by this site between families.
struct CachedLock {
  LockMode mode = LockMode::kRead;
  /// Page map as of the last grant, kept current by the site across its
  /// deferred commits; the protocols' staleness test runs against this map
  /// after a local re-grant.
  PageMap map;
  /// Deferred release report: page -> exact version stamped at this site
  /// (write-mode entries only; a read-mode entry is always clean and can be
  /// discarded unilaterally).
  std::map<PageIndex, Lsn> report;
  /// Highest version this site assigned while deferring.
  Lsn max_version = 0;
  /// LRU stamp (capacity eviction), maintained by GlobalLockCache.
  std::uint64_t last_use = 0;

  [[nodiscard]] bool clean() const noexcept { return report.empty(); }
};

class GlobalLockCache {
 public:
  /// Attach cluster-wide tallies (cache.retained / cache.revoked); null
  /// handles (standalone tests) leave the cache untallied.
  void set_counters(MetricsCounter* retained, MetricsCounter* revoked) {
    retained_ = retained;
    revoked_ = revoked;
  }

  /// Attach the schedule checker's event sink (oracle 4: no two sites may
  /// simultaneously believe they hold a cached global write lock).  The
  /// cache reports its own puts/drops so every path — retention, callback
  /// revocation, capacity eviction, drain, crash wipe — is covered without
  /// the callers repeating themselves.
  void set_check(CheckSink* sink, NodeId site) {
    check_ = sink;
    site_ = site;
  }

  [[nodiscard]] std::optional<CachedLock> lookup(ObjectId obj) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(obj);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] bool contains(ObjectId obj) const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.count(obj) != 0;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  void put(ObjectId obj, CachedLock entry) {
    std::lock_guard<std::mutex> lock(mu_);
    entry.last_use = ++use_tick_;
    const LockMode mode = entry.mode;
    entries_.insert_or_assign(obj, std::move(entry));
    if (retained_ != nullptr) retained_->add();
    if (check_ != nullptr) check_->on_cache_put(site_, obj, mode);
  }

  void erase(ObjectId obj) {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.erase(obj) != 0 && check_ != nullptr)
      check_->on_cache_drop(site_, obj);
  }

  /// Directory callback: surrender the pending report; a write request
  /// invalidates the entry, a read request downgrades it (the map stays —
  /// the site's pages are still current until someone else writes).
  CachedFlush revoke(ObjectId obj, LockMode requested) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(obj);
    if (it == entries_.end()) return {};
    CachedFlush flush = extract_locked(it->second);
    if (requested == LockMode::kWrite) {
      entries_.erase(it);
      if (check_ != nullptr) check_->on_cache_drop(site_, obj);
    } else {
      it->second.mode = LockMode::kRead;
      // A downgrade re-announces the entry at its new mode; the oracle
      // models puts as insert-or-assign.
      if (check_ != nullptr) check_->on_cache_put(site_, obj, LockMode::kRead);
    }
    if (revoked_ != nullptr) revoked_->add();
    return flush;
  }

  /// Site-initiated flush (capacity eviction / end-of-batch drain): extract
  /// the pending report and drop the entry.
  CachedFlush take_flush(ObjectId obj) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(obj);
    if (it == entries_.end()) return {};
    CachedFlush flush = extract_locked(it->second);
    entries_.erase(it);
    if (check_ != nullptr) check_->on_cache_drop(site_, obj);
    return flush;
  }

  /// All cached objects, id-sorted (deterministic drain order).
  [[nodiscard]] std::vector<ObjectId> objects() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<ObjectId> out;
    out.reserve(entries_.size());
    for (const auto& [obj, e] : entries_) out.push_back(obj);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Cached objects, least recently used first (capacity eviction order).
  [[nodiscard]] std::vector<ObjectId> lru_order() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<std::uint64_t, ObjectId>> order;
    order.reserve(entries_.size());
    for (const auto& [obj, e] : entries_) order.emplace_back(e.last_use, obj);
    std::sort(order.begin(), order.end());
    std::vector<ObjectId> out;
    out.reserve(order.size());
    for (const auto& [tick, obj] : order) out.push_back(obj);
    return out;
  }

  /// Crash wipe: the site's memory is gone, cached locks included (the
  /// directory reclaims the matching markers by lease).
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    if (check_ != nullptr)
      for (const auto& [obj, e] : entries_) check_->on_cache_drop(site_, obj);
    entries_.clear();
  }

 private:
  static CachedFlush extract_locked(CachedLock& e) {
    CachedFlush flush;
    flush.records.assign(e.report.begin(), e.report.end());
    flush.advance_to = e.max_version;
    e.report.clear();
    e.max_version = 0;
    return flush;
  }

  mutable std::mutex mu_;
  // Hot lookup on every global-lock acquisition; iterations either sort
  // (objects, lru_order) or fan out commutative per-object drops (clear).
  FlatMap<ObjectId, CachedLock> entries_;
  std::uint64_t use_tick_ = 0;
  MetricsCounter* retained_ = nullptr;
  MetricsCounter* revoked_ = nullptr;
  CheckSink* check_ = nullptr;
  NodeId site_{};
};

}  // namespace lotec
