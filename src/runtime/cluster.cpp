#include "runtime/cluster.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/logging.hpp"
#include "gdo/waits_for.hpp"

namespace lotec {

namespace {
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

Cluster::Cluster(ClusterConfig config) : core_(config) {}

ObjectId Cluster::create_object(ClassId cls, NodeId where) {
  const ClassDef& def = core_.registry.get(cls);
  NodeId creator = where;
  if (!creator.valid())
    creator = NodeId(placement_rr_++ %
                     static_cast<std::uint32_t>(core_.nodes.size()));
  if (creator.value() >= core_.nodes.size())
    throw UsageError("create_object: node id out of range");

  ObjectId id;
  {
    std::lock_guard<std::mutex> lock(core_.obj_mu);
    id = ObjectId(core_.next_object_id++);
    ProtocolKind protocol = core_.config.protocol;
    if (def.protocol_override()) {
      if (*def.protocol_override() >= kNumProtocols)
        throw UsageError("class protocol override out of range");
      protocol = static_cast<ProtocolKind>(*def.protocol_override());
    }
    core_.objects[id] =
        ObjectMeta{cls, creator, def.layout().num_pages(), protocol};
  }
  {
    Node& node = core_.node(creator);
    std::lock_guard<std::mutex> lock(node.store_mu);
    node.store.create(id, def.layout().num_pages(), core_.config.page_size,
                      /*materialize=*/true);
  }
  core_.gdo.register_object(id, def.layout().num_pages(), creator);
  if (core_.fault != nullptr)
    core_.fault->note_created(creator, id, def.layout().num_pages());
  return id;
}

std::vector<TxnResult> Cluster::execute(std::vector<RootRequest> requests) {
  if (requests.empty()) return {};
  // Read-intent validation: FamilyKind is a first-class input, checked
  // whether or not the snapshot path (mv_read) is on — a declared-read-only
  // family whose root method writes, or whose accesses the analysis could
  // not bound, is a submission error, not a runtime surprise.
  for (const RootRequest& req : requests) {
    if (req.kind != FamilyKind::kReadOnly) continue;
    const ObjectMeta meta = core_.meta_of(req.object);
    const ClassDef& cls = core_.registry.get(meta.cls);
    const MethodDef& m = cls.method(req.method);
    if (!m.writes.empty() || m.may_access_undeclared)
      throw UsageError(
          "read-only family root '" + m.name + "' " +
          (m.writes.empty() ? "may access undeclared attributes"
                            : "declares attribute writes") +
          " (kReadOnly requires a bounded read-only access analysis)");
  }
  ++execute_count_;

  std::unique_ptr<Scheduler> scheduler;
  if (core_.config.scheduler == SchedulerMode::kDeterministic) {
    TokenScheduler::Config sc;
    sc.seed = mix64(core_.config.seed ^ execute_count_);
    sc.max_active = core_.config.max_active_families;
    sc.picker = core_.config.schedule_picker;
    scheduler = std::make_unique<TokenScheduler>(sc);
  } else {
    ConcurrentScheduler::Config sc;
    sc.max_active = core_.config.max_active_families;
    scheduler = std::make_unique<ConcurrentScheduler>(sc);
  }
  core_.scheduler = scheduler.get();
  core_.gdo.set_grant_delivery(
      [this](const Grant& g) { core_.deliver_grant(g); });

  std::vector<std::unique_ptr<FamilyRunner>> runners;
  runners.reserve(requests.size());
  {
    std::lock_guard<std::mutex> lock(core_.fam_mu);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      RootRequest& req = requests[i];
      NodeId node = req.node;
      if (!node.valid())
        node = NodeId(static_cast<std::uint32_t>(
            (next_family_ + i) % core_.nodes.size()));
      const FamilyId family(next_family_ + i);
      runners.push_back(std::make_unique<FamilyRunner>(
          core_, i, family, node, std::move(req)));
      core_.runners[family] = runners.back().get();
    }
    next_family_ += requests.size();
  }

  std::vector<std::function<void()>> bodies;
  bodies.reserve(runners.size());
  for (auto& r : runners)
    bodies.emplace_back([runner = r.get()] { runner->run(); });

  // Victim policy: youngest member of the cycle, EXCEPT that repeat
  // victimization rotates through the cycle (least-victimized member
  // first).  A pure youngest-first policy can livelock under deterministic
  // scheduling: the young victim restarts, re-forms the identical cycle and
  // is sacrificed forever while the cycle's core never progresses.
  auto victim_counts = std::make_shared<std::map<FamilyId, int>>();
  const auto on_stall = [this, victim_counts, &runners]() -> std::size_t {
    const auto cycle = DeadlockDetector::detect(core_.gdo);
    if (!cycle) {
      // No lock cycle explains the stall.  With fault injection active the
      // usual cause is a crash: blocked families wait on grants a dead node
      // will never send (or their own site died under them).  Victimize the
      // lowest-index blocked runner; its retry path applies the pending
      // crash work and re-routes around the failure.
      if (core_.fault != nullptr)
        for (const auto& r : runners)
          if (r->blocked()) return r->index();
      return Scheduler::kNoVictim;
    }
    FamilyId victim = cycle->victim;
    int best = victim_counts->count(victim) ? (*victim_counts)[victim] : 0;
    for (const FamilyId f : cycle->families) {
      const int c = victim_counts->count(f) ? (*victim_counts)[f] : 0;
      if (c < best || (c == best && f > victim)) {
        best = c;
        victim = f;
      }
    }
    ++(*victim_counts)[victim];
    if (Logger::instance().enabled(LogLevel::kDebug)) {
      std::ostringstream oss;
      for (const FamilyId f : cycle->families) oss << f << ' ';
      LOTEC_DEBUG("deadlock", "cycle [" << oss.str() << "] victim "
                                        << victim);
    }
    std::lock_guard<std::mutex> lock(core_.fam_mu);
    const auto it = core_.runners.find(victim);
    if (it == core_.runners.end()) return Scheduler::kNoVictim;
    return it->second->index();
  };

  try {
    scheduler->run(std::move(bodies), on_stall);
  } catch (...) {
    core_.gdo.set_grant_delivery(nullptr);
    core_.scheduler = nullptr;
    {
      std::lock_guard<std::mutex> lock(core_.fam_mu);
      core_.runners.clear();
    }
    throw;
  }
  core_.gdo.set_grant_delivery(nullptr);
  core_.scheduler = nullptr;
  {
    std::lock_guard<std::mutex> lock(core_.fam_mu);
    core_.runners.clear();
  }

  // End-of-batch recovery first: restart every node still down so the
  // cluster is whole for the lock-cache drain and validation.
  if (core_.fault != nullptr) core_.fault->finalize();
  // Elastic directory: with the cluster whole again, finish every queued
  // shard migration so the batch ends with each entry at its ring owner
  // (validate_quiescent checks residency).
  core_.gdo.drain_migrations();

  if (core_.config.lock_cache) {
    // Drain the lock caches: flush every deferred report and return the
    // cached locks to the directory, so the batch ends quiescent (no cached
    // holders linger; validation and paper-figure accounting see a fully
    // published page map).  Crashed sites lost their caches in the wipe;
    // their directory-side markers fall to the reclamation sweep below.
    for (auto& site : core_.nodes) {
      for (const ObjectId obj : site->lock_cache.objects()) {
        const auto entry = site->lock_cache.lookup(obj);
        if (!entry) continue;
        const CachedFlush flush = site->lock_cache.take_flush(obj);
        try {
          if (entry->mode == LockMode::kRead)
            core_.gdo.forget_cached(obj, site->id);
          else
            core_.gdo.flush_cached(obj, site->id, flush.records,
                                   flush.advance_to);
        } catch (const Error&) {
          // Chain unreachable: the sweep below reclaims the marker.
        }
      }
    }
  }

  if (core_.fault != nullptr) {
    // Reclaim directory locks (and cached-holder markers) left behind by
    // crashed family incarnations, leases notwithstanding.
    core_.gdo.reclaim_crashed(/*ignore_leases=*/true);
  }

  for (const auto& r : runners)
    if (r->error()) std::rethrow_exception(r->error());

  // Batch drained and recovered: let the transport settle.  The wire
  // backend gathers every worker's delivery ledger here and cross-checks
  // it against the shipped counters (the in-process backend is a no-op).
  core_.transport.on_batch_complete();

  std::vector<TxnResult> results;
  results.reserve(runners.size());
  for (const auto& r : runners) results.push_back(r->result());
  return results;
}

TxnResult Cluster::run_root(ObjectId object, const std::string& method,
                            NodeId node) {
  RootRequest req;
  req.object = object;
  req.method = method_id(object, method);
  req.node = node;
  auto results = execute({std::move(req)});
  return results.front();
}

void Cluster::peek_page(ObjectId object, PageIndex page,
                        std::span<std::byte> out) const {
  if (out.size() != core_.config.page_size)
    throw UsageError("peek_page: buffer must be exactly one page");
  const GdoEntry entry = core_.gdo.snapshot(object);
  const PageLocation& loc = entry.page_map.at(page);
  Node& owner = const_cast<ClusterCore&>(core_).node(loc.node);
  std::lock_guard<std::mutex> lock(owner.store_mu);
  const Page& p = owner.store.get(object).page(page);
  std::memcpy(out.data(), p.data.data(), out.size());
}

void Cluster::restore_page(ObjectId object, PageIndex page,
                           std::span<const std::byte> in) {
  if (in.size() != core_.config.page_size)
    throw UsageError("restore_page: buffer must be exactly one page");
  const ObjectMeta meta = core_.meta_of(object);
  const GdoEntry entry = core_.gdo.snapshot(object);
  const PageLocation& loc = entry.page_map.at(page);
  if (loc.node != meta.creator || loc.version != 0)
    throw UsageError(
        "restore_page: object has already been modified (restore requires a "
        "fresh cluster)");
  Node& creator = core_.node(meta.creator);
  std::lock_guard<std::mutex> lock(creator.store_mu);
  creator.store.get(object).restore_bytes(
      std::uint64_t{page.value()} * core_.config.page_size, in);
}

void Cluster::peek_raw(ObjectId object, std::uint64_t offset,
                       std::span<std::byte> out) const {
  const GdoEntry entry = core_.gdo.snapshot(object);
  const std::uint32_t page_size = core_.config.page_size;
  std::uint64_t pos = offset;
  std::size_t done = 0;
  while (done < out.size()) {
    const PageIndex p(static_cast<std::uint32_t>(pos / page_size));
    const PageLocation& loc = entry.page_map.at(p);
    Node& owner = const_cast<ClusterCore&>(core_).node(loc.node);
    std::lock_guard<std::mutex> lock(owner.store_mu);
    const ObjectImage& img = owner.store.get(object);
    const std::uint64_t in_page = pos % page_size;
    const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
        page_size - in_page, out.size() - done));
    img.read_bytes(pos, out.subspan(done, n));
    done += n;
    pos += n;
  }
}

}  // namespace lotec
