// Cluster: the public API of the LOTEC distributed object runtime.
//
// A Cluster is an in-process emulation of the paper's target system — a set
// of nodes with private memories joined by an accounted message transport,
// a partitioned/replicated GDO, and a DSM consistency protocol (COTEC /
// OTEC / LOTEC / RC) driven by nested object two-phase locking.
//
// Typical use:
//
//   ClusterConfig cfg;
//   cfg.nodes = 4;
//   cfg.protocol = ProtocolKind::kLotec;
//   Cluster cluster(cfg);
//
//   ClassId account = cluster.define_class(
//       ClassBuilder("Account", cfg.page_size)
//           .attribute("balance", 8)
//           .method("deposit", {"balance"}, {"balance"},
//                   [](MethodContext& ctx) {
//                     ctx.set<std::int64_t>("balance",
//                         ctx.get<std::int64_t>("balance") + 100);
//                   }));
//
//   ObjectId a = cluster.create_object(account);
//   TxnResult r = cluster.run_root(a, "deposit");
//
// Every run_root/execute call runs whole transaction families — locking,
// page transfer and undo are automatic; user code never writes a
// synchronization operation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/family_runner.hpp"

namespace lotec {

/// Read-mostly introspection facade returned by Cluster::observe(): one
/// handle bundling the network stats, directory, fault engine and the
/// observability layer, so examples and tools stop collecting views through
/// four separate getters.  Cheap to construct (wraps a ClusterCore&); valid
/// as long as the Cluster is.
class ClusterObservation {
 public:
  explicit ClusterObservation(ClusterCore& core) noexcept : core_(core) {}

  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return core_.config;
  }
  [[nodiscard]] NetworkStats& stats() noexcept {
    return core_.transport.stats();
  }
  [[nodiscard]] GdoService& gdo() noexcept { return core_.gdo; }
  [[nodiscard]] Transport& transport() noexcept { return core_.transport; }
  /// Null when the fault engine is not configured.
  [[nodiscard]] FaultEngine* fault_engine() noexcept {
    return core_.fault.get();
  }
  [[nodiscard]] MetricsRegistry& metrics() noexcept {
    return core_.obs.metrics;
  }
  [[nodiscard]] SpanTracer& tracer() noexcept { return core_.obs.tracer; }
  /// All spans recorded so far (empty unless config().obs.trace_spans).
  [[nodiscard]] std::vector<SpanRecord> spans() const {
    return core_.obs.tracer.spans();
  }
  /// All messages recorded so far (empty unless config().obs.trace_spans).
  [[nodiscard]] std::vector<MessageRecord> messages() const {
    return core_.obs.tracer.messages();
  }
  /// The always-on flight recorder (null only when cfg.obs disabled it).
  [[nodiscard]] FlightRecorder* flight_recorder() noexcept {
    return core_.obs.recorder.get();
  }
  /// Null unless config().obs.timeseries (PROTOCOL.md §16).
  [[nodiscard]] TimeseriesCollector* timeseries() noexcept {
    return core_.obs.timeseries.get();
  }
  /// Pages evicted under cache pressure across all nodes.
  [[nodiscard]] std::uint64_t evicted_pages() const {
    return core_.total_evicted_pages();
  }

 private:
  ClusterCore& core_;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- schema & objects ----------------------------------------------------

  /// Register a class; the schema is replicated to all nodes.
  ClassId define_class(const ClassBuilder& builder) {
    return core_.registry.register_class(builder);
  }

  [[nodiscard]] const ClassDef& class_def(ClassId id) const {
    return core_.registry.get(id);
  }
  [[nodiscard]] ClassId find_class(const std::string& name) const {
    return core_.registry.find(name);
  }

  /// Create a shared object of class `cls` whose pages initially live
  /// (zero-filled) at `where` (default: round-robin placement).
  ObjectId create_object(ClassId cls, NodeId where = NodeId{});

  [[nodiscard]] ObjectMeta meta_of(ObjectId id) const {
    return core_.meta_of(id);
  }
  [[nodiscard]] MethodId method_id(ObjectId object,
                                   const std::string& method) const {
    return core_.registry.get(core_.meta_of(object).cls).find_method(method);
  }

  // --- execution -------------------------------------------------------------

  /// Execute a batch of root transactions (one family each) under the
  /// configured scheduler.  Results are positionally aligned with requests.
  std::vector<TxnResult> execute(std::vector<RootRequest> requests);

  /// Convenience: run one root transaction to completion.
  TxnResult run_root(ObjectId object, const std::string& method,
                     NodeId node = NodeId{});

  // --- oracle access (tests / examples; NOT charged to the network) --------

  /// Read an attribute's newest committed value by consulting the GDO page
  /// map directly.  Only meaningful while no transactions are running.
  template <PlainValue T>
  [[nodiscard]] T peek(ObjectId object, const std::string& attr) const {
    const ClassDef& cls = core_.registry.get(core_.meta_of(object).cls);
    const AttrId a = cls.layout().find(attr);
    std::vector<std::byte> buf(sizeof(T));
    peek_raw(object, cls.layout().offset_of(a), buf);
    return decode_value<T>(buf);
  }

  [[nodiscard]] std::string peek_string(ObjectId object,
                                        const std::string& attr) const {
    const ClassDef& cls = core_.registry.get(core_.meta_of(object).cls);
    const AttrId a = cls.layout().find(attr);
    std::vector<std::byte> buf(cls.layout().attribute(a).size_bytes);
    peek_raw(object, cls.layout().offset_of(a), buf);
    return decode_string(buf);
  }

  /// Read the newest committed content of one whole page (gathered from the
  /// owning site per the GDO page map).  Snapshot/persistence support; only
  /// meaningful while quiescent.
  void peek_page(ObjectId object, PageIndex page,
                 std::span<std::byte> out) const;

  /// Overwrite one page of a freshly created object (snapshot restore).
  /// The page must still reside, unmodified (version 0), at its creating
  /// site — i.e. no transaction has touched the object yet.
  void restore_page(ObjectId object, PageIndex page,
                    std::span<const std::byte> in);

  // --- introspection ---------------------------------------------------------

  /// The unified introspection facade (stats / gdo / fault engine / metrics
  /// / spans); prefer this over the individual getters below, which are
  /// kept for existing call sites.
  [[nodiscard]] ClusterObservation observe() noexcept {
    return ClusterObservation(core_);
  }

  [[nodiscard]] const ClusterConfig& config() const noexcept {
    return core_.config;
  }
  [[nodiscard]] NetworkStats& stats() noexcept {
    return core_.transport.stats();
  }
  [[nodiscard]] const NetworkStats& stats() const noexcept {
    return core_.transport.stats();
  }
  [[nodiscard]] GdoService& gdo() noexcept { return core_.gdo; }
  [[nodiscard]] Transport& transport() noexcept { return core_.transport; }
  [[nodiscard]] Node& node(NodeId id) { return core_.node(id); }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return core_.nodes.size();
  }
  /// Pages evicted under cache pressure across all nodes.
  [[nodiscard]] std::uint64_t total_evicted_pages() const {
    return core_.total_evicted_pages();
  }
  /// The fault engine, when cfg.fault is non-empty (else nullptr).
  [[nodiscard]] FaultEngine* fault_engine() noexcept {
    return core_.fault.get();
  }
  [[nodiscard]] const FaultEngine* fault_engine() const noexcept {
    return core_.fault.get();
  }

 private:
  /// Gather `out.size()` bytes of `object` starting at `offset` from the
  /// sites the page map says hold the newest copies.
  void peek_raw(ObjectId object, std::uint64_t offset,
                std::span<std::byte> out) const;

  ClusterCore core_;
  std::uint64_t next_family_ = 1;
  std::uint64_t execute_count_ = 0;
  std::uint32_t placement_rr_ = 0;
};

}  // namespace lotec
