// FamilyRunner: executes one transaction family at its site, driving the
// whole protocol stack — nested O2PL (local + global), page transfer per
// the configured consistency protocol, undo, commit/abort processing and
// deadlock-victim restart.
//
// MethodContext is the object a method body sees: typed attribute access on
// the target object (with automatic locking already done by the runner,
// freshness checks, undo capture and LOTEC demand fetching) plus nested
// invocation of further methods, each of which becomes a sub-transaction.
#pragma once

#include <map>
#include <optional>
#include <span>
#include <utility>

#include "common/arena.hpp"
#include "common/flat_map.hpp"
#include "method/value.hpp"
#include "runtime/core.hpp"
#include "txn/family.hpp"

namespace lotec {

class MethodContext;

/// Internal control flow (mv_read): a snapshot attempt could not resolve a
/// page version under its stamp (the owner site no longer retains it, e.g.
/// after a capacity eviction raced the map lookup).  The runner retries the
/// attempt with a fresh stamp, under which the newest versions are always
/// resolvable.
class SnapshotUnavailableError : public Error {
 public:
  explicit SnapshotUnavailableError(const std::string& what) : Error(what) {}
};

class FamilyRunner {
 public:
  FamilyRunner(ClusterCore& core, std::size_t index, FamilyId family,
               NodeId node, RootRequest request);

  /// Scheduler body: run the root transaction to completion, retrying on
  /// deadlock victimization.  Never throws.
  void run();

  [[nodiscard]] const TxnResult& result() const noexcept { return result_; }
  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] FamilyId family_id() const noexcept { return family_.id(); }

  /// Programming error (e.g. precluded mutual recursion, undeclared
  /// attribute access) that aborted this family; rethrown by
  /// Cluster::execute after the batch drains.
  [[nodiscard]] std::exception_ptr error() const noexcept { return error_; }

  /// Wakeup delivery (called from another family's thread / the GDO path).
  void deliver(Grant grant) { pending_grant_ = std::move(grant); }

  /// Is this runner parked on a queued global lock request?  Used by the
  /// stall handler to pick a fault victim when no deadlock cycle explains a
  /// stall (e.g. the lock holder's node crashed).
  [[nodiscard]] bool blocked() const noexcept { return blocked_on_.valid(); }

  /// Is the current attempt running on the snapshot-isolated read path
  /// (mv_read on + declared read-only family)?
  [[nodiscard]] bool snapshot_active() const noexcept {
    return snapshot_active_;
  }

 private:
  friend class MethodContext;

  /// Execute one invocation as a [sub-]transaction; true on [pre-]commit,
  /// false if the transaction aborted (TxnAbort).  DeadlockVictimError
  /// propagates to run().
  bool run_invocation(Transaction* parent, ObjectId object, MethodId method);

  /// Acquire the object's lock for `txn` (Algorithm 4.1 entry point) and
  /// make the predicted pages resident per the consistency protocol.
  void acquire_for(const Transaction& txn, ObjectId object,
                   const AccessSummary& summary);

  /// Optimistic pre-acquisition of the hinted locks/pages (Section 5.1
  /// extension), pipelined as one round-trip batch.
  void run_prefetch(const Transaction& root);

  /// Lock-cache fast path: if this site holds a cached (idle) global lock
  /// on `object` in a mode covering `mode`, re-activate it for `txn` with
  /// zero network messages.  Returns true when the grant happened (lock
  /// table, page map and pins set up exactly as after a global grant).
  bool try_cache_regrant(const Transaction& txn, ObjectId object,
                         LockMode mode, bool prefetch);

  /// Lock-cache release path: try to park the family's lock on `object` at
  /// this site (GdoService::retain_release) instead of releasing it.  On
  /// success the commit's version stamping and page report are deferred
  /// into the site cache entry.  Returns false when retention was refused
  /// (caller releases normally).
  bool try_retain(ObjectId object, bool commit);

  /// Build the ReleaseItem for one object, folding in any deferred report
  /// this site still carries for it.
  ReleaseItem make_release_item(ObjectId object, bool commit);

  /// Fetch `pages` of `object` from the sites the cached page map names,
  /// grouped per source site.  Updates the cached map to point here.
  void fetch_pages(ObjectId object, ObjectImage& image, PageSet pages,
                   bool demand);

  /// Demand-side freshness guarantee for an attribute access (Section 4's
  /// "if additional parts turn out to be needed, these can be fetched on
  /// demand").
  void ensure_fresh(ObjectId object, const PageSet& pages);

  // --- snapshot read path (mv_read) ---------------------------------------

  /// Take the attempt's snapshot stamp (newest published commit tick) and
  /// register it so version-ring GC fences on it.
  void begin_snapshot_attempt();

  /// Drop the attempt's snapshot pins and stamp registration.  Idempotent;
  /// called on every attempt exit (commit, retry, error).
  void end_snapshot_attempt();

  /// Lock-free "acquisition" of `object` for the snapshot path: make the
  /// node's snapshot map for the object at least as new as our stamp
  /// (refreshing via GdoService::snapshot_lookup when not), ensure a local
  /// image exists and pin it against eviction.  No lock-table or directory
  /// lock state is touched.
  void snapshot_acquire(ObjectId object);

  /// Resolve every page of `pages` to its newest committed version at or
  /// below the attempt stamp — fetching remote versions from the owning
  /// sites into the local ring as needed — and copy the attribute bytes at
  /// `offset` out of the resolved views.  Emits on_snapshot_read per page.
  void snapshot_read_bytes(Transaction& txn, ObjectId object,
                           const PageSet& pages, std::uint64_t offset,
                           std::span<std::byte> out);

  /// Fetch the newest-<=-stamp versions of `missing` from the sites the
  /// snapshot map names, grouped per source, adopting them into the local
  /// version ring.  Throws SnapshotUnavailableError when a named owner can
  /// no longer produce an admissible version.
  void snapshot_fetch(ObjectId object, const PageSet& missing);

  /// Root commit: Algorithm 4.3 "root transaction commits" + 4.4, then
  /// page-version stamping and (RC) eager pushes.
  void commit_root(Transaction& root);

  /// Sub-transaction abort (family continues): undo + rule 4 disposition.
  void abort_subtree(Transaction& txn);

  /// Whole-family abort (root abort or deadlock victim).
  void abort_family(AbortReason reason);

  /// TEST MUTATION (ClusterConfig::test_mutations.break_retention): at
  /// sub-transaction pre-commit, instead of retaining the child's locks at
  /// the parent (rule 3), treat them like an abort's rule-4 disposition and
  /// release the subtree-exclusive ones to other families — with the
  /// child's uncommitted writes stamped as if committed.  Exists solely so
  /// the schedule checker can demonstrate it catches broken retention.
  void broken_retention_release(Transaction& txn);

  /// Release every object the family holds.  `commit` selects dirty/current
  /// reporting vs "no dirty page info".
  void release_all(bool commit);

  /// RC extension: eager push of committed pages to all caching sites.
  void push_updates(ObjectId object,
                    const std::vector<std::pair<PageIndex, Page>>& pages);

  // --- fault recovery -----------------------------------------------------

  /// Did this family's own site crash since the current attempt started?
  [[nodiscard]] bool crashed_since_attempt() const;

  /// Apply pending crash/restart work and, if our own site died under us,
  /// unwind the attempt (throws NodeCrashedError).  Called at invocation
  /// entry and before attribute accesses — the points where a method body
  /// would observe wiped memory.
  void fault_checkpoint();

  /// Crash recovery: the family's site lost its memory, so there is nothing
  /// to undo or release locally — drop all local bookkeeping without
  /// generating release traffic (the GDO reclaims our locks by lease).
  void discard_local_state();

  /// Our execution site is down at attempt start: move the family to the
  /// first reachable node.  False if every node is unreachable.
  bool relocate_family();

  /// Handle a crash of our own site mid-attempt.  True = retry the loop.
  bool crash_retry(int attempts, bool was_committing);

  /// Handle a transient remote failure (unreachable peer / dropped
  /// message): abort the family and retry.  True = retry the loop.
  bool transient_retry(int attempts);

  /// Deterministic backoff: yield `attempts` (capped) token slots.
  void backoff(int attempts);

  /// Pin `object` at our site, remembering the site's wipe count: a crash
  /// wipe clears the whole pin table, so only pins that survived every wipe
  /// may later be returned.  (The wipe count, not the crash epoch — the
  /// epoch flips the instant a crash fires, but the wipe lands later, and a
  /// pin taken in between dies in the wipe despite its fresh epoch.)
  /// Caller holds store_mu.
  void pin_here(Node& site, ObjectId object);

  /// Return our pin on `object` unless a wipe since pin_here cleared it
  /// (unpinning then would throw or steal another family's refcount).
  /// Caller holds store_mu.
  void unpin_here(Node& site, ObjectId object);

  [[nodiscard]] ObjectImage& local_image(ObjectId object);
  [[nodiscard]] std::function<ObjectImage&(ObjectId)> undo_resolver();

  /// The schedule checker's event sink (nullptr when checking is off; every
  /// emission site guards on it, so the disabled cost is a pointer test).
  [[nodiscard]] CheckSink* check() const noexcept {
    return core_.config.check_sink;
  }

  ClusterCore& core_;
  std::size_t index_;
  Family family_;
  NodeId node_;
  RootRequest request_;
  Rng rng_{0};

  Transaction* current_ = nullptr;
  /// Object whose global lock this family is blocked on (for waiter
  /// cancellation on victimization).
  ObjectId blocked_on_{};
  std::optional<Grant> pending_grant_;
  /// Page maps received with global grants, kept current as pages arrive.
  FlatMap<ObjectId, PageMap> object_maps_;
  /// Attempt-scoped bump arena for transient scratch (page-gather grouping
  /// buffers); reset wholesale when the next attempt starts.
  Arena scratch_;
  /// Site wipe count at the time each currently-held pin was taken.
  /// (Iterated only to unpin each entry — order-insensitive.)
  FlatMap<ObjectId, std::uint64_t> pin_epochs_;
  /// Inside run_prefetch: suppress per-operation round-trip counting (the
  /// batch is modeled as one pipelined round trip).
  bool prefetch_batch_ = false;
  AbortReason last_abort_reason_ = AbortReason::kUser;
  std::exception_ptr error_;
  /// True from the first root-commit action until release completes; a
  /// crash inside this window leaves a partially committed family that must
  /// not be retried (its released objects already expose the new state).
  bool committing_ = false;
  /// Our site's crash epoch at the start of the current attempt.
  std::uint64_t crash_epoch_ = 0;

  /// mv_read + declared read-only: this family runs on the snapshot path.
  bool snapshot_mode_ = false;
  /// A snapshot attempt is live (stamp registered, pins held).
  bool snapshot_active_ = false;
  /// The attempt's stamp: reads resolve to the newest version <= this.
  std::uint64_t snapshot_stamp_ = 0;
  /// Objects snapshot-pinned at our site this attempt (doubles as the
  /// "already prepared" set — families touch few objects, linear scan).
  std::vector<ObjectId> snapshot_objects_;
  /// (object, page) -> the version this attempt's snapshot MUST observe
  /// (newest publication at or below the stamp), resolved from the snapshot
  /// map or the owning site's ring; every read verifies against it.
  std::map<std::pair<std::uint64_t, std::uint32_t>, Lsn> snapshot_versions_;

  TxnResult result_;
};

/// The interface a method body programs against.  Automatic synchronization
/// is the point: by the time the body runs, the runner has acquired the
/// object's lock and transferred the protocol's page set; every attribute
/// access below re-checks freshness and captures undo.
class MethodContext {
 public:
  MethodContext(FamilyRunner& runner, Transaction& txn, const ClassDef& cls,
                const MethodDef& method)
      : runner_(runner), txn_(txn), cls_(cls), method_(method) {}

  // --- typed attribute access on the target object -----------------------

  template <PlainValue T>
  [[nodiscard]] T get(const std::string& attr) {
    return get<T>(cls_.layout().find(attr));
  }

  template <PlainValue T>
  [[nodiscard]] T get(AttrId attr) {
    std::vector<std::byte> buf(sizeof(T));
    read_raw(attr, buf);
    return decode_value<T>(buf);
  }

  template <PlainValue T>
  void set(const std::string& attr, const T& value) {
    set<T>(cls_.layout().find(attr), value);
  }

  template <PlainValue T>
  void set(AttrId attr, const T& value) {
    std::vector<std::byte> buf(sizeof(T));
    encode_value(std::span<std::byte>(buf), value);
    write_raw(attr, buf);
  }

  [[nodiscard]] std::string get_string(const std::string& attr) {
    const AttrId a = cls_.layout().find(attr);
    std::vector<std::byte> buf(cls_.layout().attribute(a).size_bytes);
    read_raw(a, buf);
    return decode_string(buf);
  }

  void set_string(const std::string& attr, const std::string& value) {
    const AttrId a = cls_.layout().find(attr);
    std::vector<std::byte> buf(cls_.layout().attribute(a).size_bytes);
    encode_string(buf, value);
    write_raw(a, buf);
  }

  /// Read the raw bytes of an attribute (out.size() <= attribute size).
  void read_raw(AttrId attr, std::span<std::byte> out);

  /// Overwrite the leading bytes of an attribute.
  void write_raw(AttrId attr, std::span<const std::byte> in);

  // --- nested invocation --------------------------------------------------

  /// Invoke `method` on another shared object as a sub-transaction.
  /// Returns false if the sub-transaction aborted (its effects are undone
  /// and, per rule 4, its unretained locks released); the caller may retry
  /// or abort itself.
  bool invoke(ObjectId object, const std::string& method);
  bool invoke(ObjectId object, MethodId method);

  // --- control -------------------------------------------------------------

  /// Abort the current [sub-]transaction.
  [[noreturn]] void abort() { throw TxnAbort(AbortReason::kUser); }

  /// Abort attributed to injected failure (workload generator use).
  [[noreturn]] void fail_injected() { throw TxnAbort(AbortReason::kInjected); }

  [[nodiscard]] const TxnId& txn() const noexcept { return txn_.id(); }
  [[nodiscard]] ObjectId target() const noexcept { return txn_.target(); }
  [[nodiscard]] std::size_t depth() const noexcept { return txn_.depth(); }
  [[nodiscard]] NodeId node() const noexcept { return runner_.node_; }
  [[nodiscard]] const ClassDef& cls() const noexcept { return cls_; }

  /// Deterministic per-family random stream for workload bodies.
  [[nodiscard]] Rng& rng() noexcept { return runner_.rng_; }

  /// The RootRequest::user_data payload of this family (nullptr if none).
  [[nodiscard]] const void* user_data() const noexcept {
    return runner_.request_.user_data.get();
  }

 private:
  /// Enforce the declared access sets (the compiler's analysis must cover
  /// every access) and return the attribute's pages.
  PageSet check_access(AttrId attr, bool write) const;

  FamilyRunner& runner_;
  Transaction& txn_;
  const ClassDef& cls_;
  const MethodDef& method_;
};

}  // namespace lotec
