// ClusterCore: the shared state of a cluster, bundled so the family
// executor does not depend on the public Cluster facade.
#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <vector>

#include "check/events.hpp"
#include "common/flat_map.hpp"
#include "fault/fault_engine.hpp"
#include "gdo/gdo_service.hpp"
#include "method/registry.hpp"
#include "net/transport.hpp"
#include "obs/observability.hpp"
#include "obs/stats_macros.hpp"
#include "protocol/protocol.hpp"
#include "runtime/config.hpp"
#include "runtime/node.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/snapshot_registry.hpp"

namespace lotec {

/// Placement and schema of one shared object.
struct ObjectMeta {
  ClassId cls{};
  NodeId creator{};
  std::size_t num_pages = 0;
  /// Resolved consistency protocol (class override or cluster default) —
  /// Section 6's per-class protocol extension.
  ProtocolKind protocol = ProtocolKind::kLotec;
};

class FamilyRunner;

/// Build the transport backend for `cfg`: the in-process accounting
/// Transport by default, or the cross-process WireTransport (src/wire)
/// when cfg.wire.enabled spawns one worker process per node.  Defined in
/// transport_factory.cpp so this header stays socket-free.
[[nodiscard]] std::unique_ptr<Transport> make_cluster_transport(
    const ClusterConfig& cfg);

/// Registry handles the family runners bump on their hot paths, resolved
/// once at cluster construction (a runner never touches the name map).
// clang-format off
#define LOTEC_CORE_COUNTERS(COUNTER)                      \
  COUNTER(commits, "txn.commits")                         \
  COUNTER(deadlock_retries, "txn.deadlock_retries")       \
  COUNTER(fault_retries, "txn.fault_retries")             \
  COUNTER(demand_fetches, "page.demand_fetches")          \
  COUNTER(pages_fetched, "page.fetched")                  \
  COUNTER(delta_pages, "page.delta")                      \
  COUNTER(remote_round_trips, "net.round_trips")          \
  COUNTER(page_evictions, "page.evicted")                 \
  COUNTER(local_lock_grants, "lock.local_grants")         \
  COUNTER(snapshot_reads, "snapshot.reads")               \
  COUNTER(snapshot_map_refreshes, "snapshot.map_refreshes") \
  COUNTER(snapshot_fetches, "snapshot.fetches")           \
  COUNTER(snapshot_local_hits, "snapshot.local_hits")     \
  COUNTER(snapshot_retries, "snapshot.retries")
// clang-format on
LOTEC_DEFINE_STATS_STRUCT(CoreCounters, LOTEC_CORE_COUNTERS);

struct ClusterCore {
  explicit ClusterCore(const ClusterConfig& cfg)
      // validate() before any member sees the config: an incoherent config
      // must produce its UsageError, not whatever a member ctor does with
      // nonsense values.
      : config((cfg.validate(), cfg)),
        transport_owner(make_cluster_transport(cfg)),
        transport(*transport_owner), gdo(transport, cfg.gdo, &obs.metrics) {
    obs.configure(cfg.obs, cfg.nodes);
    transport.set_tracer(&obs.tracer);
    transport.set_flight_recorder(obs.recorder.get());
    transport.set_timeseries(obs.timeseries.get());
    transport.set_send_counters(&obs.metrics.counter("net.logical_sends"),
                                &obs.metrics.counter("net.physical_sends"));
    gdo.set_tracer(&obs.tracer);
    if (cfg.check_sink != nullptr) {
      transport.set_probe(cfg.check_sink);
      gdo.set_check_sink(cfg.check_sink);
    }
    counters.resolve(obs.metrics);
    for (std::size_t k = 0; k < protocols.size(); ++k)
      protocols[k] = make_protocol(static_cast<ProtocolKind>(k));
    protocol = protocols[static_cast<std::size_t>(cfg.protocol)].get();
    nodes.reserve(cfg.nodes);
    for (std::size_t i = 0; i < cfg.nodes; ++i)
      nodes.push_back(
          std::make_unique<Node>(NodeId(static_cast<std::uint32_t>(i))));
    if (cfg.mv_read)
      for (auto& n : nodes)
        n->store.configure_retention(cfg.mv_version_ring, snapshots.fence());
    {
      MetricsCounter* retained = &obs.metrics.counter("cache.retained");
      MetricsCounter* revoked = &obs.metrics.counter("cache.revoked");
      for (auto& n : nodes) {
        n->lock_cache.set_counters(retained, revoked);
        if (cfg.check_sink != nullptr)
          n->lock_cache.set_check(cfg.check_sink, n->id);
      }
    }
    if (cfg.fault.enabled()) {
      fault = std::make_unique<FaultEngine>(cfg.fault, transport, gdo, nodes,
                                            cfg.page_size);
      fault->set_tracer(&obs.tracer);
      fault->set_flight_recorder(obs.recorder.get());
      fault->set_flight_dump(cfg.obs.flight_dump);
      if (cfg.check_sink != nullptr) fault->set_check_sink(cfg.check_sink);
      transport.set_fault_hooks(fault.get());
    }
    if (cfg.lock_cache) {
      // Revocation seam: the directory calls back into the caching site's
      // lock cache (a leaf mutex, safe under the partition lock) to collect
      // the deferred release report and erase/downgrade the entry.
      gdo.set_callback_handler(
          [this](ObjectId obj, NodeId site, LockMode requested) {
            return node(site).lock_cache.revoke(obj, requested);
          });
    }
  }

  /// The protocol governing one object (its class's override, or the
  /// cluster default).
  [[nodiscard]] const ConsistencyProtocol& protocol_for(
      const ObjectMeta& meta) const {
    return *protocols[static_cast<std::size_t>(meta.protocol)];
  }

  [[nodiscard]] Node& node(NodeId id) {
    if (!id.valid() || id.value() >= nodes.size())
      throw UsageError("ClusterCore: node id out of range");
    return *nodes[id.value()];
  }

  [[nodiscard]] ObjectMeta meta_of(ObjectId id) const {
    std::lock_guard<std::mutex> lock(obj_mu);
    const auto it = objects.find(id);
    if (it == objects.end())
      throw UsageError("unknown object " + std::to_string(id.value()));
    return it->second;
  }

  /// Route a grant wakeup to the waiting family's runner (defined in
  /// family_runner.cpp — needs the complete FamilyRunner type).
  void deliver_grant(Grant grant);

  /// Evict LRU unpinned pages beyond the configured per-node cache budget
  /// (never the authoritative newest copy of a page).
  void enforce_cache_capacity(Node& node);

  /// Flush LRU cached global locks beyond config.lock_cache_capacity back
  /// to the directory (inter-family lock caching extension).
  void enforce_lock_cache_capacity(Node& node);

  /// Pages evicted across all nodes (cache-pressure metric).
  [[nodiscard]] std::uint64_t total_evicted_pages() const {
    std::uint64_t n = 0;
    for (const auto& node : nodes) {
      std::lock_guard<std::mutex> lock(node->store_mu);
      n += node->evicted_pages;
    }
    return n;
  }

  ClusterConfig config;
  /// Declared before transport/gdo: both capture pointers into it.
  Observability obs;
  CoreCounters counters;
  /// Owner + reference pair: the owner holds whichever backend the config
  /// selected; the reference keeps every `core.transport.` call site
  /// working unchanged against the polymorphic interface.
  std::unique_ptr<Transport> transport_owner;
  Transport& transport;
  GdoService gdo;
  ClassRegistry registry;
  /// One instance of every protocol (stateless policies).
  std::array<std::unique_ptr<ConsistencyProtocol>, kNumProtocols> protocols;
  /// The cluster default (== protocols[config.protocol]).
  ConsistencyProtocol* protocol = nullptr;
  /// Live snapshot stamps (mv_read).  Declared before `nodes`: every
  /// node's PageStore shares its fence pointer, so it must be destroyed
  /// after them.
  SnapshotRegistry snapshots;
  std::vector<std::unique_ptr<Node>> nodes;
  /// Deterministic fault engine (null when cfg.fault is empty).  Declared
  /// after `nodes` so it can capture references to them at construction.
  std::unique_ptr<FaultEngine> fault;

  /// Live scheduler during an execute() run.
  Scheduler* scheduler = nullptr;

  mutable std::mutex obj_mu;
  FlatMap<ObjectId, ObjectMeta> objects;
  std::uint64_t next_object_id = 0;

  /// FamilyId -> runner, for wakeup delivery during a run.
  mutable std::mutex fam_mu;
  FlatMap<FamilyId, FamilyRunner*> runners;
};

}  // namespace lotec
