#include "runtime/config.hpp"

#include <string>

namespace lotec {

void ClusterConfig::validate() const {
  if (nodes == 0) throw UsageError("ClusterConfig: nodes must be >= 1");
  if (page_size == 0) throw UsageError("ClusterConfig: page_size must be > 0");
  if (max_active_families == 0)
    throw UsageError("ClusterConfig: max_active_families must be >= 1");
  if (lock_cache_capacity > 0 && !lock_cache)
    throw UsageError(
        "ClusterConfig: lock_cache_capacity = " +
        std::to_string(lock_cache_capacity) +
        " but lock_cache is off — enable lock_cache or drop the capacity");
  const auto check_probability = [](double p, const char* name) {
    if (p < 0.0 || p > 1.0)
      throw UsageError(std::string("ClusterConfig: fault.") + name +
                       " must be a probability in [0, 1]; got " +
                       std::to_string(p));
  };
  check_probability(fault.drop_probability, "drop_probability");
  check_probability(fault.duplicate_probability, "duplicate_probability");
  check_probability(fault.delay_probability, "delay_probability");
  const auto in_cluster = [&](NodeId n) {
    return n.valid() && n.value() < nodes;
  };
  for (std::size_t i = 0; i < fault.events.size(); ++i) {
    const FaultEvent& ev = fault.events[i];
    const bool node_action = ev.action == FaultAction::kCrashNode ||
                             ev.action == FaultAction::kRestartNode;
    if (node_action && ev.target == FaultTarget::kFixed &&
        !in_cluster(ev.node))
      throw UsageError(
          "ClusterConfig: fault event #" + std::to_string(i) +
          " crashes/restarts node " +
          (ev.node.valid() ? std::to_string(ev.node.value()) : "<invalid>") +
          " but the cluster has nodes 0.." + std::to_string(nodes - 1) +
          " — there is no such node to fault");
    for (const NodeId n : ev.group_a)
      if (!in_cluster(n))
        throw UsageError(
            "ClusterConfig: fault event #" + std::to_string(i) +
            " partitions node " + std::to_string(n.value()) +
            " outside the cluster (nodes 0.." + std::to_string(nodes - 1) +
            ")");
    for (const NodeId n : ev.group_b)
      if (!in_cluster(n))
        throw UsageError(
            "ClusterConfig: fault event #" + std::to_string(i) +
            " partitions node " + std::to_string(n.value()) +
            " outside the cluster (nodes 0.." + std::to_string(nodes - 1) +
            ")");
  }
  if (!obs.trace_spans &&
      (!obs.spans_jsonl.empty() || !obs.chrome_trace.empty()))
    throw UsageError(
        "ClusterConfig: spans_jsonl/chrome_trace name span output files "
        "but trace_spans is off — set trace_spans = true to record spans");
  if (fault.enabled()) {
    if (scheduler != SchedulerMode::kDeterministic)
      throw UsageError(
          "ClusterConfig: fault injection requires the deterministic "
          "scheduler (fault traces are defined over the token order)");
    if (fault.has_node_faults() && !gdo.replicate)
      throw UsageError(
          "ClusterConfig: node crash/restart faults require gdo.replicate "
          "(directory state must survive its home node)");
  }
  if (mv_read) {
    if (scheduler != SchedulerMode::kDeterministic)
      throw UsageError(
          "ClusterConfig: mv_read requires the deterministic scheduler "
          "(commit-tick allocation and publication must be atomic over the "
          "token order)");
    if (lock_cache)
      throw UsageError(
          "ClusterConfig: mv_read cannot be combined with lock_cache — "
          "deferred (cached) releases publish versions without commit "
          "ticks, so a snapshot reader could miss a committed write that "
          "precedes its stamp; run one or the other");
    if (wire.enabled)
      throw UsageError(
          "ClusterConfig: mv_read cannot be combined with the wire "
          "transport (--distributed) — snapshot fetches are defined over "
          "the in-process transport only");
    if (fault.enabled())
      throw UsageError(
          "ClusterConfig: mv_read cannot be combined with fault injection "
          "— lease reclamation rolls published versions back, which would "
          "break snapshot-stamp monotonicity");
    if (mv_version_ring == 0)
      throw UsageError(
          "ClusterConfig: mv_read requires mv_version_ring >= 1 (a reader "
          "overlapping a writer needs at least the before-image retained)");
  }
  if (lock_cache && scheduler != SchedulerMode::kDeterministic)
    throw UsageError(
        "ClusterConfig: lock_cache requires the deterministic scheduler "
        "(callback revocation is serialized with the token order)");
  if (schedule_picker && scheduler != SchedulerMode::kDeterministic)
    throw UsageError(
        "ClusterConfig: schedule_picker requires the deterministic "
        "scheduler (decision points exist only in the token order)");
  if (check_sink != nullptr && scheduler != SchedulerMode::kDeterministic)
    throw UsageError(
        "ClusterConfig: check_sink requires the deterministic scheduler "
        "(invariant oracles assume a linearized event stream)");
  if (net.batch_messages && fault.enabled())
    throw UsageError(
        "ClusterConfig: net.batch_messages cannot be combined with fault "
        "injection — batched tails defer their delivery acknowledgement, "
        "which would mask per-message fault verdicts; run faults with "
        "batching off");
  if (gdo.ring.enabled) {
    if (scheduler != SchedulerMode::kDeterministic)
      throw UsageError(
          "ClusterConfig: the elastic directory (gdo.ring) requires the "
          "deterministic scheduler — shard migration interleaves with "
          "family execution and is defined over the token order");
    if (!gdo.replicate)
      throw UsageError(
          "ClusterConfig: the elastic directory (gdo.ring) requires "
          "gdo.replicate — quorum mirror groups are built on the "
          "replication machinery; enable gdo.replicate");
    if (nodes < 2)
      throw UsageError(
          "ClusterConfig: the elastic directory (gdo.ring) needs at least "
          "2 nodes (a mirror group must have somewhere to live)");
    if (gdo.ring.mirror_group == 0 || gdo.ring.mirror_group >= nodes)
      throw UsageError(
          "ClusterConfig: gdo.ring.mirror_group must lie in [1, nodes-1]; "
          "got " + std::to_string(gdo.ring.mirror_group) + " with " +
          std::to_string(nodes) + " nodes");
    if (gdo.ring.virtual_nodes == 0)
      throw UsageError(
          "ClusterConfig: gdo.ring.virtual_nodes must be >= 1 (a member "
          "needs at least one token on the ring)");
    if (wire.enabled)
      throw UsageError(
          "ClusterConfig: the elastic directory (gdo.ring) cannot be "
          "combined with the wire transport (--distributed) — shard "
          "migration moves directory entries through in-process state the "
          "worker fleet does not mirror; run --rebalance without "
          "--distributed");
    if (mv_read)
      throw UsageError(
          "ClusterConfig: the elastic directory (gdo.ring) cannot be "
          "combined with mv_read — a snapshot reader resolves its map at "
          "the static home, and a mid-read shard migration would serve it "
          "two different owners; run one or the other");
    if (lock_cache)
      throw UsageError(
          "ClusterConfig: the elastic directory (gdo.ring) cannot be "
          "combined with lock_cache — cached-holder markers are leased "
          "against a fixed serving node and do not survive a shard "
          "handoff; run one or the other");
  }
  for (std::size_t i = 0; i < fault.events.size(); ++i) {
    const FaultEvent& ev = fault.events[i];
    if (ev.action != FaultAction::kRingLeave &&
        ev.action != FaultAction::kRingJoin)
      continue;
    if (!gdo.ring.enabled)
      throw UsageError(
          "ClusterConfig: fault event #" + std::to_string(i) +
          " changes ring membership but the elastic directory is off — "
          "enable gdo.ring.enabled (soak: pass --rebalance)");
    if (ev.target != FaultTarget::kFixed || !in_cluster(ev.node))
      throw UsageError(
          "ClusterConfig: fault event #" + std::to_string(i) +
          " needs a fixed ring member inside the cluster (nodes 0.." +
          std::to_string(nodes - 1) + ")");
  }
  if (wire.enabled) {
    if (scheduler != SchedulerMode::kDeterministic)
      throw UsageError(
          "ClusterConfig: the wire transport (--distributed) requires the "
          "deterministic scheduler — drop --concurrent, the worker fleet "
          "mirrors the deterministic token order");
    if (schedule_picker)
      throw UsageError(
          "ClusterConfig: the wire transport (--distributed) cannot be "
          "combined with schedule exploration — controlled schedules are "
          "defined over the in-process transport only; run --explore/"
          "--schedule without --distributed");
    if (check_sink != nullptr)
      throw UsageError(
          "ClusterConfig: the wire transport (--distributed) cannot be "
          "combined with a check sink — the serializability checker "
          "observes the in-process transport only; run --check without "
          "--distributed");
    if (fault.drop_probability > 0.0 || fault.duplicate_probability > 0.0 ||
        fault.delay_probability > 0.0)
      throw UsageError(
          "ClusterConfig: the wire transport (--distributed) cannot be "
          "combined with FaultEngine message chaos (drop/duplicate/delay "
          "probabilities) — the wire has its own loss handling; use "
          "crash/restart and partition events instead");
    for (std::size_t i = 0; i < fault.events.size(); ++i)
      if (fault.events[i].action == FaultAction::kDropMessage)
        throw UsageError(
            "ClusterConfig: fault event #" + std::to_string(i) +
            " drops a message, which the wire transport (--distributed) "
            "does not support — use crash/restart or partition events");
  }
}

}  // namespace lotec
