// Family schedulers.
//
// A transaction family executes as straight-line code (method bodies with
// nested invocations) that can *block* mid-stack on a queued global lock
// request, so each active family gets a dedicated thread.  Two scheduling
// disciplines drive those threads:
//
//  * TokenScheduler — deterministic cooperative scheduling.  Exactly one
//    family runs at a time; at every preemption point (global lock
//    operations) a seeded RNG picks the next runnable family.  Identical
//    seeds yield identical interleavings, which is what makes the benchmark
//    traces and property tests reproducible.  When every active family is
//    blocked, the stall callback picks a deadlock victim, which is woken
//    with DeadlockVictimError thrown from its block() call.
//
//  * ConcurrentScheduler — free-running threads with real parallelism (for
//    the runtime/examples).  Blocking uses condition variables; a watchdog
//    invokes the stall callback when no family makes progress for a while.
//
// Both present the same interface to the family executor.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace lotec {

/// Thrown from Scheduler::block() in the blocked family's context when it
/// is chosen as a deadlock victim.  The family executor catches it, rolls
/// the family back and retries.
class DeadlockVictimError {
 public:
  explicit DeadlockVictimError(std::size_t family_index) noexcept
      : index_(family_index) {}
  [[nodiscard]] std::size_t family_index() const noexcept { return index_; }

 private:
  std::size_t index_;
};

class Scheduler {
 public:
  /// Resolve a stall: return the family index to victimize (it must be a
  /// currently blocked family), or npos if the stall is unexplainable
  /// (fatal).  Runs with no family executing (TokenScheduler) or
  /// concurrently with blocked families (ConcurrentScheduler).
  using StallHandler = std::function<std::size_t()>;
  static constexpr std::size_t kNoVictim = static_cast<std::size_t>(-1);

  virtual ~Scheduler() = default;

  /// Run all family bodies to completion.  `bodies[i]` executes family i;
  /// bodies must not leak exceptions (the executor catches everything).
  virtual void run(std::vector<std::function<void()>> bodies,
                   StallHandler on_stall) = 0;

  /// Called from family `idx`'s own thread: give up the processor until
  /// wake(idx).  Throws DeadlockVictimError if victimized while blocked.
  virtual void block(std::size_t idx) = 0;

  /// Make a blocked family runnable (called from another family's thread
  /// while it delivers lock-grant wakeups).  Idempotent.
  virtual void wake(std::size_t idx) = 0;

  /// Optional preemption point (called at global lock operations).
  virtual void preempt(std::size_t idx) = 0;

  /// True after an internal failure: executors should stop retrying and
  /// finish so the scheduler can drain.
  [[nodiscard]] virtual bool cancelled() const = 0;
};

/// Controlled-scheduling hook (src/check): replaces the TokenScheduler's
/// seeded RNG at every *real* decision point (two or more choices).
/// `runnable` lists the family indices that could take the token next;
/// `spawn_candidate` is the index of the next not-yet-started family when a
/// thread slot is free, or TokenScheduler::kNoSpawn.  Return a value in
/// [0, runnable.size()]: values below runnable.size() hand the token to that
/// runnable family, exactly runnable.size() (only legal when a spawn
/// candidate exists) starts the spawn candidate.  Forced moves (one choice)
/// and stall/victim resolution never consult the picker, so a recorded
/// decision sequence is exactly the schedule's branching structure.  The
/// picker runs under the scheduler mutex: it must not touch the scheduler
/// or the cluster, only its own state.
using SchedulePicker = std::function<std::size_t(
    const std::vector<std::size_t>& runnable, std::size_t spawn_candidate)>;

class TokenScheduler final : public Scheduler {
 public:
  /// spawn_candidate value when no thread slot is free (see SchedulePicker).
  static constexpr std::size_t kNoSpawn = static_cast<std::size_t>(-1);

  struct Config {
    std::uint64_t seed = 1;
    /// Maximum families with live threads at once; further families start
    /// as earlier ones finish.
    std::size_t max_active = 16;
    /// When set, consulted instead of the seeded RNG at every decision
    /// point with more than one choice.
    SchedulePicker picker;
  };

  explicit TokenScheduler(Config config) : config_(config) {
    if (config_.max_active == 0)
      throw UsageError("TokenScheduler: max_active must be >= 1");
  }

  void run(std::vector<std::function<void()>> bodies,
           StallHandler on_stall) override;
  void block(std::size_t idx) override;
  void wake(std::size_t idx) override;
  void preempt(std::size_t idx) override;
  [[nodiscard]] bool cancelled() const override {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  enum class State : std::uint8_t {
    kNotStarted,
    kRunnable,
    kRunning,
    kBlocked,
    kDone
  };

  /// Pick and hand the token to the next family (spawning a fresh thread
  /// when a slot is free).  Requires mu_ held and no current runner.
  void schedule_next_locked();

  /// Wait until this family holds the token; returns with state kRunning.
  /// Throws DeadlockVictimError if flagged as victim.
  void await_token_locked(std::unique_lock<std::mutex>& lock,
                          std::size_t idx);

  Config config_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::function<void()>> bodies_;
  std::vector<State> states_;
  std::vector<bool> victim_;
  std::vector<std::thread> threads_;
  StallHandler on_stall_;
  std::size_t current_ = kNone;
  std::size_t next_unstarted_ = 0;
  std::size_t active_ = 0;
  std::size_t done_ = 0;
  Rng rng_{1};
  std::atomic<bool> cancelled_{false};
  std::string failure_;

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
};

class ConcurrentScheduler final : public Scheduler {
 public:
  struct Config {
    std::size_t max_active = 16;
    /// Watchdog period for stall (deadlock) detection.
    std::chrono::milliseconds watchdog_period{20};
  };

  explicit ConcurrentScheduler(Config config) : config_(config) {
    if (config_.max_active == 0)
      throw UsageError("ConcurrentScheduler: max_active must be >= 1");
  }

  void run(std::vector<std::function<void()>> bodies,
           StallHandler on_stall) override;
  void block(std::size_t idx) override;
  void wake(std::size_t idx) override;
  void preempt(std::size_t /*idx*/) override {}  // real threads: no-op
  [[nodiscard]] bool cancelled() const override {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  Config config_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::uint8_t> blocked_;   // family currently in block()
  std::vector<std::uint8_t> wake_flag_; // wake arrived (possibly early)
  std::vector<std::uint8_t> victim_;
  std::atomic<bool> cancelled_{false};
  std::string failure_;
};

}  // namespace lotec
