// Node: one site of the distributed system — its cached object pages plus
// the bookkeeping for bounded caches (LRU order, lock pins, eviction
// statistics).  All members are guarded by store_mu.
#pragma once

#include <list>
#include <mutex>
#include <unordered_map>

#include "common/ids.hpp"
#include "gdo/page_map.hpp"
#include "page/page_store.hpp"
#include "runtime/lock_cache.hpp"

namespace lotec {

struct Node {
  explicit Node(NodeId id_) : id(id_) {}

  NodeId id;
  /// Guards everything below (remote page fetches read a peer node's
  /// store; co-located families share one store).
  std::mutex store_mu;
  PageStore store;

  /// Objects whose lock a family at this site currently holds; their pages
  /// are not evictable.  Reference-counted (read sharing).
  std::unordered_map<ObjectId, int> pins;
  /// LRU order over cached objects, front = most recently acquired.
  std::list<ObjectId> lru;
  std::unordered_map<ObjectId, std::list<ObjectId>::iterator> lru_pos;
  std::uint64_t evicted_pages = 0;

  /// Global locks this site retains between families (callback-locking
  /// extension; empty unless config.lock_cache).  Own leaf mutex — NOT
  /// guarded by store_mu (the directory's callback handler reaches it while
  /// holding a partition lock).
  GlobalLockCache lock_cache;

  /// Snapshot map cache (mv_read): the last directory map this site fetched
  /// per object, tagged with the commit tick it was current as of.  A
  /// reader with stamp S may reuse a cached map with tick >= S — every
  /// publication at or below S is already in it — and otherwise refreshes
  /// via GdoService::snapshot_lookup.  Guarded by store_mu.
  struct CachedSnapshotMap {
    PageMap map;
    std::uint64_t tick = 0;
  };
  std::unordered_map<ObjectId, CachedSnapshotMap> snapshot_maps;

  // Callers hold store_mu for all of the following.

  void touch(ObjectId obj) {
    const auto it = lru_pos.find(obj);
    if (it != lru_pos.end()) lru.erase(it->second);
    lru.push_front(obj);
    lru_pos[obj] = lru.begin();
  }

  void pin(ObjectId obj) { ++pins[obj]; }

  void unpin(ObjectId obj) {
    const auto it = pins.find(obj);
    if (it == pins.end())
      throw UsageError("Node::unpin: object not pinned");
    if (--it->second == 0) pins.erase(it);
  }

  [[nodiscard]] bool pinned(ObjectId obj) const {
    return pins.count(obj) != 0;
  }

  void forget(ObjectId obj) {
    const auto it = lru_pos.find(obj);
    if (it != lru_pos.end()) {
      lru.erase(it->second);
      lru_pos.erase(it);
    }
  }
};

}  // namespace lotec
