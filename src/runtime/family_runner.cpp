#include "runtime/family_runner.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace lotec {

namespace {
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

void ClusterCore::enforce_cache_capacity(Node& node) {
  const std::size_t capacity = config.cache_capacity_pages;
  if (capacity == 0) return;
  std::lock_guard<std::mutex> lock(node.store_mu);
  std::size_t resident = node.store.resident_pages();
  if (resident <= capacity) return;
  // Walk from the least recently acquired object; drop every page whose
  // newest copy lives elsewhere (re-fetchable).  Pinned objects (currently
  // locked by a family here) are untouchable, as is any page this site
  // authoritatively owns.
  for (auto it = node.lru.rbegin();
       it != node.lru.rend() && resident > capacity;) {
    const ObjectId obj = *it;
    ++it;  // advance before mutation below invalidates the list position
    if (node.pinned(obj)) continue;
    // A live snapshot reader resolves its fetches against this image and
    // its version ring; eviction under it would strand the reader.
    if (node.store.snapshot_pinned(obj)) continue;
    // A cached global lock's deferred report names this site as the source
    // of its stamped pages — they are the sole copies until the flush.
    if (node.lock_cache.contains(obj)) continue;
    ObjectImage* img = node.store.find(obj);
    if (img == nullptr) {
      node.forget(obj);
      it = node.lru.rbegin();  // restart: forget() edited the list
      continue;
    }
    const GdoEntry entry = gdo.snapshot(obj);
    for (const PageIndex p : img->resident().to_vector()) {
      if (entry.page_map.at(p).node == node.id) continue;  // sole newest copy
      img->evict_page(p);
      ++node.evicted_pages;
      counters.page_evictions->add();
      if (--resident <= capacity) break;
    }
    if (img->resident().empty()) {
      node.store.evict(obj);
      node.forget(obj);
      it = node.lru.rbegin();  // list edited; restart from the tail
    }
  }
}

void ClusterCore::enforce_lock_cache_capacity(Node& node) {
  const std::size_t capacity = config.lock_cache_capacity;
  if (!config.lock_cache || capacity == 0) return;
  while (node.lock_cache.size() > capacity) {
    ObjectId victim{};
    {
      std::lock_guard<std::mutex> lock(node.store_mu);
      for (const ObjectId obj : node.lock_cache.lru_order()) {
        if (node.pinned(obj)) continue;  // re-granted to a live family
        victim = obj;
        break;
      }
    }
    if (!victim.valid()) return;
    const auto entry = node.lock_cache.lookup(victim);
    if (!entry) return;
    const CachedFlush flush = node.lock_cache.take_flush(victim);
    try {
      if (entry->mode == LockMode::kRead)
        gdo.forget_cached(victim, node.id);  // clean: unilateral silent drop
      else
        gdo.flush_cached(victim, node.id, flush.records, flush.advance_to);
    } catch (const Error&) {
      // Directory chain briefly unreachable: the local entry is gone either
      // way; the marker falls to revocation or lease reclamation.
    }
  }
}

void ClusterCore::deliver_grant(Grant grant) {
  FamilyRunner* runner = nullptr;
  {
    std::lock_guard<std::mutex> lock(fam_mu);
    const auto it = runners.find(grant.family);
    if (it == runners.end())
      throw Error("grant delivered to unknown family " +
                  std::to_string(grant.family.value()));
    runner = it->second;
  }
  const std::size_t idx = runner->index();
  runner->deliver(std::move(grant));
  scheduler->wake(idx);
}

FamilyRunner::FamilyRunner(ClusterCore& core, std::size_t index,
                           FamilyId family, NodeId node, RootRequest request)
    : core_(core),
      index_(index),
      family_(family, node, core.config.undo),
      node_(node),
      request_(std::move(request)) {
  family_.locks().set_check(core_.config.check_sink, family_.id());
  snapshot_mode_ =
      core_.config.mv_read && request_.kind == FamilyKind::kReadOnly;
}

void FamilyRunner::run() {
  FaultEngine* const eng = core_.fault.get();
  int attempts = 0;
  for (;;) {
    ++attempts;
    // The attempt span stays open through the catch handlers so undo and
    // retry bookkeeping nest under the attempt they belong to.
    ScopedSpan attempt_span(&core_.obs.tracer, SpanPhase::kFamilyAttempt,
                            family_.id().value(), node_.value());
    if (eng != nullptr) {
      eng->apply_pending();
      if (eng->node_down(node_) && !relocate_family()) {
        result_.committed = false;
        result_.reason = AbortReason::kNodeFailure;
        break;
      }
      crash_epoch_ = eng->crash_count(node_);
    }
    // Elastic directory: every attempt advances the background shard
    // migration by one bounded step (no-op while the ring is off).
    core_.gdo.pump_migrations(core_.config.gdo.ring.migration_batch);
    if (CheckSink* s = check()) s->on_attempt_start(family_.id());
    committing_ = false;
    scratch_.reset();  // previous attempt's gather scratch dies here
    // Re-seed per attempt: a restarted family makes the same decisions.
    rng_ = Rng(mix64(core_.config.seed ^ family_.id().value()));
    if (snapshot_mode_) begin_snapshot_attempt();
    // Every exit from this iteration — commit, any retrying catch, any
    // break — must drop the attempt's snapshot pins and stamp.
    struct SnapshotAttemptGuard {
      FamilyRunner* runner;
      ~SnapshotAttemptGuard() {
        if (runner != nullptr) runner->end_snapshot_attempt();
      }
    } snapshot_guard{snapshot_mode_ ? this : nullptr};
    try {
      const bool ok =
          run_invocation(nullptr, request_.object, request_.method);
      result_.committed = ok;
      if (ok) core_.counters.commits->add();
      if (!ok) result_.reason = last_abort_reason_;
      break;
    } catch (const DeadlockVictimError&) {
      // The stall handler also victimizes blocked families when a crash
      // (not a lock cycle) explains the stall; route those to crash
      // recovery — there is no site state left to abort.
      if (crashed_since_attempt()) {
        if (crash_retry(attempts, committing_)) continue;
        break;
      }
      try {
        abort_family(AbortReason::kDeadlock);
      } catch (const Error&) {
        // The abort's release traffic itself hit a fault (our own node
        // crashed unnoticed, or an object's directory chain is down):
        // reroute to fault recovery instead of leaking from the handler.
        if (crashed_since_attempt()) {
          if (crash_retry(attempts, committing_)) continue;
          break;
        }
        if (transient_retry(attempts)) continue;
        break;
      }
      ++result_.deadlock_retries;
      core_.counters.deadlock_retries->add();
      if (core_.scheduler->cancelled() ||
          attempts >= core_.config.max_retries) {
        result_.committed = false;
        result_.reason = AbortReason::kRetryExhausted;
        break;
      }
      family_.reset();
      // Backoff: yield so the families our abort just unblocked run first.
      // Without this, a deterministic schedule can restart the victim in
      // lockstep with the survivor and re-form the identical deadlock
      // forever (the deterministic analogue of randomized backoff).
      backoff(attempts);
      continue;
    } catch (const NodeCrashedError&) {
      if (crash_retry(attempts, committing_)) continue;
      break;
    } catch (const NodeUnreachable&) {
      if (eng == nullptr) {
        // Legacy (no fault engine): an unreachable node is a configuration
        // error — surface it like any other programming error.
        error_ = std::current_exception();
        try {
          abort_family(AbortReason::kUser);
        } catch (...) {
        }
        result_.committed = false;
        result_.reason = AbortReason::kUser;
        break;
      }
      if (crashed_since_attempt()) {
        if (crash_retry(attempts, committing_)) continue;
      } else if (transient_retry(attempts)) {
        continue;
      }
      break;
    } catch (const MessageDropped&) {
      if (transient_retry(attempts)) continue;
      break;
    } catch (const SnapshotUnavailableError&) {
      // A needed version is gone at its owner (eviction raced our map
      // lookup).  Nothing to undo or release — the snapshot path holds no
      // locks and writes nothing; retry under a fresh stamp, whose newest
      // versions are always resolvable.
      core_.counters.snapshot_retries->add();
      current_ = nullptr;
      if (core_.scheduler->cancelled() ||
          attempts >= core_.config.max_retries) {
        result_.committed = false;
        result_.reason = AbortReason::kRetryExhausted;
        break;
      }
      family_.reset();
      backoff(attempts);
      continue;
    } catch (const Error&) {
      // Programming error (precluded recursion, undeclared access, protocol
      // invariant violation): clean the family up and surface the exception
      // from Cluster::execute once the batch drains.
      error_ = std::current_exception();
      try {
        abort_family(AbortReason::kUser);
      } catch (...) {
        // Cleanup must not mask the original error.
      }
      result_.committed = false;
      result_.reason = AbortReason::kUser;
      break;
    }
  }
  if (CheckSink* s = check())
    s->on_family_outcome(family_.id(), result_.committed);
  result_.attempts = attempts;
  result_.txns_in_tree = family_.num_txns();
}

// --------------------------------------------------------------------------
// Fault recovery
// --------------------------------------------------------------------------

bool FamilyRunner::crashed_since_attempt() const {
  const FaultEngine* const eng = core_.fault.get();
  return eng != nullptr && eng->crash_count(node_) > crash_epoch_;
}

void FamilyRunner::fault_checkpoint() {
  FaultEngine* const eng = core_.fault.get();
  if (eng == nullptr) return;
  eng->apply_pending();
  if (crashed_since_attempt()) throw NodeCrashedError(node_);
}

void FamilyRunner::pin_here(Node& site, ObjectId object) {
  site.pin(object);
  pin_epochs_[object] =
      core_.fault != nullptr ? core_.fault->wipe_count(node_) : 0;
}

void FamilyRunner::unpin_here(Node& site, ObjectId object) {
  const auto it = pin_epochs_.find(object);
  if (it == pin_epochs_.end()) return;
  const std::uint64_t now =
      core_.fault != nullptr ? core_.fault->wipe_count(node_) : 0;
  if (it->second == now) site.unpin(object);
  pin_epochs_.erase(it);
}

void FamilyRunner::discard_local_state() {
  // The site's memory is gone (or being abandoned): no release traffic and
  // no undo — the crash wipe dropped the pre-crash pins, and the GDO
  // reclaims the family's locks by lease expiry.  Pins taken after the site
  // already restarted (the crash goes unnoticed until the next checkpoint)
  // survived the wipe, though, and must be returned here or they leak.
  {
    Node& mine = core_.node(node_);
    std::lock_guard<std::mutex> lock(mine.store_mu);
    const std::uint64_t now =
        core_.fault != nullptr ? core_.fault->wipe_count(node_) : 0;
    for (const auto& [object, epoch] : pin_epochs_)
      if (epoch == now) mine.unpin(object);
  }
  pin_epochs_.clear();
  pending_grant_.reset();
  blocked_on_ = ObjectId{};
  object_maps_.clear();
  family_.locks().clear();
  current_ = nullptr;
}

bool FamilyRunner::relocate_family() {
  const FaultEngine& eng = *core_.fault;
  const std::size_t n = core_.nodes.size();
  for (std::size_t off = 1; off < n; ++off) {
    const NodeId cand(
        static_cast<std::uint32_t>((node_.value() + off) % n));
    if (eng.node_down(cand)) continue;
    discard_local_state();
    node_ = cand;
    family_ = Family(family_.id(), cand, core_.config.undo);
    family_.locks().set_check(core_.config.check_sink, family_.id());
    return true;
  }
  return false;
}

bool FamilyRunner::crash_retry(int attempts, bool was_committing) {
  if (was_committing) result_.crashed_in_commit = true;
  discard_local_state();
  ++result_.fault_retries;
  core_.counters.fault_retries->add();
  // A crash inside commit processing leaves a partially committed family
  // (some objects released with their new versions published, the rest
  // reclaimed by lease).  Re-running it would double-apply the committed
  // prefix, so the family ends here, honestly reported as failed.
  if (was_committing || core_.scheduler->cancelled() ||
      attempts >= core_.config.max_retries) {
    result_.committed = false;
    result_.reason = AbortReason::kNodeFailure;
    return false;
  }
  family_.reset();
  backoff(attempts);
  return true;
}

bool FamilyRunner::transient_retry(int attempts) {
  try {
    abort_family(AbortReason::kNodeFailure);
  } catch (const Error&) {
    // The abort path itself hit an unreachable node (e.g. an object's whole
    // directory chain is down).  Release what is still releasable object by
    // object, then drop the rest locally; the end-of-run reclamation sweep
    // mops up anything left at the directory.
    Node& mine = core_.node(node_);
    for (const ObjectId object : family_.locks().all_objects()) {
      if (core_.config.lock_cache) {
        // A deferred report inherited from earlier (cached) commits must
        // not die with the abort: publish it while the chain may be up.
        const CachedFlush flush = mine.lock_cache.take_flush(object);
        if (!flush.records.empty() || flush.advance_to > 0) {
          try {
            core_.gdo.flush_cached(object, node_, flush.records,
                                   flush.advance_to);
          } catch (...) {
          }
        }
      }
      try {
        (void)core_.gdo.release_family(object, family_.id(), node_, nullptr);
      } catch (...) {
      }
      std::lock_guard<std::mutex> lock(mine.store_mu);
      if (ObjectImage* img = mine.store.find(object)) img->clear_dirty();
      unpin_here(mine, object);
    }
    discard_local_state();
  }
  ++result_.fault_retries;
  core_.counters.fault_retries->add();
  if (core_.scheduler->cancelled() || attempts >= core_.config.max_retries) {
    result_.committed = false;
    result_.reason = AbortReason::kNodeFailure;
    return false;
  }
  family_.reset();
  backoff(attempts);
  return true;
}

void FamilyRunner::backoff(int attempts) {
  for (int back = 0; back < attempts && back < 4; ++back)
    core_.scheduler->preempt(index_);
}

bool FamilyRunner::run_invocation(Transaction* parent, ObjectId object,
                                  MethodId method) {
  fault_checkpoint();
  const ObjectMeta meta = core_.meta_of(object);
  const ClassDef& cls = core_.registry.get(meta.cls);
  const MethodDef& mdef = cls.method(method);
  const AccessSummary& summary = cls.summary(method);

  Transaction& txn = parent
                         ? family_.begin_child(*parent, object, method)
                         : family_.begin_root(object, method);
  if (CheckSink* s = check())
    s->on_txn_begin(family_.id(), txn.id().serial,
                    parent != nullptr ? parent->id().serial
                                      : CheckSink::kNoSerial,
                    object);
  Transaction* const saved = current_;
  current_ = &txn;
  try {
    // Snapshot mode reads a committed past: no prefetch planning (there is
    // no lock round to amortize it into) and no lock acquisition at all —
    // the stamp taken at attempt start replaces both.
    if (parent == nullptr && !snapshot_active_) run_prefetch(txn);
    if (snapshot_active_)
      snapshot_acquire(object);
    else
      acquire_for(txn, object, summary);
    MethodContext ctx(*this, txn, cls, mdef);
    {
      ScopedSpan exec(&core_.obs.tracer, SpanPhase::kMethodExecute,
                      family_.id().value(), node_.value(), object.value());
      mdef.body(ctx);
    }
    if (parent != nullptr) {
      txn.pre_commit();
      core_.obs.tracer.instant(SpanPhase::kLockInherit, family_.id().value(),
                               node_.value(), object.value());
      if (CheckSink* s = check())
        s->on_pre_commit(family_.id(), txn.id().serial, parent->id().serial);
      if (core_.config.test_mutations.break_retention)
        broken_retention_release(txn);
      else
        family_.locks().on_pre_commit(txn);
    } else {
      commit_root(txn);
    }
    current_ = saved;
    return true;
  } catch (const TxnAbort& abort) {
    if (parent != nullptr) {
      abort_subtree(txn);
    } else {
      last_abort_reason_ = abort.reason();
      abort_family(abort.reason());
    }
    current_ = saved;
    return false;
  }
}

void FamilyRunner::acquire_for(const Transaction& txn, ObjectId object,
                               const AccessSummary& summary) {
  ScopedSpan acquire_span(&core_.obs.tracer, SpanPhase::kLockAcquire,
                          family_.id().value(), node_.value(), object.value());
  const LockMode mode =
      summary.needs_write_lock ? LockMode::kWrite : LockMode::kRead;
  const LocalAcquireOutcome outcome =
      family_.locks().try_local_acquire(txn, object, mode);

  if (outcome == LocalAcquireOutcome::kGranted) {
    core_.transport.record_local_lock_op();
    ++result_.local_lock_grants;
    core_.counters.local_lock_grants->add();
    if (CheckSink* s = check())
      s->on_local_grant(family_.id(), txn.id().serial, object, mode);
    {
      Node& mine = core_.node(node_);
      std::lock_guard<std::mutex> lock(mine.store_mu);
      mine.touch(object);
    }
    // LOTEC top-up: a later method of the family may predict pages the
    // first transfer skipped; they are still described accurately by the
    // cached page map (no other family can have changed them while the
    // family holds the lock).
    ObjectImage& img = local_image(object);
    const PageSet fetch = core_.protocol_for(core_.meta_of(object)).pages_to_transfer(
        node_, img, object_maps_.at(object), summary.predicted_pages);
    fetch_pages(object, img, fetch, /*demand=*/false);
    return;
  }

  // Lock-cache fast path: a compatible cached (idle) global lock at this
  // site re-activates with zero network messages.
  if (outcome == LocalAcquireOutcome::kNeedGlobal &&
      try_cache_regrant(txn, object, mode, /*prefetch=*/false)) {
    ObjectImage& img = local_image(object);
    const PageSet fetch = core_.protocol_for(core_.meta_of(object)).pages_to_transfer(
        node_, img, object_maps_.at(object), summary.predicted_pages);
    fetch_pages(object, img, fetch, /*demand=*/false);
    return;
  }

  const bool remote = core_.gdo.home_of(object) != node_;
  ScopedSpan gdo_round(&core_.obs.tracer, SpanPhase::kGdoRound,
                       family_.id().value(), node_.value(), object.value());
  core_.scheduler->preempt(index_);  // interleaving point at a global op
  AcquireResult res = core_.gdo.acquire(object, txn.id(), node_, mode);
  bool upgrade = outcome == LocalAcquireOutcome::kNeedUpgrade;
  PageMap granted_map;
  if (res.status == AcquireStatus::kQueued) {
    blocked_on_ = object;
    core_.scheduler->block(index_);  // may throw DeadlockVictimError
    blocked_on_ = ObjectId{};
    if (!pending_grant_ || pending_grant_->object != object)
      throw Error("family woken without a matching lock grant");
    Grant g = std::move(*pending_grant_);
    pending_grant_.reset();
    upgrade = g.upgrade;
    granted_map = std::move(g.page_map);
    // The wakeup crossed lanes: link this family's grant instant to the
    // directory-side release/serve span that produced it.
    core_.obs.tracer.instant_linked(SpanPhase::kLockGrant,
                                    family_.id().value(), node_.value(),
                                    g.trace, object.value());
  } else {
    upgrade = res.upgrade;
    granted_map = std::move(res.page_map);
  }
  gdo_round.finish();
  if (remote && !prefetch_batch_) {
    ++result_.remote_round_trips;
    core_.counters.remote_round_trips->add();
  }

  family_.locks().on_global_grant(txn, object, mode, upgrade);
  if (CheckSink* s = check())
    s->on_global_grant(family_.id(), txn.id().serial, object, mode, upgrade,
                       /*cached_regrant=*/false, /*prefetch=*/false);
  if (!upgrade) {
    object_maps_.insert_or_assign(object, std::move(granted_map));
    Node& mine = core_.node(node_);
    std::lock_guard<std::mutex> lock(mine.store_mu);
    pin_here(mine, object);
    mine.touch(object);
  }

  ObjectImage& img = local_image(object);
  const PageSet fetch = core_.protocol_for(core_.meta_of(object)).pages_to_transfer(
      node_, img, object_maps_.at(object), summary.predicted_pages);
  fetch_pages(object, img, fetch, /*demand=*/false);
}

void FamilyRunner::run_prefetch(const Transaction& root) {
  if (request_.prefetch.empty()) return;
  const std::uint64_t trips_before = result_.remote_round_trips;
  prefetch_batch_ = true;
  bool any_remote = false;
  for (const auto& [object, method] : request_.prefetch) {
    if (family_.locks().find(object) != nullptr) continue;
    ScopedSpan acquire_span(&core_.obs.tracer, SpanPhase::kLockAcquire,
                            family_.id().value(), node_.value(),
                            object.value());
    const ObjectMeta meta = core_.meta_of(object);
    const AccessSummary& summary =
        core_.registry.get(meta.cls).summary(method);
    const LockMode mode =
        summary.needs_write_lock ? LockMode::kWrite : LockMode::kRead;
    if (try_cache_regrant(root, object, mode, /*prefetch=*/true)) {
      ObjectImage& img = local_image(object);
      const PageSet fetch = core_.protocol_for(meta).pages_to_transfer(
          node_, img, object_maps_.at(object), summary.predicted_pages);
      fetch_pages(object, img, fetch, /*demand=*/false);
      continue;
    }
    any_remote = any_remote || core_.gdo.home_of(object) != node_;

    core_.scheduler->preempt(index_);
    AcquireResult res = core_.gdo.acquire(object, root.id(), node_, mode);
    PageMap granted_map;
    if (res.status == AcquireStatus::kQueued) {
      blocked_on_ = object;
      core_.scheduler->block(index_);
      blocked_on_ = ObjectId{};
      if (!pending_grant_ || pending_grant_->object != object)
        throw Error("family woken without a matching lock grant (prefetch)");
      Grant g = std::move(*pending_grant_);
      pending_grant_.reset();
      granted_map = std::move(g.page_map);
      core_.obs.tracer.instant_linked(SpanPhase::kLockGrant,
                                      family_.id().value(), node_.value(),
                                      g.trace, object.value());
    } else {
      granted_map = std::move(res.page_map);
    }
    family_.locks().on_prefetch_grant(root, object, mode);
    if (CheckSink* s = check())
      s->on_global_grant(family_.id(), root.id().serial, object, mode,
                         /*upgrade=*/false, /*cached_regrant=*/false,
                         /*prefetch=*/true);
    object_maps_.insert_or_assign(object, std::move(granted_map));
    {
      Node& mine = core_.node(node_);
      std::lock_guard<std::mutex> lock(mine.store_mu);
      pin_here(mine, object);
      mine.touch(object);
    }
    ObjectImage& img = local_image(object);
    const PageSet fetch = core_.protocol_for(meta).pages_to_transfer(
        node_, img, object_maps_.at(object), summary.predicted_pages);
    fetch_pages(object, img, fetch, /*demand=*/false);
  }
  prefetch_batch_ = false;
  // The point of pre-acquisition is pipelining: model the whole batch as a
  // single blocking round trip on the family's critical path.
  result_.remote_round_trips = trips_before + (any_remote ? 1 : 0);
  if (any_remote) core_.counters.remote_round_trips->add();
}

bool FamilyRunner::try_cache_regrant(const Transaction& txn, ObjectId object,
                                     LockMode mode, bool prefetch) {
  if (!core_.config.lock_cache) return false;
  Node& mine = core_.node(node_);
  const std::optional<CachedLock> cached = mine.lock_cache.lookup(object);
  if (!cached) return false;
  if (mode == LockMode::kWrite && cached->mode == LockMode::kRead) {
    // The cached mode cannot cover the request.  A read entry is clean by
    // invariant, so drop it unilaterally (zero messages) and go remote.
    mine.lock_cache.erase(object);
    core_.gdo.forget_cached(object, node_);
    return false;
  }
  const std::optional<LockMode> granted =
      core_.gdo.local_regrant(object, txn.id(), node_, cached->mode);
  if (!granted) {
    // No usable marker at the directory (revoked behind our back, or a
    // concurrent family at this site already re-activated it).  Push any
    // deferred report out and fall back to a normal acquisition.
    const CachedFlush flush = mine.lock_cache.take_flush(object);
    if (!flush.records.empty() || flush.advance_to > 0)
      core_.gdo.flush_cached(object, node_, flush.records, flush.advance_to);
    return false;
  }
  // Zero-message re-activation: same bookkeeping as a fresh global grant,
  // at the cached (covering) mode so intra-family upgrades stay standard.
  // The cache entry stays resident — it keeps carrying the deferred report
  // until the release merges into it or a flush publishes it.
  core_.transport.record_local_lock_op();
  ++result_.local_lock_grants;
  core_.counters.local_lock_grants->add();
  if (prefetch)
    family_.locks().on_prefetch_grant(txn, object, *granted);
  else
    family_.locks().on_global_grant(txn, object, *granted, /*upgrade=*/false);
  if (CheckSink* s = check())
    s->on_global_grant(family_.id(), txn.id().serial, object, *granted,
                       /*upgrade=*/false, /*cached_regrant=*/true, prefetch);
  object_maps_.insert_or_assign(object, cached->map);
  {
    std::lock_guard<std::mutex> lock(mine.store_mu);
    pin_here(mine, object);
    mine.touch(object);
  }
  return true;
}

void FamilyRunner::fetch_pages(ObjectId object, ObjectImage& image,
                               PageSet pages, bool demand) {
  if (pages.empty()) return;
  ScopedSpan gather(&core_.obs.tracer, SpanPhase::kPageGather,
                    family_.id().value(), node_.value(), object.value());
  const auto mit = object_maps_.find(object);
  if (mit == object_maps_.end())
    throw Error("fetch_pages without a cached page map");
  PageMap& map = mit->second;

  // Group wanted pages per source site, visited in node-id order — the same
  // deterministic traffic as the sorted map this replaces.  The grouping is
  // a stable counting sort over attempt-scoped arena scratch, so the hot
  // fetch path allocates nothing from the heap.
  const std::vector<PageIndex> wanted_all = pages.to_vector();
  const std::size_t n_nodes = core_.nodes.size();
  auto* counts = scratch_.allocate_array<std::uint32_t>(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) counts[i] = 0;
  for (const PageIndex p : wanted_all) {
    const PageLocation& loc = map.at(p);
    if (loc.node == node_)
      throw Error("fetch_pages: newest copy of the page is already local");
    ++counts[loc.node.value()];
  }
  auto* offsets = scratch_.allocate_array<std::uint32_t>(n_nodes + 1);
  offsets[0] = 0;
  for (std::size_t i = 0; i < n_nodes; ++i)
    offsets[i + 1] = offsets[i] + counts[i];
  auto* grouped = scratch_.allocate_array<PageIndex>(wanted_all.size());
  auto* cursor = scratch_.allocate_array<std::uint32_t>(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) cursor[i] = offsets[i];
  for (const PageIndex p : wanted_all)
    grouped[cursor[map.at(p).node.value()]++] = p;

  // DSD mode (Section 4.2/6): ship only the changed byte ranges for pages
  // whose local copy is exactly one version behind.  The request then
  // carries our cached version per page (8 extra bytes each) so the source
  // can decide delta vs full page.
  const ObjectMeta obj_meta = core_.meta_of(object);
  const std::size_t num_pages = obj_meta.num_pages;
  const bool delta_mode = core_.protocol_for(obj_meta).delta_transfers();
  FlatMap<std::uint32_t, Lsn> my_versions;
  if (delta_mode) {
    Node& mine = core_.node(node_);
    std::lock_guard<std::mutex> lock(mine.store_mu);
    for (const PageIndex p : wanted_all)
      if (image.has_page(p)) my_versions[p.value()] = image.page_version(p);
  }

  for (std::size_t s = 0; s < n_nodes; ++s) {
    if (counts[s] == 0) continue;
    const NodeId source(static_cast<std::uint32_t>(s));
    const std::span<const PageIndex> wanted(grouped + offsets[s], counts[s]);
    core_.transport.send(
        {demand ? MessageKind::kDemandFetchRequest
                : MessageKind::kPageFetchRequest,
         node_, source, object,
         wanted.size() * (wire::kPageRequestEntryBytes +
                          (delta_mode ? 8ULL : 0ULL))});
    // Remote side of the fetch: the source site serving our request, on its
    // directory lane, linked to this family's page.gather.
    ScopedServeSpan serve(&core_.obs.tracer, SpanPhase::kPageServe,
                          source.value(), object.value());
    std::vector<std::pair<PageIndex, Page>> copied;
    std::vector<std::pair<PageIndex, PagePatch>> patched;
    copied.reserve(wanted.size());
    std::uint64_t reply_payload = 0;
    {
      Node& src = core_.node(source);
      std::lock_guard<std::mutex> lock(src.store_mu);
      const ObjectImage& simg = src.store.get(object);
      for (const PageIndex p : wanted) {
        const Page& page = simg.page(p);
        std::optional<std::uint64_t> chain;
        const auto have = my_versions.find(p.value());
        if (delta_mode && have != my_versions.end())
          chain = page.delta_chain_bytes(have->second);
        if (chain && *chain < core_.config.page_size) {
          // Few versions behind: the wire carries only the delta chain, so
          // copy only the changed spans here — a full Page copy would hold
          // the source's store_mu for the whole page payload.
          PagePatch patch;
          patch.version = page.version;
          patch.tick = page.tick;
          patch.history = page.history;
          for (const PageDelta& d : page.history) {
            for (const auto& [off, len] : d.ranges)
              patch.spans.emplace_back(
                  off, std::vector<std::byte>(
                           page.data.begin() + off,
                           page.data.begin() + off + len));
            if (d.from_version == have->second) break;
          }
          patched.emplace_back(p, std::move(patch));
          reply_payload += *chain;
          ++result_.delta_pages;
          core_.counters.delta_pages->add();
        } else {
          reply_payload += core_.config.page_size + 8ULL;
          copied.emplace_back(p, page);
        }
      }
    }
    core_.transport.send(
        {demand ? MessageKind::kDemandFetchReply
                : MessageKind::kPageFetchReply,
         source, node_, object, reply_payload});
    serve.finish();
    {
      Node& mine = core_.node(node_);
      std::lock_guard<std::mutex> lock(mine.store_mu);
      for (auto& [p, page] : copied) {
        // Lock discipline guarantees the owner's content is current even if
        // its version stamp lags a concurrent release; trust the map.
        page.version = std::max(page.version, map.at(p).version);
        map.record_current(p, node_, page.version);
        if (core_.fault != nullptr)
          core_.fault->note_page(node_, object, num_pages, p, page);
        image.install_page(p, std::move(page));
      }
      for (auto& [p, patch] : patched) {
        // A raced eviction of the base copy (concurrent mode) voids the
        // patch; the freshness check re-fetches the full page on demand.
        if (!image.has_page(p)) continue;
        patch.version = std::max(patch.version, map.at(p).version);
        image.patch_page(p, patch);
        map.record_current(p, node_, image.page_version(p));
        if (core_.fault != nullptr)
          core_.fault->note_page(node_, object, num_pages, p, image.page(p));
      }
    }
    if (!prefetch_batch_) {
      ++result_.remote_round_trips;
      core_.counters.remote_round_trips->add();
    }
    result_.pages_fetched += wanted.size();
    core_.counters.pages_fetched->add(wanted.size());
    if (demand) {
      ++result_.demand_fetches;
      core_.counters.demand_fetches->add();
    }
  }
  core_.enforce_cache_capacity(core_.node(node_));
}

void FamilyRunner::ensure_fresh(ObjectId object, const PageSet& pages) {
  fault_checkpoint();
  const auto mit = object_maps_.find(object);
  if (mit == object_maps_.end())
    throw Error("attribute access without an acquired lock / page map");
  ObjectImage& img = local_image(object);
  PageSet missing(pages.universe_size());
  {
    Node& mine = core_.node(node_);
    std::lock_guard<std::mutex> lock(mine.store_mu);
    for (const PageIndex p : pages.to_vector()) {
      const PageLocation& loc = mit->second.at(p);
      const bool fresh =
          loc.node == node_ ||
          (img.has_page(p) && img.page_version(p) >= loc.version);
      if (!fresh) missing.insert(p);
    }
  }
  if (missing.empty()) return;
  const ConsistencyProtocol& protocol = core_.protocol_for(core_.meta_of(object));
  if (!protocol.allows_demand_fetch())
    throw Error(std::string(protocol.name()) +
                ": method touched a page the transfer plan skipped "
                "(protocol invariant violated)");
  fetch_pages(object, img, missing, /*demand=*/true);
}

// ---------------------------------------------------------------------------
// Snapshot read path (mv_read): a declared read-only family resolves every
// page against the newest committed version at or below the stamp it took at
// attempt start.  No lock table, no GDO lock rounds, no blocking — writers
// never see it.
// ---------------------------------------------------------------------------

void FamilyRunner::begin_snapshot_attempt() {
  snapshot_stamp_ = core_.gdo.current_commit_tick();
  core_.snapshots.register_stamp(snapshot_stamp_);
  snapshot_active_ = true;
}

void FamilyRunner::end_snapshot_attempt() {
  if (!snapshot_active_) return;
  Node& mine = core_.node(node_);
  {
    std::lock_guard<std::mutex> lock(mine.store_mu);
    for (const ObjectId object : snapshot_objects_)
      mine.store.unpin_snapshot(object);
  }
  snapshot_objects_.clear();
  snapshot_versions_.clear();
  core_.snapshots.release_stamp(snapshot_stamp_);
  snapshot_active_ = false;
}

void FamilyRunner::snapshot_acquire(ObjectId object) {
  // Linear scan: snapshot families touch a handful of objects, and this
  // doubles as the pin set released at attempt end.
  for (const ObjectId seen : snapshot_objects_)
    if (seen == object) return;

  Node& mine = core_.node(node_);
  bool have_map = false;
  {
    std::lock_guard<std::mutex> lock(mine.store_mu);
    const auto it = mine.snapshot_maps.find(object);
    // A cached map with tick >= our stamp already contains every
    // publication our snapshot may resolve to.
    have_map = it != mine.snapshot_maps.end() &&
               it->second.tick >= snapshot_stamp_;
  }
  if (!have_map) {
    // One lock-free directory round: where does each page's newest copy
    // live?  This replaces the lock acquisition round — it is the only
    // directory traffic a snapshot family generates per object.
    ScopedSpan round(&core_.obs.tracer, SpanPhase::kSnapshotMapRound,
                     family_.id().value(), node_.value(), object.value());
    core_.scheduler->preempt(index_);
    GdoService::SnapshotMap fetched = core_.gdo.snapshot_lookup(object, node_);
    core_.counters.snapshot_map_refreshes->add();
    if (core_.gdo.home_of(object) != node_) {
      ++result_.remote_round_trips;
      core_.counters.remote_round_trips->add();
    }
    std::lock_guard<std::mutex> lock(mine.store_mu);
    mine.snapshot_maps[object] =
        Node::CachedSnapshotMap{std::move(fetched.map), fetched.tick};
  }
  {
    std::lock_guard<std::mutex> lock(mine.store_mu);
    if (mine.store.find(object) == nullptr) {
      const ObjectMeta meta = core_.meta_of(object);
      mine.store.create(object, meta.num_pages, core_.config.page_size,
                        /*materialize=*/false);
    }
    mine.store.pin_snapshot(object);
    mine.touch(object);
  }
  snapshot_objects_.push_back(object);
}

void FamilyRunner::snapshot_read_bytes(Transaction& txn, ObjectId object,
                                       const PageSet& pages,
                                       std::uint64_t offset,
                                       std::span<std::byte> out) {
  snapshot_acquire(object);  // child invocations reach here un-acquired
  Node& mine = core_.node(node_);
  const std::vector<PageIndex> wanted = pages.to_vector();

  // Pass 1 — decide each page's REQUIRED version: the newest publication at
  // or below the stamp.  A locally resolvable version is not enough — a
  // residual copy from an earlier family can be admissible (old tick) yet
  // older than the version the snapshot must observe.  The cached snapshot
  // map (taken at tick >= stamp, so it covers every publication <= stamp)
  // decides: when a page's last publication is at or below the stamp, the
  // map names the required version outright; when it is above, only the
  // owner's version ring knows which older version tops out at the stamp.
  PageSet missing(pages.universe_size());
  {
    std::lock_guard<std::mutex> lock(mine.store_mu);
    const auto mit = mine.snapshot_maps.find(object);
    if (mit == mine.snapshot_maps.end())
      throw Error("snapshot read without a snapshot map");
    const PageMap& map = mit->second.map;
    const ObjectImage& img = mine.store.get(object);
    for (const PageIndex p : wanted) {
      if (snapshot_versions_.count({object.value(), p.value()}))
        continue;  // resolved earlier in this attempt
      const PageLocation& loc = map.at(p);
      if (loc.node == node_) {
        // We hold the authoritative lineage (live page + ring).
        const std::optional<SnapshotView> v =
            img.snapshot_page(p, snapshot_stamp_);
        if (!v)
          throw SnapshotUnavailableError(
              "snapshot version unresolvable at the owning site, object " +
              std::to_string(object.value()));
        snapshot_versions_[{object.value(), p.value()}] = v->version;
      } else if (loc.tick <= snapshot_stamp_) {
        snapshot_versions_[{object.value(), p.value()}] = loc.version;
        const std::optional<SnapshotView> v =
            img.snapshot_page(p, snapshot_stamp_);
        if (!v || v->version != loc.version) missing.insert(p);
      } else {
        missing.insert(p);
      }
    }
  }
  if (!missing.empty())
    snapshot_fetch(object, missing);
  core_.counters.snapshot_local_hits->add(wanted.size() - missing.count());

  // Pass 2 — resolve and copy under ONE store_mu hold (SnapshotView borrows
  // storage, so the views must stay valid through the byte copy), verifying
  // every page against its required version.
  std::lock_guard<std::mutex> lock(mine.store_mu);
  const ObjectImage& img = mine.store.get(object);
  CheckSink* const s = check();
  for (const PageIndex p : wanted) {
    const auto rit = snapshot_versions_.find({object.value(), p.value()});
    if (rit == snapshot_versions_.end())
      throw SnapshotUnavailableError(
          "snapshot version never resolved for object " +
          std::to_string(object.value()) + " page " +
          std::to_string(p.value()));
    const std::optional<SnapshotView> v = img.snapshot_page(p, snapshot_stamp_);
    if (!v || v->version != rit->second)
      // The version we just adopted (or found) raced an eviction; a fresh
      // stamp resolves against live state, which is always present.
      throw SnapshotUnavailableError(
          "snapshot version unavailable for object " +
          std::to_string(object.value()) + " page " + std::to_string(p.value()));
    core_.counters.snapshot_reads->add();
    if (s != nullptr)
      s->on_snapshot_read(family_.id(), txn.id().serial, object, p, v->version,
                          snapshot_stamp_);
    const std::uint64_t page_size = core_.config.page_size;
    const std::uint64_t lo = std::max<std::uint64_t>(offset,
                                                     p.value() * page_size);
    const std::uint64_t hi = std::min<std::uint64_t>(
        offset + out.size(), (p.value() + 1ULL) * page_size);
    if (lo >= hi) continue;  // declared page outside this attribute span
    std::copy_n(v->data + (lo - p.value() * page_size), hi - lo,
                out.data() + (lo - offset));
  }
}

void FamilyRunner::snapshot_fetch(ObjectId object, const PageSet& missing) {
  PageMap map;
  Node& mine = core_.node(node_);
  {
    std::lock_guard<std::mutex> lock(mine.store_mu);
    const auto it = mine.snapshot_maps.find(object);
    if (it == mine.snapshot_maps.end())
      throw Error("snapshot fetch without a snapshot map");
    map = it->second.map;
  }
  ScopedSpan gather(&core_.obs.tracer, SpanPhase::kSnapshotFetch,
                    family_.id().value(), node_.value(), object.value());

  // Group per owning site, visited in node-id order (same deterministic
  // traffic discipline as fetch_pages).
  const std::vector<PageIndex> wanted_all = missing.to_vector();
  const std::size_t n_nodes = core_.nodes.size();
  auto* counts = scratch_.allocate_array<std::uint32_t>(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) counts[i] = 0;
  for (const PageIndex p : wanted_all) {
    const NodeId owner = map.at(p).node;
    if (owner == node_)
      // The map says the version is already here, but snapshot_page could
      // not resolve it: the ring entry was trimmed before we registered, or
      // the live page moved past our stamp.  Retry under a fresh stamp.
      throw SnapshotUnavailableError(
          "snapshot version owned locally but unresolvable, object " +
          std::to_string(object.value()));
    ++counts[owner.value()];
  }
  auto* offsets = scratch_.allocate_array<std::uint32_t>(n_nodes + 1);
  offsets[0] = 0;
  for (std::size_t i = 0; i < n_nodes; ++i)
    offsets[i + 1] = offsets[i] + counts[i];
  auto* grouped = scratch_.allocate_array<PageIndex>(wanted_all.size());
  auto* cursor = scratch_.allocate_array<std::uint32_t>(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) cursor[i] = offsets[i];
  for (const PageIndex p : wanted_all)
    grouped[cursor[map.at(p).node.value()]++] = p;

  struct Fetched {
    PageIndex page{};
    std::vector<std::byte> data;
    Lsn version = 0;
    std::uint64_t tick = 0;
  };
  for (std::size_t sidx = 0; sidx < n_nodes; ++sidx) {
    if (counts[sidx] == 0) continue;
    const NodeId source(static_cast<std::uint32_t>(sidx));
    const std::span<const PageIndex> wanted(grouped + offsets[sidx],
                                            counts[sidx]);
    core_.scheduler->preempt(index_);
    core_.transport.send({MessageKind::kSnapshotFetchRequest, node_, source,
                          object,
                          wanted.size() * wire::kPageRequestEntryBytes});
    ScopedServeSpan serve(&core_.obs.tracer, SpanPhase::kPageServe,
                          source.value(), object.value());
    std::vector<Fetched> copied;
    copied.reserve(wanted.size());
    std::uint64_t reply_payload = 0;
    {
      Node& src = core_.node(source);
      std::lock_guard<std::mutex> lock(src.store_mu);
      const ObjectImage* simg = src.store.find(object);
      for (const PageIndex p : wanted) {
        const std::optional<SnapshotView> v =
            simg != nullptr ? simg->snapshot_page(p, snapshot_stamp_)
                            : std::nullopt;
        if (!v)
          // The owner's ring dropped the version (it was published before
          // our stamp registered).  Retry under a fresh stamp.
          throw SnapshotUnavailableError(
              "snapshot version gone at owner, object " +
              std::to_string(object.value()) + " page " +
              std::to_string(p.value()));
        copied.push_back(
            Fetched{p,
                    std::vector<std::byte>(v->data,
                                           v->data + core_.config.page_size),
                    v->version, v->tick});
        reply_payload += core_.config.page_size + 8ULL;
      }
    }
    core_.transport.send({MessageKind::kSnapshotFetchReply, source, node_,
                          object, reply_payload});
    serve.finish();
    {
      std::lock_guard<std::mutex> lock(mine.store_mu);
      ObjectImage& img = mine.store.get(object);
      for (Fetched& f : copied) {
        // emplace: a page whose requirement the map already named keeps it;
        // the verify pass cross-checks the owner's resolution against it.
        snapshot_versions_.emplace(
            std::make_pair(object.value(), f.page.value()), f.version);
        img.adopt_version(f.page, std::move(f.data), f.version, f.tick);
      }
    }
    ++result_.remote_round_trips;
    core_.counters.remote_round_trips->add();
    core_.counters.snapshot_fetches->add(wanted.size());
  }
}

void FamilyRunner::commit_root(Transaction& root) {
  // Last chance to notice that our site crashed and restarted under this
  // attempt (a method touching no attributes has no checkpoint in between):
  // committing wiped state would publish garbage versions.
  fault_checkpoint();
  // From here the family's effects begin to become visible (versions
  // stamped, locks released); a crash inside this window must not retry.
  committing_ = true;
  root.commit_root();
  {
    ScopedSpan report(&core_.obs.tracer, SpanPhase::kCommitReport,
                      family_.id().value(), node_.value());
    release_all(/*commit=*/true);
  }
  committing_ = false;
}

void FamilyRunner::abort_subtree(Transaction& txn) {
  ScopedSpan undo(&core_.obs.tracer, SpanPhase::kUndo, family_.id().value(),
                  node_.value(), txn.target().value());
  txn.abort(undo_resolver());
  const std::vector<ObjectId> to_release = family_.locks().on_abort(txn);
  if (CheckSink* s = check())
    s->on_subtree_abort(family_.id(), txn.id().serial,
                        static_cast<std::uint32_t>(family_.num_txns()));
  if (to_release.empty()) return;
  std::vector<ReleaseItem> items;
  items.reserve(to_release.size());
  Node& mine = core_.node(node_);
  for (const ObjectId object : to_release) {
    object_maps_.erase(object);
    {
      std::lock_guard<std::mutex> lock(mine.store_mu);
      if (ObjectImage* img = mine.store.find(object)) img->clear_dirty();
      unpin_here(mine, object);
    }
    items.push_back(ReleaseItem{object, std::nullopt});
  }
  (void)core_.gdo.release_batch(family_.id(), node_, items);
  if (CheckSink* s = check())
    for (const auto& item : items)
      s->on_lock_release(family_.id(), item.object,
                         CheckReleaseReason::kSubtreeAbort);
}

void FamilyRunner::broken_retention_release(Transaction& txn) {
  // Rule-4 disposition applied at pre-commit instead of rule-3 retention:
  // the child's subtree-exclusive locks leave the family early, exposing
  // its (now stamped-as-committed) writes to other families before the
  // root decides.  The lock oracle flags the kSubtreeAbort releases below
  // on every schedule; the serializability oracle additionally finds the
  // non-serializable interleavings this enables.
  const std::vector<ObjectId> to_release = family_.locks().on_abort(txn);
  if (to_release.empty()) return;
  Node& mine = core_.node(node_);
  std::vector<ReleaseItem> items;
  items.reserve(to_release.size());
  for (const ObjectId object : to_release) {
    object_maps_.erase(object);
    const std::size_t npages = core_.meta_of(object).num_pages;
    const Lsn next = core_.gdo.snapshot(object).version_counter + 1;
    ReleaseItem item{object, ReleaseInfo{}};
    {
      std::lock_guard<std::mutex> lock(mine.store_mu);
      ObjectImage* img = mine.store.find(object);
      if (img != nullptr) {
        item.info->dirty = img->dirty_pages();
        if (!item.info->dirty.empty()) {
          const PageSet stamped = img->stamp_dirty(next);
          for (const PageIndex p : stamped.to_vector()) {
            if (core_.fault != nullptr)
              core_.fault->note_page(node_, object, npages, p, img->page(p));
            if (CheckSink* s = check())
              s->on_commit_stamp(family_.id(), object, p, next, node_);
          }
        }
      } else {
        item.info->dirty = PageSet(npages);
      }
      unpin_here(mine, object);
    }
    items.push_back(std::move(item));
  }
  (void)core_.gdo.release_batch(family_.id(), node_, items);
  if (CheckSink* s = check())
    for (const auto& item : items)
      s->on_lock_release(family_.id(), item.object,
                         CheckReleaseReason::kSubtreeAbort);
}

void FamilyRunner::abort_family(AbortReason /*reason*/) {
  ScopedSpan undo(&core_.obs.tracer, SpanPhase::kUndo, family_.id().value(),
                  node_.value());
  // UNDO the active path bottom-up (pre-committed children were absorbed
  // into their parents' logs; aborted ones already rolled back).
  const auto resolve = undo_resolver();
  for (Transaction* t = current_; t != nullptr; t = t->parent())
    if (t->state() == TxnState::kActive) t->abort(resolve);

  // Withdraw a queued lock request, if any.
  if (blocked_on_.valid()) {
    (void)core_.gdo.cancel_waiter(blocked_on_, family_.id());
    blocked_on_ = ObjectId{};
  }
  // A grant may have raced with victimization (concurrent mode): the GDO
  // already lists us as a holder even though the lock table does not.
  if (pending_grant_) {
    const ObjectId object = pending_grant_->object;
    pending_grant_.reset();
    if (family_.locks().find(object) == nullptr)
      (void)core_.gdo.release_family(object, family_.id(), node_, nullptr);
  }
  release_all(/*commit=*/false);
  current_ = nullptr;
}

void FamilyRunner::release_all(bool commit) {
  const std::vector<ObjectId> objects = family_.locks().all_objects();
  if (objects.empty()) {
    object_maps_.clear();
    family_.locks().clear();
    return;
  }
  Node& mine = core_.node(node_);
  std::vector<ReleaseItem> items;
  items.reserve(objects.size());
  for (const ObjectId object : objects) {
    // Lock-cache path: keep the global lock parked at this site (zero
    // messages) and defer the commit's report into the site cache.
    if (core_.config.lock_cache && try_retain(object, commit)) continue;
    items.push_back(make_release_item(object, commit));
  }

  // Stamp new page versions BEFORE the directory publishes them so a woken
  // family never fetches a page whose stamp lags (concurrent mode).  The
  // version values must match what the GDO will assign: it increments the
  // per-object counter exactly when the dirty set is non-empty — after
  // catching up to any deferred flush folded into the release — so we
  // pre-compute by peeking the entry's counter.
  struct Stamped {
    ObjectId object;
    std::vector<std::pair<PageIndex, Page>> pages;
    Lsn version;
  };
  std::vector<Stamped> pushes;
  if (commit) {
    // One commit tick per committing family, allocated lazily at the first
    // dirty item and shared by all of them (the family commits atomically).
    // Allocated whether or not mv_read is on: the tick rides the release
    // message and the map entry at zero modeled wire cost, so knob-off
    // traffic stays bit-identical by construction.
    std::uint64_t commit_tick = 0;
    for (auto& item : items) {
      if (!item.info || item.info->dirty.empty()) continue;
      if (commit_tick == 0) commit_tick = core_.gdo.allocate_commit_tick();
      item.info->commit_tick = commit_tick;
      const Lsn next =
          std::max(core_.gdo.snapshot(item.object).version_counter,
                   item.info->advance_to) + 1;
      const std::size_t npages = core_.meta_of(item.object).num_pages;
      std::lock_guard<std::mutex> lock(mine.store_mu);
      ObjectImage& img = mine.store.get(item.object);
      const PageSet stamped = img.stamp_dirty(next, commit_tick);
      if (core_.fault != nullptr)
        for (const PageIndex p : stamped.to_vector())
          core_.fault->note_page(node_, item.object, npages, p, img.page(p));
      if (CheckSink* s = check())
        for (const PageIndex p : stamped.to_vector())
          s->on_commit_stamp(family_.id(), item.object, p, next, node_);
      if (core_.protocol_for(core_.meta_of(item.object)).eager_push_on_release()) {
        Stamped s{item.object, {}, next};
        for (const PageIndex p : stamped.to_vector())
          s.pages.emplace_back(p, img.page(p));
        pushes.push_back(std::move(s));
      }
    }
  } else {
    for (const auto& item : items) {
      std::lock_guard<std::mutex> lock(mine.store_mu);
      if (ObjectImage* img = mine.store.find(item.object)) img->clear_dirty();
    }
  }

  // RC extension: eagerly push the committed updates to every caching site
  // BEFORE releasing the lock.  Pushing after release races with the next
  // holder: its freshly committed (newer) pages at a caching site could be
  // clobbered by our in-flight (older) push.
  for (const Stamped& s : pushes) push_updates(s.object, s.pages);

  if (!items.empty())
    (void)core_.gdo.release_batch(family_.id(), node_, items);
  if (CheckSink* s = check())
    for (const auto& item : items)
      s->on_lock_release(family_.id(), item.object,
                         commit ? CheckReleaseReason::kRootCommit
                                : CheckReleaseReason::kRootAbort);

  {
    std::lock_guard<std::mutex> lock(mine.store_mu);
    for (const auto& item : items) unpin_here(mine, item.object);
  }
  object_maps_.clear();
  family_.locks().clear();
  core_.enforce_lock_cache_capacity(mine);
}

bool FamilyRunner::try_retain(ObjectId object, bool commit) {
  const auto mit = object_maps_.find(object);
  const LocalLock* lock_state = family_.locks().find(object);
  if (mit == object_maps_.end() || lock_state == nullptr) return false;
  if (!core_.gdo.retain_release(object, family_.id(), node_)) return false;

  // The lock is now parked at the directory as a cached-holder marker;
  // mirror it in the site cache together with the grant's page map and —
  // on commit — the deferred release report.  No RC eager push from here:
  // deferred versions must not propagate to other sites before they are
  // flushed (a crash of this site would orphan them in remote caches).
  Node& mine = core_.node(node_);
  CachedLock entry;
  entry.mode = lock_state->global_mode;
  entry.map = mit->second;
  if (const std::optional<CachedLock> prev = mine.lock_cache.lookup(object)) {
    entry.report = prev->report;
    entry.max_version = prev->max_version;
  }
  const std::size_t npages = core_.meta_of(object).num_pages;
  {
    std::lock_guard<std::mutex> lock(mine.store_mu);
    ObjectImage* img = mine.store.find(object);
    if (img != nullptr && commit) {
      if (entry.mode == LockMode::kWrite) {
        // Residency ("current") reports are deferred like the dirty stamps
        // and applied when the report is flushed.
        const PageSet report =
            core_.protocol_for(core_.meta_of(object)).pages_to_report(*img);
        for (const PageIndex p : report.to_vector()) {
          Lsn& rec = entry.report[p];
          rec = std::max(rec, img->page_version(p));
        }
      }
      if (!img->dirty_pages().empty()) {
        // Deferred version stamping: the directory's counter stands still
        // while releases are cached, so sequence locally above both the
        // counter and our own deferred maximum.
        const Lsn next =
            std::max(core_.gdo.snapshot(object).version_counter,
                     entry.max_version) + 1;
        const PageSet stamped = img->stamp_dirty(next);
        for (const PageIndex p : stamped.to_vector()) {
          entry.report[p] = next;
          if (core_.fault != nullptr)
            core_.fault->note_page(node_, object, npages, p, img->page(p));
          if (CheckSink* s = check())
            s->on_commit_stamp(family_.id(), object, p, next, node_);
        }
        entry.map.record_update(stamped, node_, next);
        entry.max_version = next;
      }
    } else if (img != nullptr) {
      img->clear_dirty();
    }
    unpin_here(mine, object);
  }
  mine.lock_cache.put(object, std::move(entry));
  return true;
}

ReleaseItem FamilyRunner::make_release_item(ObjectId object, bool commit) {
  Node& mine = core_.node(node_);
  // Fold the deferred report this site may still carry for the object into
  // the release, so versions stamped by earlier (cached) commits publish
  // together with ours.
  CachedFlush pending;
  if (core_.config.lock_cache) pending = mine.lock_cache.take_flush(object);
  if (!commit && pending.records.empty() && pending.advance_to == 0)
    return ReleaseItem{object, std::nullopt};

  ReleaseItem item{object, ReleaseInfo{}};
  if (commit) {
    // Residency ("current") reports move page-map ownership, so they are
    // only safe from WRITE holders: a read lock can be shared, and moving
    // ownership under a concurrent read holder would silently invalidate
    // the map copy that holder received with its grant (its later fetches
    // could then target a site that has since evicted the page).
    const LocalLock* lock_state = family_.locks().find(object);
    const bool exclusive =
        lock_state != nullptr && lock_state->global_mode == LockMode::kWrite;
    std::lock_guard<std::mutex> lock(mine.store_mu);
    if (const ObjectImage* img = mine.store.find(object)) {
      item.info->dirty = img->dirty_pages();
      if (exclusive) {
        const PageSet report =
            core_.protocol_for(core_.meta_of(object)).pages_to_report(*img);
        for (const PageIndex p : report.to_vector())
          item.info->current.emplace_back(p, img->page_version(p));
      }
    } else {
      item.info->dirty = PageSet(core_.meta_of(object).num_pages);
    }
  } else {
    item.info->dirty = PageSet(core_.meta_of(object).num_pages);
  }
  item.info->stamped = std::move(pending.records);
  item.info->advance_to = pending.advance_to;
  return item;
}

void FamilyRunner::push_updates(
    ObjectId object, const std::vector<std::pair<PageIndex, Page>>& pages) {
  if (pages.empty()) return;
  std::vector<NodeId> targets;
  for (const NodeId site : core_.gdo.caching_sites(object))
    if (site != node_) targets.push_back(site);
  if (targets.empty()) return;
  std::sort(targets.begin(), targets.end());

  const ObjectMeta meta = core_.meta_of(object);
  // Partial-failure semantics: unreachable sites are skipped (the push is
  // best-effort; a skipped site's stale pages are caught by the freshness
  // check on its next access) and the updates install only where the
  // multicast actually arrived.
  const std::vector<NodeId> skipped = core_.transport.send_to_all(
      {MessageKind::kUpdatePush, node_, node_, object,
       pages.size() * (core_.config.page_size + 8ULL)},
      targets);
  for (const NodeId site : targets) {
    if (std::find(skipped.begin(), skipped.end(), site) != skipped.end())
      continue;
    Node& target = core_.node(site);
    {
      std::lock_guard<std::mutex> lock(target.store_mu);
      ObjectImage& img = target.store.get_or_create(object, meta.num_pages,
                                                    core_.config.page_size);
      // Defensive version guard: never replace a newer page with an older
      // pushed copy (belt to the push-before-release braces above).
      for (const auto& [p, page] : pages)
        if (!img.has_page(p) || img.page_version(p) < page.version) {
          img.install_page(p, page);
          if (core_.fault != nullptr)
            core_.fault->note_page(site, object, meta.num_pages, p, page);
        }
    }
    core_.enforce_cache_capacity(target);
  }
}

ObjectImage& FamilyRunner::local_image(ObjectId object) {
  Node& mine = core_.node(node_);
  std::lock_guard<std::mutex> lock(mine.store_mu);
  if (ObjectImage* img = mine.store.find(object)) return *img;
  const ObjectMeta meta = core_.meta_of(object);
  return mine.store.create(object, meta.num_pages, core_.config.page_size,
                           /*materialize=*/false);
}

std::function<ObjectImage&(ObjectId)> FamilyRunner::undo_resolver() {
  return [this](ObjectId object) -> ObjectImage& {
    return local_image(object);
  };
}

// ---------------------------------------------------------------------------
// MethodContext
// ---------------------------------------------------------------------------

PageSet MethodContext::check_access(AttrId attr, bool write) const {
  const bool declared = write ? method_.writes.contains(attr)
                              : (method_.reads.contains(attr) ||
                                 method_.writes.contains(attr));
  if (!declared && !method_.may_access_undeclared &&
      runner_.core_.config.strict_access_checks) {
    throw UsageError("method '" + method_.name + "' " +
                     (write ? "writes" : "reads") +
                     " undeclared attribute '" +
                     cls_.layout().attribute(attr).name +
                     "' (the conservative access analysis must cover every "
                     "access; set may_access_undeclared for data-dependent "
                     "methods)");
  }
  return cls_.layout().pages_of(attr);
}

void MethodContext::read_raw(AttrId attr, std::span<std::byte> out) {
  if (out.size() > cls_.layout().attribute(attr).size_bytes)
    throw UsageError("read_raw: larger than attribute");
  const PageSet pages = check_access(attr, /*write=*/false);
  if (runner_.snapshot_active()) {
    runner_.snapshot_read_bytes(txn_, txn_.target(), pages,
                                cls_.layout().offset_of(attr), out);
    return;
  }
  runner_.ensure_fresh(txn_.target(), pages);
  ObjectImage& img = runner_.local_image(txn_.target());
  Node& mine = runner_.core_.node(runner_.node_);
  std::lock_guard<std::mutex> lock(mine.store_mu);
  if (CheckSink* s = runner_.check())
    for (const PageIndex p : pages.to_vector())
      s->on_page_access(runner_.family_.id(), txn_.id().serial, txn_.target(),
                        p, img.has_page(p) ? img.page_version(p) : 0,
                        /*write=*/false);
  img.read_bytes(cls_.layout().offset_of(attr), out);
}

void MethodContext::write_raw(AttrId attr, std::span<const std::byte> in) {
  // Submission-time validation rejects read-only roots whose declared call
  // graph writes; this guards the dynamic escape hatches (invoke through
  // may_access_undeclared reaching a writer at runtime).
  if (runner_.snapshot_active())
    throw UsageError("method '" + method_.name +
                     "' writes inside a read-only (snapshot) family");
  if (in.size() > cls_.layout().attribute(attr).size_bytes)
    throw UsageError("write_raw: larger than attribute");
  const PageSet pages = check_access(attr, /*write=*/true);
  runner_.ensure_fresh(txn_.target(), pages);
  ObjectImage& img = runner_.local_image(txn_.target());
  Node& mine = runner_.core_.node(runner_.node_);
  std::lock_guard<std::mutex> lock(mine.store_mu);
  if (CheckSink* s = runner_.check())
    for (const PageIndex p : pages.to_vector())
      s->on_page_access(runner_.family_.id(), txn_.id().serial, txn_.target(),
                        p, img.has_page(p) ? img.page_version(p) : 0,
                        /*write=*/true);
  const std::uint64_t offset = cls_.layout().offset_of(attr);
  txn_.undo().before_write(img, offset, in.size());
  img.write_bytes(offset, in);
}

bool MethodContext::invoke(ObjectId object, MethodId method) {
  return runner_.run_invocation(&txn_, object, method);
}

bool MethodContext::invoke(ObjectId object, const std::string& method) {
  const ObjectMeta meta = runner_.core_.meta_of(object);
  return invoke(object,
                runner_.core_.registry.get(meta.cls).find_method(method));
}

}  // namespace lotec
