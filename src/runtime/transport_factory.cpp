#include <memory>

#include "runtime/core.hpp"
#include "wire/wire_transport.hpp"

namespace lotec {

std::unique_ptr<Transport> make_cluster_transport(const ClusterConfig& cfg) {
  if (cfg.wire.enabled)
    return std::make_unique<wire::WireTransport>(cfg.nodes, cfg.net,
                                                 cfg.wire);
  return std::make_unique<Transport>(cfg.nodes, cfg.net);
}

}  // namespace lotec
