#include "runtime/scheduler.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace lotec {

// ---------------------------------------------------------------------------
// TokenScheduler
// ---------------------------------------------------------------------------

void TokenScheduler::run(std::vector<std::function<void()>> bodies,
                         StallHandler on_stall) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    bodies_ = std::move(bodies);
    const std::size_t n = bodies_.size();
    states_.assign(n, State::kNotStarted);
    victim_.assign(n, false);
    threads_.clear();
    threads_.reserve(n);
    on_stall_ = std::move(on_stall);
    current_ = kNone;
    next_unstarted_ = 0;
    active_ = 0;
    done_ = 0;
    rng_ = Rng(config_.seed);
    cancelled_.store(false);
    failure_.clear();
    if (n > 0) schedule_next_locked();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return done_ == states_.size(); });
  }
  for (auto& t : threads_) t.join();
  if (cancelled_.load())
    throw Error("TokenScheduler: run failed: " + failure_);
}

void TokenScheduler::schedule_next_locked() {
  if (current_ != kNone) return;
  std::vector<std::size_t> runnable;
  for (std::size_t i = 0; i < states_.size(); ++i)
    if (states_[i] == State::kRunnable) runnable.push_back(i);
  const bool can_spawn = next_unstarted_ < states_.size() &&
                         active_ < config_.max_active;

  if (runnable.empty() && !can_spawn) {
    if (done_ == states_.size()) {
      cv_.notify_all();
      return;
    }
    // Stall: every active family is blocked.  Ask the runtime for a
    // deadlock victim.
    std::size_t victim = kNoVictim;
    if (on_stall_ && !cancelled_.load()) victim = on_stall_();
    if (victim == kNoVictim || victim >= states_.size() ||
        states_[victim] != State::kBlocked) {
      // Unresolvable stall (an internal bug): cancel the run and drain by
      // victimizing blocked families one at a time; executors observe
      // cancelled() and stop retrying.
      if (!cancelled_.load()) {
        cancelled_.store(true);
        failure_ = "stall with no resolvable deadlock victim";
      }
      victim = kNoVictim;
      for (std::size_t i = 0; i < states_.size(); ++i)
        if (states_[i] == State::kBlocked) {
          victim = i;
          break;
        }
      if (victim == kNoVictim) {
        cv_.notify_all();  // nothing to drain; let run() fail on join
        return;
      }
    }
    victim_[victim] = true;
    states_[victim] = State::kRunnable;
    current_ = victim;
    cv_.notify_all();
    return;
  }

  const std::size_t k = runnable.size() + (can_spawn ? 1 : 0);
  std::size_t pick = 0;
  if (k > 1) {
    if (config_.picker) {
      pick = config_.picker(runnable,
                            can_spawn ? next_unstarted_ : kNoSpawn);
      if (pick >= k) {
        // Cancel and drain rather than throw: this runs on family threads.
        if (!cancelled_.load()) {
          cancelled_.store(true);
          failure_ = "picker returned choice " + std::to_string(pick) +
                     " of " + std::to_string(k);
        }
        pick = 0;
      }
    } else {
      pick = rng_.below(k);
    }
  }
  if (pick < runnable.size()) {
    current_ = runnable[pick];
    cv_.notify_all();
    return;
  }
  // Spawn the next family.
  const std::size_t idx = next_unstarted_++;
  ++active_;
  states_[idx] = State::kRunnable;
  current_ = idx;
  threads_.emplace_back([this, idx] {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // The token was handed to us at spawn time.
      states_[idx] = State::kRunning;
    }
    try {
      bodies_[idx]();
    } catch (const std::exception& e) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!cancelled_.load()) {
        cancelled_.store(true);
        failure_ = std::string("family body leaked exception: ") + e.what();
      }
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!cancelled_.load()) {
        cancelled_.store(true);
        failure_ = "family body leaked a non-std exception";
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      states_[idx] = State::kDone;
      ++done_;
      --active_;
      current_ = kNone;
      schedule_next_locked();
      cv_.notify_all();
    }
  });
}

void TokenScheduler::await_token_locked(std::unique_lock<std::mutex>& lock,
                                        std::size_t idx) {
  cv_.wait(lock, [&] { return current_ == idx; });
  states_[idx] = State::kRunning;
  if (victim_[idx]) {
    victim_[idx] = false;
    throw DeadlockVictimError(idx);
  }
}

void TokenScheduler::block(std::size_t idx) {
  std::unique_lock<std::mutex> lock(mu_);
  if (current_ != idx)
    throw UsageError("TokenScheduler::block called without the token");
  states_[idx] = State::kBlocked;
  current_ = kNone;
  schedule_next_locked();
  await_token_locked(lock, idx);
}

void TokenScheduler::wake(std::size_t idx) {
  std::unique_lock<std::mutex> lock(mu_);
  if (idx >= states_.size())
    throw UsageError("TokenScheduler::wake: index out of range");
  if (states_[idx] == State::kBlocked) states_[idx] = State::kRunnable;
}

void TokenScheduler::preempt(std::size_t idx) {
  std::unique_lock<std::mutex> lock(mu_);
  if (current_ != idx)
    throw UsageError("TokenScheduler::preempt called without the token");
  states_[idx] = State::kRunnable;
  current_ = kNone;
  schedule_next_locked();
  await_token_locked(lock, idx);
}

// ---------------------------------------------------------------------------
// ConcurrentScheduler
// ---------------------------------------------------------------------------

void ConcurrentScheduler::run(std::vector<std::function<void()>> bodies,
                              StallHandler on_stall) {
  const std::size_t n = bodies.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    blocked_.assign(n, 0);
    wake_flag_.assign(n, 0);
    victim_.assign(n, 0);
    cancelled_.store(false);
    failure_.clear();
  }

  std::mutex pool_mu;
  std::condition_variable pool_cv;
  std::size_t active = 0;
  std::vector<std::thread> threads;
  threads.reserve(n);
  std::atomic<bool> stop_watchdog{false};

  std::thread watchdog([&] {
    while (!stop_watchdog.load()) {
      std::this_thread::sleep_for(config_.watchdog_period);
      std::size_t victim = kNoVictim;
      {
        std::lock_guard<std::mutex> lock(mu_);
        const bool any_blocked =
            std::any_of(blocked_.begin(), blocked_.end(),
                        [](std::uint8_t b) { return b != 0; });
        if (!any_blocked) continue;
      }
      if (on_stall) victim = on_stall();
      if (victim == kNoVictim) continue;
      std::lock_guard<std::mutex> lock(mu_);
      if (victim < victim_.size() && blocked_[victim]) {
        victim_[victim] = 1;
        cv_.notify_all();
      }
    }
  });

  for (std::size_t i = 0; i < n; ++i) {
    {
      std::unique_lock<std::mutex> lock(pool_mu);
      pool_cv.wait(lock, [&] { return active < config_.max_active; });
      ++active;
    }
    threads.emplace_back([&, i] {
      try {
        bodies[i]();
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!cancelled_.load()) {
          cancelled_.store(true);
          failure_ = std::string("family body leaked exception: ") + e.what();
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!cancelled_.load()) {
          cancelled_.store(true);
          failure_ = "family body leaked a non-std exception";
        }
      }
      std::lock_guard<std::mutex> lock(pool_mu);
      --active;
      pool_cv.notify_all();
    });
  }
  for (auto& t : threads) t.join();
  stop_watchdog.store(true);
  watchdog.join();
  if (cancelled_.load())
    throw Error("ConcurrentScheduler: run failed: " + failure_);
}

void ConcurrentScheduler::block(std::size_t idx) {
  std::unique_lock<std::mutex> lock(mu_);
  if (wake_flag_[idx]) {  // the wake won the race with our block
    wake_flag_[idx] = 0;
    return;
  }
  blocked_[idx] = 1;
  cv_.wait(lock, [&] { return wake_flag_[idx] || victim_[idx]; });
  blocked_[idx] = 0;
  if (wake_flag_[idx]) {
    // Prefer the grant over victimization: the cycle is already broken.
    wake_flag_[idx] = 0;
    victim_[idx] = 0;
    return;
  }
  victim_[idx] = 0;
  throw DeadlockVictimError(idx);
}

void ConcurrentScheduler::wake(std::size_t idx) {
  std::lock_guard<std::mutex> lock(mu_);
  if (idx >= wake_flag_.size())
    throw UsageError("ConcurrentScheduler::wake: index out of range");
  wake_flag_[idx] = 1;
  cv_.notify_all();
}

}  // namespace lotec
