// Cluster configuration and per-root-transaction results.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/ids.hpp"
#include "fault/fault_schedule.hpp"
#include "gdo/gdo_service.hpp"
#include "net/transport.hpp"
#include "net/wire_config.hpp"
#include "obs/observability.hpp"
#include "page/undo_log.hpp"
#include "protocol/protocol.hpp"
#include "runtime/scheduler.hpp"

namespace lotec {

class CheckSink;

/// Declared intent of a root family, validated at submission (a declared
/// read-only family whose root method writes — or *may* write, via
/// may_access_undeclared — is rejected before it runs).  With
/// ClusterConfig::mv_read on, read-only families take the snapshot path:
/// no locks, no GDO lock rounds, never blocking or aborting writers.  With
/// it off the kind is inert — purely a validated annotation — so traffic
/// stays bit-identical.
enum class FamilyKind : std::uint8_t { kReadWrite, kReadOnly };

[[nodiscard]] constexpr const char* to_string(FamilyKind k) noexcept {
  switch (k) {
    case FamilyKind::kReadWrite: return "read-write";
    case FamilyKind::kReadOnly: return "read-only";
  }
  return "?";
}

enum class SchedulerMode : std::uint8_t {
  /// Token-passing cooperative scheduling; identical seeds give identical
  /// traces.  Used by every benchmark and property test.
  kDeterministic,
  /// Free-running threads (real parallelism) with watchdog-driven deadlock
  /// detection.
  kConcurrent
};

struct ClusterConfig {
  /// Number of nodes (sites) in the distributed system.
  std::size_t nodes = 4;
  /// Which consistency protocol maintains the DSM.
  ProtocolKind protocol = ProtocolKind::kLotec;
  /// DSM page size in bytes.
  std::uint32_t page_size = 4096;
  /// UNDO implementation (Section 4.1: "local UNDO logs or shadow pages").
  UndoStrategy undo = UndoStrategy::kByteRange;
  GdoConfig gdo;
  NetworkConfig net;
  /// Deterministic fault injection (crashes, restarts, partitions, message
  /// chaos).  Requires the deterministic scheduler; node faults additionally
  /// require gdo.replicate so directory state survives its home.
  FaultConfig fault;
  SchedulerMode scheduler = SchedulerMode::kDeterministic;
  /// Cross-process wire transport (src/wire): run one lotec_worker OS
  /// process per node and ship every accounted message over real sockets.
  /// Requires the deterministic scheduler; incompatible with schedule
  /// exploration, check sinks and FaultEngine *message* faults (crash/
  /// restart and partitions work — worker processes really die).
  WireConfig wire;
  /// Seed for every random decision (scheduling, workload bodies).
  std::uint64_t seed = 1;
  /// Families concurrently active (threads).
  std::size_t max_active_families = 16;
  /// Restart budget for deadlock victims.
  int max_retries = 50;
  /// Reject method accesses outside the declared attribute sets (the
  /// compiler's conservative analysis must cover every access; methods with
  /// data-dependent accesses set MethodDef::may_access_undeclared).
  bool strict_access_checks = true;
  /// Inter-family lock caching (callback locking): a site retains its
  /// global locks across family lifetimes and re-grants them locally with
  /// zero messages; conflicting remote requests revoke them via a callback
  /// round.  Off by default — the paper's figures are produced without it —
  /// and requires the deterministic scheduler.
  bool lock_cache = false;
  /// Cached global locks kept per site; 0 = unbounded.  Beyond the budget
  /// the least-recently-used cached lock is flushed back to the directory.
  std::size_t lock_cache_capacity = 0;
  /// Multi-version snapshot reads: declared read-only families resolve
  /// every page against the newest committed version at or below a start
  /// stamp instead of locking.  Commit ticks are allocated and published
  /// unconditionally (they ride existing frames and map entries at zero
  /// modeled wire cost, like the PR 5 trace context in frame padding), so
  /// with this off the wire traffic is bit-identical — only the read path
  /// is gated.  Requires the deterministic scheduler; incompatible with
  /// lock_cache (deferred stamping publishes versions without ticks), the
  /// wire transport, and fault injection.
  bool mv_read = false;
  /// Committed versions retained per page beyond the live one when mv_read
  /// is on (the paper-side bound on snapshot lag).  GC additionally fences
  /// on the oldest live snapshot stamp, so a pinned version is never
  /// reclaimed even past this bound.
  std::size_t mv_version_ring = 4;
  /// Per-node cache budget in pages; 0 = unbounded.  Under pressure the
  /// least-recently-acquired unpinned objects lose the pages whose
  /// authoritative newest copy lives elsewhere (a site never discards the
  /// only up-to-date copy of a page).  Evicted pages are simply re-fetched
  /// by the normal transfer/demand machinery on the next acquisition.
  std::size_t cache_capacity_pages = 0;
  /// Observability: span tracing config (metrics counters are always on).
  ObsConfig obs;
  /// Controlled scheduling (src/check): when set, replaces the token
  /// scheduler's seeded RNG at every decision point with more than one
  /// choice.  Requires the deterministic scheduler.
  SchedulePicker schedule_picker;
  /// Invariant-oracle event sink (src/check).  Not owned; must outlive the
  /// cluster.  Null (the default) costs one pointer comparison per emission
  /// point and leaves message traffic bit-identical.  Requires the
  /// deterministic scheduler (oracles assume a linearized event stream).
  CheckSink* check_sink = nullptr;
  /// Test-only correctness mutations, hidden behind this struct so no
  /// production path flips them by accident.  The mutation tests in
  /// tests/check_*.cpp break an invariant on purpose and assert the
  /// checker's oracles produce a counterexample.
  struct TestMutations {
    /// Break Moss retained-lock inheritance: a pre-committing
    /// sub-transaction RELEASES the global locks only its subtree touched
    /// (publishing its writes) instead of passing them up retained.
    bool break_retention = false;
  } test_mutations;

  /// Reject incoherent knob combinations with an actionable UsageError.
  /// Called by ClusterCore construction (so directly-built clusters get the
  /// same errors as run_scenario) and by ExperimentOptions::validate().
  void validate() const;
};

/// Outcome and per-family metrics of one root transaction.
struct TxnResult {
  bool committed = false;
  /// Final abort reason when !committed.
  AbortReason reason = AbortReason::kUser;
  /// Execution attempts (1 + deadlock restarts).
  int attempts = 0;
  int deadlock_retries = 0;
  /// Restarts forced by injected faults (crashes / dropped messages).
  int fault_retries = 0;
  /// The family's site crashed after commit processing had begun; the
  /// outcome at the directory is undefined-but-consistent (some locks
  /// released and pages stamped, the rest reclaimed by lease), so the
  /// family is reported failed without retry.
  bool crashed_in_commit = false;
  /// Transactions in the family's tree (last attempt).
  std::uint32_t txns_in_tree = 0;
  std::uint64_t demand_fetches = 0;
  std::uint64_t pages_fetched = 0;
  /// Pages whose transfer was satisfied by a sub-page delta (DSD mode).
  std::uint64_t delta_pages = 0;
  /// Blocking remote round trips on the family's critical path (lock
  /// acquisitions that left the site, page-fetch batches per source site,
  /// demand fetches).  The Section 5.1 prefetch ablation reduces these.
  std::uint64_t remote_round_trips = 0;
  std::uint64_t local_lock_grants = 0;
};

/// One root transaction to execute: the user invokes `method` on `object`.
struct RootRequest {
  ObjectId object{};
  MethodId method{};
  /// Site where the family executes; invalid = round-robin placement.
  NodeId node{};
  /// Section 5.1 extension: objects whose locks (and predicted pages) are
  /// optimistically pre-acquired at family start, pipelined as one batch.
  /// Each entry names the method that will later run on that object so the
  /// lock mode and page prediction can be derived.
  std::vector<std::pair<ObjectId, MethodId>> prefetch;
  /// Opaque per-family payload retrievable via MethodContext::user_data()
  /// (the workload generator hangs each family's invocation script here).
  std::shared_ptr<const void> user_data;
  /// Declared intent (see FamilyKind): kReadOnly is validated against the
  /// root method's declaration at submission and, under mv_read, routes the
  /// family through the lock-free snapshot path.
  FamilyKind kind = FamilyKind::kReadWrite;
};

}  // namespace lotec
