// SnapshotRegistry: the cluster's live snapshot stamps (mv_read extension).
//
// Every snapshot-isolated read-only family registers its start stamp here
// for the duration of an attempt.  The registry publishes the OLDEST live
// stamp through an atomic fence pointer that every node's PageStore shares
// (PageStore::configure_retention): version-ring GC may drop a retained
// version only when the next-newer retained version already covers every
// stamp at or below the fence, so a pinned version is never reclaimed.
//
// The fence is a plain relaxed-ordering publication: readers (ring trims)
// only ever need a value that was current at some point at or before the
// load — a stale-high fence delays GC, never breaks it, and a stale-low
// fence cannot happen because stamps are removed only by the family that
// registered them.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>

#include "common/error.hpp"

namespace lotec {

class SnapshotRegistry {
 public:
  /// A stamp becomes live; the fence drops to it if it is now the oldest.
  void register_stamp(std::uint64_t stamp) {
    std::lock_guard<std::mutex> lock(mu_);
    ++live_[stamp];
    update_fence_locked();
  }

  /// The registering family finished (commit or retry) and releases its
  /// claim; the fence advances past the stamp once no one else shares it.
  void release_stamp(std::uint64_t stamp) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = live_.find(stamp);
    if (it == live_.end())
      throw UsageError("SnapshotRegistry: release of unregistered stamp");
    if (--it->second == 0) live_.erase(it);
    update_fence_locked();
  }

  /// Oldest live stamp, or UINT64_MAX with no live snapshot (everything
  /// past the ring bound is then reclaimable).  Shared into PageStores.
  [[nodiscard]] const std::atomic<std::uint64_t>* fence() const noexcept {
    return &fence_;
  }

  [[nodiscard]] std::uint64_t oldest() const noexcept {
    return fence_.load(std::memory_order_acquire);
  }

 private:
  void update_fence_locked() {
    fence_.store(live_.empty() ? ~std::uint64_t{0} : live_.begin()->first,
                 std::memory_order_release);
  }

  mutable std::mutex mu_;
  /// stamp -> live reader count (ordered: begin() is the oldest stamp).
  std::map<std::uint64_t, std::uint32_t> live_;
  std::atomic<std::uint64_t> fence_{~std::uint64_t{0}};
};

}  // namespace lotec
