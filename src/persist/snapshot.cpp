#include "persist/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <vector>

namespace lotec {

namespace {

constexpr char kMagic[8] = {'L', 'O', 'T', 'E', 'C', 'S', 'N', 'P'};
constexpr std::uint32_t kVersion = 1;

/// Incrementally checksummed binary writer.
class Writer {
 public:
  explicit Writer(const std::string& path) : out_(path, std::ios::binary) {
    if (!out_) throw SnapshotError("cannot open '" + path + "' for writing");
  }

  void bytes(const void* data, std::size_t n) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;  // FNV-1a
    }
  }

  template <typename T>
  void value(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(T));
  }

  void finish() {
    const std::uint64_t checksum = hash_;
    out_.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    out_.flush();
    if (!out_) throw SnapshotError("write failed");
  }

 private:
  std::ofstream out_;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

class Reader {
 public:
  explicit Reader(const std::string& path) : in_(path, std::ios::binary) {
    if (!in_) throw SnapshotError("cannot open '" + path + "' for reading");
  }

  void bytes(void* data, std::size_t n) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_.gcount()) != n)
      throw SnapshotError("snapshot truncated");
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }

  template <typename T>
  T value() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    bytes(&v, sizeof(T));
    return v;
  }

  void verify_checksum() {
    const std::uint64_t expected = hash_;  // hash before reading the trailer
    std::uint64_t stored = 0;
    in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (static_cast<std::size_t>(in_.gcount()) != sizeof(stored))
      throw SnapshotError("snapshot truncated (missing checksum)");
    if (stored != expected)
      throw SnapshotError("snapshot checksum mismatch (corrupt file)");
  }

 private:
  std::ifstream in_;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

std::size_t count_objects(Cluster& cluster) {
  std::size_t n = 0;
  for (;; ++n) {
    try {
      (void)cluster.meta_of(ObjectId(n));
    } catch (const UsageError&) {
      break;
    }
  }
  return n;
}

}  // namespace

SnapshotStats save_snapshot(Cluster& cluster, const std::string& path) {
  const std::uint32_t page_size = cluster.config().page_size;
  const std::size_t num_objects = count_objects(cluster);

  Writer w(path);
  w.bytes(kMagic, sizeof(kMagic));
  w.value(kVersion);
  w.value(page_size);
  w.value(static_cast<std::uint64_t>(num_objects));

  SnapshotStats stats;
  std::vector<std::byte> page(page_size);
  for (std::size_t i = 0; i < num_objects; ++i) {
    const ObjectId id(i);
    const ObjectMeta meta = cluster.meta_of(id);
    const std::string& cls_name = cluster.class_def(meta.cls).name();

    w.value(static_cast<std::uint64_t>(id.value()));
    w.value(static_cast<std::uint32_t>(cls_name.size()));
    w.bytes(cls_name.data(), cls_name.size());
    w.value(static_cast<std::uint64_t>(meta.num_pages));
    for (std::size_t p = 0; p < meta.num_pages; ++p) {
      cluster.peek_page(id, PageIndex(static_cast<std::uint32_t>(p)), page);
      w.bytes(page.data(), page.size());
      ++stats.pages;
      stats.data_bytes += page.size();
    }
    ++stats.objects;
  }
  w.finish();
  return stats;
}

SnapshotStats load_snapshot(Cluster& cluster, const std::string& path) {
  Reader r(path);
  char magic[8];
  r.bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw SnapshotError("not a LOTEC snapshot");
  const auto version = r.value<std::uint32_t>();
  if (version != kVersion)
    throw SnapshotError("unsupported snapshot version " +
                        std::to_string(version));
  const auto page_size = r.value<std::uint32_t>();
  if (page_size != cluster.config().page_size)
    throw SnapshotError("page size mismatch: snapshot " +
                        std::to_string(page_size) + ", cluster " +
                        std::to_string(cluster.config().page_size));
  const auto num_objects = r.value<std::uint64_t>();
  if (num_objects != count_objects(cluster))
    throw SnapshotError("object count mismatch: snapshot has " +
                        std::to_string(num_objects));

  SnapshotStats stats;
  std::vector<std::byte> page(page_size);
  for (std::uint64_t i = 0; i < num_objects; ++i) {
    const auto id_value = r.value<std::uint64_t>();
    const ObjectId id(id_value);
    const ObjectMeta meta = cluster.meta_of(id);

    const auto name_len = r.value<std::uint32_t>();
    if (name_len > 4096) throw SnapshotError("implausible class name length");
    std::string cls_name(name_len, '\0');
    r.bytes(cls_name.data(), name_len);
    const std::string& expected = cluster.class_def(meta.cls).name();
    if (cls_name != expected)
      throw SnapshotError("schema mismatch for object " +
                          std::to_string(id_value) + ": snapshot class '" +
                          cls_name + "', cluster class '" + expected + "'");

    const auto num_pages = r.value<std::uint64_t>();
    if (num_pages != meta.num_pages)
      throw SnapshotError("geometry mismatch for object " +
                          std::to_string(id_value));
    for (std::uint64_t p = 0; p < num_pages; ++p) {
      r.bytes(page.data(), page.size());
      cluster.restore_page(id, PageIndex(static_cast<std::uint32_t>(p)),
                           page);
      ++stats.pages;
      stats.data_bytes += page.size();
    }
    ++stats.objects;
  }
  r.verify_checksum();
  return stats;
}

}  // namespace lotec
