// Snapshot: checkpoint the committed state of a quiescent cluster to a
// file and restore it into a freshly built cluster with the same schema.
//
// The paper frames its simulation as "a first step towards the
// implementation of our DSM based persistent object system"; this module is
// the persistence seam: object *data* (the newest committed version of
// every page, gathered via the GDO page map exactly as a transaction
// would) is durable, while schemas — classes, attribute layouts, method
// bodies — are code and must be re-registered by the restoring program,
// which is verified by name and geometry at load time.
//
// Format (little-endian, FNV-1a checksummed):
//   magic "LOTECSNP" | version u32 | page_size u32 | object count u64
//   per object: id u64 | class-name len u32 + bytes | num_pages u64
//               | num_pages * page_size data bytes
//   checksum u64
#pragma once

#include <cstdint>
#include <string>

#include "runtime/cluster.hpp"

namespace lotec {

/// Snapshot file is damaged, truncated, or from an incompatible schema.
class SnapshotError : public Error {
 public:
  explicit SnapshotError(const std::string& what) : Error(what) {}
};

struct SnapshotStats {
  std::size_t objects = 0;
  std::size_t pages = 0;
  std::uint64_t data_bytes = 0;
};

/// Write every object's newest committed state to `path`.  The cluster must
/// be quiescent (no transactions running).
SnapshotStats save_snapshot(Cluster& cluster, const std::string& path);

/// Restore a snapshot into `cluster`, which must contain the same objects
/// (same creation order, classes of the same names and geometry) and must
/// not have run transactions yet.  Object contents are installed at each
/// object's creating site; the directory already points there.
SnapshotStats load_snapshot(Cluster& cluster, const std::string& path);

}  // namespace lotec
