// ConsistencyProtocol: the policy axis the paper's evaluation compares.
//
// All four protocols share the same locking substrate (nested O2PL + GDO);
// they differ in which pages move, when:
//
//   COTEC  - Conservative OTEC: transfer ALL of an object's pages to the
//            acquiring site after a successful lock acquisition (baseline).
//   OTEC   - transfer only UPDATED pages (newer than the acquirer's cached
//            copy, or not cached there at all).
//   LOTEC  - transfer only updated pages PREDICTED TO BE NEEDED by the
//            acquiring method (compiler access analysis); mispredictions
//            are fetched on demand.  Up-to-date pages scatter across sites.
//   RC     - Release Consistency for nested objects (the comparison the
//            paper lists as "now underway"): eagerly push updated pages to
//            every caching site at root release.
//
// The policy surface is small and pure: given the acquirer's image, the
// directory page map and the method's predicted page set, which pages are
// fetched now; which pages a release reports to the directory; whether
// demand fetch is legal; whether releases push eagerly.
#pragma once

#include <memory>
#include <string_view>

#include "common/page_set.hpp"
#include "gdo/page_map.hpp"
#include "page/object_image.hpp"

namespace lotec {

enum class ProtocolKind : std::uint8_t { kCotec, kOtec, kLotec, kRc,
                                         kLotecDsd };

/// Number of protocol kinds (array sizing).
inline constexpr std::size_t kNumProtocols = 5;

[[nodiscard]] constexpr std::string_view to_string(ProtocolKind k) noexcept {
  switch (k) {
    case ProtocolKind::kCotec: return "COTEC";
    case ProtocolKind::kOtec: return "OTEC";
    case ProtocolKind::kLotec: return "LOTEC";
    case ProtocolKind::kRc: return "RC";
    case ProtocolKind::kLotecDsd: return "LOTEC-DSD";
  }
  return "?";
}

class ConsistencyProtocol {
 public:
  virtual ~ConsistencyProtocol() = default;

  [[nodiscard]] virtual ProtocolKind kind() const noexcept = 0;
  [[nodiscard]] std::string_view name() const noexcept {
    return to_string(kind());
  }

  /// Pages to fetch from other sites before the acquiring method runs.
  /// `self` is the acquiring site, `image` its current cache of the object,
  /// `map` the page map received with the grant, `predicted` the acquiring
  /// method's predicted page set.
  [[nodiscard]] virtual PageSet pages_to_transfer(
      NodeId self, const ObjectImage& image, const PageMap& map,
      const PageSet& predicted) const = 0;

  /// Non-dirty pages whose residency the releasing site reports to the GDO
  /// (see ReleaseInfo::current).  Dirty pages are always reported.
  [[nodiscard]] virtual PageSet pages_to_report(
      const ObjectImage& image) const = 0;

  /// May a method access hit a non-resident page (answered by a demand
  /// fetch)?  Under COTEC/OTEC/RC the transfer discipline makes every
  /// needed page resident up front, so such an access is a protocol bug.
  [[nodiscard]] virtual bool allows_demand_fetch() const noexcept {
    return false;
  }

  /// Does a root release eagerly push updated pages to all caching sites?
  [[nodiscard]] virtual bool eager_push_on_release() const noexcept {
    return false;
  }

  /// Inter-family lock caching interaction (sticky-lock extension): may the
  /// protocol still push eagerly when the release is *retained* at the site
  /// instead of flushing to the directory?  Never — the versions a cached
  /// commit stamps are not yet published at the directory, and broadcasting
  /// them would orphan pages in remote caches if the caching site crashed
  /// before its flush.  RC therefore degrades to fetch-on-demand freshness
  /// for updates committed under a cached lock (equivalent to OTEC's
  /// staleness test) until the deferred report is flushed.
  [[nodiscard]] virtual bool eager_push_on_retained_release() const noexcept {
    return false;
  }

  /// DSD mode (Section 4.2 / Section 6): when the acquirer's copy of a page
  /// is exactly one version behind, transfer only the delta ranges the last
  /// commit changed instead of the whole page.
  [[nodiscard]] virtual bool delta_transfers() const noexcept {
    return false;
  }
};

/// Instantiate the protocol implementation for `kind`.
[[nodiscard]] std::unique_ptr<ConsistencyProtocol> make_protocol(
    ProtocolKind kind);

/// Pages at other sites whose copy is newer than (or absent from) the local
/// image — the staleness test shared by OTEC/LOTEC/RC.
[[nodiscard]] PageSet stale_or_missing_pages(NodeId self,
                                             const ObjectImage& image,
                                             const PageMap& map);

}  // namespace lotec
