#include "protocol/protocol.hpp"

#include "common/error.hpp"

namespace lotec {

// This staleness test is also what makes a *cached* page map (retained
// across family lifetimes by the lock-cache extension) safe to reuse after
// a local re-grant: any page another site published while the lock sat idle
// could only have been written after a conflicting acquire, which revoked
// or downgraded the cached entry first — so a surviving cached map is never
// stale, and a re-granted map passes through here unchanged.
PageSet stale_or_missing_pages(NodeId self, const ObjectImage& image,
                               const PageMap& map) {
  PageSet out(image.num_pages());
  for (std::size_t i = 0; i < image.num_pages(); ++i) {
    const PageIndex p(static_cast<std::uint32_t>(i));
    const PageLocation& loc = map.at(p);
    if (loc.node == self) continue;  // newest copy is already here
    if (!image.has_page(p) || loc.version > image.page_version(p))
      out.insert(p);
  }
  return out;
}

namespace {

/// COTEC: "transfers all of an object's pages to the acquiring site after a
/// successful lock acquisition" — the baseline never consults versions, so
/// every page whose authoritative copy lives elsewhere is moved, current
/// local copies notwithstanding.
class Cotec final : public ConsistencyProtocol {
 public:
  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kCotec;
  }

  [[nodiscard]] PageSet pages_to_transfer(
      NodeId self, const ObjectImage& image, const PageMap& map,
      const PageSet& /*predicted*/) const override {
    PageSet out(image.num_pages());
    for (std::size_t i = 0; i < image.num_pages(); ++i) {
      const PageIndex p(static_cast<std::uint32_t>(i));
      if (map.at(p).node != self) out.insert(p);
    }
    return out;
  }

  [[nodiscard]] PageSet pages_to_report(
      const ObjectImage& image) const override {
    // After a full transfer the holder's copy is complete; report it all so
    // the next acquirer has a single source.
    return image.resident() - image.dirty_pages();
  }
};

/// OTEC: "optimized COTEC by sending only the updated pages to an acquiring
/// transaction's site".
class Otec final : public ConsistencyProtocol {
 public:
  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kOtec;
  }

  [[nodiscard]] PageSet pages_to_transfer(
      NodeId self, const ObjectImage& image, const PageMap& map,
      const PageSet& /*predicted*/) const override {
    return stale_or_missing_pages(self, image, map);
  }

  [[nodiscard]] PageSet pages_to_report(
      const ObjectImage& image) const override {
    return image.resident() - image.dirty_pages();
  }
};

/// LOTEC: "sends only those updated pages which are predicted to be
/// needed"; anything else is fetched on demand if the prediction proves
/// too tight, and up-to-date pages scatter over the sites that produced
/// them (only dirty pages are reported at release).
class Lotec : public ConsistencyProtocol {
 public:
  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kLotec;
  }

  [[nodiscard]] PageSet pages_to_transfer(
      NodeId self, const ObjectImage& image, const PageMap& map,
      const PageSet& predicted) const override {
    return stale_or_missing_pages(self, image, map) & predicted;
  }

  [[nodiscard]] PageSet pages_to_report(
      const ObjectImage& image) const override {
    return PageSet(image.num_pages());  // dirty pages only
  }

  [[nodiscard]] bool allows_demand_fetch() const noexcept override {
    return true;
  }
};

/// RC for nested objects: like OTEC at acquisition (a site that missed
/// pushes — typically one that has never cached the object — still fetches
/// stale pages), but every root release eagerly pushes the updated pages to
/// all caching sites.
class ReleaseConsistency final : public ConsistencyProtocol {
 public:
  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kRc;
  }

  [[nodiscard]] PageSet pages_to_transfer(
      NodeId self, const ObjectImage& image, const PageMap& map,
      const PageSet& /*predicted*/) const override {
    return stale_or_missing_pages(self, image, map);
  }

  [[nodiscard]] PageSet pages_to_report(
      const ObjectImage& image) const override {
    return image.resident() - image.dirty_pages();
  }

  [[nodiscard]] bool eager_push_on_release() const noexcept override {
    return true;
  }
};

/// LOTEC-DSD: LOTEC's plan plus sub-page delta transfers — the Section 6
/// direction of applying LOTEC "to distributed shared data (DSD) rather
/// than distributed shared memory"; only the bytes a commit changed cross
/// the wire when the acquirer is one version behind.
class LotecDsd final : public Lotec {
 public:
  [[nodiscard]] ProtocolKind kind() const noexcept override {
    return ProtocolKind::kLotecDsd;
  }
  [[nodiscard]] bool delta_transfers() const noexcept override {
    return true;
  }
};

}  // namespace

std::unique_ptr<ConsistencyProtocol> make_protocol(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kCotec: return std::make_unique<Cotec>();
    case ProtocolKind::kOtec: return std::make_unique<Otec>();
    case ProtocolKind::kLotec: return std::make_unique<Lotec>();
    case ProtocolKind::kRc: return std::make_unique<ReleaseConsistency>();
    case ProtocolKind::kLotecDsd: return std::make_unique<LotecDsd>();
  }
  throw UsageError("make_protocol: unknown protocol kind");
}

}  // namespace lotec
