#include "fault/fault_engine.hpp"

#include <algorithm>

namespace lotec {

FaultEngine::FaultEngine(const FaultConfig& config, Transport& transport,
                         GdoService& gdo,
                         std::vector<std::unique_ptr<Node>>& nodes,
                         std::uint32_t page_size)
    : config_(config),
      transport_(transport),
      gdo_(gdo),
      nodes_(nodes),
      page_size_(page_size),
      rng_(config.seed),
      seen_(static_cast<std::size_t>(MessageKind::kNumKinds), 0),
      event_fired_(config.events.size(), false),
      crash_counts_(nodes.size(), 0),
      wipe_counts_(nodes.size(), 0),
      durable_(nodes.size()) {
  const auto in_range = [&](NodeId n) {
    return n.valid() && n.value() < nodes_.size();
  };
  const auto check_prob = [](double p) {
    if (p < 0.0 || p > 1.0)
      throw UsageError("FaultConfig: probability outside [0, 1]");
  };
  check_prob(config_.drop_probability);
  check_prob(config_.duplicate_probability);
  check_prob(config_.delay_probability);
  if (config_.lease_term_ticks == 0)
    throw UsageError("FaultConfig: lease term must be positive");
  for (const FaultEvent& ev : config_.events) {
    if (ev.at_tick > 0 && ev.on_kind)
      throw UsageError("FaultEvent: pick one trigger (at_tick OR on_kind)");
    if (ev.at_tick == 0 && !ev.on_kind)
      throw UsageError("FaultEvent: no trigger (set at_tick or on_kind)");
    if (ev.on_kind && ev.nth == 0)
      throw UsageError("FaultEvent: nth is 1-based");
    switch (ev.action) {
      case FaultAction::kCrashNode:
      case FaultAction::kRestartNode:
        if (ev.target == FaultTarget::kFixed && !in_range(ev.node))
          throw UsageError("FaultEvent: crash/restart target out of range");
        if (ev.target != FaultTarget::kFixed && !ev.on_kind)
          throw UsageError(
              "FaultEvent: message-relative target needs an on_kind trigger");
        break;
      case FaultAction::kPartitionStart:
      case FaultAction::kPartitionHeal:
        if (ev.group_a.empty() || ev.group_b.empty())
          throw UsageError("FaultEvent: partition needs two node groups");
        for (const NodeId n : ev.group_a)
          if (!in_range(n)) throw UsageError("FaultEvent: group_a node");
        for (const NodeId n : ev.group_b)
          if (!in_range(n)) throw UsageError("FaultEvent: group_b node");
        break;
      case FaultAction::kDropMessage:
        if (!ev.on_kind)
          throw UsageError("FaultEvent: targeted drop needs an on_kind");
        if (!interruptible(*ev.on_kind))
          throw UsageError(
              "FaultEvent: kind '" + std::string(to_string(*ev.on_kind)) +
              "' is modeled reliable and cannot be dropped");
        break;
      case FaultAction::kRingLeave:
      case FaultAction::kRingJoin:
        if (!gdo_.ring_enabled())
          throw UsageError(
              "FaultEvent: ring-leave/ring-join needs the elastic directory "
              "(gdo.ring.enabled)");
        if (ev.target != FaultTarget::kFixed || !in_range(ev.node))
          throw UsageError(
              "FaultEvent: ring membership change needs a fixed in-range "
              "node");
        break;
    }
  }
}

bool FaultEngine::interruptible(MessageKind k) noexcept {
  switch (k) {
    case MessageKind::kLockAcquireRequest:
    case MessageKind::kPageFetchRequest:
    case MessageKind::kPageFetchReply:
    case MessageKind::kDemandFetchRequest:
    case MessageKind::kDemandFetchReply:
    case MessageKind::kGdoLookupRequest:
    case MessageKind::kGdoLookupReply:
      return true;
    default:
      return false;
  }
}

std::uint64_t FaultEngine::link_key(NodeId a, NodeId b) noexcept {
  const std::uint64_t lo = std::min(a.value(), b.value());
  const std::uint64_t hi = std::max(a.value(), b.value());
  return (lo << 32) | hi;
}

bool FaultEngine::link_cut(NodeId a, NodeId b) const {
  const auto it = cuts_.find(link_key(a, b));
  return it != cuts_.end() && it->second > 0;
}

std::uint64_t FaultEngine::crash_count(NodeId node) const {
  if (!node.valid() || node.value() >= crash_counts_.size())
    throw UsageError("FaultEngine: node id out of range");
  return crash_counts_[node.value()];
}

std::uint64_t FaultEngine::wipe_count(NodeId node) const {
  if (!node.valid() || node.value() >= wipe_counts_.size())
    throw UsageError("FaultEngine: node id out of range");
  return wipe_counts_[node.value()];
}

bool FaultEngine::fire(const FaultEvent& ev, const WireMessage& m) {
  NodeId target = ev.node;
  if (ev.target == FaultTarget::kMessageSrc) target = m.src;
  if (ev.target == FaultTarget::kMessageDst) target = m.dst;
  // Mirror every recorded event as a fault.event instant on the directory
  // lane (family 0) so traces show when the environment, not a family, acted
  // — linked to the context of the message whose send triggered it.
  const auto mark = [&] {
    if (tracer_ != nullptr) {
      tracer_->instant_linked(SpanPhase::kFaultEvent, 0,
                              target.valid() ? target.value() : 0, m.trace,
                              m.object.valid() ? m.object.value()
                                               : SpanRecord::kNoObject);
    }
  };
  switch (ev.action) {
    case FaultAction::kCrashNode:
      if (!transport_.reachable(target)) return false;  // already down
      // Reachability and the crash epoch flip immediately — the triggering
      // message dies with the node; the store/directory wipe is deferred.
      transport_.set_node_failed(target, true);
      ++crash_counts_[target.value()];
      ++stats_.crashes;
      if (check_ != nullptr)
        check_->on_node_crash(target, crash_counts_[target.value()]);
      pending_.push_back({/*restart=*/false, target});
      trace_.push_back({clock_, FaultAction::kCrashNode, target, m.kind,
                        m.object});
      mark();
      if (recorder_ != nullptr) {
        // Black-box the crash instant: the victim's ring still holds its
        // in-flight spans (e.g. a commit.report that will never end).
        recorder_->note_crash(target.value());
        if (!flight_dump_.empty()) {
          ++dumps_written_;
          const std::string path =
              dumps_written_ == 1
                  ? flight_dump_
                  : flight_dump_ + "." + std::to_string(dumps_written_);
          recorder_->dump_file(path, target.value());
        }
      }
      return false;
    case FaultAction::kRestartNode:
      if (transport_.reachable(target)) return false;  // not crashed
      if (check_ != nullptr) check_->on_node_restart(target);
      pending_.push_back({/*restart=*/true, target});
      trace_.push_back({clock_, FaultAction::kRestartNode, target, m.kind,
                        m.object});
      mark();
      return false;
    case FaultAction::kPartitionStart:
    case FaultAction::kPartitionHeal: {
      const bool start = ev.action == FaultAction::kPartitionStart;
      for (const NodeId a : ev.group_a)
        for (const NodeId b : ev.group_b) {
          if (a == b) continue;
          int& depth = cuts_[link_key(a, b)];
          depth = start ? depth + 1 : std::max(0, depth - 1);
        }
      trace_.push_back({clock_, ev.action, NodeId{}, m.kind, m.object});
      mark();
      return false;
    }
    case FaultAction::kDropMessage:
      return true;
    case FaultAction::kRingLeave:
    case FaultAction::kRingJoin: {
      // Membership only flips here; the shards move at the next migration
      // pump (or on demand).  A no-op change (already absent/present, or
      // the last member leaving) is silently skipped.
      const bool joined = ev.action == FaultAction::kRingJoin;
      if (!gdo_.ring_set_member(target, joined)) return false;
      trace_.push_back({clock_, ev.action, target, m.kind, m.object});
      mark();
      return false;
    }
  }
  return false;
}

std::size_t FaultEngine::on_message(const WireMessage& m) {
  // Recovery and post-finalize epilogue traffic is reliable and clock-free.
  if (applying_ || finalized_) return 0;

  ++clock_;
  ++stats_.messages_seen;
  ++seen_[static_cast<std::size_t>(m.kind)];

  // Fire due one-shot events in declaration order — unless a directory
  // atomic section is open, in which case due events wait for the first
  // message after it closes (deferral, not loss: at_tick triggers compare
  // against the still-advancing clock).
  bool doomed = false;
  for (std::size_t i = 0;
       atomic_depth_ == 0 && i < config_.events.size(); ++i) {
    if (event_fired_[i]) continue;
    const FaultEvent& ev = config_.events[i];
    bool due = false;
    if (ev.at_tick > 0) {
      due = clock_ >= ev.at_tick;
    } else {
      due = m.kind == *ev.on_kind &&
            seen_[static_cast<std::size_t>(m.kind)] >= ev.nth;
    }
    if (!due) continue;
    event_fired_[i] = true;
    doomed = fire(ev, m) || doomed;
  }

  const bool chaos_eligible = m.src != m.dst && interruptible(m.kind);

  if (chaos_eligible && link_cut(m.src, m.dst)) {
    ++stats_.partition_drops;
    trace_.push_back({clock_, FaultAction::kPartitionStart, m.dst, m.kind,
                      m.object});
    throw NodeUnreachable(m.src, m.dst);
  }

  if (doomed) {
    ++stats_.dropped;
    trace_.push_back({clock_, FaultAction::kDropMessage, m.dst, m.kind,
                      m.object});
    throw MessageDropped(m);
  }

  std::size_t extra = 0;
  if (chaos_eligible) {
    // Guarded draws: a probability of zero consumes no randomness, so
    // enabling one chaos dimension never perturbs another's stream.
    if (config_.drop_probability > 0.0 &&
        rng_.chance(config_.drop_probability)) {
      ++stats_.dropped;
      trace_.push_back({clock_, FaultAction::kDropMessage, m.dst, m.kind,
                        m.object});
      throw MessageDropped(m);
    }
    if (config_.duplicate_probability > 0.0 &&
        rng_.chance(config_.duplicate_probability)) {
      ++stats_.duplicated;
      extra = 1;
    }
    if (config_.delay_probability > 0.0 &&
        rng_.chance(config_.delay_probability)) {
      ++stats_.delayed;
      stats_.delay_ticks_total += config_.delay_ticks;
      clock_ += config_.delay_ticks;  // latency charged as logical time
    }
  }
  return extra;
}

void FaultEngine::note_created(NodeId creator, ObjectId id,
                               std::size_t num_pages) {
  DurableObject& d = durable_[creator.value()][id];
  d.num_pages = num_pages;
  d.created_here = true;
}

void FaultEngine::note_page(NodeId site, ObjectId id, std::size_t num_pages,
                            PageIndex page, const Page& content) {
  DurableObject& d = durable_[site.value()][id];
  d.num_pages = num_pages;
  d.pages[page.value()][content.version] = content;
}

void FaultEngine::wipe_node(NodeId node) {
  Node& site = *nodes_[node.value()];
  {
    std::lock_guard<std::mutex> lock(site.store_mu);
    site.store = PageStore{};
    site.pins.clear();
    site.lru.clear();
    site.lru_pos.clear();
    ++wipe_counts_[node.value()];
  }
  // Cached global locks (and their unflushed deferred reports) live in the
  // wiped memory too; the directory reclaims the matching markers by lease.
  site.lock_cache.clear();
  gdo_.on_node_crash(node);
  // Volatile journal state of the crash epoch is gone too: pages installed
  // by the dead incarnation after its last crash stay durable (the journal
  // is the "disk"), which is exactly the model — only memory is lost.
}

void FaultEngine::restore_node(NodeId node) {
  Node& site = *nodes_[node.value()];
  std::lock_guard<std::mutex> lock(site.store_mu);
  for (const auto& [id, d] : durable_[node.value()]) {
    GdoEntry snap;
    try {
      snap = gdo_.snapshot(id);
    } catch (const Error&) {
      continue;  // directory entry unavailable (home and copies all down)
    }
    ObjectImage* img = nullptr;
    for (std::uint32_t p = 0; p < d.num_pages; ++p) {
      const PageLocation& loc = snap.page_map.at(PageIndex(p));
      if (loc.node != node) continue;  // directory owes this page elsewhere
      // Restore exactly the version the directory attributes to this site;
      // anything else would put the site "ahead of" or behind the map.
      const Page* content = nullptr;
      if (const auto it = d.pages.find(p); it != d.pages.end()) {
        const auto vit = it->second.find(loc.version);
        if (vit != it->second.end()) content = &vit->second;
      }
      if (content == nullptr && !(loc.version == 0 && d.created_here))
        continue;  // journal does not hold the expected version
      if (img == nullptr)
        img = &site.store.get_or_create(id, d.num_pages, page_size_);
      if (content != nullptr) {
        img->install_page(PageIndex(p), *content);
      } else {
        // Creating site, never-committed page: durable as zero-filled v0.
        img->install_page(
            PageIndex(p),
            Page{std::vector<std::byte>(page_size_), 0, {}});
      }
      ++stats_.pages_restored;
    }
  }
}

void FaultEngine::apply_pending() {
  if (applying_ || pending_.empty()) return;
  applying_ = true;
  // Index loop: restores send recovery messages, and a schedule could in
  // principle queue more work while we drain (on_message is gated by
  // applying_, but keep the loop robust).
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const PendingAction act = pending_[i];
    if (!act.restart) {
      wipe_node(act.node);
      continue;
    }
    ++stats_.restarts;
    // Order matters: restore durable pages while the node is still "down"
    // (directory reads route to the surviving copy), then rejoin, then
    // rebuild this node's directory partition from the mirrors.
    restore_node(act.node);
    transport_.set_node_failed(act.node, false);
    stats_.gdo_entries_rebuilt += gdo_.rebuild_node(act.node);
  }
  pending_.clear();
  applying_ = false;
}

void FaultEngine::finalize() {
  apply_pending();
  finalized_ = true;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const NodeId node(static_cast<std::uint32_t>(n));
    if (transport_.reachable(node)) continue;
    ++stats_.restarts;
    trace_.push_back({clock_, FaultAction::kRestartNode, node,
                      MessageKind::kNumKinds, ObjectId{}});
    applying_ = true;
    restore_node(node);
    transport_.set_node_failed(node, false);
    stats_.gdo_entries_rebuilt += gdo_.rebuild_node(node);
    applying_ = false;
  }
}

FaultStats FaultEngine::stats() const {
  FaultStats s = stats_;
  s.locks_reclaimed = gdo_.locks_reclaimed();
  s.waiters_purged = gdo_.waiters_purged();
  return s;
}

}  // namespace lotec
