// FaultEngine: deterministic fault injection and the crash/restart
// machinery behind it.
//
// The engine implements the FaultHooks seam of the Transport choke point
// (src/net/transport.hpp): every message consulted advances a logical clock
// by one tick, fires any due schedule events (node crash / restart,
// partition open / heal, targeted message kills) and applies the configured
// background message chaos (drop / duplicate / delay).  All decisions flow
// from the schedule and one seeded Rng, so under the token-passing
// scheduler the same seed and schedule reproduce the same fault trace —
// and, via the recovery machinery, the same message trace — bit for bit.
//
// Crash semantics are two-phase.  When a crash event fires, the node is
// flipped unreachable and its crash epoch bumped *immediately* (inside the
// send that triggered it, so the triggering message dies with the node).
// The heavy part — wiping the node's page store and its GDO partition, and
// later restoring durable pages and rebuilding the directory on restart —
// is deferred to apply_pending(), which the runtime calls at checkpoints
// where no family holds references into the dying state.  This split keeps
// on_message reentrancy-free while still making the crash visible at the
// exact deterministic tick.
//
// Durability model: the engine write-through journals every page installed
// at a site (creation, fetch, push, commit stamp) as that site's "disk"
// (cf. src/persist snapshots).  On restart, exactly the pages the directory
// attributes to the node — matching (node, version) — are restored; pages
// the node cached but did not own per the GDO are re-fetched on demand by
// the normal consistency protocol.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/events.hpp"
#include "common/rng.hpp"
#include "fault/fault_schedule.hpp"
#include "gdo/gdo_service.hpp"
#include "net/transport.hpp"
#include "page/object_image.hpp"
#include "runtime/node.hpp"

namespace lotec {

/// Thrown by a FamilyRunner fault checkpoint when the runner's own node has
/// crashed since the attempt began.  Deliberately NOT derived from Error:
/// like DeadlockVictimError it must never be swallowed by a generic
/// catch (const Error&) on its way to the runner's retry loop.
class NodeCrashedError {
 public:
  explicit NodeCrashedError(NodeId node) noexcept : node_(node) {}
  [[nodiscard]] NodeId node() const noexcept { return node_; }

 private:
  NodeId node_;
};

class FaultEngine final : public FaultHooks {
 public:
  /// `nodes` must outlive the engine and not be resized after construction
  /// (ClusterCore builds all sites first, then the engine).
  FaultEngine(const FaultConfig& config, Transport& transport,
              GdoService& gdo, std::vector<std::unique_ptr<Node>>& nodes,
              std::uint32_t page_size);

  // --- FaultHooks ----------------------------------------------------------

  std::size_t on_message(const WireMessage& m) override;
  [[nodiscard]] std::uint64_t now() const noexcept override { return clock_; }
  [[nodiscard]] std::uint64_t crash_count(NodeId node) const override;
  [[nodiscard]] std::uint64_t lease_term() const noexcept override {
    return config_.lease_term_ticks;
  }
  void begin_atomic() noexcept override { ++atomic_depth_; }
  void end_atomic() noexcept override {
    if (atomic_depth_ > 0) --atomic_depth_;
  }

  // --- runtime integration -------------------------------------------------

  /// Apply deferred crash wipes and restart restores.  Called by the
  /// runtime at checkpoints (attempt start, invocation entry, freshness
  /// checks) where no family holds references into a dying node's store.
  void apply_pending();

  /// End-of-batch recovery: restart every still-crashed node (restoring its
  /// durable pages and rebuilding its directory partition) so the cluster
  /// reaches the quiescent state the validator checks.  Also retires the
  /// fault schedule: epilogue traffic sent after this point (the lock-cache
  /// drain, validation peeks) runs on a healthy, reliable cluster instead
  /// of re-arming not-yet-due events with its clock ticks.
  void finalize();

  /// Durability journal write-throughs (no-ops cost-wise: disk traffic is
  /// not network traffic and is not charged to NetworkStats).
  void note_created(NodeId creator, ObjectId id, std::size_t num_pages);
  void note_page(NodeId site, ObjectId id, std::size_t num_pages,
                 PageIndex page, const Page& content);

  // --- introspection -------------------------------------------------------

  /// True while `node` is crashed (reachability lives in the Transport; this
  /// is a convenience mirror).
  [[nodiscard]] bool node_down(NodeId node) const {
    return !transport_.reachable(node);
  }

  [[nodiscard]] bool has_node_faults() const noexcept {
    return config_.has_node_faults();
  }

  /// How many times `node`'s volatile state (page store, pins) has been
  /// wiped.  Distinct from crash_count: the epoch flips the instant a crash
  /// event fires, but the wipe lands later at apply_pending — state created
  /// in between carries the new epoch yet still dies in the wipe, so "did
  /// the wipe eat this?" must compare wipe counts, not crash epochs.
  [[nodiscard]] std::uint64_t wipe_count(NodeId node) const;

  /// Counters, with the GDO's lease-reclamation tallies folded in.
  [[nodiscard]] FaultStats stats() const;

  /// The fault trace: every injected event in firing order.  Two runs with
  /// the same seed, schedule and workload produce identical traces.
  [[nodiscard]] const std::vector<FaultRecord>& trace() const noexcept {
    return trace_;
  }

  /// Install (or clear) the span tracer; fired schedule events are recorded
  /// as fault.event instants on the directory lane.  Owned by the caller.
  void set_tracer(SpanTracer* tracer) noexcept { tracer_ = tracer; }

  /// Install (or clear) the schedule checker's event sink: crash/restart
  /// events carry the per-node epoch so the lock-cache safety oracle can
  /// scope cached-lock claims to crash epochs.  Owned by the caller.
  void set_check_sink(CheckSink* sink) noexcept { check_ = sink; }

  /// Install (or clear) the always-on flight recorder: every crash event
  /// marks the victim's ring, and — when a dump path is set — writes the
  /// post-mortem (Perfetto-loadable) at the crash instant, before the
  /// deferred wipe erases any more context.  Owned by the caller.
  void set_flight_recorder(FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }
  /// Where crash post-mortems go (empty = record but never dump).  A second
  /// crash dumps to "<path>.2", the third to "<path>.3", and so on.
  void set_flight_dump(std::string path) { flight_dump_ = std::move(path); }

 private:
  /// Message kinds the engine may drop, partition or duplicate: request /
  /// lookup / fetch traffic whose failure the sender observes *before* any
  /// directory mutation, so a retry is always safe.  Grants, wakeups,
  /// releases, replica syncs, rebuilds and pushes are modeled reliable (the
  /// substrate retries them until delivery): dropping a grant after the
  /// directory recorded the holder would need an idempotent-RPC layer the
  /// synchronous emulation cannot express.
  [[nodiscard]] static bool interruptible(MessageKind k) noexcept;

  /// Fire one schedule event; returns true when the triggering message must
  /// be dropped (kDropMessage).
  bool fire(const FaultEvent& ev, const WireMessage& m);

  [[nodiscard]] bool link_cut(NodeId a, NodeId b) const;
  [[nodiscard]] static std::uint64_t link_key(NodeId a, NodeId b) noexcept;

  void wipe_node(NodeId node);
  void restore_node(NodeId node);

  struct DurableObject {
    std::size_t num_pages = 0;
    /// Created at this site: unjournalled pages are durable as zero-filled
    /// version-0 pages (the creating site materializes the whole object).
    bool created_here = false;
    /// Journalled copies keyed by page, then by stamped version.  Versions
    /// must not shadow each other: a commit can stamp (and journal) v+1 and
    /// then die before the directory publishes it, in which case the
    /// directory keeps attributing v to this site and restore needs v back.
    std::map<std::uint32_t, std::map<Lsn, Page>> pages;
  };

  struct PendingAction {
    bool restart = false;  ///< false: wipe (crash); true: restore (restart)
    NodeId node{};
  };

  FaultConfig config_;
  Transport& transport_;
  GdoService& gdo_;
  std::vector<std::unique_ptr<Node>>& nodes_;
  std::uint32_t page_size_;
  Rng rng_;

  std::uint64_t clock_ = 0;
  /// Messages seen per kind (1-based by the time an event trigger tests it).
  std::vector<std::uint64_t> seen_;
  std::vector<bool> event_fired_;
  std::vector<std::uint64_t> crash_counts_;
  std::vector<std::uint64_t> wipe_counts_;
  /// Link -> number of active partition cuts covering it.
  std::map<std::uint64_t, int> cuts_;
  std::vector<PendingAction> pending_;
  /// Per-node durable page journal ("disk").
  std::vector<std::map<ObjectId, DurableObject>> durable_;
  /// Recovery traffic in flight (restore/rebuild): its messages are modeled
  /// reliable and do not advance the fault clock or trigger further events.
  bool applying_ = false;
  /// finalize() ran: the schedule is over, injection is off for good.
  bool finalized_ = false;
  /// Open FaultAtomicSection count: while positive, schedule events are
  /// deferred (clock and chaos still run) so a directory mutation and its
  /// replica sync cannot be split by a crash.
  std::uint32_t atomic_depth_ = 0;

  std::vector<FaultRecord> trace_;
  FaultStats stats_;
  SpanTracer* tracer_ = nullptr;
  CheckSink* check_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  std::string flight_dump_;
  std::uint64_t dumps_written_ = 0;
};

}  // namespace lotec
