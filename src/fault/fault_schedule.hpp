// Declarative fault schedules for the deterministic fault engine.
//
// A FaultConfig is pure data: a list of one-shot events (crash, restart,
// partition open/heal, targeted message kills) anchored to the engine's
// logical clock or to the Nth message of a kind, plus per-message
// probabilities for background message chaos (drop / duplicate / delay).
// All of it is evaluated by FaultEngine under the token-passing scheduler,
// so the same seed and schedule reproduce the same fault trace bit for bit.
//
// Logical time: the clock advances by one tick per message that passes the
// Transport choke point.  Expressing triggers and lock leases in message
// ticks (not wall time) is what keeps injection deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "net/message.hpp"

namespace lotec {

/// What a schedule event does when it fires.
enum class FaultAction : std::uint8_t {
  kCrashNode,       ///< node dies: unreachable; store + cached GDO state wiped
  kRestartNode,     ///< node returns: durable pages restored, GDO rebuilt
  kPartitionStart,  ///< cut the links between two node groups
  kPartitionHeal,   ///< restore the cut links
  kDropMessage,     ///< kill exactly the triggering message
  kRingLeave,       ///< elastic directory: node leaves the placement ring
                    ///< (stays up; its shards migrate to the survivors)
  kRingJoin,        ///< elastic directory: node (re)joins the placement ring
};

[[nodiscard]] constexpr const char* to_string(FaultAction a) noexcept {
  switch (a) {
    case FaultAction::kCrashNode: return "crash";
    case FaultAction::kRestartNode: return "restart";
    case FaultAction::kPartitionStart: return "partition";
    case FaultAction::kPartitionHeal: return "heal";
    case FaultAction::kDropMessage: return "drop";
    case FaultAction::kRingLeave: return "ring-leave";
    case FaultAction::kRingJoin: return "ring-join";
  }
  return "?";
}

/// How a crash/drop event picks its node when triggered by a message
/// (kFixed uses FaultEvent::node and works with tick triggers too).
enum class FaultTarget : std::uint8_t { kFixed, kMessageSrc, kMessageDst };

struct FaultEvent {
  FaultAction action = FaultAction::kCrashNode;

  // --- trigger: exactly one of the two forms --------------------------------
  /// Fire when the logical clock reaches this tick (0 = disabled; the clock
  /// starts at 1 with the first message).
  std::uint64_t at_tick = 0;
  /// Alternative trigger: fire on the `nth` message of kind `on_kind`
  /// (1-based).  This is how tests park a crash exactly inside a commit's
  /// release batch or a page gather.
  std::optional<MessageKind> on_kind;
  std::uint64_t nth = 1;

  // --- target ---------------------------------------------------------------
  FaultTarget target = FaultTarget::kFixed;
  NodeId node{};  ///< kFixed crash/restart target
  /// Partition events cut every link between the two groups (both ways).
  std::vector<NodeId> group_a;
  std::vector<NodeId> group_b;
};

struct FaultConfig {
  std::vector<FaultEvent> events;

  /// Background message chaos, applied per interruptible message (request /
  /// fetch traffic; see FaultEngine for the kind whitelist).
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double delay_probability = 0.0;
  /// Ticks of latency charged per delayed message (accounting only; the
  /// synchronous emulation cannot reorder a send).
  std::uint64_t delay_ticks = 4;

  /// Seed of the engine's private RNG (probability faults).
  std::uint64_t seed = 1;

  /// Lease term, in logical ticks, attached to every global lock grant.
  /// Bounds how long a crashed family's orphaned locks can block survivors.
  std::uint64_t lease_term_ticks = 48;

  /// Install the Transport hooks even when no fault is configured — the
  /// zero-overhead ablation runs the full engine pipeline with every fault
  /// off and asserts byte-identical traffic.
  bool install_hooks = false;

  [[nodiscard]] bool enabled() const noexcept {
    return install_hooks || !events.empty() || drop_probability > 0.0 ||
           duplicate_probability > 0.0 || delay_probability > 0.0;
  }

  [[nodiscard]] bool has_node_faults() const noexcept {
    for (const FaultEvent& e : events)
      if (e.action == FaultAction::kCrashNode ||
          e.action == FaultAction::kRestartNode)
        return true;
    return false;
  }

  [[nodiscard]] bool has_ring_events() const noexcept {
    for (const FaultEvent& e : events)
      if (e.action == FaultAction::kRingLeave ||
          e.action == FaultAction::kRingJoin)
        return true;
    return false;
  }
};

// --- scenario presets -------------------------------------------------------

namespace fault_presets {

/// Crash `node` at `crash_tick`, restart it at `restart_tick`.
inline FaultConfig crash_restart(NodeId node, std::uint64_t crash_tick,
                                 std::uint64_t restart_tick) {
  FaultConfig cfg;
  FaultEvent crash;
  crash.action = FaultAction::kCrashNode;
  crash.at_tick = crash_tick;
  crash.node = node;
  FaultEvent restart;
  restart.action = FaultAction::kRestartNode;
  restart.at_tick = restart_tick;
  restart.node = node;
  cfg.events = {crash, restart};
  return cfg;
}

/// Background message chaos only (no node faults).
inline FaultConfig message_chaos(std::uint64_t seed, double drop, double dup,
                                 double delay) {
  FaultConfig cfg;
  cfg.seed = seed;
  cfg.drop_probability = drop;
  cfg.duplicate_probability = dup;
  cfg.delay_probability = delay;
  return cfg;
}

/// Cut the links between two groups over [start_tick, heal_tick).
inline FaultConfig partition_window(std::vector<NodeId> group_a,
                                    std::vector<NodeId> group_b,
                                    std::uint64_t start_tick,
                                    std::uint64_t heal_tick) {
  FaultConfig cfg;
  FaultEvent cut;
  cut.action = FaultAction::kPartitionStart;
  cut.at_tick = start_tick;
  cut.group_a = group_a;
  cut.group_b = group_b;
  FaultEvent heal;
  heal.action = FaultAction::kPartitionHeal;
  heal.at_tick = heal_tick;
  heal.group_a = std::move(group_a);
  heal.group_b = std::move(group_b);
  cfg.events = {std::move(cut), std::move(heal)};
  return cfg;
}

/// The acceptance chaos scenario: crash + restart two nodes (typically a
/// directory home and a page-holding site) mid-workload, with mild
/// background message drop.
inline FaultConfig chaos(NodeId first, NodeId second, std::uint64_t seed,
                         std::uint64_t first_crash_tick = 60,
                         std::uint64_t window = 120, double drop = 0.01) {
  FaultConfig cfg = crash_restart(first, first_crash_tick,
                                  first_crash_tick + window);
  const FaultConfig more =
      crash_restart(second, first_crash_tick + 2 * window,
                    first_crash_tick + 3 * window);
  cfg.events.insert(cfg.events.end(), more.events.begin(), more.events.end());
  cfg.seed = seed;
  cfg.drop_probability = drop;
  return cfg;
}

/// Rebalance chaos: `cycles` leave/join cycles over the given victims, one
/// window each, starting at `first_tick`.  Each cycle removes a node from
/// the placement ring mid-run (its shards migrate out under load) and
/// re-admits it a window later (shards migrate back).  Victims wrap, so
/// three cycles over two nodes exercise a repeat offender.
inline FaultConfig rebalance(const std::vector<NodeId>& victims,
                             std::size_t cycles, std::uint64_t first_tick = 40,
                             std::uint64_t window = 80) {
  FaultConfig cfg;
  std::uint64_t tick = first_tick;
  for (std::size_t c = 0; c < cycles; ++c) {
    const NodeId victim = victims[c % victims.size()];
    FaultEvent leave;
    leave.action = FaultAction::kRingLeave;
    leave.at_tick = tick;
    leave.node = victim;
    FaultEvent join;
    join.action = FaultAction::kRingJoin;
    join.at_tick = tick + window;
    join.node = victim;
    cfg.events.push_back(leave);
    cfg.events.push_back(join);
    tick += 2 * window;
  }
  return cfg;
}

}  // namespace fault_presets

/// One entry of the engine's fault trace (what fired, when, to whom).
struct FaultRecord {
  std::uint64_t tick = 0;
  FaultAction action{};
  NodeId node{};          ///< crash/restart target (invalid for partitions)
  MessageKind kind{};     ///< triggering/affected message kind
  ObjectId object{};      ///< object of the affected message, if any

  friend bool operator==(const FaultRecord&, const FaultRecord&) = default;
};

/// Counters the recovery machinery bumps (reported by bench/tools).
struct FaultStats {
  std::uint64_t messages_seen = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t delay_ticks_total = 0;
  std::uint64_t partition_drops = 0;
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t pages_restored = 0;
  std::uint64_t gdo_entries_rebuilt = 0;
  std::uint64_t locks_reclaimed = 0;
  std::uint64_t waiters_purged = 0;
};

}  // namespace lotec
