// WorkloadSpec: the knobs of the paper's randomized nested-object-
// transaction workload ("we varied the number of objects, the size of the
// objects (in units of pages) and the number of transactions in order to
// achieve a range of conflict scenarios", Section 5).
#pragma once

#include <cstdint>

namespace lotec {

struct WorkloadSpec {
  // --- object population ---------------------------------------------------
  std::size_t num_objects = 20;
  /// Object sizes drawn uniformly from [min_pages, max_pages].
  std::size_t min_pages = 1;
  std::size_t max_pages = 5;
  /// Attributes per page of object data (attribute granularity).
  std::size_t attrs_per_page = 4;

  // --- method population ---------------------------------------------------
  /// Randomized method variants generated per class.
  std::size_t methods_per_class = 6;
  /// Fraction of an object's attributes a method variant touches.
  double touched_attr_fraction = 0.4;
  /// Of the touched attributes, the fraction that is written (the rest are
  /// read-only accesses).
  double write_fraction = 0.6;
  /// Fraction of method variants that are pure readers (no writes at all),
  /// producing shared read locks.
  double read_method_fraction = 0.2;
  /// Prediction quality: 1.0 = perfectly conservative prediction (the
  /// paper's default).  Below 1.0 installs an aggressive prediction hint
  /// covering only this fraction of the accessed attributes; the rest are
  /// demand-fetched under LOTEC (Section 5.1's aggressive prediction).
  double prediction_coverage = 1.0;

  // --- transaction population -----------------------------------------------
  std::size_t num_transactions = 200;
  /// Maximum nesting depth of generated invocation scripts (root = depth 0).
  std::size_t max_depth = 3;
  /// Probability that a non-leaf script node spawns each potential child.
  double child_probability = 0.45;
  std::size_t max_children = 3;
  /// Zipf skew over objects: 0 = uniform, larger = hotter hot set (drives
  /// the paper's "high contention" scenarios).
  double contention_theta = 0.0;
  /// Probability that a generated child is an injected-failure leaf (its
  /// sub-transaction aborts; the parent carries on).
  double abort_probability = 0.0;
  /// Hierarchical invocation structure (the CAD-style domain the paper was
  /// originally developed for: assemblies invoke sub-components): a child
  /// target is always a higher-indexed object than its parent, which keeps
  /// cross-family lock orders mostly consistent.  Occasional deadlocks
  /// (sibling-order inversions, upgrades) still occur and exercise the
  /// detector.  When false, child targets are drawn freely.
  bool hierarchical_targets = true;

  std::uint64_t seed = 1;
};

}  // namespace lotec
