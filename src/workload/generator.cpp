#include "workload/generator.hpp"

#include <algorithm>
#include <string>

namespace lotec {

namespace {

/// Draw `count` distinct values from [0, n) (count <= n), sorted.
std::vector<std::uint32_t> draw_distinct(Rng& rng, std::size_t n,
                                         std::size_t count) {
  std::vector<std::uint32_t> pool(n);
  for (std::size_t i = 0; i < n; ++i)
    pool[i] = static_cast<std::uint32_t>(i);
  // Partial Fisher-Yates.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.below(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  std::sort(pool.begin(), pool.end());
  return pool;
}

AttrSet to_attr_set(const std::vector<std::uint32_t>& ids) {
  std::vector<AttrId> attrs;
  attrs.reserve(ids.size());
  for (const std::uint32_t id : ids) attrs.push_back(AttrId(id));
  return AttrSet(std::move(attrs));
}

}  // namespace

MethodBody make_script_body(
    AttrSet reads, AttrSet writes,
    std::shared_ptr<const std::vector<ObjectId>> object_ids) {
  return [reads = std::move(reads), writes = std::move(writes),
          object_ids = std::move(object_ids)](MethodContext& ctx) {
    const auto* script = static_cast<const FamilyScript*>(ctx.user_data());
    if (script == nullptr)
      throw UsageError("script body invoked without a FamilyScript payload");
    const ScriptNode& node = script->nodes.at(ctx.txn().serial);

    // Perform the declared accesses: read every declared read, read-modify-
    // write every declared write.  The write covers the WHOLE attribute
    // (the update breadth real methods have): the first 8 bytes carry a
    // deterministic value the test oracles can recompute, the remainder a
    // pattern byte derived from it.
    std::int64_t acc = 0;
    for (const AttrId a : reads.items()) acc += ctx.get<std::int64_t>(a);
    for (const AttrId a : writes.items()) {
      const std::int64_t old = ctx.get<std::int64_t>(a);
      const std::int64_t next = old + 1 + (acc & 1);
      const std::uint32_t size = ctx.cls().layout().attribute(a).size_bytes;
      std::vector<std::byte> buf(size,
                                 static_cast<std::byte>(next & 0xFF));
      encode_value(std::span<std::byte>(buf.data(), 8), next);
      ctx.write_raw(a, buf);
    }

    if (node.inject_abort) ctx.fail_injected();

    for (const std::size_t child_index : node.children) {
      const ScriptNode& child = script->nodes.at(child_index);
      // A failing child is observed and tolerated (Moss semantics).
      (void)ctx.invoke(object_ids->at(child.object), child.method);
    }
  };
}

Workload::Workload(const WorkloadSpec& spec) : spec_(spec) {
  if (spec_.num_objects == 0 || spec_.num_transactions == 0)
    throw UsageError("WorkloadSpec: objects and transactions must be > 0");
  if (spec_.min_pages == 0 || spec_.min_pages > spec_.max_pages)
    throw UsageError("WorkloadSpec: bad page range");
  if (spec_.attrs_per_page == 0)
    throw UsageError("WorkloadSpec: attrs_per_page must be > 0");
  Rng rng(spec_.seed);
  generate_population(rng);
  generate_scripts(rng);
}

void Workload::generate_population(Rng& rng) {
  classes_.resize(spec_.num_objects);
  for (auto& cls : classes_) {
    cls.pages = spec_.min_pages +
                static_cast<std::size_t>(
                    rng.below(spec_.max_pages - spec_.min_pages + 1));
    cls.num_attrs = cls.pages * spec_.attrs_per_page;
    cls.methods.resize(spec_.methods_per_class);
    for (auto& m : cls.methods) {
      const std::size_t touched = std::max<std::size_t>(
          1, static_cast<std::size_t>(spec_.touched_attr_fraction *
                                      static_cast<double>(cls.num_attrs) +
                                      0.5));
      const auto attrs =
          draw_distinct(rng, cls.num_attrs, std::min(touched, cls.num_attrs));

      if (rng.chance(spec_.read_method_fraction)) {
        m.reads = to_attr_set(attrs);
      } else {
        // Split touched attrs into written and read-only parts.
        std::size_t writes = std::max<std::size_t>(
            1, static_cast<std::size_t>(spec_.write_fraction *
                                        static_cast<double>(attrs.size()) +
                                        0.5));
        writes = std::min(writes, attrs.size());
        std::vector<std::uint32_t> w(attrs.begin(),
                                     attrs.begin() +
                                         static_cast<std::ptrdiff_t>(writes));
        std::vector<std::uint32_t> r(attrs.begin() +
                                         static_cast<std::ptrdiff_t>(writes),
                                     attrs.end());
        m.writes = to_attr_set(w);
        m.reads = to_attr_set(r);
      }

      if (spec_.prediction_coverage < 1.0) {
        const AttrSet touched_set = m.reads.united(m.writes);
        std::size_t keep = std::max<std::size_t>(
            1, static_cast<std::size_t>(spec_.prediction_coverage *
                                        static_cast<double>(
                                            touched_set.size()) +
                                        0.5));
        keep = std::min(keep, touched_set.size());
        std::vector<AttrId> hint(touched_set.items().begin(),
                                 touched_set.items().begin() +
                                     static_cast<std::ptrdiff_t>(keep));
        m.prediction_hint = AttrSet(std::move(hint));
      }
    }
  }
}

void Workload::generate_scripts(Rng& rng) {
  const ZipfSampler sampler(spec_.num_objects, spec_.contention_theta);
  scripts_.reserve(spec_.num_transactions);
  for (std::size_t i = 0; i < spec_.num_transactions; ++i) {
    auto script = std::make_shared<FamilyScript>();
    std::vector<std::size_t> path;
    emit_script_node(*script, rng, sampler, sampler.draw(rng), 0, path);
    scripts_.push_back(std::move(script));
  }
}

std::size_t Workload::emit_script_node(FamilyScript& script, Rng& rng,
                                       const ZipfSampler& sampler,
                                       std::size_t object, std::size_t depth,
                                       std::vector<std::size_t>& path) {
  const std::size_t index = script.nodes.size();
  script.nodes.emplace_back();

  ScriptNode node;
  node.object = object;
  node.method = MethodId(static_cast<std::uint32_t>(
      rng.below(classes_.at(object).methods.size())));
  // Children only below the root's level budget; injected failures are
  // leaves placed before any child work so pre-order serials stay aligned
  // with the runtime's serial assignment.
  node.inject_abort = depth > 0 && rng.chance(spec_.abort_probability);

  if (!node.inject_abort && depth < spec_.max_depth) {
    path.push_back(object);
    for (std::size_t k = 0; k < spec_.max_children; ++k) {
      if (!rng.chance(spec_.child_probability)) continue;
      // Choose a child target not on the ancestor path (the paper's model
      // precludes mutually recursive invocations).  Hierarchical mode
      // additionally restricts children to higher-indexed objects.
      std::size_t target = 0;
      bool found = false;
      for (int attempt = 0; attempt < 8; ++attempt) {
        if (spec_.hierarchical_targets) {
          if (object + 1 >= classes_.size()) break;
          // Skewed toward the shallow (hot) end of the remaining range.
          const std::size_t span = classes_.size() - (object + 1);
          target = object + 1 + rng.zipf(span, spec_.contention_theta);
        } else {
          target = sampler.draw(rng);
        }
        if (std::find(path.begin(), path.end(), target) == path.end()) {
          found = true;
          break;
        }
      }
      if (!found) continue;
      const std::size_t child_index =
          emit_script_node(script, rng, sampler, target, depth + 1, path);
      node.children.push_back(child_index);
    }
    path.pop_back();
  }

  script.nodes[index] = std::move(node);
  return index;
}

std::vector<RootRequest> Workload::instantiate(Cluster& cluster,
                                               double read_only_fraction) const {
  if (read_only_fraction < 0.0 || read_only_fraction > 1.0)
    throw UsageError("Workload: read_only_fraction must be in [0, 1]");
  const std::uint32_t page_size = cluster.config().page_size;
  if (page_size % static_cast<std::uint32_t>(spec_.attrs_per_page) != 0)
    throw UsageError("Workload: page_size must be divisible by attrs_per_page");
  const std::uint32_t attr_size =
      page_size / static_cast<std::uint32_t>(spec_.attrs_per_page);
  if (attr_size % 8 != 0)
    throw UsageError(
        "Workload: page_size / attrs_per_page must be a multiple of 8 so "
        "attributes pack pages exactly");

  auto object_ids = std::make_shared<std::vector<ObjectId>>();
  object_ids->reserve(classes_.size());

  for (std::size_t i = 0; i < classes_.size(); ++i) {
    const ClassPlan& plan = classes_[i];
    ClassBuilder builder("WorkObj" + std::to_string(i) + "_" +
                             std::to_string(cluster.config().seed),
                         page_size);
    for (std::size_t a = 0; a < plan.num_attrs; ++a)
      builder.attribute("a" + std::to_string(a), attr_size);
    for (std::size_t m = 0; m < plan.methods.size(); ++m) {
      const MethodPlan& mp = plan.methods[m];
      builder.method_ids(
          "m" + std::to_string(m), mp.reads, mp.writes,
          make_script_body(mp.reads, mp.writes, object_ids),
          /*may_access_undeclared=*/false, mp.prediction_hint);
    }
    // Shadow reader variants, one per method, appended AFTER the originals
    // so shadow ids are original id + methods_per_class.  Same touched
    // attributes with writes folded into reads — a read-only family replays
    // the same reference pattern without mutating anything.  Derived, not
    // drawn: the population Rng stream is untouched.
    for (std::size_t m = 0; m < plan.methods.size(); ++m) {
      const MethodPlan& mp = plan.methods[m];
      const AttrSet all = mp.reads.united(mp.writes);
      builder.method_ids("m" + std::to_string(m) + "_ro", all, AttrSet{},
                         make_script_body(all, AttrSet{}, object_ids),
                         /*may_access_undeclared=*/false, mp.prediction_hint);
    }
    const ClassId cls = cluster.define_class(builder);
    object_ids->push_back(cluster.create_object(cls));
  }

  // Which families become read-only: an independent Rng, so the draw for
  // family i is the same at every fraction and a higher fraction strictly
  // grows the read-only set (fraction sweeps change only the conversions).
  Rng select(spec_.seed ^ 0x726f5f73656c6563ULL);  // "ro_selec"
  const std::uint32_t shift =
      static_cast<std::uint32_t>(spec_.methods_per_class);

  std::vector<RootRequest> requests;
  requests.reserve(scripts_.size());
  for (const auto& script : scripts_) {
    RootRequest req;
    const bool read_only = select.uniform() < read_only_fraction;
    if (read_only) {
      // Clone the script with every method remapped onto its shadow reader;
      // the clone owns itself through user_data.
      auto shadow = std::make_shared<FamilyScript>(*script);
      for (ScriptNode& n : shadow->nodes)
        n.method = MethodId(n.method.value() + shift);
      req.object = object_ids->at(shadow->nodes.front().object);
      req.method = shadow->nodes.front().method;
      req.user_data = std::shared_ptr<const void>(shadow, shadow.get());
      req.kind = FamilyKind::kReadOnly;
    } else {
      const ScriptNode& root = script->nodes.front();
      req.object = object_ids->at(root.object);
      req.method = root.method;
      req.user_data = std::shared_ptr<const void>(script, script.get());
    }
    requests.push_back(std::move(req));
  }
  return requests;
}

std::size_t Workload::total_script_nodes() const noexcept {
  std::size_t n = 0;
  for (const auto& s : scripts_) n += s->nodes.size();
  return n;
}

}  // namespace lotec
