// Workload generator: builds a reproducible population of classes, objects
// and nested-transaction scripts from a WorkloadSpec, and instantiates it
// on a Cluster.
//
// The same Workload instantiated on two clusters (e.g. one per protocol)
// creates identical schemas, identical objects with identical placement and
// identical invocation scripts — the only variable is the consistency
// protocol, which is exactly the comparison the paper's simulation makes.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "runtime/cluster.hpp"
#include "workload/spec.hpp"

namespace lotec {

/// One node of a family's invocation script, flattened in pre-order so that
/// a transaction's serial number indexes its node directly.
struct ScriptNode {
  std::size_t object = 0;   ///< index into the workload's object list
  MethodId method{};        ///< method variant on that object's class
  bool inject_abort = false;
  /// Pre-order indices (== future transaction serials) of the children.
  std::vector<std::size_t> children;
};

/// A family's whole script; hung on RootRequest::user_data.
struct FamilyScript {
  std::vector<ScriptNode> nodes;  // nodes[0] is the root
};

class Workload {
 public:
  /// Generate the population (classes, object plan, scripts).
  explicit Workload(const WorkloadSpec& spec);

  /// Create the classes and objects on `cluster` and return the executable
  /// root requests.  Call once per (fresh) cluster.
  ///
  /// `read_only_fraction` (in [0, 1]) converts that share of the families
  /// into declared read-only ones (RootRequest::kind = kReadOnly): their
  /// scripts are remapped onto the per-class shadow reader methods (same
  /// touched attributes, writes folded into reads), so the reference pattern
  /// is preserved while the declared intent changes.  The selection uses its
  /// own deterministically seeded Rng — the population and scripts are
  /// identical across different fractions.
  [[nodiscard]] std::vector<RootRequest> instantiate(
      Cluster& cluster, double read_only_fraction = 0.0) const;

  [[nodiscard]] const WorkloadSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t num_objects() const noexcept {
    return classes_.size();
  }
  [[nodiscard]] std::size_t object_pages(std::size_t object) const {
    return classes_.at(object).pages;
  }
  [[nodiscard]] const std::vector<std::shared_ptr<FamilyScript>>& scripts()
      const noexcept {
    return scripts_;
  }

  /// Total script nodes (expected transactions) across all families.
  [[nodiscard]] std::size_t total_script_nodes() const noexcept;

 private:
  struct MethodPlan {
    AttrSet reads;
    AttrSet writes;
    std::optional<AttrSet> prediction_hint;
  };
  /// One class per object (maximizes reference-pattern variety).
  struct ClassPlan {
    std::size_t pages = 1;
    std::size_t num_attrs = 1;
    std::vector<MethodPlan> methods;
  };

  void generate_population(Rng& rng);
  void generate_scripts(Rng& rng);
  std::size_t emit_script_node(FamilyScript& script, Rng& rng,
                               const ZipfSampler& sampler, std::size_t object,
                               std::size_t depth,
                               std::vector<std::size_t>& path);

  WorkloadSpec spec_;
  std::vector<ClassPlan> classes_;
  std::vector<std::shared_ptr<FamilyScript>> scripts_;
};

/// The generic method body shared by all generated variants: performs the
/// declared accesses, then replays the script node's children, then
/// (injection leaves) aborts.  `object_ids` is filled during instantiate().
[[nodiscard]] MethodBody make_script_body(
    AttrSet reads, AttrSet writes,
    std::shared_ptr<const std::vector<ObjectId>> object_ids);

}  // namespace lotec
