// Event seam between the runtime and the schedule checker (src/check).
//
// The runtime layers (FamilyRunner, FamilyLockTable, GdoService,
// GlobalLockCache, FaultEngine, Transport) report semantically meaningful
// steps through this interface so the checker's invariant oracles can
// reconstruct what each explored schedule actually did — which transaction
// held which lock in which mode, which page versions each method body read,
// which versions the directory published — without the oracles reaching
// into runtime internals.
//
// Layering: this header is intentionally dependency-light (common ids,
// LockMode, the net-layer MessageProbe) so every producing layer can
// include it without a library cycle; the checker library proper
// (strategies, oracles, driver) links *against* the runtime, not the other
// way around.  A null sink costs one pointer comparison at each emission
// point; CheckSink's defaults are all no-ops so sinks override only what
// they consume.
//
// Threading: events are emitted under the producing layer's own locks
// (store_mu, the GDO partition lock, the lock-cache mutex).  Sinks must be
// append-only observers — never call back into the cluster, never block.
// Under the deterministic TokenScheduler exactly one family runs at a
// time, so a sink sees a single linearized event stream.
#pragma once

#include <cstdint>

#include "common/ids.hpp"
#include "gdo/lock_mode.hpp"
#include "net/transport.hpp"

namespace lotec {

/// Why a global lock left a family (release-time classification).
enum class CheckReleaseReason : std::uint8_t {
  kRootCommit,   // end-of-family release with committed results
  kRootAbort,    // end-of-attempt release discarding results
  kSubtreeAbort  // mid-family release after a sub-transaction abort (Moss
                 // rule 4: only legal when no ancestor holds or retains)
};

[[nodiscard]] constexpr const char* to_string(CheckReleaseReason r) noexcept {
  switch (r) {
    case CheckReleaseReason::kRootCommit: return "root-commit";
    case CheckReleaseReason::kRootAbort: return "root-abort";
    case CheckReleaseReason::kSubtreeAbort: return "subtree-abort";
  }
  return "?";
}

class CheckSink : public MessageProbe {
 public:
  /// parent_serial for root transactions.
  static constexpr std::uint32_t kNoSerial = ~std::uint32_t{0};

  // -- transport ----------------------------------------------------------
  /// Every Transport::send / send_to_all, before fault verdicts (from
  /// MessageProbe).  Local src==dst sends included: the probe counts
  /// *steps*, the wire counters count traffic.
  void on_transport_message(const WireMessage& /*m*/) override {}

  // -- family lifecycle ---------------------------------------------------
  /// A family (re)starts an attempt; per-attempt oracle state resets here.
  virtual void on_attempt_start(FamilyId /*family*/) {}
  /// A (sub-)transaction begins; `parent_serial` is kNoSerial for roots.
  virtual void on_txn_begin(FamilyId /*family*/, std::uint32_t /*serial*/,
                            std::uint32_t /*parent_serial*/,
                            ObjectId /*target*/) {}
  /// A sub-transaction pre-commits: its locks pass to `parent_serial` as
  /// retained locks (Moss rule 3).
  virtual void on_pre_commit(FamilyId /*family*/, std::uint32_t /*serial*/,
                             std::uint32_t /*parent_serial*/) {}
  /// Serials [first_serial, end_serial) abort and drop out of the lock
  /// table (emitted before the corresponding kSubtreeAbort releases).
  virtual void on_subtree_abort(FamilyId /*family*/,
                                std::uint32_t /*first_serial*/,
                                std::uint32_t /*end_serial*/) {}
  /// Final outcome after the retry loop; accesses and stamps recorded
  /// during this family only "count" when committed is true.
  virtual void on_family_outcome(FamilyId /*family*/, bool /*committed*/) {}

  // -- locks --------------------------------------------------------------
  /// The family already held a compatible global lock; this serial joined
  /// locally (zero messages).
  virtual void on_local_grant(FamilyId /*family*/, std::uint32_t /*serial*/,
                              ObjectId /*object*/, LockMode /*mode*/) {}
  /// A global grant reached this serial.  `upgrade`: read→write on a held
  /// lock.  `cached_regrant`: satisfied by the site's GlobalLockCache
  /// without a directory round.  `prefetch`: granted to the family root by
  /// the prefetch batch rather than an on-demand acquire.
  virtual void on_global_grant(FamilyId /*family*/, std::uint32_t /*serial*/,
                               ObjectId /*object*/, LockMode /*mode*/,
                               bool /*upgrade*/, bool /*cached_regrant*/,
                               bool /*prefetch*/) {}
  /// A global lock left the family (after the directory processed it).
  virtual void on_lock_release(FamilyId /*family*/, ObjectId /*object*/,
                               CheckReleaseReason /*reason*/) {}
  /// The mutual-recursion preclusion rule fired (a write-involved
  /// invocation re-entered an object a distinct ancestor still holds).
  virtual void on_recursion_precluded(FamilyId /*family*/,
                                      std::uint32_t /*serial*/,
                                      ObjectId /*object*/) {}

  // -- pages --------------------------------------------------------------
  /// A method body touched `page` of `object` at local version `version`
  /// (0 = never written).  Emitted per page, after freshness enforcement.
  virtual void on_page_access(FamilyId /*family*/, std::uint32_t /*serial*/,
                              ObjectId /*object*/, PageIndex /*page*/,
                              Lsn /*version*/, bool /*write*/) {}
  /// The releasing site stamped a dirty page with its commit version
  /// (before the release publishes it; site-local until then).
  virtual void on_commit_stamp(FamilyId /*family*/, ObjectId /*object*/,
                               PageIndex /*page*/, Lsn /*version*/,
                               NodeId /*site*/) {}
  /// The directory recorded `version` as the newest copy of `page` at
  /// `site` — the publication step every later grant must observe.  `tick`
  /// is the global commit tick published with the version (0 for residency
  /// re-records that introduce no new version).
  virtual void on_directory_stamp(ObjectId /*object*/, PageIndex /*page*/,
                                  Lsn /*version*/, NodeId /*site*/,
                                  std::uint64_t /*tick*/) {}
  /// A snapshot-isolated read-only family resolved `page` of `object` to
  /// committed `version` under its start stamp (mv_read extension; no lock,
  /// no on_page_access).  The serializability oracle checks `version` is
  /// the newest publication with tick <= `stamp` and folds the read into
  /// the conflict graph.
  virtual void on_snapshot_read(FamilyId /*family*/, std::uint32_t /*serial*/,
                                ObjectId /*object*/, PageIndex /*page*/,
                                Lsn /*version*/, std::uint64_t /*stamp*/) {}

  // -- lock cache / faults ------------------------------------------------
  /// `site` now holds (or downgraded to) a cached inter-family lock.
  virtual void on_cache_put(NodeId /*site*/, ObjectId /*object*/,
                            LockMode /*mode*/) {}
  /// `site` no longer holds a cached lock on `object` (eviction,
  /// revocation, drain, or crash wipe).
  virtual void on_cache_drop(NodeId /*site*/, ObjectId /*object*/) {}
  /// `node` crashed; `crash_count` is its post-increment epoch.
  virtual void on_node_crash(NodeId /*node*/, std::uint64_t /*crash_count*/) {}
  virtual void on_node_restart(NodeId /*node*/) {}

  // -- elastic directory (consistent-hash ring) ---------------------------
  /// Ring membership changed: `node` joined (or left) and the placement
  /// epoch advanced to `epoch`.
  virtual void on_ring_change(std::uint64_t /*epoch*/, NodeId /*node*/,
                              bool /*joined*/) {}
  /// The entry of `object` moved from `from` to `to` under placement epoch
  /// `epoch` (migration pump or on-demand pull).
  virtual void on_shard_move(ObjectId /*object*/, NodeId /*from*/,
                             NodeId /*to*/, std::uint64_t /*epoch*/) {}
  /// `node` served a directory request for `object` as the *unfenced* owner
  /// under placement epoch `epoch` (failover serves are not reported — they
  /// are fenced by the crash epoch instead).  The shard-ownership oracle
  /// flags two distinct unfenced servers for one entry.
  virtual void on_shard_serve(ObjectId /*object*/, NodeId /*node*/,
                              std::uint64_t /*epoch*/) {}
  /// A request from `requester` hit fenced ex-owner `stale` and was
  /// redirected to the current owner (both messages charged).
  virtual void on_shard_redirect(ObjectId /*object*/, NodeId /*stale*/,
                                 NodeId /*requester*/) {}
};

}  // namespace lotec
