#include "check/strategy.hpp"

#include <algorithm>

namespace lotec::check {

namespace {
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint32_t choice_count(const std::vector<std::size_t>& runnable,
                           std::size_t spawn_candidate) noexcept {
  return static_cast<std::uint32_t>(
      runnable.size() +
      (spawn_candidate != Strategy::kNoSpawn ? 1 : 0));
}
}  // namespace

// --- RandomWalkStrategy ----------------------------------------------------

bool RandomWalkStrategy::begin_schedule(std::uint64_t index) {
  rng_ = Rng(mix64(seed_ ^ (index * 0x9e3779b97f4a7c15ULL)));
  return true;
}

std::uint32_t RandomWalkStrategy::pick(
    const std::vector<std::size_t>& runnable, std::size_t spawn_candidate) {
  return static_cast<std::uint32_t>(
      rng_.below(choice_count(runnable, spawn_candidate)));
}

// --- PctStrategy -----------------------------------------------------------

bool PctStrategy::begin_schedule(std::uint64_t index) {
  rng_ = Rng(mix64(seed_ ^ (index * 0xd1342543de82ef95ULL)));
  prio_.clear();
  change_at_.clear();
  for (std::uint32_t i = 0; i < changepoints_; ++i)
    change_at_.push_back(rng_.below(std::max<std::uint64_t>(est_steps_, 1)));
  std::sort(change_at_.begin(), change_at_.end());
  next_change_ = 0;
  messages_ = 0;
  demote_next_ = (1ULL << 32);
  return true;
}

std::uint64_t PctStrategy::priority_of(std::size_t candidate) {
  auto [it, inserted] = prio_.try_emplace(candidate, 0);
  // Random priorities keep the top bit set so demotions (counting down from
  // 2^32) always rank strictly below every never-demoted candidate.
  if (inserted) it->second = rng_.next() | (1ULL << 63);
  return it->second;
}

std::uint32_t PctStrategy::pick(const std::vector<std::size_t>& runnable,
                                std::size_t spawn_candidate) {
  std::vector<std::size_t> candidates = runnable;
  if (spawn_candidate != kNoSpawn) candidates.push_back(spawn_candidate);

  auto leader = [&]() -> std::uint32_t {
    std::uint32_t best = 0;
    std::uint64_t best_prio = 0;
    for (std::uint32_t i = 0; i < candidates.size(); ++i) {
      const std::uint64_t p = priority_of(candidates[i]);
      if (i == 0 || p > best_prio) {
        best = i;
        best_prio = p;
      }
    }
    return best;
  };

  std::uint32_t choice = leader();
  while (next_change_ < change_at_.size() &&
         messages_ >= change_at_[next_change_]) {
    // Changepoint reached: the current leader drops to the bottom of the
    // priority order and the next-highest candidate takes over.
    ++next_change_;
    prio_[candidates[choice]] = --demote_next_;
    choice = leader();
  }
  return choice;
}

void PctStrategy::end_schedule() {
  // Adapt the changepoint range to the observed schedule length.
  if (messages_ > 0) est_steps_ = messages_;
}

// --- DfsStrategy -----------------------------------------------------------

bool DfsStrategy::independent(const Footprint& a,
                              const Footprint& b) noexcept {
  if (a.finished || b.finished) return true;
  if (a.object != b.object) return true;
  return !a.write && !b.write;
}

bool DfsStrategy::pruned(const NodeRec& node, std::size_t slot) const {
  const Footprint& fp = node.choices[slot].fp;
  if (!fp.known) return false;  // must explore to learn the footprint
  bool any_explored = false;
  for (const Choice& c : node.choices) {
    if (!c.explored) continue;
    any_explored = true;
    if (!independent(fp, c.fp)) return false;
  }
  return any_explored;
}

bool DfsStrategy::advance() {
  while (!stack_.empty()) {
    NodeRec& node = stack_.back();
    for (std::size_t slot = 0; slot < node.choices.size(); ++slot) {
      if (node.choices[slot].explored || pruned(node, slot)) continue;
      node.chosen = static_cast<std::uint32_t>(slot);
      node.choices[slot].explored = true;
      return true;
    }
    stack_.pop_back();
  }
  return false;
}

bool DfsStrategy::begin_schedule(std::uint64_t /*index*/) {
  if (exhausted_) return false;
  if (first_) {
    first_ = false;
  } else if (!advance()) {
    exhausted_ = true;
    return false;
  }
  depth_ = 0;
  watchers_.clear();
  return true;
}

std::uint32_t DfsStrategy::pick(const std::vector<std::size_t>& runnable,
                                std::size_t spawn_candidate) {
  const std::uint32_t k = choice_count(runnable, spawn_candidate);
  if (depth_ < stack_.size()) {
    // Replaying the committed prefix.  Determinism guarantees the same
    // candidates reappear; re-arm watchers for still-unknown footprints.
    NodeRec& node = stack_[depth_];
    for (std::size_t slot = 0; slot < node.choices.size(); ++slot)
      if (!node.choices[slot].fp.known)
        watchers_.push_back({depth_, slot, node.choices[slot].key});
    ++depth_;
    return node.chosen < k ? node.chosen : 0;
  }
  if (stack_.size() >= max_depth_) return 0;  // untracked tail
  NodeRec node;
  node.choices.reserve(k);
  for (const std::size_t f : runnable) node.choices.push_back({f, {}, false});
  if (spawn_candidate != kNoSpawn)
    node.choices.push_back({spawn_candidate, {}, false});
  node.chosen = 0;
  node.choices[0].explored = true;
  stack_.push_back(std::move(node));
  for (std::size_t slot = 0; slot < k; ++slot)
    watchers_.push_back({depth_, slot, stack_.back().choices[slot].key});
  ++depth_;
  return 0;
}

void DfsStrategy::note_lock_op(std::uint64_t family, std::uint64_t object,
                               bool write) {
  // A watcher resolves on its family's FIRST lock op after registration;
  // every unresolved watcher for this family was registered before this op
  // with no intervening op by the family, so this op is "first" for all.
  for (auto it = watchers_.begin(); it != watchers_.end();) {
    if (it->key == family) {
      Footprint& fp = stack_[it->node].choices[it->slot].fp;
      fp.known = true;
      fp.finished = false;
      fp.object = object;
      fp.write = write;
      it = watchers_.erase(it);
    } else {
      ++it;
    }
  }
}

void DfsStrategy::end_schedule() {
  // A family that never performed another lock op conflicts with nothing.
  for (const Watcher& w : watchers_) {
    Footprint& fp = stack_[w.node].choices[w.slot].fp;
    fp.known = true;
    fp.finished = true;
  }
  watchers_.clear();
}

// --- ReplayStrategy --------------------------------------------------------

std::uint32_t ReplayStrategy::pick(const std::vector<std::size_t>& runnable,
                                   std::size_t spawn_candidate) {
  const std::uint32_t k = choice_count(runnable, spawn_candidate);
  if (pos_ >= trace_.decisions.size()) return 0;
  const Decision d = trace_.decisions[pos_++];
  return d.pick < k ? d.pick : 0;
}

}  // namespace lotec::check
