#include "check/decision_trace.hpp"

#include <sstream>

#include "common/error.hpp"

namespace lotec::check {

namespace {
constexpr const char* kHeader = "lotec-decision-trace v1";
}

std::size_t DecisionTrace::nonzero_picks() const noexcept {
  std::size_t n = 0;
  for (const Decision& d : decisions)
    if (d.pick != 0) ++n;
  return n;
}

std::string DecisionTrace::serialize() const {
  std::ostringstream out;
  out << kHeader << '\n';
  for (const Decision& d : decisions) out << d.k << ' ' << d.pick << '\n';
  return out.str();
}

DecisionTrace DecisionTrace::parse(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) || header != kHeader)
    throw Error("DecisionTrace::parse: missing '" + std::string(kHeader) +
                "' header");
  DecisionTrace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    Decision d;
    if (!(fields >> d.k >> d.pick) || d.k < 2 || d.pick >= d.k)
      throw Error("DecisionTrace::parse: bad decision line '" + line + "'");
    trace.decisions.push_back(d);
  }
  return trace;
}

}  // namespace lotec::check
