// ScheduleChecker: the driver that ties strategies, oracles and the runtime
// together into a stateless model checker.
//
// Each explored schedule builds a FRESH Cluster from the same config and
// workload (fixed seed); the only varying input is the strategy's pick at
// each scheduler decision point, recorded as a DecisionTrace.  After the
// batch drains, the oracles deliver their verdicts.  On a violation the
// driver delta-debugs the trace down to a minimal counterexample (zeroing
// nonzero picks chunk-wise and keeping reductions that preserve the same
// oracle's violation), then verifies the result replays bit-identically —
// same violation, same message count, same message trace — twice in a row,
// and can dump a Chrome trace of the offending schedule for Perfetto.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "check/decision_trace.hpp"
#include "check/oracles.hpp"
#include "check/scenarios.hpp"
#include "check/strategy.hpp"
#include "protocol/protocol.hpp"
#include "workload/generator.hpp"

namespace lotec::check {

enum class ExploreMode : std::uint8_t { kRandom, kPct, kDfs };

struct CheckOptions {
  CheckScenario scenario = check_tiny();
  ProtocolKind protocol = ProtocolKind::kLotec;
  std::uint32_t page_size = 256;
  std::uint64_t seed = 42;
  bool lock_cache = false;
  std::size_t lock_cache_capacity = 0;
  /// Explore schedules with message batching on (NetworkConfig::
  /// batch_messages).  Batching is physical-only, so the oracles must stay
  /// green with the knob in either position.
  bool batch_messages = false;
  /// The hidden mutation switch (tests / demo): break Moss retention and
  /// let the checker find the counterexample.
  bool break_retention = false;

  ExploreMode mode = ExploreMode::kRandom;
  std::uint64_t max_schedules = 1000;
  /// Wall-clock budget in seconds; 0 = unlimited.  Checked between
  /// schedules, so one schedule may overshoot.
  double budget_seconds = 0;
  std::uint32_t pct_changepoints = 3;
  std::size_t dfs_max_depth = 18;
  /// Delta-debug the counterexample (replays cost schedules).
  bool minimize = true;
  std::uint64_t max_minimize_replays = 300;
  /// When non-empty and a violation was found: write a Chrome trace-event
  /// JSON of the minimized counterexample schedule here.
  std::string chrome_out;
};

/// What one schedule did.
struct ScheduleOutcome {
  DecisionTrace trace;
  std::optional<Violation> violation;
  std::uint64_t messages = 0;  ///< transport steps seen by the probe
  /// FNV-1a fingerprint of the message sequence (FanoutSink::message_hash).
  std::uint64_t message_hash = 0;
  std::uint64_t committed = 0;
  std::uint64_t recursion_preclusions = 0;
  /// A runtime Error escaped Cluster::execute (programming-error paths
  /// surface this way; counted, not treated as a violation).
  std::string error;
};

struct CheckReport {
  std::uint64_t schedules_run = 0;
  std::uint64_t schedules_with_errors = 0;
  std::uint64_t recursion_preclusions = 0;
  /// DFS exhausted its (bounded, pruned) tree before the budget ran out.
  bool exhausted = false;
  bool budget_expired = false;

  std::optional<Violation> violation;
  /// Minimized (when opts.minimize) replayable counterexample.
  DecisionTrace counterexample;
  std::uint64_t counterexample_messages = 0;
  std::uint64_t minimize_replays = 0;
  /// The minimized trace was replayed twice and both runs reproduced the
  /// identical violation, message count and message trace.
  bool replay_verified = false;

  [[nodiscard]] std::string summary() const;
};

class ScheduleChecker {
 public:
  explicit ScheduleChecker(CheckOptions opts);

  /// Explore schedules per opts; on violation, minimize + verify.
  [[nodiscard]] CheckReport run();

  /// Replay one explicit trace (CLI --replay).  No minimization; the
  /// returned report carries the (re-recorded) trace and its verdict.
  [[nodiscard]] CheckReport replay(const DecisionTrace& trace);

 private:
  [[nodiscard]] ScheduleOutcome run_schedule(Strategy& strategy,
                                             const std::string& chrome_out);
  [[nodiscard]] ScheduleOutcome replay_trace(const DecisionTrace& trace,
                                             const std::string& chrome_out);
  [[nodiscard]] DecisionTrace minimize(const ScheduleOutcome& found,
                                       CheckReport& report);
  void verify_and_dump(CheckReport& report);

  CheckOptions opts_;
  Workload workload_;
};

}  // namespace lotec::check
