#include "check/checker.hpp"

#include <chrono>
#include <memory>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "runtime/cluster.hpp"

namespace lotec::check {

ScheduleChecker::ScheduleChecker(CheckOptions opts)
    : opts_(std::move(opts)), workload_(opts_.scenario.workload) {}

ScheduleOutcome ScheduleChecker::run_schedule(Strategy& strategy,
                                              const std::string& chrome_out) {
  ScheduleOutcome out;

  // Fresh oracles per schedule; verdict order is fixed so the "first"
  // violation is deterministic across replays of the same trace.
  LockDisciplineOracle locks;
  CoherenceOracle coherence;
  CacheEpochOracle cache;
  SerializabilityOracle serializability;
  FanoutSink fanout;
  fanout.add(&locks);
  fanout.add(&coherence);
  fanout.add(&cache);
  fanout.add(&serializability);
  fanout.set_strategy(&strategy);

  ClusterConfig cfg;
  cfg.nodes = opts_.scenario.nodes;
  cfg.protocol = opts_.protocol;
  cfg.page_size = opts_.page_size;
  cfg.seed = opts_.seed;
  cfg.lock_cache = opts_.lock_cache;
  cfg.lock_cache_capacity = opts_.lock_cache_capacity;
  cfg.mv_read = opts_.scenario.mv_read;
  cfg.net.batch_messages = opts_.batch_messages;
  cfg.test_mutations.break_retention = opts_.break_retention;
  cfg.check_sink = &fanout;
  if (!chrome_out.empty()) {
    cfg.obs.trace_spans = true;
    cfg.obs.chrome_trace = chrome_out;
  }

  DecisionTrace trace;
  cfg.schedule_picker = [&trace, &strategy](
                            const std::vector<std::size_t>& runnable,
                            std::size_t spawn_candidate) -> std::size_t {
    const auto k = static_cast<std::uint32_t>(
        runnable.size() + (spawn_candidate != Strategy::kNoSpawn ? 1 : 0));
    std::uint32_t pick = strategy.pick(runnable, spawn_candidate);
    if (pick >= k) pick = 0;  // strategies promise [0, k); don't crash on one
    trace.decisions.push_back({k, pick});
    return pick;
  };

  try {
    Cluster cluster(cfg);
    std::vector<RootRequest> requests =
        workload_.instantiate(cluster, opts_.scenario.read_only_fraction);
    const std::vector<TxnResult> results = cluster.execute(std::move(requests));
    for (const TxnResult& r : results)
      if (r.committed) ++out.committed;
    // When this schedule is being dumped (counterexample replay), attach the
    // flight-recorder post-mortem next to the Chrome trace while the cluster
    // is still alive — the last N events per node of the violating run.
    if (!chrome_out.empty()) {
      if (FlightRecorder* rec = cluster.observe().flight_recorder())
        (void)rec->dump_file(chrome_out + ".postmortem.json");
    }
    // Cluster destruction flushes the tracer (Chrome dump, when requested).
  } catch (const Error& e) {
    out.error = e.what();
  }
  strategy.end_schedule();

  out.trace = std::move(trace);
  out.messages = fanout.messages();
  out.message_hash = fanout.message_hash();
  out.recursion_preclusions = locks.recursion_preclusions();

  // A schedule that died on a runtime Error left the oracles watching a
  // truncated event stream; its verdicts are not trustworthy, so it is
  // counted as an error, never as a violation.
  if (out.error.empty()) {
    OracleBase* const oracles[] = {&locks, &coherence, &cache,
                                   &serializability};
    for (OracleBase* o : oracles) {
      if (std::optional<Violation> v = o->finish()) {
        out.violation = std::move(v);
        break;
      }
    }
  }
  return out;
}

ScheduleOutcome ScheduleChecker::replay_trace(const DecisionTrace& trace,
                                              const std::string& chrome_out) {
  ReplayStrategy replay(trace);
  (void)replay.begin_schedule(0);
  return run_schedule(replay, chrome_out);
}

DecisionTrace ScheduleChecker::minimize(const ScheduleOutcome& found,
                                        CheckReport& report) {
  // Greedy ddmin over the NONZERO picks: zeroing a pick means "take the
  // default choice there", which by the replay convention is always a valid
  // schedule.  A reduction is kept only when the replay still violates the
  // SAME oracle; on success the re-recorded trace (whose k values match what
  // the scheduler actually offered) becomes the new current.
  ScheduleOutcome best = found;
  const std::string target_oracle = found.violation->oracle;

  auto nonzero_positions = [](const DecisionTrace& t) {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < t.decisions.size(); ++i)
      if (t.decisions[i].pick != 0) idx.push_back(i);
    return idx;
  };

  std::uint64_t replays = 0;
  std::size_t chunk = 0;
  while (replays < opts_.max_minimize_replays) {
    const std::vector<std::size_t> nz = nonzero_positions(best.trace);
    if (nz.empty()) break;
    if (chunk == 0 || chunk > nz.size())
      chunk = std::max<std::size_t>(1, nz.size() / 2);

    bool reduced = false;
    for (std::size_t start = 0;
         start < nz.size() && replays < opts_.max_minimize_replays;
         start += chunk) {
      DecisionTrace cand = best.trace;
      const std::size_t end = std::min(start + chunk, nz.size());
      for (std::size_t i = start; i < end; ++i)
        cand.decisions[nz[i]].pick = 0;
      ++replays;
      ScheduleOutcome out = replay_trace(cand, "");
      if (out.violation && out.violation->oracle == target_oracle) {
        best = std::move(out);
        reduced = true;
        break;  // restart the scan against the smaller trace
      }
    }
    if (!reduced) {
      if (chunk == 1) break;
      chunk = std::max<std::size_t>(1, chunk / 2);
    }
  }

  report.minimize_replays = replays;
  report.violation = best.violation;
  report.counterexample_messages = best.messages;
  return best.trace;
}

void ScheduleChecker::verify_and_dump(CheckReport& report) {
  // The acceptance bar for a counterexample: two independent replays of the
  // minimized trace must reproduce the identical violation, message count
  // and message fingerprint, and re-record the identical decision trace.
  const ScheduleOutcome a = replay_trace(report.counterexample, "");
  const ScheduleOutcome b = replay_trace(report.counterexample, "");
  report.replay_verified =
      a.violation.has_value() && a.violation == b.violation &&
      a.violation == report.violation && a.messages == b.messages &&
      a.message_hash == b.message_hash && a.trace == b.trace;
  report.counterexample_messages = a.messages;
  if (report.replay_verified) report.counterexample = a.trace;
  if (!opts_.chrome_out.empty())
    (void)replay_trace(report.counterexample, opts_.chrome_out);
}

CheckReport ScheduleChecker::run() {
  CheckReport report;

  std::unique_ptr<Strategy> strategy;
  switch (opts_.mode) {
    case ExploreMode::kRandom:
      strategy = std::make_unique<RandomWalkStrategy>(opts_.seed);
      break;
    case ExploreMode::kPct:
      strategy =
          std::make_unique<PctStrategy>(opts_.seed, opts_.pct_changepoints);
      break;
    case ExploreMode::kDfs:
      strategy = std::make_unique<DfsStrategy>(opts_.dfs_max_depth);
      break;
  }

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < opts_.max_schedules; ++i) {
    if (opts_.budget_seconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= opts_.budget_seconds) {
        report.budget_expired = true;
        break;
      }
    }
    if (!strategy->begin_schedule(i)) {
      report.exhausted = true;
      break;
    }
    ScheduleOutcome out = run_schedule(*strategy, "");
    ++report.schedules_run;
    if (!out.error.empty()) ++report.schedules_with_errors;
    report.recursion_preclusions += out.recursion_preclusions;
    if (out.violation) {
      report.violation = out.violation;
      report.counterexample = out.trace;
      report.counterexample_messages = out.messages;
      if (opts_.minimize) report.counterexample = minimize(out, report);
      verify_and_dump(report);
      break;
    }
  }
  return report;
}

CheckReport ScheduleChecker::replay(const DecisionTrace& trace) {
  CheckReport report;
  const ScheduleOutcome a = replay_trace(trace, "");
  const ScheduleOutcome b = replay_trace(trace, "");
  report.schedules_run = 2;
  report.schedules_with_errors =
      (a.error.empty() ? 0U : 1U) + (b.error.empty() ? 0U : 1U);
  report.recursion_preclusions = a.recursion_preclusions;
  report.violation = a.violation;
  report.counterexample = a.trace;
  report.counterexample_messages = a.messages;
  report.replay_verified = a.violation == b.violation &&
                           a.messages == b.messages &&
                           a.message_hash == b.message_hash &&
                           a.trace == b.trace;
  if (a.violation && !opts_.chrome_out.empty())
    (void)replay_trace(trace, opts_.chrome_out);
  return report;
}

std::string CheckReport::summary() const {
  std::ostringstream os;
  os << "schedules=" << schedules_run;
  if (schedules_with_errors > 0) os << " errors=" << schedules_with_errors;
  if (exhausted) os << " (search space exhausted)";
  if (budget_expired) os << " (budget expired)";
  os << " recursion_preclusions=" << recursion_preclusions;
  if (violation) {
    os << "\nVIOLATION [" << violation->oracle << "] " << violation->detail;
    os << "\ncounterexample: " << counterexample.decisions.size()
       << " decisions (" << counterexample.nonzero_picks() << " nonzero), "
       << counterexample_messages << " messages";
    if (minimize_replays > 0)
      os << ", minimized in " << minimize_replays << " replays";
    os << "\nreplay "
       << (replay_verified ? "verified: bit-identical twice"
                           : "verification FAILED");
  } else {
    os << "\nno invariant violations found";
  }
  return os.str();
}

}  // namespace lotec::check
