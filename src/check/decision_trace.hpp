// DecisionTrace: the recorded nondeterminism of one explored schedule.
//
// Under the token scheduler every interleaving choice funnels through one
// decision point (TokenScheduler::schedule_next_locked's pick among the
// runnable families plus the optional spawn slot).  The picker is consulted
// only when more than one choice exists, so a schedule is fully determined
// by the sequence of (k, pick) pairs — k choices offered, pick taken.
// Replaying the same trace against a fresh cluster with the same seed and
// workload reproduces the run bit-identically (same messages, same events,
// same violation), which is what makes counterexamples minimizable and
// shippable as CI artifacts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lotec::check {

struct Decision {
  std::uint32_t k = 0;     ///< choices offered (>= 2 whenever recorded)
  std::uint32_t pick = 0;  ///< chosen index in [0, k)

  friend bool operator==(const Decision&, const Decision&) = default;
};

struct DecisionTrace {
  std::vector<Decision> decisions;

  /// Replay convention (ReplayStrategy): a pick out of range for the k the
  /// scheduler actually offers — or a decision point past the end of the
  /// trace — falls back to choice 0.  This makes every edited trace (ddmin
  /// zeroing, truncation) a valid schedule, just not necessarily the same
  /// one.
  [[nodiscard]] std::size_t nonzero_picks() const noexcept;

  /// Text form: a header line, then one "k pick" pair per line.
  [[nodiscard]] std::string serialize() const;
  /// Inverse of serialize(); throws Error on malformed input.
  static DecisionTrace parse(const std::string& text);

  friend bool operator==(const DecisionTrace&, const DecisionTrace&) =
      default;
};

}  // namespace lotec::check
