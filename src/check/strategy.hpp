// Schedule-exploration strategies: who decides what the token scheduler
// does at each decision point with more than one choice.
//
// The checker driver adapts a Strategy into a SchedulePicker and records
// every (k, pick) into a DecisionTrace, so all strategies — including the
// replaying one — produce traces replayable through ReplayStrategy.
//
//   RandomWalkStrategy  seeded uniform walk; schedule i uses seed^i, so a
//                       budget of N schedules samples N independent walks.
//   PctStrategy         PCT-style priority scheduling (Burckhardt et al.,
//                       "A Randomized Scheduler with Probabilistic
//                       Guarantees of Finding Bugs"): each candidate gets a
//                       random fixed priority, the highest-priority
//                       runnable always runs, and d-1 priority changepoints
//                       — keyed on the transport message count — demote the
//                       current leader to the bottom.  Finds ordering bugs
//                       of depth d with known probability.
//   DfsStrategy         bounded-depth depth-first enumeration of all picks
//                       with a sleep-set-flavoured partial-order pruning
//                       (see the class comment).
//   ReplayStrategy      forced replay of a DecisionTrace.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "check/decision_trace.hpp"
#include "common/rng.hpp"

namespace lotec::check {

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Prepare schedule number `index` (0-based).  Returns false when the
  /// strategy has exhausted its search space (DFS) — the driver stops.
  virtual bool begin_schedule(std::uint64_t index) = 0;

  /// One scheduler decision point.  `runnable` holds the runnable families'
  /// scheduler indices (== FamilyId values on a fresh cluster);
  /// `spawn_candidate` is the index of the next unstarted family, or
  /// kNoSpawn.  Total choices k = runnable.size() + (spawn ? 1 : 0) >= 2;
  /// must return a value in [0, k).
  virtual std::uint32_t pick(const std::vector<std::size_t>& runnable,
                             std::size_t spawn_candidate) = 0;

  /// Fed by the driver for every transport message (PCT changepoints).
  virtual void note_message() {}

  /// Fed by the driver for every lock grant: the family in scheduler slot
  /// `family` (the index space pick() sees) performed a lock operation on
  /// `object` (DFS independence footprints).
  virtual void note_lock_op(std::uint64_t /*family*/, std::uint64_t /*object*/,
                            bool /*write*/) {}

  virtual void end_schedule() {}

  static constexpr std::size_t kNoSpawn = static_cast<std::size_t>(-1);
};

class RandomWalkStrategy final : public Strategy {
 public:
  explicit RandomWalkStrategy(std::uint64_t seed) : seed_(seed) {}

  bool begin_schedule(std::uint64_t index) override;
  std::uint32_t pick(const std::vector<std::size_t>& runnable,
                     std::size_t spawn_candidate) override;

 private:
  std::uint64_t seed_;
  Rng rng_{0};
};

class PctStrategy final : public Strategy {
 public:
  /// `changepoints` = d-1 in PCT terms (bug-depth d).
  PctStrategy(std::uint64_t seed, std::uint32_t changepoints)
      : seed_(seed), changepoints_(changepoints) {}

  bool begin_schedule(std::uint64_t index) override;
  std::uint32_t pick(const std::vector<std::size_t>& runnable,
                     std::size_t spawn_candidate) override;
  void note_message() override { ++messages_; }
  void end_schedule() override;

 private:
  [[nodiscard]] std::uint64_t priority_of(std::size_t candidate);

  std::uint64_t seed_;
  std::uint32_t changepoints_;
  Rng rng_{0};
  std::unordered_map<std::size_t, std::uint64_t> prio_;
  std::vector<std::uint64_t> change_at_;  // message counts, ascending
  std::size_t next_change_ = 0;
  std::uint64_t messages_ = 0;
  /// Estimated schedule length in messages, adapted from the last run so
  /// changepoints land inside the schedule regardless of scenario size.
  std::uint64_t est_steps_ = 512;
  /// Demoted priorities count down from here — always below every randomly
  /// assigned priority (which have the top bit set).
  std::uint64_t demote_next_ = (1ULL << 32);
};

/// Bounded-depth DFS over the decision tree with partial-order pruning.
///
/// Pruning (sleep-set-lite): at a node, candidate c need not be explored if
/// the first global lock operation c's family performs after this node is
/// INDEPENDENT of the first lock operation of every sibling already
/// explored — different objects, both reads, or the family finished without
/// another lock op.  Independent first steps commute, so some explored
/// sibling's subtree already covers an equivalent interleaving.  Footprints
/// are learned by watchers during exploration (a candidate's footprint at a
/// node is filled in the first time any schedule passes through the node
/// and later observes that family's next lock op), so pruning only kicks in
/// once the footprint is known — unknown candidates are always explored.
/// This is a heuristic reduction in the spirit of sleep sets, not a
/// verified persistent-set computation; it never prunes the first (default)
/// child, so the unreduced behaviours remain reachable through deeper
/// nodes.
///
/// Decisions beyond `max_depth` are not branched on (pick 0, untracked):
/// the tree is complete only up to the depth bound.
class DfsStrategy final : public Strategy {
 public:
  explicit DfsStrategy(std::size_t max_depth) : max_depth_(max_depth) {}

  bool begin_schedule(std::uint64_t index) override;
  std::uint32_t pick(const std::vector<std::size_t>& runnable,
                     std::size_t spawn_candidate) override;
  void note_lock_op(std::uint64_t family, std::uint64_t object,
                    bool write) override;
  void end_schedule() override;

  /// Nodes currently on the DFS stack (introspection / tests).
  [[nodiscard]] std::size_t stack_depth() const noexcept {
    return stack_.size();
  }

 private:
  struct Footprint {
    bool known = false;
    /// Family finished (or was never observed again) without another lock
    /// op — independent of everything.
    bool finished = false;
    std::uint64_t object = 0;
    bool write = false;
  };
  struct Choice {
    std::uint64_t key = 0;  ///< family index (spawn slot: the spawned family)
    Footprint fp;
    bool explored = false;
  };
  struct NodeRec {
    std::vector<Choice> choices;
    std::uint32_t chosen = 0;
  };
  struct Watcher {
    std::size_t node = 0;
    std::size_t slot = 0;
    std::uint64_t key = 0;
  };

  /// Backtrack to the deepest node with an unexplored, unpruned sibling.
  /// False = tree exhausted.
  bool advance();
  [[nodiscard]] bool pruned(const NodeRec& node, std::size_t slot) const;
  static bool independent(const Footprint& a, const Footprint& b) noexcept;

  std::size_t max_depth_;
  std::vector<NodeRec> stack_;
  std::size_t depth_ = 0;  ///< cursor within stack_ during a schedule
  std::vector<Watcher> watchers_;
  bool exhausted_ = false;
  bool first_ = true;
};

class ReplayStrategy final : public Strategy {
 public:
  explicit ReplayStrategy(DecisionTrace trace) : trace_(std::move(trace)) {}

  bool begin_schedule(std::uint64_t /*index*/) override {
    pos_ = 0;
    return true;
  }
  std::uint32_t pick(const std::vector<std::size_t>& runnable,
                     std::size_t spawn_candidate) override;

 private:
  DecisionTrace trace_;
  std::size_t pos_ = 0;
};

}  // namespace lotec::check
