// Checking scenarios: deliberately tiny workloads whose schedule space is
// small enough for systematic exploration while still exercising the whole
// protocol stack — nesting, contention, sub-transaction aborts, upgrades.
//
// These are distinct from sim/scenarios.hpp (the paper-scale benchmark
// scenarios): a model checker wants few families over few hot objects so
// that a bounded DFS covers a meaningful fraction of interleavings and a
// random walk hits rare orderings within thousands of schedules, not
// billions.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "workload/spec.hpp"

namespace lotec::check {

struct CheckScenario {
  std::string name;
  std::size_t nodes = 2;
  WorkloadSpec workload;
  /// Share of families submitted as declared read-only (shadow reader
  /// scripts).  With mv_read they take the snapshot path, and the extended
  /// serializability oracle validates every snapshot read against the
  /// commit-tick publication order.
  double read_only_fraction = 0.0;
  bool mv_read = false;
};

/// "tiny": 6 families of depth <= 2 over 3 hot objects on 2 nodes, with a
/// dash of injected sub-transaction aborts so clean runs exercise rule 4.
inline CheckScenario check_tiny() {
  CheckScenario s;
  s.name = "tiny";
  s.nodes = 2;
  s.workload.num_objects = 3;
  s.workload.min_pages = 1;
  s.workload.max_pages = 2;
  s.workload.attrs_per_page = 2;
  s.workload.methods_per_class = 3;
  s.workload.touched_attr_fraction = 0.6;
  s.workload.write_fraction = 0.7;
  s.workload.read_method_fraction = 0.15;
  s.workload.num_transactions = 6;
  s.workload.max_depth = 2;
  s.workload.child_probability = 0.6;
  s.workload.max_children = 2;
  s.workload.contention_theta = 0.8;
  s.workload.abort_probability = 0.15;
  s.workload.seed = 11;
  return s;
}

/// "small": 10 families of depth <= 3 over 4 objects on 3 nodes under high
/// contention and a high write fraction — the adversarial end of what a
/// bounded exploration can still cover.
inline CheckScenario check_small() {
  CheckScenario s;
  s.name = "small";
  s.nodes = 3;
  s.workload.num_objects = 4;
  s.workload.min_pages = 1;
  s.workload.max_pages = 3;
  s.workload.attrs_per_page = 2;
  s.workload.methods_per_class = 4;
  s.workload.touched_attr_fraction = 0.5;
  s.workload.write_fraction = 0.8;
  s.workload.read_method_fraction = 0.1;
  s.workload.num_transactions = 10;
  s.workload.max_depth = 3;
  s.workload.child_probability = 0.5;
  s.workload.max_children = 2;
  s.workload.contention_theta = 0.9;
  s.workload.abort_probability = 0.1;
  s.workload.seed = 23;
  return s;
}

/// "mixed": the tiny contention core plus a read-only population, run with
/// snapshot reads on — exploration interleaves snapshot readers against
/// in-flight writers, the regime where a wrong version resolution (a read
/// above its stamp, or a torn pre/post-commit mix) is actually reachable.
inline CheckScenario check_mixed() {
  CheckScenario s = check_tiny();
  s.name = "mixed";
  s.workload.num_transactions = 8;
  s.workload.seed = 31;
  s.read_only_fraction = 0.5;
  s.mv_read = true;
  return s;
}

inline CheckScenario check_scenario(const std::string& name) {
  if (name == "tiny") return check_tiny();
  if (name == "small") return check_small();
  if (name == "mixed") return check_mixed();
  throw UsageError("unknown check scenario '" + name +
                   "' (expected tiny, small or mixed)");
}

}  // namespace lotec::check
