#include "check/oracles.hpp"

#include <algorithm>
#include <sstream>

#include "check/strategy.hpp"

namespace lotec::check {

// --- SerializabilityOracle -------------------------------------------------

void SerializabilityOracle::on_attempt_start(FamilyId family) {
  // A restarted attempt re-executes from scratch; only the final attempt's
  // accesses count.  Published stamps from a broken earlier attempt stay —
  // they are visible to other families regardless.
  Fam& fam = fams_[family.value()];
  fam.accesses.clear();
  fam.snapshot_reads.clear();
}

void SerializabilityOracle::on_page_access(FamilyId family,
                                           std::uint32_t serial,
                                           ObjectId object, PageIndex page,
                                           Lsn version, bool write) {
  fams_[family.value()].accesses.push_back(
      {serial, object.value(), page.value(), version, write});
}

void SerializabilityOracle::on_commit_stamp(FamilyId family, ObjectId object,
                                            PageIndex page, Lsn version,
                                            NodeId /*site*/) {
  fams_[family.value()].stamps.push_back(
      {object.value(), page.value(), version});
}

void SerializabilityOracle::on_directory_stamp(ObjectId object, PageIndex page,
                                               Lsn version, NodeId /*site*/,
                                               std::uint64_t tick) {
  if (tick == 0) return;  // residency re-record: no new version
  ticked_pubs_[{object.value(), page.value()}].emplace_back(tick, version);
}

void SerializabilityOracle::on_snapshot_read(FamilyId family,
                                             std::uint32_t serial,
                                             ObjectId object, PageIndex page,
                                             Lsn version, std::uint64_t stamp) {
  Fam& fam = fams_[family.value()];
  // A snapshot read is a plain read edge-wise: the wr/rw machinery places
  // the reader after the version it observed and before every later writer.
  fam.accesses.push_back(
      {serial, object.value(), page.value(), version, /*write=*/false});
  fam.snapshot_reads.push_back(
      {serial, object.value(), page.value(), version, stamp});
}

void SerializabilityOracle::on_subtree_abort(FamilyId family,
                                             std::uint32_t first_serial,
                                             std::uint32_t end_serial) {
  // The aborted subtree's accesses are rolled back and must not generate
  // conflict edges.  Depth-first execution means the aborted serials are
  // exactly [first, end).
  auto& fam = fams_[family.value()];
  std::erase_if(fam.accesses, [&](const Access& a) {
    return a.serial >= first_serial && a.serial < end_serial;
  });
  std::erase_if(fam.snapshot_reads, [&](const SnapRead& r) {
    return r.serial >= first_serial && r.serial < end_serial;
  });
}

void SerializabilityOracle::on_family_outcome(FamilyId family,
                                              bool committed) {
  fams_[family.value()].committed = committed;
}

std::optional<Violation> SerializabilityOracle::finish() {
  if (violation_) return violation_;

  // Snapshot validity: every committed snapshot read must have observed the
  // newest ticked publication at or below its stamp (version 0 — the
  // creation image — when nothing at all was published under the stamp).
  // Ticks are allocated and published atomically under the deterministic
  // scheduler, so evaluating against the full publication set is exact.
  for (const auto& [fid, fam] : fams_) {
    if (!fam.committed) continue;
    for (const SnapRead& r : fam.snapshot_reads) {
      Lsn expected = 0;
      std::uint64_t best_tick = 0;
      const auto it = ticked_pubs_.find({r.object, r.page});
      if (it != ticked_pubs_.end()) {
        for (const auto& [tick, version] : it->second) {
          if (tick <= r.stamp && tick >= best_tick) {
            best_tick = tick;
            expected = version;
          }
        }
      }
      if (r.version != expected) {
        std::ostringstream out;
        out << "family f" << fid << " t" << r.serial << " snapshot-read o"
            << r.object << " page " << r.page << " at version " << r.version
            << " under stamp " << r.stamp
            << " but the newest publication at or below the stamp is version "
            << expected;
        flag(out.str());
        return violation_;
      }
    }
  }

  // Conflict edges between committed families over (object, page):
  //   wr: B stamped version v, A read/wrote at version v        => B -> A
  //   rw: A accessed version v, B stamped v' > v                => A -> B
  //   ww: B stamped v, C stamped v' > v                         => B -> C
  std::map<std::tuple<std::uint64_t, std::uint32_t, Lsn>, std::uint64_t>
      stamper;
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::vector<
      std::pair<Lsn, std::uint64_t>>> stamps_by_page;
  for (const auto& [fid, fam] : fams_) {
    if (!fam.committed) continue;
    for (const Stamp& s : fam.stamps) {
      stamper[{s.object, s.page, s.version}] = fid;
      stamps_by_page[{s.object, s.page}].emplace_back(s.version, fid);
    }
  }
  std::map<std::uint64_t, std::set<std::uint64_t>> edges;
  for (auto& [page, stamps] : stamps_by_page) {
    std::sort(stamps.begin(), stamps.end());
    for (std::size_t i = 0; i < stamps.size(); ++i)
      for (std::size_t j = i + 1; j < stamps.size(); ++j)
        if (stamps[i].second != stamps[j].second)
          edges[stamps[i].second].insert(stamps[j].second);
  }
  for (const auto& [fid, fam] : fams_) {
    if (!fam.committed) continue;
    for (const Access& a : fam.accesses) {
      const auto wr = stamper.find({a.object, a.page, a.version});
      if (wr != stamper.end() && wr->second != fid)
        edges[wr->second].insert(fid);
      const auto sit = stamps_by_page.find({a.object, a.page});
      if (sit == stamps_by_page.end()) continue;
      for (const auto& [version, other] : sit->second)
        if (version > a.version && other != fid) edges[fid].insert(other);
    }
  }

  // Iterative three-colour DFS over the (sorted, deterministic) graph.
  std::map<std::uint64_t, int> colour;  // 0 white, 1 grey, 2 black
  for (const auto& [start, unused] : edges) {
    if (colour[start] != 0) continue;
    std::vector<std::pair<std::uint64_t, bool>> work{{start, false}};
    std::vector<std::uint64_t> path;
    while (!work.empty()) {
      auto [f, done] = work.back();
      work.pop_back();
      if (done) {
        colour[f] = 2;
        path.pop_back();
        continue;
      }
      if (colour[f] == 2) continue;
      if (colour[f] == 1) continue;
      colour[f] = 1;
      path.push_back(f);
      work.emplace_back(f, true);
      const auto eit = edges.find(f);
      if (eit == edges.end()) continue;
      for (const std::uint64_t next : eit->second) {
        if (colour[next] == 1) {
          // Cycle: path from `next` to f, back to next.
          std::ostringstream out;
          out << "committed families are not conflict-serializable: cycle ";
          bool in_cycle = false;
          for (const std::uint64_t p : path) {
            if (p == next) in_cycle = true;
            if (in_cycle) out << "f" << p << " -> ";
          }
          out << "f" << next;
          flag(out.str());
          return violation_;
        }
        if (colour[next] == 0) work.emplace_back(next, false);
      }
    }
  }
  return violation_;
}

// --- LockDisciplineOracle --------------------------------------------------

bool LockDisciplineOracle::is_self_or_ancestor(const Fam& fam,
                                               std::uint32_t serial,
                                               std::uint32_t candidate) {
  std::uint32_t cur = serial;
  for (;;) {
    if (cur == candidate) return true;
    const auto it = fam.parent.find(cur);
    if (it == fam.parent.end() || it->second == CheckSink::kNoSerial)
      return false;
    cur = it->second;
  }
}

void LockDisciplineOracle::on_attempt_start(FamilyId family) {
  fams_[family.value()] = Fam{};
}

void LockDisciplineOracle::on_txn_begin(FamilyId family, std::uint32_t serial,
                                        std::uint32_t parent_serial,
                                        ObjectId /*target*/) {
  Fam& fam = fams_[family.value()];
  fam.parent[serial] = parent_serial;
  fam.abort_pending = false;
}

void LockDisciplineOracle::grant(FamilyId family, std::uint32_t serial,
                                 ObjectId object, LockMode mode,
                                 bool as_retainer) {
  Fam& fam = fams_[family.value()];
  fam.abort_pending = false;
  ShadowLock& lock = fam.locks[object.value()];
  // Rule 1: every retainer of a granted lock must be the requester itself
  // or one of its ancestors.
  for (const std::uint32_t r : lock.retainers) {
    if (!is_self_or_ancestor(fam, serial, r)) {
      std::ostringstream out;
      out << "family f" << family.value() << ": lock on o" << object.value()
          << " granted to t" << serial << " while retained by non-ancestor t"
          << r;
      flag(out.str());
    }
  }
  if (as_retainer) {
    lock.retainers.insert(serial);
    return;
  }
  auto [it, inserted] = lock.holders.try_emplace(serial, mode);
  if (!inserted && mode == LockMode::kWrite) it->second = LockMode::kWrite;
}

void LockDisciplineOracle::on_local_grant(FamilyId family,
                                          std::uint32_t serial,
                                          ObjectId object, LockMode mode) {
  grant(family, serial, object, mode, /*as_retainer=*/false);
}

void LockDisciplineOracle::on_global_grant(FamilyId family,
                                           std::uint32_t serial,
                                           ObjectId object, LockMode mode,
                                           bool /*upgrade*/,
                                           bool /*cached_regrant*/,
                                           bool prefetch) {
  // Prefetch grants park the lock as a retention of the root (the root
  // holds nothing yet); everything else is a hold of the requesting serial.
  grant(family, serial, object, mode, /*as_retainer=*/prefetch);
}

void LockDisciplineOracle::on_pre_commit(FamilyId family,
                                         std::uint32_t serial,
                                         std::uint32_t parent_serial) {
  Fam& fam = fams_[family.value()];
  fam.abort_pending = false;
  // Rule 3: held and retained locks pass to the parent as retentions.
  for (auto& [obj, lock] : fam.locks) {
    if (lock.holders.erase(serial) > 0) lock.retainers.insert(parent_serial);
    if (lock.retainers.erase(serial) > 0)
      lock.retainers.insert(parent_serial);
  }
}

void LockDisciplineOracle::on_subtree_abort(FamilyId family,
                                            std::uint32_t first_serial,
                                            std::uint32_t end_serial) {
  Fam& fam = fams_[family.value()];
  fam.abort_pending = true;
  for (auto& [obj, lock] : fam.locks) {
    for (auto it = lock.holders.begin(); it != lock.holders.end();)
      it = (it->first >= first_serial && it->first < end_serial)
               ? lock.holders.erase(it)
               : std::next(it);
    for (auto it = lock.retainers.begin(); it != lock.retainers.end();)
      it = (*it >= first_serial && *it < end_serial)
               ? lock.retainers.erase(it)
               : std::next(it);
  }
}

void LockDisciplineOracle::on_lock_release(FamilyId family, ObjectId object,
                                           CheckReleaseReason reason) {
  Fam& fam = fams_[family.value()];
  const auto it = fam.locks.find(object.value());
  if (reason == CheckReleaseReason::kSubtreeAbort) {
    // Rule 4 allows a mid-family release only when the aborting subtree was
    // the lock's last holder/retainer — and only as part of an abort.
    if (it != fam.locks.end() &&
        (!it->second.holders.empty() || !it->second.retainers.empty())) {
      std::ostringstream out;
      out << "family f" << family.value() << ": lock on o" << object.value()
          << " released mid-family while still ";
      if (!it->second.holders.empty())
        out << "held by t" << it->second.holders.begin()->first;
      else
        out << "retained by t" << *it->second.retainers.begin();
      out << " (Moss retention broken)";
      flag(out.str());
    } else if (!fam.abort_pending) {
      std::ostringstream out;
      out << "family f" << family.value() << ": mid-family release of o"
          << object.value() << " without a preceding subtree abort";
      flag(out.str());
    }
  }
  if (it != fam.locks.end()) fam.locks.erase(it);
}

void LockDisciplineOracle::on_family_outcome(FamilyId family,
                                             bool /*committed*/) {
  fams_.erase(family.value());
}

// --- CoherenceOracle -------------------------------------------------------

void CoherenceOracle::on_page_access(FamilyId family, std::uint32_t serial,
                                     ObjectId object, PageIndex page,
                                     Lsn version, bool /*write*/) {
  if (saw_crash_) return;
  const auto it = published_.find({object.value(), page.value()});
  if (it != published_.end() && version < it->second) {
    std::ostringstream out;
    out << "family f" << family.value() << " t" << serial
        << " executed against o" << object.value() << " page " << page.value()
        << " at version " << version << " but the directory has published "
        << it->second;
    flag(out.str());
  }
}

void CoherenceOracle::on_commit_stamp(FamilyId /*family*/, ObjectId object,
                                      PageIndex page, Lsn version,
                                      NodeId /*site*/) {
  commit_stamps_.insert({object.value(), page.value(), version});
}

void CoherenceOracle::on_directory_stamp(ObjectId object, PageIndex page,
                                         Lsn version, NodeId site,
                                         std::uint64_t /*tick*/) {
  if (!saw_crash_ && version > 0 &&
      commit_stamps_.count({object.value(), page.value(), version}) == 0) {
    std::ostringstream out;
    out << "directory published o" << object.value() << " page "
        << page.value() << " version " << version << " at n" << site.value()
        << " with no site-side commit stamp";
    flag(out.str());
  }
  Lsn& cur = published_[{object.value(), page.value()}];
  cur = std::max(cur, version);
}

// --- CacheEpochOracle ------------------------------------------------------

void CacheEpochOracle::on_cache_put(NodeId site, ObjectId object,
                                    LockMode mode) {
  auto& holders = live_[object.value()];
  holders[site.value()] = mode;
  for (const auto& [other, other_mode] : holders) {
    if (other == site.value()) continue;
    if (mode == LockMode::kWrite || other_mode == LockMode::kWrite) {
      std::ostringstream out;
      out << "sites n" << other << " and n" << site.value()
          << " simultaneously hold cached locks on o" << object.value()
          << " in conflicting modes (" << to_string(other_mode) << " vs "
          << to_string(mode) << ")";
      flag(out.str());
    }
  }
}

void CacheEpochOracle::on_cache_drop(NodeId site, ObjectId object) {
  const auto it = live_.find(object.value());
  if (it == live_.end()) return;
  it->second.erase(site.value());
  if (it->second.empty()) live_.erase(it);
}

void CacheEpochOracle::on_node_crash(NodeId node,
                                     std::uint64_t /*crash_count*/) {
  // The wipe also reports per-entry drops via GlobalLockCache::clear();
  // erasing here is belt and braces for the window in between.
  for (auto& [obj, holders] : live_) holders.erase(node.value());
}

// --- FanoutSink ------------------------------------------------------------

void FanoutSink::on_transport_message(const WireMessage& m) {
  ++messages_;
  auto fold = [this](std::uint64_t v) {
    hash_ = (hash_ ^ v) * 0x100000001b3ULL;
  };
  fold(static_cast<std::uint64_t>(m.kind));
  fold(m.src.value());
  fold(m.dst.value());
  fold(m.object.value());
  fold(m.payload_bytes);
  if (strategy_ != nullptr) strategy_->note_message();
  for (CheckSink* s : sinks_) s->on_transport_message(m);
}

void FanoutSink::on_attempt_start(FamilyId family) {
  for (CheckSink* s : sinks_) s->on_attempt_start(family);
}

void FanoutSink::on_txn_begin(FamilyId family, std::uint32_t serial,
                              std::uint32_t parent_serial, ObjectId target) {
  for (CheckSink* s : sinks_)
    s->on_txn_begin(family, serial, parent_serial, target);
}

void FanoutSink::on_pre_commit(FamilyId family, std::uint32_t serial,
                               std::uint32_t parent_serial) {
  for (CheckSink* s : sinks_) s->on_pre_commit(family, serial, parent_serial);
}

void FanoutSink::on_subtree_abort(FamilyId family, std::uint32_t first_serial,
                                  std::uint32_t end_serial) {
  for (CheckSink* s : sinks_)
    s->on_subtree_abort(family, first_serial, end_serial);
}

void FanoutSink::on_family_outcome(FamilyId family, bool committed) {
  for (CheckSink* s : sinks_) s->on_family_outcome(family, committed);
}

void FanoutSink::on_local_grant(FamilyId family, std::uint32_t serial,
                                ObjectId object, LockMode mode) {
  // Strategies key on scheduler slots; on the checker's fresh clusters
  // (single execute batch, ids minted from 1) FamilyId == slot + 1.
  if (strategy_ != nullptr)
    strategy_->note_lock_op(family.value() - 1, object.value(),
                            mode == LockMode::kWrite);
  for (CheckSink* s : sinks_) s->on_local_grant(family, serial, object, mode);
}

void FanoutSink::on_global_grant(FamilyId family, std::uint32_t serial,
                                 ObjectId object, LockMode mode, bool upgrade,
                                 bool cached_regrant, bool prefetch) {
  if (strategy_ != nullptr)
    strategy_->note_lock_op(family.value() - 1, object.value(),
                            mode == LockMode::kWrite);
  for (CheckSink* s : sinks_)
    s->on_global_grant(family, serial, object, mode, upgrade, cached_regrant,
                       prefetch);
}

void FanoutSink::on_lock_release(FamilyId family, ObjectId object,
                                 CheckReleaseReason reason) {
  for (CheckSink* s : sinks_) s->on_lock_release(family, object, reason);
}

void FanoutSink::on_recursion_precluded(FamilyId family, std::uint32_t serial,
                                        ObjectId object) {
  for (CheckSink* s : sinks_)
    s->on_recursion_precluded(family, serial, object);
}

void FanoutSink::on_page_access(FamilyId family, std::uint32_t serial,
                                ObjectId object, PageIndex page, Lsn version,
                                bool write) {
  for (CheckSink* s : sinks_)
    s->on_page_access(family, serial, object, page, version, write);
}

void FanoutSink::on_commit_stamp(FamilyId family, ObjectId object,
                                 PageIndex page, Lsn version, NodeId site) {
  for (CheckSink* s : sinks_)
    s->on_commit_stamp(family, object, page, version, site);
}

void FanoutSink::on_directory_stamp(ObjectId object, PageIndex page,
                                    Lsn version, NodeId site,
                                    std::uint64_t tick) {
  for (CheckSink* s : sinks_)
    s->on_directory_stamp(object, page, version, site, tick);
}

void FanoutSink::on_snapshot_read(FamilyId family, std::uint32_t serial,
                                  ObjectId object, PageIndex page, Lsn version,
                                  std::uint64_t stamp) {
  for (CheckSink* s : sinks_)
    s->on_snapshot_read(family, serial, object, page, version, stamp);
}

void FanoutSink::on_cache_put(NodeId site, ObjectId object, LockMode mode) {
  for (CheckSink* s : sinks_) s->on_cache_put(site, object, mode);
}

void FanoutSink::on_cache_drop(NodeId site, ObjectId object) {
  for (CheckSink* s : sinks_) s->on_cache_drop(site, object);
}

void FanoutSink::on_node_crash(NodeId node, std::uint64_t crash_count) {
  for (CheckSink* s : sinks_) s->on_node_crash(node, crash_count);
}

void FanoutSink::on_node_restart(NodeId node) {
  for (CheckSink* s : sinks_) s->on_node_restart(node);
}

void FanoutSink::on_ring_change(std::uint64_t epoch, NodeId node,
                                bool joined) {
  for (CheckSink* s : sinks_) s->on_ring_change(epoch, node, joined);
}

void FanoutSink::on_shard_move(ObjectId object, NodeId from, NodeId to,
                               std::uint64_t epoch) {
  for (CheckSink* s : sinks_) s->on_shard_move(object, from, to, epoch);
}

void FanoutSink::on_shard_serve(ObjectId object, NodeId node,
                                std::uint64_t epoch) {
  for (CheckSink* s : sinks_) s->on_shard_serve(object, node, epoch);
}

void FanoutSink::on_shard_redirect(ObjectId object, NodeId stale,
                                   NodeId requester) {
  for (CheckSink* s : sinks_) s->on_shard_redirect(object, stale, requester);
}

void RingOwnershipOracle::on_ring_change(std::uint64_t epoch, NodeId /*node*/,
                                         bool /*joined*/) {
  if (epoch <= ring_epoch_)
    flag("ring epoch went backwards: " + std::to_string(ring_epoch_) +
         " -> " + std::to_string(epoch));
  ring_epoch_ = epoch;
}

void RingOwnershipOracle::on_shard_move(ObjectId object, NodeId from,
                                        NodeId to, std::uint64_t epoch) {
  ++moves_;
  if (epoch != ring_epoch_)
    flag("object " + std::to_string(object.value()) +
         " migrated under stale placement epoch " + std::to_string(epoch) +
         " (ring is at " + std::to_string(ring_epoch_) + ")");
  if (from == to)
    flag("object " + std::to_string(object.value()) +
         " 'migrated' from node " + std::to_string(from.value()) +
         " to itself");
  const auto it = owner_.find(object.value());
  if (it != owner_.end() && from.valid() && it->second != from.value())
    flag("object " + std::to_string(object.value()) + " migrated from node " +
         std::to_string(from.value()) + " which does not own it (owner: " +
         std::to_string(it->second) + ")");
  owner_[object.value()] = to.value();
}

void RingOwnershipOracle::on_shard_serve(ObjectId object, NodeId node,
                                         std::uint64_t epoch) {
  ++serves_;
  if (epoch > ring_epoch_)
    flag("object " + std::to_string(object.value()) +
         " served under future placement epoch " + std::to_string(epoch));
  const auto [it, inserted] = owner_.emplace(object.value(), node.value());
  if (!inserted && it->second != node.value())
    flag("object " + std::to_string(object.value()) +
         " served unfenced by node " + std::to_string(node.value()) +
         " while node " + std::to_string(it->second) +
         " owns it — two unfenced servers for one entry");
}

}  // namespace lotec::check
