// Invariant oracles: event-sourced checkers that watch one schedule through
// the CheckSink seam and report the first invariant violation they can
// prove from the event stream.
//
//   SerializabilityOracle  committed root families must be conflict-
//                          serializable: the wr/ww/rw conflict graph over
//                          (object, page, version) accesses and commit
//                          stamps must be acyclic (Section 3's correctness
//                          target for nested families).  Snapshot reads
//                          (mv_read) join the graph as plain reads and are
//                          additionally checked against version order: each
//                          must observe the newest ticked publication at or
//                          below its stamp.
//   LockDisciplineOracle   shadow-Moss lock accounting: rule-3 retention at
//                          pre-commit, rule-1 ancestor-only retainers at
//                          grant, and no mid-family (kSubtreeAbort) release
//                          while an ancestor still holds or retains — the
//                          invariant the break_retention mutation violates.
//   CoherenceOracle        a method body must never execute against a page
//                          version older than the newest committed write
//                          the directory has published for that page (all
//                          four protocols), and every directory publication
//                          must trace back to a site-side commit stamp.
//   CacheEpochOracle       no two sites may simultaneously believe they
//                          hold a cached global lock on the same object in
//                          conflicting modes (lock-cache / lease safety).
//
// All oracles are passive CheckSinks; the FanoutSink multiplexes the
// cluster's single sink slot across them and feeds the strategy (message
// steps for PCT, lock footprints for DFS).  Violation details are built
// from ids only, so a replayed schedule reproduces the identical string —
// the property the minimizer and the bit-identity verifier rely on.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "check/events.hpp"

namespace lotec::check {

class Strategy;

struct Violation {
  std::string oracle;
  std::string detail;

  friend bool operator==(const Violation&, const Violation&) = default;
};

class OracleBase : public CheckSink {
 public:
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  /// End-of-schedule verdict; event-time violations are latched and
  /// returned here too (first one wins).
  [[nodiscard]] virtual std::optional<Violation> finish() = 0;

 protected:
  void flag(const std::string& detail) {
    if (!violation_) violation_ = Violation{name(), detail};
  }
  std::optional<Violation> violation_;
};

class SerializabilityOracle final : public OracleBase {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "serializability";
  }
  [[nodiscard]] std::optional<Violation> finish() override;

  void on_attempt_start(FamilyId family) override;
  void on_page_access(FamilyId family, std::uint32_t serial, ObjectId object,
                      PageIndex page, Lsn version, bool write) override;
  void on_commit_stamp(FamilyId family, ObjectId object, PageIndex page,
                       Lsn version, NodeId site) override;
  void on_directory_stamp(ObjectId object, PageIndex page, Lsn version,
                          NodeId site, std::uint64_t tick) override;
  void on_snapshot_read(FamilyId family, std::uint32_t serial, ObjectId object,
                        PageIndex page, Lsn version,
                        std::uint64_t stamp) override;
  void on_subtree_abort(FamilyId family, std::uint32_t first_serial,
                        std::uint32_t end_serial) override;
  void on_family_outcome(FamilyId family, bool committed) override;

 private:
  struct Access {
    std::uint32_t serial;
    std::uint64_t object;
    std::uint32_t page;
    Lsn version;
    bool write;
  };
  struct Stamp {
    std::uint64_t object;
    std::uint32_t page;
    Lsn version;
  };
  struct SnapRead {
    std::uint32_t serial;
    std::uint64_t object;
    std::uint32_t page;
    Lsn version;
    std::uint64_t stamp;
  };
  struct Fam {
    std::vector<Access> accesses;
    std::vector<Stamp> stamps;
    std::vector<SnapRead> snapshot_reads;
    bool committed = false;
  };
  std::map<std::uint64_t, Fam> fams_;
  /// Ticked directory publications per (object, page): the version order a
  /// snapshot read must be consistent with.  Residency re-records (tick 0)
  /// introduce no version and are excluded.
  std::map<std::pair<std::uint64_t, std::uint32_t>,
           std::vector<std::pair<std::uint64_t, Lsn>>> ticked_pubs_;
};

class LockDisciplineOracle final : public OracleBase {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "lock-discipline";
  }
  [[nodiscard]] std::optional<Violation> finish() override {
    return violation_;
  }

  void on_attempt_start(FamilyId family) override;
  void on_txn_begin(FamilyId family, std::uint32_t serial,
                    std::uint32_t parent_serial, ObjectId target) override;
  void on_local_grant(FamilyId family, std::uint32_t serial, ObjectId object,
                      LockMode mode) override;
  void on_global_grant(FamilyId family, std::uint32_t serial, ObjectId object,
                       LockMode mode, bool upgrade, bool cached_regrant,
                       bool prefetch) override;
  void on_pre_commit(FamilyId family, std::uint32_t serial,
                     std::uint32_t parent_serial) override;
  void on_subtree_abort(FamilyId family, std::uint32_t first_serial,
                        std::uint32_t end_serial) override;
  void on_lock_release(FamilyId family, ObjectId object,
                       CheckReleaseReason reason) override;
  void on_family_outcome(FamilyId family, bool committed) override;

  /// Mutual-recursion preclusions observed (the checker reports how often
  /// the Section 3.4 rule actually fired across explored schedules).
  void on_recursion_precluded(FamilyId /*family*/, std::uint32_t /*serial*/,
                              ObjectId /*object*/) override {
    ++recursion_preclusions_;
  }
  [[nodiscard]] std::uint64_t recursion_preclusions() const noexcept {
    return recursion_preclusions_;
  }

 private:
  struct ShadowLock {
    std::map<std::uint32_t, LockMode> holders;
    std::set<std::uint32_t> retainers;
  };
  struct Fam {
    std::map<std::uint32_t, std::uint32_t> parent;  // serial -> parent
    std::map<std::uint64_t, ShadowLock> locks;      // by object value
    /// A subtree abort was reported and its rule-4 releases are expected.
    bool abort_pending = false;
  };
  [[nodiscard]] static bool is_self_or_ancestor(const Fam& fam,
                                                std::uint32_t serial,
                                                std::uint32_t candidate);
  void grant(FamilyId family, std::uint32_t serial, ObjectId object,
             LockMode mode, bool as_retainer);

  std::map<std::uint64_t, Fam> fams_;
  std::uint64_t recursion_preclusions_ = 0;
};

class CoherenceOracle final : public OracleBase {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "page-coherence";
  }
  [[nodiscard]] std::optional<Violation> finish() override {
    return violation_;
  }

  void on_page_access(FamilyId family, std::uint32_t serial, ObjectId object,
                      PageIndex page, Lsn version, bool write) override;
  void on_commit_stamp(FamilyId family, ObjectId object, PageIndex page,
                       Lsn version, NodeId site) override;
  void on_directory_stamp(ObjectId object, PageIndex page, Lsn version,
                          NodeId site, std::uint64_t tick) override;
  void on_node_crash(NodeId /*node*/, std::uint64_t /*crash_count*/) override {
    // Crash recovery legitimately rolls published state back (lease
    // reclamation, partition rebuild); the staleness check is only sound on
    // crash-free schedules.
    saw_crash_ = true;
  }

 private:
  /// Newest version the directory has published per (object, page).
  std::map<std::pair<std::uint64_t, std::uint32_t>, Lsn> published_;
  /// Every site-side commit stamp (any family), for the publication
  /// cross-check.
  std::set<std::tuple<std::uint64_t, std::uint32_t, Lsn>> commit_stamps_;
  bool saw_crash_ = false;
};

class CacheEpochOracle final : public OracleBase {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "cache-epoch";
  }
  [[nodiscard]] std::optional<Violation> finish() override {
    return violation_;
  }

  void on_cache_put(NodeId site, ObjectId object, LockMode mode) override;
  void on_cache_drop(NodeId site, ObjectId object) override;
  void on_node_crash(NodeId node, std::uint64_t crash_count) override;

 private:
  /// Live cached entries: object value -> (site value -> mode).
  std::map<std::uint64_t, std::map<std::uint32_t, LockMode>> live_;
};

/// Shard-ownership safety for the elastic directory (PROTOCOL.md §15): at
/// no point may two unfenced nodes serve the same entry.  Ownership is
/// event-sourced from on_shard_move (and the first serve, which fixes the
/// initial residency); every later unfenced serve must come from the entry's
/// recorded owner, and a move must actually change nodes while the ring is
/// at the epoch the migrator claims.
class RingOwnershipOracle final : public OracleBase {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "ring-ownership";
  }
  [[nodiscard]] std::optional<Violation> finish() override {
    return violation_;
  }

  void on_ring_change(std::uint64_t epoch, NodeId node, bool joined) override;
  void on_shard_move(ObjectId object, NodeId from, NodeId to,
                     std::uint64_t epoch) override;
  void on_shard_serve(ObjectId object, NodeId node,
                      std::uint64_t epoch) override;

  [[nodiscard]] std::uint64_t moves() const noexcept { return moves_; }
  [[nodiscard]] std::uint64_t serves() const noexcept { return serves_; }

 private:
  /// Owner per object value, as established by moves / first serves.
  std::map<std::uint64_t, std::uint32_t> owner_;
  std::uint64_t ring_epoch_ = 0;
  std::uint64_t moves_ = 0;
  std::uint64_t serves_ = 0;
};

/// Multiplexes the cluster's single CheckSink slot across the oracles and
/// feeds the active strategy.  Owns nothing.
class FanoutSink final : public CheckSink {
 public:
  void add(CheckSink* sink) { sinks_.push_back(sink); }
  void set_strategy(Strategy* strategy) noexcept { strategy_ = strategy; }
  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
  /// FNV-1a over every message's (kind, src, dst, object, payload) in send
  /// order — the cheap bit-identity fingerprint the replay verifier
  /// compares (equal hash + equal count == same message sequence, modulo
  /// hash collisions).
  [[nodiscard]] std::uint64_t message_hash() const noexcept { return hash_; }

  void on_transport_message(const WireMessage& m) override;
  void on_attempt_start(FamilyId family) override;
  void on_txn_begin(FamilyId family, std::uint32_t serial,
                    std::uint32_t parent_serial, ObjectId target) override;
  void on_pre_commit(FamilyId family, std::uint32_t serial,
                     std::uint32_t parent_serial) override;
  void on_subtree_abort(FamilyId family, std::uint32_t first_serial,
                        std::uint32_t end_serial) override;
  void on_family_outcome(FamilyId family, bool committed) override;
  void on_local_grant(FamilyId family, std::uint32_t serial, ObjectId object,
                      LockMode mode) override;
  void on_global_grant(FamilyId family, std::uint32_t serial, ObjectId object,
                       LockMode mode, bool upgrade, bool cached_regrant,
                       bool prefetch) override;
  void on_lock_release(FamilyId family, ObjectId object,
                       CheckReleaseReason reason) override;
  void on_recursion_precluded(FamilyId family, std::uint32_t serial,
                              ObjectId object) override;
  void on_page_access(FamilyId family, std::uint32_t serial, ObjectId object,
                      PageIndex page, Lsn version, bool write) override;
  void on_commit_stamp(FamilyId family, ObjectId object, PageIndex page,
                       Lsn version, NodeId site) override;
  void on_directory_stamp(ObjectId object, PageIndex page, Lsn version,
                          NodeId site, std::uint64_t tick) override;
  void on_snapshot_read(FamilyId family, std::uint32_t serial, ObjectId object,
                        PageIndex page, Lsn version,
                        std::uint64_t stamp) override;
  void on_cache_put(NodeId site, ObjectId object, LockMode mode) override;
  void on_cache_drop(NodeId site, ObjectId object) override;
  void on_node_crash(NodeId node, std::uint64_t crash_count) override;
  void on_node_restart(NodeId node) override;
  void on_ring_change(std::uint64_t epoch, NodeId node, bool joined) override;
  void on_shard_move(ObjectId object, NodeId from, NodeId to,
                     std::uint64_t epoch) override;
  void on_shard_serve(ObjectId object, NodeId node,
                      std::uint64_t epoch) override;
  void on_shard_redirect(ObjectId object, NodeId stale,
                         NodeId requester) override;

 private:
  std::vector<CheckSink*> sinks_;
  Strategy* strategy_ = nullptr;
  std::uint64_t messages_ = 0;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace lotec::check
