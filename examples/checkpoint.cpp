// Checkpoint: persist a cluster's committed object state and restore it —
// the persistence seam of the paper's "DSM based persistent object system".
//
// Runs a burst of transactions, snapshots to disk, rebuilds a brand-new
// cluster with the same schema, restores, and keeps working on the restored
// state.
//
// Run:  ./checkpoint
#include <cstdint>
#include <cstdio>
#include <iostream>

#include "persist/snapshot.hpp"

using namespace lotec;

namespace {

ClusterConfig make_config() {
  ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.protocol = ProtocolKind::kLotec;
  cfg.seed = 77;
  return cfg;
}

void define_schema(Cluster& cluster, int accounts) {
  const ClassId account = cluster.define_class(
      ClassBuilder("Account", cluster.config().page_size)
          .attribute("balance", 8)
          .method("deposit100", {"balance"}, {"balance"},
                  [](MethodContext& ctx) {
                    ctx.set<std::int64_t>(
                        "balance", ctx.get<std::int64_t>("balance") + 100);
                  }));
  for (int i = 0; i < accounts; ++i) (void)cluster.create_object(account);
}

}  // namespace

int main() {
  const std::string path = "lotec_checkpoint.bin";
  constexpr int kAccounts = 8;

  std::int64_t total_before = 0;
  {
    Cluster cluster(make_config());
    define_schema(cluster, kAccounts);
    for (int round = 0; round < 5; ++round)
      for (int i = 0; i < kAccounts; ++i)
        if (!cluster.run_root(ObjectId(i), "deposit100",
                              NodeId(static_cast<std::uint32_t>(i) % 4))
                 .committed)
          return 1;
    for (int i = 0; i < kAccounts; ++i)
      total_before += cluster.peek<std::int64_t>(ObjectId(i), "balance");

    const SnapshotStats stats = save_snapshot(cluster, path);
    std::cout << "checkpointed " << stats.objects << " objects, "
              << stats.pages << " pages, " << stats.data_bytes
              << " bytes of object data (total balance " << total_before
              << ")\n";
  }  // the original cluster is gone

  Cluster restored(make_config());
  define_schema(restored, kAccounts);
  (void)load_snapshot(restored, path);

  std::int64_t total_after = 0;
  for (int i = 0; i < kAccounts; ++i)
    total_after += restored.peek<std::int64_t>(ObjectId(i), "balance");
  std::cout << "restored total balance " << total_after << "\n";

  // Keep transacting on the restored state.
  for (int i = 0; i < kAccounts; ++i)
    if (!restored.run_root(ObjectId(i), "deposit100").committed) return 1;
  std::int64_t final_total = 0;
  for (int i = 0; i < kAccounts; ++i)
    final_total += restored.peek<std::int64_t>(ObjectId(i), "balance");
  std::cout << "after more deposits: " << final_total << " (expected "
            << total_after + 100 * kAccounts << ")\n";

  std::remove(path.c_str());
  return (total_after == total_before &&
          final_total == total_after + 100 * kAccounts)
             ? 0
             : 1;
}
