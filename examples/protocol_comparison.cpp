// Protocol comparison on a custom randomized workload — a small, readable
// version of the paper's Section 5 experiment using the public workload
// API.  Tweak the WorkloadSpec knobs and watch the ordering
//   bytes(LOTEC) <= bytes(OTEC) <= bytes(COTEC)
// and the message-count inversion (LOTEC sends more, smaller messages).
//
// Run:  ./protocol_comparison
#include <iostream>

#include "net/cost_model.hpp"
#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "workload/generator.hpp"

using namespace lotec;

int main() {
  WorkloadSpec spec;
  spec.num_objects = 24;
  spec.min_pages = 4;
  spec.max_pages = 12;
  spec.num_transactions = 250;
  spec.contention_theta = 0.7;
  spec.touched_attr_fraction = 0.35;
  spec.write_fraction = 0.7;
  spec.seed = 123;

  const Workload workload(spec);
  std::cout << "workload: " << workload.num_objects() << " objects, "
            << spec.num_transactions << " root transactions, "
            << workload.total_script_nodes() << " nested invocations\n";

  const auto results = run_protocol_suite(
      workload, {ProtocolKind::kCotec, ProtocolKind::kOtec,
                 ProtocolKind::kLotec, ProtocolKind::kLotecDsd,
                 ProtocolKind::kRc});

  Table table({"Protocol", "Committed", "Messages", "Bytes", "Avg msg B",
               "Time @100Mbps/20us"});
  const NetworkCostModel model(NetworkCostModel::kEthernet100Mbps, 20.0);
  for (const auto& r : results) {
    table.row({std::string(to_string(r.protocol)),
               std::to_string(r.committed), fmt_u64(r.total.messages),
               fmt_u64(r.total.bytes),
               fmt_u64(r.total.messages ? r.total.bytes / r.total.messages
                                        : 0),
               fmt_double(model.total_time_us(r.total.messages,
                                              r.total.bytes) /
                              1000.0,
                          1) +
                   "ms"});
  }
  table.print();

  const bool ordered = results[3].total.bytes <= results[2].total.bytes &&
                       results[2].total.bytes <= results[1].total.bytes &&
                       results[1].total.bytes <= results[0].total.bytes;
  std::cout << (ordered
                    ? "\nbyte ordering LOTEC-DSD <= LOTEC <= OTEC <= COTEC holds\n"
                    : "\nUNEXPECTED byte ordering\n");
  return ordered ? 0 : 1;
}
